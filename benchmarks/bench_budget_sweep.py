"""Budget-dependence study: how the paper's orderings emerge with budget.

EXPERIMENTS.md's "budget note" quantified: on one class we sweep the
per-level evaluation budget and check that

* the Table III ordering (CARBON gap < COBRA gap) holds at every swept
  budget (it is budget-robust),
* CARBON's gap improves (weakly) with budget — the evolving-heuristic
  signature the nested baseline lacks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.sweeps import budget_sweep, crossover_budget

BUDGETS = [300, 900]
N, M = 50, 5


@pytest.fixture(scope="module")
def points():
    return budget_sweep(
        n_bundles=N, n_services=M, budgets=BUDGETS,
        runs=2, population_size=12, instance_seed=0,
    )


def test_gap_ordering_budget_robust(points, capsys):
    with capsys.disabled():
        print(f"\nbudget sweep on n={N}, m={M}:")
        print(f"  {'budget':>7} {'carbon gap':>11} {'cobra gap':>10} "
              f"{'carbon F':>9} {'cobra F':>8}")
        for p in points:
            print(f"  {p.budget:7d} {p.carbon_gap:11.2f} {p.cobra_gap:10.2f} "
                  f"{p.carbon_upper:9.0f} {p.cobra_upper:8.0f}")
    assert crossover_budget(points, "gap") == BUDGETS[0]


def test_carbon_gap_improves_with_budget(points):
    gaps = [p.carbon_gap for p in sorted(points, key=lambda p: p.budget)]
    assert gaps[-1] <= gaps[0] + 2.0  # weakly improving (noise slack)


def test_gap_ratio_reported(points):
    for p in points:
        assert p.gap_ratio > 1.0  # COBRA always worse on gap


def test_bench_one_sweep_point(benchmark):
    def run():
        return budget_sweep(
            n_bundles=24, n_services=3, budgets=[120],
            runs=1, population_size=8,
        )

    pts = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(pts) == 1
    assert np.isfinite(pts[0].carbon_gap)
