"""Fig. 4 — CARBON's average convergence curves.

The paper shows, for the n=500/m=30 class averaged over 30 runs, a
*steady* increase of the upper-level fitness and a *steady* decrease of
the %-gap.  At bench scale we run a smaller class and assert steadiness
via the see-saw index (≈0 for CARBON) and the end-vs-start direction of
both curves.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import bench_settings
from repro.experiments.figures import convergence_experiment
from repro.experiments.reporting import format_convergence


def _curves():
    classes, runs, carbon_cfg, cobra_cfg = bench_settings()
    n, m = classes[-1] if classes else (500, 30)
    return convergence_experiment(
        "CARBON",
        n_bundles=n,
        n_services=m,
        runs=min(runs, 3),
        carbon_config=carbon_cfg,
        cobra_config=cobra_cfg,
        n_points=50,
    )


def test_fig4_carbon_steady(capsys):
    curves = _curves()
    # Steadiness: the paper's "smooth" claim as a statistic.
    assert curves.fitness_seesaw < 0.25
    # Direction: fitness up, gap down over the run.
    finite_fit = curves.fitness[np.isfinite(curves.fitness)]
    finite_gap = curves.gap[np.isfinite(curves.gap)]
    assert finite_fit[-1] >= finite_fit[0]
    assert finite_gap[-1] <= finite_gap[0]
    with capsys.disabled():
        print()
        print(format_convergence(curves))


def test_fig4_gap_curve_monotone_trend():
    """The averaged champion-gap curve never rises (archive elitism makes
    the per-run best-gap monotone; averaging preserves it)."""
    curves = _curves()
    finite = curves.gap[np.isfinite(curves.gap)]
    assert (np.diff(finite) <= 1e-6).all()


def test_bench_fig4_experiment(benchmark):
    classes, _, carbon_cfg, cobra_cfg = bench_settings()
    n, m = classes[0] if classes else (100, 5)

    def run():
        return convergence_experiment(
            "CARBON", n_bundles=n, n_services=m, runs=1,
            carbon_config=carbon_cfg.scaled(0.3),
            cobra_config=cobra_cfg.scaled(0.3),
            n_points=20,
        )

    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    assert curves.n_runs == 1
