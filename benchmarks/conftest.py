"""Shared fixtures for the benchmark suite.

Every table/figure of the paper has one ``bench_*`` module.  Benchmarks
run at a laptop scale controlled by ``REPRO_BENCH_SCALE``:

* ``quick`` (default) — minutes for the whole suite; shape claims only,
* ``bench`` — tens of minutes; tighter budgets,
* ``paper`` — Table II budgets (hours; use ``repro-bench --scale paper``
  with ``--workers`` instead of pytest for this).

The expensive Table III/IV experiment runs once per session and is shared
by both table benches.
"""

from __future__ import annotations

import os

import pytest

from repro.core.config import CarbonConfig, CobraConfig
from repro.experiments.tables import ComparisonResult, run_comparison

SCALE = os.environ.get("REPRO_BENCH_SCALE", "quick")

#: (classes, runs, carbon_cfg, cobra_cfg) per scale.  Classes span the
#: paper's size axis (n growing, m growing) at laptop-friendly sizes.
_SETTINGS = {
    "quick": (
        [(40, 5), (60, 10), (80, 30)],
        3,
        CarbonConfig.quick(1_500, 1_500, 20),
        CobraConfig.quick(1_500, 1_500, 20),
    ),
    "bench": (
        [(100, 5), (100, 10), (100, 30), (250, 5), (250, 10)],
        5,
        CarbonConfig.quick(5_000, 5_000, 40),
        CobraConfig.quick(5_000, 5_000, 40),
    ),
    "paper": (
        None,  # all nine classes
        30,
        CarbonConfig.paper(),
        CobraConfig.paper(),
    ),
}


def bench_settings():
    if SCALE not in _SETTINGS:
        raise ValueError(f"REPRO_BENCH_SCALE={SCALE!r} not in {sorted(_SETTINGS)}")
    return _SETTINGS[SCALE]


@pytest.fixture(scope="session")
def comparison() -> ComparisonResult:
    """The shared Table III/IV experiment (runs once per session)."""
    classes, runs, carbon_cfg, cobra_cfg = bench_settings()
    return run_comparison(
        classes=classes,
        runs=runs,
        carbon_config=carbon_cfg,
        cobra_config=cobra_cfg,
        instance_seed=0,
    )
