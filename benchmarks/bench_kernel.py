"""Kernel benchmark: interpreted vs compiled GP evaluation, LP warm-starts.

Three measurements, all on one Table-II-shaped BCPOP instance:

``score_sweep``
    The raw scoring hot path — a population of trees, each scored over a
    sequence of greedy steps (``ctx.pick`` between scores, as
    ``greedy_cover`` does).  Interpreter walks the tree per call; the
    compiled program replays its cached static register bank and runs
    only the dynamic suffix.  This is where the headline speedup lives.

``end_to_end``
    Full ``evaluate_heuristic_fresh`` sweeps (LP relaxation + greedy
    solve + bookkeeping) with ``compile=False`` vs ``compile=True``
    evaluators.  Outcomes are asserted bit-identical — the benchmark
    doubles as a differential test at scale.

``lp_warm_start``
    A price sweep through ``RelaxationCache(backend="simplex")`` with
    warm-starting off vs on; reports simplex iterations saved (an
    exact, machine-independent count) plus wall time.

Results go to ``BENCH_kernel.json``.  Scale follows ``REPRO_BENCH_SCALE``
(quick/bench/paper); override the output with ``REPRO_BENCH_KERNEL_OUT``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.bcpop.generator import generate_instance
from repro.covering.greedy import GreedyContext
from repro.gp.compile import CompileCache
from repro.gp.generate import ramped_half_and_half
from repro.gp.primitives import paper_primitive_set
from repro.lp.bounds import RelaxationCache

SCALE = os.environ.get("REPRO_BENCH_SCALE", "quick")

#: (n_bundles, n_services, population, n_prices, greedy_steps)
_SETTINGS = {
    "quick": (60, 5, 24, 3, 12),
    "bench": (100, 10, 60, 5, 25),
    "paper": (250, 10, 120, 8, 50),
}

_DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"


def _out_path() -> Path:
    return Path(os.environ.get("REPRO_BENCH_KERNEL_OUT", _DEFAULT_OUT))


def _population(n: int, seed: int):
    rng = np.random.default_rng(seed)
    return ramped_half_and_half(
        paper_primitive_set(), n, rng, min_depth=2, max_depth=5
    )


def run_score_sweep(
    n_bundles: int, n_services: int, population: int, steps: int, seed: int = 0
) -> dict:
    """Time the scoring kernel alone over ``population`` trees ×
    ``steps`` greedy steps, interpreter vs compiled."""
    instance = generate_instance(n_bundles, n_services, seed=seed)
    ll = instance.lower_level(instance.price_bounds[1])
    trees = _population(population, seed)
    order = np.random.default_rng(seed).permutation(n_bundles)[:steps]

    def _sweep(score_of):
        outs = []
        t0 = time.perf_counter()
        for tree in trees:
            fn = score_of(tree)
            ctx = GreedyContext.fresh(ll)
            outs.append(fn(ctx).copy())
            for j in order:
                ctx.pick(int(j))
                outs.append(fn(ctx).copy())
        return time.perf_counter() - t0, outs

    # Untimed warm-up: the first numpy ufunc dispatches of a process cost
    # an order of magnitude more than steady state and would otherwise be
    # billed to whichever sweep runs first.
    warm_kernel = CompileCache()
    _sweep(lambda t: t.evaluate)
    _sweep(warm_kernel.get)

    t_interp, out_interp = _sweep(lambda t: t.evaluate)
    kernel = CompileCache()
    t_comp, out_comp = _sweep(kernel.get)  # includes compile time

    for a, b in zip(out_interp, out_comp):
        if not np.array_equal(
            a.view(np.uint64), b.view(np.uint64)
        ):  # pragma: no cover - diagnostic
            raise AssertionError("compiled scoring diverged from interpreter")

    return {
        "interpreted_s": t_interp,
        "compiled_s": t_comp,
        "speedup": t_interp / t_comp if t_comp > 0 else float("inf"),
        "scores_evaluated": len(out_interp),
        "kernel": kernel.stats,
    }


def run_end_to_end(
    n_bundles: int, n_services: int, population: int, n_prices: int, seed: int = 0
) -> dict:
    """Full lower-level evaluation sweeps, compiled vs interpreted, with
    a bit-identity check on every outcome."""
    instance = generate_instance(n_bundles, n_services, seed=seed)
    trees = _population(population, seed)
    rng = np.random.default_rng(seed + 1)
    low, high = instance.price_bounds
    prices = [rng.uniform(low, high) for _ in range(n_prices)]

    def _sweep(compile_flag: bool):
        ev = instance.make_evaluator(compile=compile_flag)
        outs = []
        t0 = time.perf_counter()
        for p in prices:
            for tree in trees:
                outs.append(ev.evaluate_heuristic_fresh(p, tree))
        return time.perf_counter() - t0, outs, ev

    t_interp, out_interp, _ = _sweep(False)
    t_comp, out_comp, ev = _sweep(True)

    for a, b in zip(out_interp, out_comp):
        assert np.array_equal(a.selection, b.selection)
        # repro-lint: disable-next-line=R004  # bit-identity between interpreter and bytecode is the contract; tolerance would mask drift
        assert a.ll_cost == b.ll_cost and a.gap == b.gap

    return {
        "interpreted_s": t_interp,
        "compiled_s": t_comp,
        "speedup": t_interp / t_comp if t_comp > 0 else float("inf"),
        "evaluations": len(out_interp),
        "kernel": ev.kernel_stats,
    }


def run_lp_warm_start(
    n_bundles: int, n_services: int, n_prices: int, seed: int = 0
) -> dict:
    """Sweep prices through cold and warm relaxation caches (own simplex
    backend) and report iteration + time savings."""
    instance = generate_instance(n_bundles, n_services, seed=seed)
    rng = np.random.default_rng(seed + 2)
    low, high = instance.price_bounds
    sweeps = [instance.lower_level(rng.uniform(low, high)) for _ in range(n_prices * 4)]

    cold = RelaxationCache(backend="simplex", warm_start=False)
    t0 = time.perf_counter()
    cold_relax = [cold.get(ll) for ll in sweeps]
    t_cold = time.perf_counter() - t0

    warm = RelaxationCache(backend="simplex", warm_start=True)
    t0 = time.perf_counter()
    warm_relax = [warm.get(ll) for ll in sweeps]
    t_warm = time.perf_counter() - t0

    for a, b in zip(cold_relax, warm_relax):
        if abs(a.lower_bound - b.lower_bound) > 1e-6 * max(1.0, abs(a.lower_bound)):
            raise AssertionError(
                f"warm LB {b.lower_bound} != cold LB {a.lower_bound}"
            )

    saved = cold.simplex_iterations - warm.simplex_iterations
    return {
        "cold_s": t_cold,
        "warm_s": t_warm,
        "cold_iterations": cold.simplex_iterations,
        "warm_iterations": warm.simplex_iterations,
        "iterations_saved": saved,
        "iterations_saved_pct": (
            100.0 * saved / cold.simplex_iterations
            if cold.simplex_iterations
            else 0.0
        ),
        "warm_stats": warm.warm_stats,
        "solves": len(sweeps),
    }


def run_kernel_benchmark(
    n_bundles: int,
    n_services: int,
    population: int,
    n_prices: int,
    steps: int,
    seed: int = 0,
) -> dict:
    return {
        "benchmark": "kernel",
        "scale": SCALE,
        "instance": f"n{n_bundles}-m{n_services}",
        "population": population,
        "score_sweep": run_score_sweep(
            n_bundles, n_services, population, steps, seed
        ),
        "end_to_end": run_end_to_end(
            n_bundles, n_services, population, n_prices, seed
        ),
        "lp_warm_start": run_lp_warm_start(n_bundles, n_services, n_prices, seed),
    }


def _write_record(record: dict) -> Path:
    path = _out_path()
    path.write_text(json.dumps(record, indent=2) + "\n")
    return path


def test_bench_kernel():
    settings = _SETTINGS.get(SCALE, _SETTINGS["quick"])
    record = run_kernel_benchmark(*settings)
    path = _write_record(record)
    assert path.exists()
    # Bit-identity is asserted inside the sweeps; here we only require
    # that compiling does not *lose* time on a batch workload.
    assert record["score_sweep"]["speedup"] >= 1.0
    assert record["end_to_end"]["speedup"] > 0
    assert record["lp_warm_start"]["iterations_saved"] >= 0


if __name__ == "__main__":
    settings = _SETTINGS.get(SCALE, _SETTINGS["quick"])
    out = run_kernel_benchmark(*settings)
    print(json.dumps(out, indent=2))
    print(f"wrote {_write_record(out)}")
