"""Extended comparison: CARBON vs COBRA vs NSQ vs APP baselines.

The paper compares only against COBRA; §III's taxonomy names the nested
sequential (NSQ) family as the legacy alternative and the lower-level
approximation (APP) family (BLEAQ, Bayesian surrogates) as the modern
one.  This bench adds both, isolating what each ingredient buys:

* NESTED[chvatal] pays one LL solve per UL evaluation with a *fixed*
  heuristic — its gap is pinned at Chvátal quality,
* SURROGATE[chvatal] keeps the fixed heuristic but pre-screens offspring
  with a learned revenue model — saving evaluations, not solver skill,
* CARBON pays the same per-evaluation price but *evolves* the heuristic —
  its gap keeps falling below Chvátal,
* COBRA avoids LL solves entirely (dot-product fitness) but its paired
  baskets drift — the gap inflates.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import bench_settings
from repro.bcpop.generator import generate_instance
from repro.core.carbon import run_carbon
from repro.core.cobra import run_cobra
from repro.core.config import UpperLevelConfig
from repro.core.nested import run_nested
from repro.core.surrogate import run_surrogate
from repro.parallel.rng import stream_for

SEEDS = (0, 1)


@pytest.fixture(scope="module")
def triple():
    classes, _, carbon_cfg, cobra_cfg = bench_settings()
    n, m = classes[1] if classes and len(classes) > 1 else (100, 10)
    instance = generate_instance(
        n, m, seed=stream_for(0, "bcpop", n, m, 0), name=f"ext-n{n}-m{m}"
    )
    nested_cfg = UpperLevelConfig(
        population_size=carbon_cfg.upper.population_size,
        archive_size=carbon_cfg.upper.archive_size,
        fitness_evaluations=carbon_cfg.upper.fitness_evaluations,
    )
    carbon = [run_carbon(instance, carbon_cfg, seed=s) for s in SEEDS]
    cobra = [run_cobra(instance, cobra_cfg, seed=s) for s in SEEDS]
    nested = [run_nested(instance, nested_cfg, seed=s) for s in SEEDS]
    return instance, carbon, cobra, nested


def _mean(rs, attr):
    return float(np.mean([getattr(r, attr) for r in rs]))


def test_extended_gap_ordering(triple, capsys):
    """CARBON <= NESTED[chvatal] << COBRA on the %-gap axis."""
    _, carbon, cobra, nested = triple
    cg, ng, og = (_mean(r, "best_gap") for r in (carbon, nested, cobra))
    with capsys.disabled():
        print(f"\nextended comparison (best %-gap): CARBON={cg:.2f} "
              f"NESTED[chvatal]={ng:.2f} COBRA={og:.2f}")
    assert cg <= ng + 1.5  # evolved heuristics at least match Chvátal
    assert ng < og         # any real LL solver beats drifting pairings


def test_extended_revenue_report(triple, capsys):
    _, carbon, cobra, nested = triple
    cu, nu, ou = (_mean(r, "best_upper") for r in (carbon, nested, cobra))
    with capsys.disabled():
        print(f"\nextended comparison (best revenue): CARBON={cu:.0f} "
              f"NESTED[chvatal]={nu:.0f} COBRA={ou:.0f}")
    # CARBON and NESTED both report realizable revenue; they should be in
    # the same ballpark, while COBRA's optimistic number floats free.
    assert 0.4 * nu <= cu <= 2.5 * nu


def test_nested_budget_accounting(triple):
    """NSQ's signature: exactly one LL solve per UL evaluation."""
    _, _, _, nested = triple
    for r in nested:
        assert r.ll_evaluations_used == r.ul_evaluations_used


def test_surrogate_screening_measured(triple, capsys):
    """APP branch: surrogate pre-screening at equal *true-evaluation*
    budget.  The paper notes APP methods "have only been designed to cope
    with continuous bi-level optimization problems"; our adaptation
    confirms the caveat quantitatively — a diagonal-quadratic revenue
    model sometimes mis-ranks candidates on the combinatorial BCPOP, so
    the surrogate lands in the nested GA's league but does not dominate
    it.  We assert the same-league band and that screening really ran;
    the printed numbers feed EXPERIMENTS.md."""
    instance, _, _, nested = triple
    classes, _, carbon_cfg, _ = bench_settings()
    cfg = UpperLevelConfig(
        population_size=carbon_cfg.upper.population_size,
        archive_size=carbon_cfg.upper.archive_size,
        fitness_evaluations=carbon_cfg.upper.fitness_evaluations,
    )
    surrogate = [run_surrogate(instance, cfg, seed=s, oversample=4) for s in SEEDS]
    su = _mean(surrogate, "best_upper")
    nu = _mean(nested, "best_upper")
    with capsys.disabled():
        print(f"\nAPP branch: SURROGATE revenue={su:.0f} vs NESTED={nu:.0f} "
              f"(screened {surrogate[0].extras['screened_out']} candidates)")
    assert 0.6 * nu <= su <= 1.7 * nu
    for r in surrogate:
        assert r.extras["screened_out"] > 0
        # Same gap family as NESTED: the solver is the same fixed rule.
        assert np.isfinite(r.best_gap)


def test_bench_nested_run(benchmark):
    classes, _, carbon_cfg, _ = bench_settings()
    n, m = classes[0] if classes else (100, 5)
    instance = generate_instance(n, m, seed=0)
    cfg = UpperLevelConfig(
        population_size=carbon_cfg.upper.population_size,
        fitness_evaluations=max(
            carbon_cfg.upper.population_size,
            carbon_cfg.upper.fitness_evaluations // 5,
        ),
    )
    result = benchmark.pedantic(
        lambda: run_nested(instance, cfg, seed=0), rounds=1, iterations=1
    )
    assert np.isfinite(result.best_gap)
