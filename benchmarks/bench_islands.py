"""Island-model CARBON: what migration buys (HPC extension).

Compares, at equal *total* budget, K isolated CARBON runs (take the best)
against a K-island ring with migration.  Migration shares champion
heuristics — the portable commodity CARBON's design creates — so the ring
should match or beat the best isolated island.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bcpop.generator import generate_instance
from repro.core.carbon import run_carbon
from repro.core.config import CarbonConfig
from repro.parallel.islands import run_island_carbon

CFG = CarbonConfig.quick(400, 400, population_size=10)
K = 3


@pytest.fixture(scope="module")
def instance():
    return generate_instance(50, 5, seed=4, name="island-bench")


def test_islands_vs_isolated(instance, capsys):
    isolated = [run_carbon(instance, CFG, seed=s) for s in range(K)]
    best_isolated = min(r.best_gap for r in isolated)
    ring = run_island_carbon(
        instance, CFG, n_islands=K, migration_interval=3, seed=0
    )
    with capsys.disabled():
        print(f"\nisland model: best isolated gap={best_isolated:.2f}  "
              f"ring gap={ring.best_gap:.2f}  "
              f"(migrations={ring.extras['migrations']})")
    # Equal total budget: the ring should be in the same league or better.
    assert ring.best_gap <= best_isolated * 1.75 + 0.5


def test_ring_budget_equals_sum_of_islands(instance):
    ring = run_island_carbon(instance, CFG, n_islands=K, seed=1)
    assert ring.ul_evaluations_used <= K * CFG.upper.fitness_evaluations
    assert ring.ll_evaluations_used <= K * CFG.ll_fitness_evaluations


def test_migration_interval_extremes(instance):
    frequent = run_island_carbon(
        instance, CFG, n_islands=K, migration_interval=1, seed=2
    )
    rare = run_island_carbon(
        instance, CFG, n_islands=K, migration_interval=10_000, seed=2
    )
    assert frequent.extras["migrations"] > rare.extras["migrations"]
    assert np.isfinite(frequent.best_gap) and np.isfinite(rare.best_gap)


def test_bench_ring_run(benchmark, instance):
    small = CarbonConfig.quick(150, 150, population_size=8)
    result = benchmark.pedantic(
        lambda: run_island_carbon(instance, small, n_islands=2, seed=0),
        rounds=1, iterations=1,
    )
    assert np.isfinite(result.best_gap)
