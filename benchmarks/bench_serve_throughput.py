"""Serve-layer throughput: N concurrent clients against one SolveServer.

Not a paper table — the first entry in the repo's perf trajectory for the
serving subsystem.  Each client pipelines solve requests over its own
connection; the server micro-batches them through the shared evaluation
pipeline.  Results (throughput + the server's own latency percentiles)
are written to ``BENCH_serve.json`` so successive commits can be compared.

Run as pytest (``pytest benchmarks/bench_serve_throughput.py``) or as a
script (``python benchmarks/bench_serve_throughput.py``).  Scale follows
``REPRO_BENCH_SCALE`` (quick/bench/paper) like the rest of the suite; the
output path can be overridden with ``REPRO_BENCH_SERVE_OUT``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

import numpy as np

from repro.bcpop.generator import generate_instance
from repro.gp.generate import ramped_half_and_half
from repro.gp.primitives import paper_primitive_set
from repro.serve import ServeClient, SolveServer, start_in_thread

SCALE = os.environ.get("REPRO_BENCH_SCALE", "quick")

#: (clients, requests_per_client, pipeline_chunk, n_bundles, n_services)
_SETTINGS = {
    "quick": (4, 50, 10, 60, 5),
    "bench": (8, 200, 20, 100, 10),
    "paper": (16, 500, 25, 250, 10),
}

_DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_serve.json"


def _out_path() -> Path:
    return Path(os.environ.get("REPRO_BENCH_SERVE_OUT", _DEFAULT_OUT))


def run_throughput_benchmark(
    clients: int,
    requests_per_client: int,
    pipeline_chunk: int,
    n_bundles: int,
    n_services: int,
    seed: int = 0,
) -> dict:
    """Drive one server with ``clients`` concurrent connections and
    return the combined throughput/latency record."""
    instance = generate_instance(n_bundles, n_services, seed=seed)
    rng = np.random.default_rng(seed)
    trees = ramped_half_and_half(paper_primitive_set(), 8, rng, min_depth=2, max_depth=4)
    low, high = instance.price_bounds
    # Distinct price vectors per request: the memo must not trivialize
    # the workload (hit rate is still reported for interpretation).
    price_pool = [rng.uniform(low, high) for _ in range(64)]

    server = SolveServer(instances=[instance], max_batch_size=32, max_wait_us=2_000)
    errors: list[str] = []

    def _client_loop(client_id: int) -> None:
        try:
            with ServeClient(*handle.address) as client:
                crng = np.random.default_rng((seed, client_id))
                sent = 0
                while sent < requests_per_client:
                    chunk = min(pipeline_chunk, requests_per_client - sent)
                    requests = [
                        client.solve_request(
                            price_pool[int(crng.integers(len(price_pool)))],
                            trees[int(crng.integers(len(trees)))],
                        )
                        for _ in range(chunk)
                    ]
                    for response in client.solve_many(requests):
                        if not response.get("ok"):
                            errors.append(str(response))
                    sent += chunk
        except Exception as exc:  # pragma: no cover - surfaced via assert
            errors.append(repr(exc))

    with start_in_thread(server) as handle:
        threads = [
            threading.Thread(target=_client_loop, args=(i,)) for i in range(clients)
        ]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        duration = time.perf_counter() - t0
        with ServeClient(*handle.address) as probe:
            stats = probe.stats()

    total = clients * requests_per_client
    record = {
        "benchmark": "serve_throughput",
        "scale": SCALE,
        "clients": clients,
        "requests_per_client": requests_per_client,
        "total_requests": total,
        "duration_s": duration,
        "throughput_rps": total / duration if duration > 0 else float("inf"),
        "latency_ms": stats["latency_ms"],
        "batches": stats["batches"],
        "mean_batch_size": stats["mean_batch_size"],
        "max_batch_size": stats["max_batch_size"],
        "memo_hit_rate": stats["memo_hit_rate"],
        "overloads": stats["overloads"],
        "errors": len(errors),
        "instance": f"n{n_bundles}-m{n_services}",
    }
    assert not errors, errors[:3]
    return record


def _write_record(record: dict) -> Path:
    path = _out_path()
    path.write_text(json.dumps(record, indent=2) + "\n")
    return path


def test_bench_serve_throughput():
    settings = _SETTINGS.get(SCALE, _SETTINGS["quick"])
    record = run_throughput_benchmark(*settings)
    path = _write_record(record)
    assert path.exists()
    assert record["total_requests"] == record["clients"] * record["requests_per_client"]
    assert record["throughput_rps"] > 0
    assert record["overloads"] == 0  # clients self-limit via pipeline_chunk
    assert record["max_batch_size"] > 1  # concurrency actually batched


if __name__ == "__main__":
    settings = _SETTINGS.get(SCALE, _SETTINGS["quick"])
    out = run_throughput_benchmark(*settings)
    print(json.dumps(out, indent=2))
    print(f"wrote {_write_record(out)}")
