"""Serve-layer throughput: concurrent clients against server and fleet.

Not a paper table — entries in the repo's perf trajectory for the serving
subsystem.  Two benchmarks:

* ``serve_throughput`` — N pipelining clients against one in-process
  :class:`SolveServer` (the PR 3 baseline, unchanged);
* ``serve_shard_saturation`` — the same client load through the
  :class:`SolveRouter` at 1 shard and at 4 shards, over a pool of
  instances so consistent hashing actually spreads the digests.  The
  1-vs-4 curve is the scaling headline of the sharded serving layer; the
  >= 2x expectation is asserted only on machines with >= 4 CPUs (shards
  are processes — on fewer cores the curve measures overhead, not
  scaling, and the record says so via its ``cpus`` field).

``BENCH_serve.json`` holds a *list* of records, one per (benchmark,
scale); re-runs replace their own record so the trajectory stays
comparable across commits.  (A pre-list single-record file from PR 3 is
upgraded transparently.)

Run as pytest (``pytest benchmarks/bench_serve_throughput.py``) or as a
script (``python benchmarks/bench_serve_throughput.py``).  Scale follows
``REPRO_BENCH_SCALE`` (quick/bench/paper) like the rest of the suite; the
output path can be overridden with ``REPRO_BENCH_SERVE_OUT``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

import numpy as np

from repro.bcpop.generator import generate_instance
from repro.gp.generate import ramped_half_and_half
from repro.gp.primitives import paper_primitive_set
from repro.serve import (
    ServeClient,
    SolveRouter,
    SolveServer,
    start_in_thread,
    start_router_in_thread,
)

SCALE = os.environ.get("REPRO_BENCH_SCALE", "quick")

#: (clients, requests_per_client, pipeline_chunk, n_bundles, n_services)
_SETTINGS = {
    "quick": (4, 50, 10, 60, 5),
    "bench": (8, 200, 20, 100, 10),
    "paper": (16, 500, 25, 250, 10),
}

#: Shard counts on the saturation curve (the acceptance pair).
_SHARD_CURVE = (1, 4)

#: Distinct instances for the sharded run — consistent hashing routes by
#: digest, so a single-digest workload would pin one shard no matter the
#: fleet size.
_SATURATION_INSTANCES = 8

_DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_serve.json"


def _out_path() -> Path:
    return Path(os.environ.get("REPRO_BENCH_SERVE_OUT", _DEFAULT_OUT))


def run_throughput_benchmark(
    clients: int,
    requests_per_client: int,
    pipeline_chunk: int,
    n_bundles: int,
    n_services: int,
    seed: int = 0,
) -> dict:
    """Drive one server with ``clients`` concurrent connections and
    return the combined throughput/latency record."""
    instance = generate_instance(n_bundles, n_services, seed=seed)
    rng = np.random.default_rng(seed)
    trees = ramped_half_and_half(paper_primitive_set(), 8, rng, min_depth=2, max_depth=4)
    low, high = instance.price_bounds
    # Distinct price vectors per request: the memo must not trivialize
    # the workload (hit rate is still reported for interpretation).
    price_pool = [rng.uniform(low, high) for _ in range(64)]

    server = SolveServer(instances=[instance], max_batch_size=32, max_wait_us=2_000)
    errors: list[str] = []

    def _client_loop(client_id: int) -> None:
        try:
            with ServeClient(*handle.address) as client:
                crng = np.random.default_rng((seed, client_id))
                sent = 0
                while sent < requests_per_client:
                    chunk = min(pipeline_chunk, requests_per_client - sent)
                    requests = [
                        client.solve_request(
                            price_pool[int(crng.integers(len(price_pool)))],
                            trees[int(crng.integers(len(trees)))],
                        )
                        for _ in range(chunk)
                    ]
                    for response in client.solve_many(requests):
                        if not response.get("ok"):
                            errors.append(str(response))
                    sent += chunk
        except Exception as exc:  # pragma: no cover - surfaced via assert
            errors.append(repr(exc))

    with start_in_thread(server) as handle:
        threads = [
            threading.Thread(target=_client_loop, args=(i,)) for i in range(clients)
        ]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        duration = time.perf_counter() - t0
        with ServeClient(*handle.address) as probe:
            stats = probe.stats()

    total = clients * requests_per_client
    record = {
        "benchmark": "serve_throughput",
        "scale": SCALE,
        "clients": clients,
        "requests_per_client": requests_per_client,
        "total_requests": total,
        "duration_s": duration,
        "throughput_rps": total / duration if duration > 0 else float("inf"),
        "latency_ms": stats["latency_ms"],
        "batches": stats["batches"],
        "mean_batch_size": stats["mean_batch_size"],
        "max_batch_size": stats["max_batch_size"],
        "memo_hit_rate": stats["memo_hit_rate"],
        "overloads": stats["overloads"],
        "errors": len(errors),
        "instance": f"n{n_bundles}-m{n_services}",
    }
    assert not errors, errors[:3]
    return record


def run_shard_saturation(
    clients: int,
    requests_per_client: int,
    pipeline_chunk: int,
    n_bundles: int,
    n_services: int,
    seed: int = 0,
    shard_counts: tuple[int, ...] = _SHARD_CURVE,
) -> dict:
    """The same concurrent-client load through the router at each fleet
    size; returns one record holding the whole saturation curve."""
    instances = [
        generate_instance(n_bundles, n_services, seed=seed + i)
        for i in range(_SATURATION_INSTANCES)
    ]
    digests = [inst.digest for inst in instances]
    rng = np.random.default_rng(seed)
    trees = ramped_half_and_half(paper_primitive_set(), 8, rng, min_depth=2, max_depth=4)
    price_pools = {
        inst.digest: [
            rng.uniform(*inst.price_bounds) for _ in range(16)
        ]
        for inst in instances
    }

    curve = []
    for n_shards in shard_counts:
        router = SolveRouter(
            instances=instances, n_shards=n_shards, max_batch_size=32, max_wait_us=2_000
        )
        errors: list[str] = []

        def _client_loop(client_id: int) -> None:
            try:
                with ServeClient(*handle.address) as client:
                    crng = np.random.default_rng((seed, n_shards, client_id))
                    sent = 0
                    while sent < requests_per_client:
                        chunk = min(pipeline_chunk, requests_per_client - sent)
                        requests = []
                        for _ in range(chunk):
                            digest = digests[int(crng.integers(len(digests)))]
                            pool = price_pools[digest]
                            requests.append(
                                client.solve_request(
                                    pool[int(crng.integers(len(pool)))],
                                    trees[int(crng.integers(len(trees)))],
                                    instance=digest,
                                )
                            )
                        for response in client.solve_many(requests):
                            if not response.get("ok"):
                                errors.append(str(response))
                        sent += chunk
            except Exception as exc:  # pragma: no cover - surfaced via assert
                errors.append(repr(exc))

        with start_router_in_thread(router) as handle:
            threads = [
                threading.Thread(target=_client_loop, args=(i,)) for i in range(clients)
            ]
            t0 = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            duration = time.perf_counter() - t0
            with ServeClient(*handle.address) as probe:
                stats = probe.stats()
        assert not errors, errors[:3]

        total = clients * requests_per_client
        curve.append(
            {
                "shards": n_shards,
                "duration_s": duration,
                "throughput_rps": total / duration if duration > 0 else float("inf"),
                "latency_ms": stats["latency_ms"],
                "routed": stats["routed"],
                "failovers": stats["failovers"],
                "overloads": stats["overloads"],
            }
        )

    return {
        "benchmark": "serve_shard_saturation",
        "scale": SCALE,
        "cpus": os.cpu_count(),
        "clients": clients,
        "requests_per_client": requests_per_client,
        "total_requests": clients * requests_per_client,
        "n_instances": _SATURATION_INSTANCES,
        "instance": f"n{n_bundles}-m{n_services}",
        "curve": curve,
    }


def _upsert_record(record: dict) -> Path:
    """Replace this (benchmark, scale)'s record in the list-shaped
    ``BENCH_serve.json`` (upgrading the PR 3 single-dict layout)."""
    path = _out_path()
    records: list[dict] = []
    if path.exists():
        existing = json.loads(path.read_text())
        records = existing if isinstance(existing, list) else [existing]
    key = (record["benchmark"], record["scale"])
    records = [
        r for r in records
        if (r.get("benchmark", "serve_throughput"), r.get("scale")) != key
    ]
    records.append(record)
    path.write_text(json.dumps(records, indent=2, sort_keys=True) + "\n")
    return path


def test_bench_serve_throughput():
    settings = _SETTINGS.get(SCALE, _SETTINGS["quick"])
    record = run_throughput_benchmark(*settings)
    path = _upsert_record(record)
    assert path.exists()
    assert record["total_requests"] == record["clients"] * record["requests_per_client"]
    assert record["throughput_rps"] > 0
    assert record["overloads"] == 0  # clients self-limit via pipeline_chunk
    assert record["max_batch_size"] > 1  # concurrency actually batched


def test_bench_serve_shard_saturation():
    settings = _SETTINGS.get(SCALE, _SETTINGS["quick"])
    record = run_shard_saturation(*settings)
    _upsert_record(record)
    by_shards = {point["shards"]: point for point in record["curve"]}
    assert set(by_shards) == set(_SHARD_CURVE)
    assert all(point["throughput_rps"] > 0 for point in record["curve"])
    assert all(point["overloads"] == 0 for point in record["curve"])
    cpus = os.cpu_count() or 1
    if cpus >= 4:
        # Shards are processes: with the cores to back them, 4 shards
        # must saturate at >= 2x the single-shard throughput.
        assert (
            by_shards[4]["throughput_rps"] >= 2.0 * by_shards[1]["throughput_rps"]
        ), record["curve"]


if __name__ == "__main__":
    settings = _SETTINGS.get(SCALE, _SETTINGS["quick"])
    for out in (run_throughput_benchmark(*settings), run_shard_saturation(*settings)):
        print(json.dumps(out, indent=2))
        print(f"wrote {_upsert_record(out)}")
