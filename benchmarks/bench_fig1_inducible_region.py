"""Fig. 1 — discontinuous inducible region of the Mersha-Dempe example.

Regenerates the rational-reaction curve over the x grid, asserts the
paper's worked facts (P(2)={3}, P(6)={12}, (6,12) UL-infeasible, the
forbidden band around x=6), and benchmarks the sweep.
"""

from __future__ import annotations

import numpy as np

from repro.bilevel.linear import mersha_dempe_example
from repro.experiments.figures import fig1_series
from repro.experiments.reporting import format_fig1


def test_fig1_worked_example_facts():
    ex = mersha_dempe_example()
    assert ex.rational_reaction(2.0).reactions == (3.0,)
    assert ex.rational_reaction(6.0).reactions == (12.0,)
    assert not ex.upper_feasible(6.0, 12.0)
    assert ex.upper_feasible(6.0, 8.0)  # the tempting-but-irrational pairing


def test_fig1_discontinuity_band(capsys):
    series = fig1_series(n_grid=361)
    assert series.infeasible_xs.size > 0
    # The forbidden band straddles x=6 (the paper's example point).
    assert series.infeasible_xs.min() < 6.0 < series.infeasible_xs.max()
    # Outside the band the rational pairs are UL-feasible.
    assert series.upper_feasible.any()
    with capsys.disabled():
        print()
        print(format_fig1(series))


def test_fig1_reaction_piecewise_linear():
    """y(x) = min(3x-3, 30-3x): slopes +-3 on the two segments."""
    series = fig1_series(n_grid=361)
    x, y = series.x, series.y_rational
    rising = x < 5.4
    falling = x > 5.6
    d_rise = np.diff(y[rising]) / np.diff(x[rising])
    d_fall = np.diff(y[falling]) / np.diff(x[falling])
    assert np.allclose(d_rise, 3.0, atol=1e-6)
    assert np.allclose(d_fall, -3.0, atol=1e-6)


def test_bench_fig1_sweep(benchmark):
    series = benchmark(fig1_series, n_grid=1001)
    assert series.x.size == series.y_rational.size
