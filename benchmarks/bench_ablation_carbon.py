"""Ablations on CARBON's open design knobs (DESIGN.md §5).

* **heuristic evaluation sample size** — how many upper-level decisions a
  GP tree's %-gap is averaged over; more samples = less noisy predator
  fitness but fewer GP generations per budget.
* **champion pairing** — upper individuals evaluated through the best
  archived heuristic (default) vs a random predator; champion pairing is
  what makes the prey fitness signal stable.
* **LP-feature terminals** — knock out DUAL/XLP from the terminal set to
  measure how much of the champion quality comes from the relaxation
  features the paper deliberately includes (Table I: "Notice that we
  consider the dual values and relaxed optimal solution").
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.bcpop.evaluate import LowerLevelEvaluator
from repro.bcpop.generator import generate_instance
from repro.core.carbon import Carbon, run_carbon
from repro.core.config import CarbonConfig
from repro.gp.primitives import PrimitiveSet, paper_operator_set, paper_terminal_set

BASE = CarbonConfig.quick(1_000, 1_000, population_size=16)
SEEDS = (0, 1)


@pytest.fixture(scope="module")
def instance():
    return generate_instance(60, 10, seed=3, name="ablation-carbon")


class TestSampleSizeAblation:
    def test_sample_size_sweep(self, instance, capsys):
        gaps = {}
        for s in (1, 3, 6):
            cfg = replace(BASE, heuristic_eval_sample=s)
            gaps[s] = float(
                np.mean([run_carbon(instance, cfg, seed=sd).best_gap for sd in SEEDS])
            )
        assert all(np.isfinite(v) for v in gaps.values())
        with capsys.disabled():
            print()
            print("CARBON heuristic-sample-size ablation (mean best %-gap):")
            for s, v in gaps.items():
                print(f"  sample={s}: {v:.2f}")

    def test_single_sample_noisier_than_multi(self, instance):
        """Across seeds, sample=1 champion gaps vary at least as much as
        sample=6 (noisy predator fitness)."""
        def spread(sample):
            cfg = replace(BASE, heuristic_eval_sample=sample)
            vals = [run_carbon(instance, cfg, seed=sd).best_gap for sd in range(4)]
            return np.std(vals)

        # Directional with slack: tiny budgets are noisy themselves.
        assert spread(1) > 0.25 * spread(6)


class TestPairingAblation:
    def test_random_predator_pairing_degrades_revenue_signal(self, instance):
        """Evaluate the final UL archive's best pricing under (a) the
        champion and (b) the *worst* archived heuristic: the worst one
        concedes at least as much revenue (a looser follower pays more),
        confirming champion pairing gives the tightest payoff estimate."""
        algo = Carbon(instance, BASE, np.random.default_rng(0))
        algo.initialize()
        while algo.step():
            pass
        best_prices = algo.ul_archive.best().item
        entries = algo.ll_archive.entries()
        champion, worst = entries[0].item, entries[-1].item
        ev = LowerLevelEvaluator(instance)
        rev_champion = ev.evaluate_heuristic(best_prices, champion).revenue
        out_worst = ev.evaluate_heuristic(best_prices, worst)
        assert out_worst.gap >= entries[0].score - 50.0  # worst is genuinely worse or equal
        assert np.isfinite(rev_champion) and np.isfinite(out_worst.revenue)


class TestTerminalKnockout:
    def test_lp_terminals_help(self, instance, capsys):
        """Dropping DUAL and XLP from the language should not *improve*
        the champion gap (paper motivates including them)."""
        full_gaps, knockout_gaps = [], []
        no_lp_terminals = tuple(
            t for t in paper_terminal_set() if t.name not in ("DUAL", "XLP")
        )
        for seed in SEEDS:
            algo = Carbon(instance, BASE, np.random.default_rng(seed))
            full_gaps.append(algo.run(seed_label=seed).best_gap)
            algo2 = Carbon(instance, BASE, np.random.default_rng(seed))
            algo2.pset = PrimitiveSet(
                operators=paper_operator_set(),
                terminals=no_lp_terminals,
                erc_probability=BASE.gp_erc_probability,
            )
            knockout_gaps.append(algo2.run(seed_label=seed).best_gap)
        with capsys.disabled():
            print()
            print(
                f"CARBON terminal knockout: full={np.mean(full_gaps):.2f}%  "
                f"no-DUAL/XLP={np.mean(knockout_gaps):.2f}%"
            )
        assert np.mean(full_gaps) <= np.mean(knockout_gaps) + 3.0

    def test_bench_one_carbon_config(self, instance, benchmark):
        result = benchmark.pedantic(
            lambda: run_carbon(instance, BASE, seed=0), rounds=1, iterations=1
        )
        assert np.isfinite(result.best_gap)
