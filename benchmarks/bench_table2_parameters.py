"""Table II — parameters of both algorithms.

Asserts the paper's values are what the config dataclasses produce and
prints the regenerated table.  (Configuration has no runtime to measure;
the benchmark covers config construction + validation.)
"""

from __future__ import annotations

from repro.core.config import CarbonConfig, CobraConfig
from repro.experiments.reporting import format_table2
from repro.experiments.tables import table2_rows


def test_table2_content(capsys):
    rows = {r[0]: (r[1], r[2]) for r in table2_rows()}
    assert rows["UL population size"] == ("100", "100")
    assert rows["UL archive size"] == ("100", "100")
    assert rows["UL fitness evaluations"] == ("50000", "50000")
    assert rows["UL crossover probability"] == ("0.85", "0.85")
    assert rows["UL mutation probability"] == ("0.01", "0.01")
    assert rows["LL encoding"] == ("syntax trees", "binary values")
    assert rows["LL fitness evaluations"] == ("50000", "50000")
    assert rows["LL crossover probability"] == ("0.85", "0.85")
    assert rows["LL mutation probability"] == ("0.1", "1/#variables")
    assert rows["LL reproduction probability"] == ("0.05", "-")
    with capsys.disabled():
        print()
        print(format_table2(table2_rows()))


def test_bench_config_construction(benchmark):
    def build():
        return CarbonConfig.paper(), CobraConfig.paper()

    carbon, cobra = benchmark(build)
    # repro-lint: disable-next-line=R004  # integer evaluation budgets, not float fitness values
    assert carbon.upper.fitness_evaluations == 50_000
    # repro-lint: disable-next-line=R004  # integer evaluation budgets, not float fitness values
    assert cobra.ll_fitness_evaluations == 50_000
