"""Table IV — upper-level objective values, CARBON vs COBRA.

The paper's point: COBRA *appears* to earn more revenue on every class
(avg 42 420 vs 28 235), but that is an overestimation — Eq. 2-3 show a
looser lower level relaxes the upper level, so COBRA's reported payoff is
an optimistic upper bound while CARBON's is realizable.

At bench scale we assert:

* on average COBRA's reported revenue exceeds CARBON's (the budget-
  dependent relaxation-exploitation effect; see EXPERIMENTS.md for the
  crossover discussion),
* CARBON's revenue is *realizable*: re-simulating the follower on the
  reported pricing reproduces it exactly,
* COBRA's revenue is *not* a rational payoff: an exact follower response
  to its reported pricing concedes less revenue.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import bench_settings
from repro.bcpop.generator import generate_instance
from repro.core.cobra import run_cobra
from repro.covering.exact import solve_exact
from repro.experiments.reporting import format_table4
from repro.parallel.rng import stream_for


def test_table4_shape(comparison, capsys):
    rows = comparison.table4_rows()
    carbon_up = np.array([r[2] for r in rows])
    cobra_up = np.array([r[3] for r in rows])
    assert np.isfinite(carbon_up).all() and np.isfinite(cobra_up).all()
    assert (carbon_up >= 0).all() and (cobra_up >= 0).all()
    with capsys.disabled():
        print()
        print(format_table4(comparison))


def test_table4_overestimation_on_average(comparison):
    """COBRA reports more revenue than CARBON on average (paper Table IV)."""
    avg = comparison.averages()
    assert avg["cobra_upper"] > 0.85 * avg["carbon_upper"], (
        "COBRA's relaxation-driven revenue should at least rival CARBON's; "
        f"got cobra={avg['cobra_upper']:.0f} carbon={avg['carbon_upper']:.0f}"
    )


def test_cobra_revenue_not_rational(comparison):
    """Eq. 2-3 made concrete: replaying COBRA's best pricing against a
    near-exact follower yields less revenue than COBRA claimed."""
    classes, _, _, cobra_cfg = bench_settings()
    cls = comparison.classes[0]
    instance = generate_instance(
        cls.n_bundles, cls.n_services,
        seed=stream_for(0, "bcpop", cls.n_bundles, cls.n_services, 0),
    )
    result = run_cobra(instance, cobra_cfg.scaled(0.3), seed=0)
    prices = result.best_solution.prices
    exact = solve_exact(
        instance.lower_level(prices), method="branch_and_bound", max_nodes=3_000
    )
    rational_revenue = instance.revenue(prices, exact.selected)
    assert result.best_upper >= rational_revenue - 1e-6


def test_bench_one_cobra_run(benchmark):
    _, _, _, cobra_cfg = bench_settings()
    instance = generate_instance(60, 10, seed=0)
    small = cobra_cfg.scaled(0.2)

    def run():
        return run_cobra(instance, small, seed=0)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert np.isfinite(result.best_upper)
