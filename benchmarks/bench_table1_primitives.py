"""Table I — the GP operator and terminal sets.

Regenerates the table from the live primitive registry, asserts its exact
content, and benchmarks the vectorized evaluation of a representative
scoring tree (the inner-loop cost every CARBON lower-level evaluation
pays).
"""

from __future__ import annotations

import numpy as np

from repro.covering.greedy import GreedyContext
from repro.experiments.reporting import format_table1
from repro.experiments.tables import table1_rows
from repro.gp.primitives import lookup_primitive, lookup_terminal, paper_primitive_set
from repro.gp.tree import SyntaxTree
from tests.conftest import random_covering


def test_table1_content(capsys):
    rows = table1_rows()
    names = [r[0] for r in rows]
    # Operators of Table I.
    assert names[:5] == ["+", "-", "*", "%", "mod"]
    # Terminals of Table I (per-bundle aggregate views; DESIGN.md §5).
    for terminal in ("COST", "QSUM", "QMAX", "COVER", "BSUM", "BRES", "DUAL", "XLP"):
        assert terminal in names
    with capsys.disabled():
        print()
        print(format_table1(rows))


def test_bench_tree_evaluation(benchmark):
    """Vectorized evaluation throughput of a depth-4 tree over 500 bundles."""
    inst = random_covering(0, n_services=30, n_bundles=500)
    ctx = GreedyContext.fresh(inst)
    P, T = lookup_primitive, lookup_terminal
    # (COST % COVER) - (DUAL * (XLP + 0.5-ish depth filler))
    tree = SyntaxTree(
        [P("sub"),
         P("div"), T("COST"), T("COVER"),
         P("mul"), T("DUAL"), P("add"), T("XLP"), T("QMAX")]
    )
    out = benchmark(tree.evaluate, ctx)
    assert out.shape == (500,)
    assert np.isfinite(out).all()


def test_bench_primitive_set_construction(benchmark):
    pset = benchmark(paper_primitive_set)
    assert len(pset.operators) == 5
    assert len(pset.terminals) == 8
