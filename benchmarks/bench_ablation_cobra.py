"""Ablations on COBRA's open design knobs (DESIGN.md §5).

Two knobs the paper itself flags:

* **improvement-phase length** — "how should be set the number of
  improvement generations for each level?" (§V-B).  We sweep it and
  report the resulting gap/revenue trade-off.
* **repair strength** — our baseline uses neutral random-completion
  repair without pruning; the ablation shows Chvátal-order repair with
  pruning shrinks COBRA's gap dramatically (i.e. a strong repair operator
  would smuggle a hand-written heuristic into the baseline and mask the
  paper's effect).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.bcpop.generator import generate_instance
from repro.core.cobra import run_cobra
from repro.core.config import CobraConfig

BASE = CobraConfig.quick(1_200, 1_200, population_size=16)
SEEDS = (0, 1)


@pytest.fixture(scope="module")
def instance():
    return generate_instance(60, 10, seed=3, name="ablation-cobra")


def _mean_gap(instance, cfg) -> float:
    return float(np.mean([run_cobra(instance, cfg, seed=s).best_gap for s in SEEDS]))


class TestPhaseLengthAblation:
    def test_phase_length_sweep_runs(self, instance, capsys):
        gaps = {}
        for g in (1, 3, 8):
            cfg = replace(BASE, improvement_generations=g)
            gaps[g] = _mean_gap(instance, cfg)
        assert all(np.isfinite(v) for v in gaps.values())
        with capsys.disabled():
            print()
            print("COBRA improvement-phase-length ablation (mean best %-gap):")
            for g, v in gaps.items():
                print(f"  g={g}: {v:.2f}")

    def test_bench_one_phase_config(self, instance, benchmark):
        cfg = replace(BASE, improvement_generations=3)
        result = benchmark.pedantic(
            lambda: run_cobra(instance, cfg, seed=0), rounds=1, iterations=1
        )
        assert np.isfinite(result.best_gap)


class TestRepairAblation:
    def test_chvatal_repair_masks_the_gap_effect(self, instance, capsys):
        """Strong repair (Chvátal + pruning) cuts COBRA's gap well below
        the neutral baseline — evidence our neutral default is the right
        good-faith choice, not a handicap we quietly benefit from."""
        neutral = _mean_gap(instance, BASE)
        strong = _mean_gap(
            instance, replace(BASE, ll_repair="chvatal", ll_repair_prune=True)
        )
        with capsys.disabled():
            print()
            print(
                f"COBRA repair ablation: neutral={neutral:.2f}%  "
                f"chvatal+prune={strong:.2f}%"
            )
        assert strong < neutral

    def test_cost_repair_between_extremes(self, instance):
        neutral = _mean_gap(instance, BASE)
        cost = _mean_gap(instance, replace(BASE, ll_repair="cost", ll_repair_prune=True))
        assert cost <= neutral + 5.0  # cheap-first with pruning is never much worse
