"""Ablation: the %-gap denominator (LP vs Lagrangian vs own simplex).

Eq. 1's ``LB(x)`` is "a lower bound"; the paper uses the continuous
relaxation.  This bench quantifies how the choice of bound machinery
affects the measure and its cost:

* scipy/HiGHS LP (default), our own simplex, and the from-scratch
  subgradient Lagrangian dual must agree (integrality property) — any
  disagreement would silently rescale every gap in Tables III/IV,
* per-solve cost differs by orders of magnitude, which matters because
  every lower-level evaluation pays for one bound.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.lp.lagrangian import lagrangian_bound
from repro.lp.relaxation import solve_relaxation
from tests.conftest import random_covering

SIZES = [(5, 60), (10, 120), (30, 250)]


@pytest.fixture(scope="module", params=range(3))
def sized_instance(request):
    m, n = SIZES[request.param]
    return random_covering(request.param, n_services=m, n_bundles=n)


class TestBoundAgreement:
    def test_lp_backends_agree(self, sized_instance):
        a = solve_relaxation(sized_instance, "scipy")
        if sized_instance.n_bundles <= 150:  # own simplex is the slow path
            b = solve_relaxation(sized_instance, "simplex")
            assert a.lower_bound == pytest.approx(b.lower_bound, rel=1e-6)

    def test_lagrangian_within_one_percent(self, sized_instance):
        lp = solve_relaxation(sized_instance, "scipy")
        lag = lagrangian_bound(sized_instance, max_iterations=800)
        assert lag.lower_bound <= lp.lower_bound + 1e-6
        if lp.lower_bound > 1e-9:
            assert lag.lower_bound >= 0.95 * lp.lower_bound

    def test_gap_rescaling_is_bounded(self, sized_instance, capsys):
        """A heuristic's gap measured against the Lagrangian bound differs
        from the LP-based gap by at most the bound slack."""
        from repro.covering.greedy import greedy_cover
        from repro.covering.heuristics import chvatal_score

        lp = solve_relaxation(sized_instance, "scipy")
        lag = lagrangian_bound(sized_instance, max_iterations=800)
        sol = greedy_cover(sized_instance, chvatal_score)
        gap_lp = lp.percent_gap(sol.cost)
        gap_lag = 100.0 * (sol.cost - lag.lower_bound) / max(lag.lower_bound, 1e-9)
        with capsys.disabled():
            print(f"\n{sized_instance.n_services}x{sized_instance.n_bundles}: "
                  f"gap(LP)={gap_lp:.2f}%  gap(Lagrangian)={gap_lag:.2f}%")
        assert gap_lag >= gap_lp - 1e-6  # weaker bound -> larger apparent gap


class TestBoundCosts:
    def test_bench_lp_bound(self, benchmark):
        inst = random_covering(7, n_services=10, n_bundles=250)
        relax = benchmark(solve_relaxation, inst, "scipy")
        assert relax.feasible

    def test_bench_lagrangian_bound(self, benchmark):
        inst = random_covering(7, n_services=10, n_bundles=250)
        lag = benchmark(lagrangian_bound, inst, 300)
        assert np.isfinite(lag.lower_bound)
