"""Fig. 2 — extended bi-level metaheuristics taxonomy.

Regenerates the taxonomy DAG, asserts the §III structure (five strategies,
NSQ's two sub-approaches, CARBON and COBRA under the co-evolutionary
branch), and benchmarks construction + rendering.
"""

from __future__ import annotations

from repro.bilevel.taxonomy import bilevel_taxonomy, render_taxonomy
from repro.experiments.figures import fig2_structure


def test_fig2_strategies():
    s = fig2_structure()
    assert set(s["strategies"]) == {"NSQ", "STA", "COE", "MOA", "APP"}


def test_fig2_nsq_subapproaches():
    g = bilevel_taxonomy()
    assert g.has_edge("NSQ", "REP")
    assert g.has_edge("NSQ", "CST")


def test_fig2_coevolutionary_branch():
    s = fig2_structure()
    coe = [name for name, strat in s["algorithms"].items() if strat == "COE"]
    assert "CARBON (this paper)" in coe
    assert "COBRA (Legillon et al. 2012)" in coe
    assert "BIGA (Oduguwa & Roy 2002)" in coe
    assert "CODBA (Chaabani et al. 2015)" in coe


def test_fig2_approximation_branch():
    s = fig2_structure()
    app = [name for name, strat in s["algorithms"].items() if strat == "APP"]
    assert any("BLEAQ" in a for a in app)


def test_fig2_render(capsys):
    text = render_taxonomy()
    assert "Co-evolutionary" in text
    assert "CARBON (this paper)" in text
    with capsys.disabled():
        print()
        print(text)


def test_bench_taxonomy_build_and_render(benchmark):
    def build():
        return render_taxonomy(bilevel_taxonomy())

    text = benchmark(build)
    assert "Bi-level metaheuristics" in text
