"""Substrate micro-benchmarks (not a paper table, but the cost model
behind every experiment: one LL evaluation = one LP relaxation (cached) +
one greedy solve).

Also cross-times the two LP backends — the from-scratch simplex vs scipy's
HiGHS — and the relaxation cache's amortization.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bcpop.evaluate import LowerLevelEvaluator
from repro.bcpop.generator import generate_instance
from repro.covering.greedy import greedy_cover
from repro.covering.heuristics import chvatal_score
from repro.lp.relaxation import solve_relaxation
from tests.conftest import random_covering


@pytest.fixture(scope="module")
def big_instance():
    return random_covering(0, n_services=30, n_bundles=500)


class TestGreedyThroughput:
    def test_bench_greedy_500x30(self, benchmark, big_instance):
        sol = benchmark(greedy_cover, big_instance, chvatal_score)
        assert sol.feasible

    def test_greedy_scales_subquadratically(self):
        """Doubling bundles should not quadruple greedy time (vectorized
        scoring keeps the per-step cost linear in n)."""
        import time

        def took(n):
            inst = random_covering(1, n_services=10, n_bundles=n)
            t0 = time.perf_counter()
            for _ in range(5):
                greedy_cover(inst, chvatal_score)
            return time.perf_counter() - t0

        t250, t500 = took(250), took(500)
        assert t500 < 6 * t250 + 0.05


class TestLPBackends:
    def test_bench_scipy_relaxation(self, benchmark, big_instance):
        relax = benchmark(solve_relaxation, big_instance, "scipy")
        assert relax.feasible

    def test_bench_own_simplex_relaxation(self, benchmark):
        inst = random_covering(2, n_services=8, n_bundles=60)
        relax = benchmark(solve_relaxation, inst, "simplex")
        assert relax.feasible

    def test_backends_agree_on_bench_instance(self, big_instance):
        a = solve_relaxation(big_instance, "scipy")
        # Own simplex on the full 500x30 is slow but must agree; use a
        # 60-bundle slice for the cross-check.
        small = random_covering(2, n_services=8, n_bundles=60)
        b_scipy = solve_relaxation(small, "scipy")
        b_own = solve_relaxation(small, "simplex")
        assert b_scipy.lower_bound == pytest.approx(b_own.lower_bound, rel=1e-6)
        assert a.feasible


class TestEvaluationPipeline:
    def test_bench_ll_evaluation_cold(self, benchmark):
        instance = generate_instance(250, 10, seed=0)
        gen = np.random.default_rng(0)

        def evaluate():
            ev = LowerLevelEvaluator(instance)  # cold cache each round
            prices = gen.uniform(0, instance.price_cap, instance.n_own)
            return ev.evaluate_heuristic(prices, chvatal_score)

        out = benchmark(evaluate)
        assert out.feasible

    def test_bench_ll_evaluation_warm(self, benchmark):
        instance = generate_instance(250, 10, seed=0)
        ev = LowerLevelEvaluator(instance)
        prices = np.full(instance.n_own, instance.price_cap / 2)
        ev.evaluate_heuristic(prices, chvatal_score)  # prime the cache

        out = benchmark(ev.evaluate_heuristic, prices, chvatal_score)
        assert out.feasible
        assert ev.cache_stats["hit_rate"] > 0.9


class TestBatchedPipelineSpeedup:
    """Serial vs process-pool population evaluation at Table-II scale
    (500 bundles x 30 services).  The pipeline's contract is bit-identical
    results either way; this measures what the pool buys in wall time."""

    @staticmethod
    def _requests(instance, n_prices=16, n_trees=4):
        from repro.gp.generate import grow_tree
        from repro.gp.primitives import paper_primitive_set

        gen = np.random.default_rng(0)
        pset = paper_primitive_set()
        trees = [grow_tree(pset, 4, gen) for _ in range(n_trees)]
        prices = [
            gen.uniform(0.1, instance.price_cap, instance.n_own)
            for _ in range(n_prices)
        ]
        return [(p, t) for p in prices for t in trees]

    def test_process_pool_speedup_table2_scale(self):
        import os
        import time

        from repro.bcpop.evaluate import EvaluationPipeline
        from repro.parallel.executor import ProcessExecutor, SerialExecutor

        if (os.cpu_count() or 1) < 4:
            pytest.skip("speedup measurement needs >= 4 physical CPUs")

        instance = generate_instance(500, 30, seed=0, name="bench-500x30")
        requests = self._requests(instance)

        serial_pipe = EvaluationPipeline(
            LowerLevelEvaluator(instance), SerialExecutor()
        )
        t0 = time.perf_counter()
        serial_out = serial_pipe.evaluate_heuristics(requests)
        t_serial = time.perf_counter() - t0

        with ProcessExecutor(workers=4) as ex:
            pipe = EvaluationPipeline(LowerLevelEvaluator(instance), ex)
            pipe.evaluate_heuristics(requests[:4])  # warm the pool + workers
            fresh = self._requests(instance)  # cold memo for the timed pass
            pipe2 = EvaluationPipeline(LowerLevelEvaluator(instance), ex)
            t0 = time.perf_counter()
            parallel_out = pipe2.evaluate_heuristics(fresh)
            t_parallel = time.perf_counter() - t0

        # Identical results, substrate notwithstanding.
        for a, b in zip(serial_out, parallel_out):
            # repro-lint: disable-next-line=R004  # serial-vs-parallel bit-identity is the guarantee under test; tolerance would mask drift
            assert a.gap == b.gap and a.revenue == b.revenue
        speedup = t_serial / t_parallel
        print(
            f"\nserial {t_serial:.2f}s  parallel(4) {t_parallel:.2f}s  "
            f"speedup {speedup:.2f}x  memo={serial_pipe.stats['memo']}"
        )
        assert speedup >= 2.0

    def test_memo_amortizes_reevaluation(self):
        """Second pass over the same population is nearly free: the memo
        serves every request without touching the budget counter."""
        import time

        from repro.bcpop.evaluate import EvaluationPipeline

        instance = generate_instance(500, 30, seed=0, name="bench-500x30")
        requests = self._requests(instance, n_prices=8, n_trees=3)
        ev = LowerLevelEvaluator(instance)
        pipe = EvaluationPipeline(ev)

        t0 = time.perf_counter()
        pipe.evaluate_heuristics(requests)
        t_cold = time.perf_counter() - t0
        work_after_first = ev.n_evaluations

        t0 = time.perf_counter()
        pipe.evaluate_heuristics(requests)
        t_warm = time.perf_counter() - t0

        assert ev.n_evaluations == work_after_first  # hits cost no budget
        assert ev.memo.hit_rate >= 0.5
        assert t_warm < t_cold / 5
