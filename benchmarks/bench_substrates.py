"""Substrate micro-benchmarks (not a paper table, but the cost model
behind every experiment: one LL evaluation = one LP relaxation (cached) +
one greedy solve).

Also cross-times the two LP backends — the from-scratch simplex vs scipy's
HiGHS — and the relaxation cache's amortization.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bcpop.evaluate import LowerLevelEvaluator
from repro.bcpop.generator import generate_instance
from repro.covering.greedy import greedy_cover
from repro.covering.heuristics import chvatal_score
from repro.lp.relaxation import solve_relaxation
from tests.conftest import random_covering


@pytest.fixture(scope="module")
def big_instance():
    return random_covering(0, n_services=30, n_bundles=500)


class TestGreedyThroughput:
    def test_bench_greedy_500x30(self, benchmark, big_instance):
        sol = benchmark(greedy_cover, big_instance, chvatal_score)
        assert sol.feasible

    def test_greedy_scales_subquadratically(self):
        """Doubling bundles should not quadruple greedy time (vectorized
        scoring keeps the per-step cost linear in n)."""
        import time

        def took(n):
            inst = random_covering(1, n_services=10, n_bundles=n)
            t0 = time.perf_counter()
            for _ in range(5):
                greedy_cover(inst, chvatal_score)
            return time.perf_counter() - t0

        t250, t500 = took(250), took(500)
        assert t500 < 6 * t250 + 0.05


class TestLPBackends:
    def test_bench_scipy_relaxation(self, benchmark, big_instance):
        relax = benchmark(solve_relaxation, big_instance, "scipy")
        assert relax.feasible

    def test_bench_own_simplex_relaxation(self, benchmark):
        inst = random_covering(2, n_services=8, n_bundles=60)
        relax = benchmark(solve_relaxation, inst, "simplex")
        assert relax.feasible

    def test_backends_agree_on_bench_instance(self, big_instance):
        a = solve_relaxation(big_instance, "scipy")
        # Own simplex on the full 500x30 is slow but must agree; use a
        # 60-bundle slice for the cross-check.
        small = random_covering(2, n_services=8, n_bundles=60)
        b_scipy = solve_relaxation(small, "scipy")
        b_own = solve_relaxation(small, "simplex")
        assert b_scipy.lower_bound == pytest.approx(b_own.lower_bound, rel=1e-6)
        assert a.feasible


class TestEvaluationPipeline:
    def test_bench_ll_evaluation_cold(self, benchmark):
        instance = generate_instance(250, 10, seed=0)
        gen = np.random.default_rng(0)

        def evaluate():
            ev = LowerLevelEvaluator(instance)  # cold cache each round
            prices = gen.uniform(0, instance.price_cap, instance.n_own)
            return ev.evaluate_heuristic(prices, chvatal_score)

        out = benchmark(evaluate)
        assert out.feasible

    def test_bench_ll_evaluation_warm(self, benchmark):
        instance = generate_instance(250, 10, seed=0)
        ev = LowerLevelEvaluator(instance)
        prices = np.full(instance.n_own, instance.price_cap / 2)
        ev.evaluate_heuristic(prices, chvatal_score)  # prime the cache

        out = benchmark(ev.evaluate_heuristic, prices, chvatal_score)
        assert out.feasible
        assert ev.cache_stats["hit_rate"] > 0.9
