"""Table III — %-gap to lower-level optimality, CARBON vs COBRA.

The paper's headline numbers (average %-gap 1.12 for CARBON vs 24.92 for
COBRA over nine classes at 50k+50k evaluations, 30 runs).  At bench scale
we assert the *shape*:

* CARBON's mean gap is below COBRA's on average (and per class at
  bench+ scales),
* both are non-negative and finite,
* the gap difference is in CARBON's favour by a clear factor.

The session-scoped ``comparison`` fixture runs the experiment once and is
shared with the Table IV bench.  The pytest-benchmark hook times a single
representative CARBON run (the unit of the experiment's cost).
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import bench_settings
from repro.bcpop.generator import generate_instance
from repro.core.carbon import run_carbon
from repro.experiments.reporting import format_table3


def test_table3_shape(comparison, capsys):
    rows = comparison.table3_rows()
    assert len(rows) >= 3
    carbon_gaps = np.array([r[2] for r in rows])
    cobra_gaps = np.array([r[3] for r in rows])
    assert np.isfinite(carbon_gaps).all() and np.isfinite(cobra_gaps).all()
    assert (carbon_gaps >= -1e-9).all() and (cobra_gaps >= -1e-9).all()
    # Headline claim: CARBON forecasts the rational reaction far better.
    assert carbon_gaps.mean() < cobra_gaps.mean()
    # Clear-factor version of the claim (paper: ~22x; we require >1.3x at
    # laptop budgets).
    assert cobra_gaps.mean() > 1.3 * carbon_gaps.mean()
    with capsys.disabled():
        print()
        print(format_table3(comparison))
        for name, ok in comparison.shape_claims().items():
            print(f"  {name}: {'PASS' if ok else 'FAIL'}")


def test_table3_gap_grows_for_cobra_with_size(comparison):
    """Paper trend: COBRA's gap inflates as instances grow, CARBON's does
    not (Table III: 9.71 -> 35.19 vs 1.13 -> 0.74)."""
    rows = comparison.table3_rows()
    first, last = rows[0], rows[-1]
    # COBRA's relative disadvantage should not shrink with size.
    ratio_first = first[3] / max(first[2], 1e-9)
    ratio_last = last[3] / max(last[2], 1e-9)
    assert ratio_last > 0.5 * ratio_first


def test_table3_statistical_significance(comparison):
    """Run-level Wilcoxon rank-sum on the pooled gaps (we add this test on
    top of the paper's means-only report)."""
    from repro.experiments.stats import rank_test

    carbon = [c.carbon_gap.mean for c in comparison.classes]
    cobra = [c.cobra_gap.mean for c in comparison.classes]
    _, p = rank_test(carbon, cobra)
    # With >= 3 classes the direction should at least be consistent.
    assert np.mean(carbon) < np.mean(cobra)
    assert np.isnan(p) or p < 0.6  # informative at bench scale, tight at paper scale


def test_bench_one_carbon_run(benchmark):
    """Wall-time of a single scaled CARBON run (the experiment's unit)."""
    _, _, carbon_cfg, _ = bench_settings()
    instance = generate_instance(60, 10, seed=0)
    small = carbon_cfg.scaled(0.2)

    def run():
        return run_carbon(instance, small, seed=0)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert np.isfinite(result.best_gap)
