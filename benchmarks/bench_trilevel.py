"""Future-work study: CARBON under deeper nesting (paper §VI).

"Future works will be devoted to multiple-level problems with deeper
nested structure in order to analyze the limitations of CARBON in terms
of co-evolution."  The tri-level cloud market makes the limitation
measurable: every level-1 evaluation consumes
``reseller_population x (reseller_generations + 1)`` level-3 solves, so
for a fixed level-3 budget the provider's effective budget shrinks by
that multiplier.  The bench sweeps the embedded budget and reports the
trade-off between reaction fidelity and level-1 progress.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bcpop.generator import generate_instance
from repro.core.config import CarbonConfig
from repro.trilevel import TriLevelInstance, run_trilevel_carbon

CFG = CarbonConfig.quick(40, 2_500, population_size=8)


@pytest.fixture(scope="module")
def tri():
    return TriLevelInstance.from_bcpop(
        generate_instance(40, 5, seed=2, name="tri-bench")
    )


def test_trilevel_runs_to_completion(tri):
    result = run_trilevel_carbon(
        tri, CFG, seed=0, reseller_population=6, reseller_generations=2
    )
    assert result.algorithm == "CARBON3"
    assert np.isfinite(result.best_gap)
    assert np.isfinite(result.best_upper) and result.best_upper >= 0


def test_nesting_multiplier_sweep(tri, capsys):
    """The headline future-work number: level-3 solves per level-1
    evaluation, as a function of the embedded reseller budget."""
    rows = []
    for pop, gens in ((4, 1), (6, 2), (8, 4)):
        result = run_trilevel_carbon(
            tri, CFG, seed=0, reseller_population=pop, reseller_generations=gens
        )
        rows.append((pop, gens, result.extras["nesting_multiplier"],
                     result.ul_evaluations_used, result.best_gap))
    with capsys.disabled():
        print("\ntri-level nesting cost (fixed level-3 budget):")
        print(f"  {'pop':>4} {'gens':>5} {'mult':>7} {'L1 evals':>9} {'gap%':>7}")
        for pop, gens, mult, l1, gap in rows:
            print(f"  {pop:4d} {gens:5d} {mult:7.1f} {l1:9d} {gap:7.2f}")
    # Bigger embedded budgets -> bigger multipliers -> fewer L1 evaluations.
    mults = [r[2] for r in rows]
    l1s = [r[3] for r in rows]
    assert mults[0] < mults[-1]
    assert l1s[0] >= l1s[-1]


def test_provider_revenue_bounded_by_wholesale_volume(tri):
    """Sanity envelope: revenue cannot exceed cap x own-bundle count."""
    result = run_trilevel_carbon(
        tri, CFG, seed=1, reseller_population=5, reseller_generations=1
    )
    assert result.best_upper <= tri.wholesale_cap * tri.n_own + 1e-6


def test_bench_trilevel_run(benchmark, tri):
    small = CarbonConfig.quick(12, 600, population_size=6)
    result = benchmark.pedantic(
        lambda: run_trilevel_carbon(
            tri, small, seed=0, reseller_population=4, reseller_generations=1
        ),
        rounds=1, iterations=1,
    )
    assert np.isfinite(result.best_gap)
