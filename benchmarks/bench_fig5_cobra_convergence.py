"""Fig. 5 — COBRA's average convergence curves.

The paper: "both convergence curves have a see-saw shape which indicates
that each improvement phase deteriorates the other level".  We assert the
see-saw index of COBRA's fitness curve is high in absolute terms and much
higher than CARBON's on the same class, reproducing the Fig. 4-vs-Fig. 5
contrast quantitatively.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import bench_settings
from repro.experiments.figures import convergence_experiment
from repro.experiments.reporting import format_convergence


def _curves(algorithm: str):
    classes, runs, carbon_cfg, cobra_cfg = bench_settings()
    n, m = classes[-1] if classes else (500, 30)
    return convergence_experiment(
        algorithm,
        n_bundles=n,
        n_services=m,
        runs=min(runs, 3),
        carbon_config=carbon_cfg,
        cobra_config=cobra_cfg,
        n_points=50,
    )


def test_fig5_cobra_seesaw(capsys):
    curves = _curves("COBRA")
    assert curves.fitness_seesaw > 0.3
    with capsys.disabled():
        print()
        print(format_convergence(curves))


def test_fig4_vs_fig5_contrast():
    """The paper's central qualitative contrast, quantified."""
    carbon = _curves("CARBON")
    cobra = _curves("COBRA")
    assert cobra.fitness_seesaw > carbon.fitness_seesaw + 0.2
    assert cobra.gap_seesaw >= carbon.gap_seesaw - 1e-9


def test_fig5_gap_stays_inflated():
    """COBRA's gap curve should end well above CARBON's (Table III seen
    through the convergence lens)."""
    carbon = _curves("CARBON")
    cobra = _curves("COBRA")
    c_end = carbon.gap[np.isfinite(carbon.gap)][-1]
    o_end = cobra.gap[np.isfinite(cobra.gap)][-1]
    assert o_end > c_end


def test_bench_fig5_experiment(benchmark):
    classes, _, carbon_cfg, cobra_cfg = bench_settings()
    n, m = classes[0] if classes else (100, 5)

    def run():
        return convergence_experiment(
            "COBRA", n_bundles=n, n_services=m, runs=1,
            carbon_config=carbon_cfg.scaled(0.3),
            cobra_config=cobra_cfg.scaled(0.3),
            n_points=20,
        )

    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    assert curves.n_runs == 1
