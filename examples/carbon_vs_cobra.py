#!/usr/bin/env python3
"""CARBON vs COBRA head to head — the paper's evaluation in miniature.

Runs both algorithms on the same BCPOP instance over several seeds and
prints:

* a Table III-style %-gap comparison,
* a Table IV-style revenue comparison, with the rational-replay check
  that exposes COBRA's overestimation,
* Fig. 4/5-style convergence curves with see-saw indices.

Use ``--workers N`` to fan the runs over a process pool (the paper used
an HPC cluster for its 30x9x2 runs).

Run:  python examples/carbon_vs_cobra.py [--runs 3] [--workers 1]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core.config import CarbonConfig, CobraConfig
from repro.core.convergence import resample_history, seesaw_index
from repro.experiments.reporting import ascii_curve
from repro.experiments.tables import RunTask, execute_task
from repro.parallel.executor import make_executor


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--runs", type=int, default=3)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--budget", type=int, default=1_500)
    args = parser.parse_args()

    carbon_cfg = CarbonConfig.quick(args.budget, args.budget, population_size=20)
    cobra_cfg = CobraConfig.quick(args.budget, args.budget, population_size=20)
    n, m = 80, 10

    tasks = [
        RunTask(
            algorithm=alg, n_bundles=n, n_services=m,
            instance_seed=0, run_seed=r,
            carbon_config=carbon_cfg, cobra_config=cobra_cfg,
        )
        for alg in ("CARBON", "COBRA")
        for r in range(args.runs)
    ]
    with make_executor(
        "processes" if args.workers > 1 else "serial", workers=args.workers
    ) as ex:
        results = ex.map(execute_task, tasks)
    carbon = [r for r in results if r.algorithm == "CARBON"]
    cobra = [r for r in results if r.algorithm == "COBRA"]

    print(f"instance class n={n}, m={m}; {args.runs} runs each, "
          f"budget {args.budget}+{args.budget} evaluations\n")

    print("Table III (shape): best %-gap to LL optimality")
    print(f"  CARBON: {np.mean([r.best_gap for r in carbon]):6.2f}% "
          f"(runs: {[round(r.best_gap, 1) for r in carbon]})")
    print(f"  COBRA : {np.mean([r.best_gap for r in cobra]):6.2f}% "
          f"(runs: {[round(r.best_gap, 1) for r in cobra]})\n")

    print("Table IV (shape): reported UL revenue")
    print(f"  CARBON: {np.mean([r.best_upper for r in carbon]):8.1f}  (realizable)")
    print(f"  COBRA : {np.mean([r.best_upper for r in cobra]):8.1f}  "
          "(optimistic — see Eq. 2-3)\n")

    for name, runs in (("CARBON (Fig. 4)", carbon), ("COBRA (Fig. 5)", cobra)):
        grid, fit = resample_history([r.history for r in runs], "fitness", 48)
        ss = np.mean([seesaw_index(r.history.series("fitness")[1]) for r in runs])
        print(ascii_curve(grid, fit, label=f"{name} UL fitness, see-saw={ss:.2f}"))
        print()


if __name__ == "__main__":
    main()
