#!/usr/bin/env python3
"""The paper's future work, runnable: a three-tier cloud market.

Provider -> reseller -> customer.  The provider sets wholesale prices;
the reseller marks them up to maximize its margin, knowing the customer
solves a covering problem over retail prices; the provider earns
wholesale revenue on whatever the customer ends up buying.

The walkthrough shows:

1. one nested reaction by hand — what a single provider evaluation costs
   when every level below re-optimizes,
2. the wholesale sweep — the provider's payoff curve through *two* layers
   of rational reaction,
3. tri-level CARBON, with the nesting multiplier the paper's conclusion
   asked about ("analyze the limitations of CARBON in terms of
   co-evolution").

Run:  python examples/trilevel_market.py
"""

from __future__ import annotations

import numpy as np

from repro import CarbonConfig, generate_instance
from repro.covering.heuristics import chvatal_score
from repro.trilevel import TriLevelEvaluator, TriLevelInstance, run_trilevel_carbon


def main() -> None:
    base = generate_instance(n_bundles=60, n_services=5, seed=11)
    tri = TriLevelInstance.from_bcpop(base, wholesale_fraction=0.6)
    print(f"{tri.name}: {tri.n_bundles} bundles ({tri.n_own} provider-owned), "
          f"{tri.n_services} services")
    print(f"wholesale cap {tri.wholesale_cap:.1f}, retail cap {tri.retail_cap:.1f}\n")

    evaluator = TriLevelEvaluator(
        tri, chvatal_score, reseller_population=10, reseller_generations=4
    )
    rng = np.random.default_rng(0)

    print("one nested reaction (wholesale at 40% of cap):")
    w = np.full(tri.n_own, 0.4 * tri.wholesale_cap)
    reaction = evaluator.reseller_react(w, rng)
    print(f"  provider revenue : {reaction.provider_revenue:9.1f}")
    print(f"  reseller margin  : {reaction.reseller_margin:9.1f}")
    print(f"  customer pays    : {reaction.customer_cost:9.1f} "
          f"(gap {reaction.customer_gap:.2f}%)")
    print(f"  cost of this ONE provider evaluation: "
          f"{reaction.level3_solves} customer solves\n")

    print("uniform wholesale sweep (each point = one full nested reaction):")
    print(f"  {'wholesale':>10} {'provider':>10} {'reseller':>10} {'sold(own)':>10}")
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        w = np.full(tri.n_own, frac * tri.wholesale_cap)
        r = evaluator.reseller_react(w, rng)
        sold = int(r.selection[: tri.n_own].sum())
        print(f"  {w[0]:10.1f} {r.provider_revenue:10.1f} "
              f"{r.reseller_margin:10.1f} {sold:10d}")
    print("  -> high wholesale squeezes the reseller's margin until it prices\n"
          "     the provider's bundles out of the customer's basket.\n")

    print("tri-level CARBON (provider optimizing through both reactions):")
    result = run_trilevel_carbon(
        tri,
        CarbonConfig.quick(ul_evaluations=30, ll_evaluations=2_500,
                           population_size=8),
        seed=0,
        reseller_population=8,
        reseller_generations=3,
    )
    print(f"  best provider revenue : {result.best_upper:.1f}")
    print(f"  customer-level gap    : {result.best_gap:.2f}%")
    print(f"  nesting multiplier    : {result.extras['nesting_multiplier']:.1f} "
          "customer solves per provider evaluation")
    print(f"  budget spent          : {result.ul_evaluations_used} provider evals, "
          f"{result.ll_evaluations_used} customer solves")
    print("\nthe paper's future-work question, answered in one number: each")
    print("extra level multiplies the evaluation bill by the embedded")
    print("optimizer's budget — the heuristic population is the only part of")
    print("CARBON that scales to deeper nesting unchanged.")


if __name__ == "__main__":
    main()
