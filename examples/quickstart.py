#!/usr/bin/env python3
"""Quickstart: solve one Bi-level Cloud Pricing instance with CARBON.

Generates a laptop-sized BCPOP instance, runs CARBON at a small budget,
and prints the paper's two headline metrics for the run — the lower-level
%-gap (how well the leader can forecast the customer's rational reaction)
and the leader revenue under that forecast — plus the evolved champion
heuristic as a readable formula.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import CarbonConfig, generate_instance, run_carbon


def main() -> None:
    # A Bi-level Cloud Pricing instance: 100 market bundles, 5 service
    # types; the leader (cloud provider) owns the first 20 bundles.
    instance = generate_instance(n_bundles=100, n_services=5, seed=42)
    print(f"instance: {instance.name}")
    print(f"  bundles on the market : {instance.n_bundles}")
    print(f"  leader-owned bundles  : {instance.n_own}")
    print(f"  service constraints   : {instance.n_services}")
    print(f"  leader price cap      : {instance.price_cap:.2f}")

    # Laptop-scale budget; CarbonConfig.paper() gives the Table II setting.
    config = CarbonConfig.quick(ul_evaluations=1_500, ll_evaluations=1_500,
                                population_size=20)
    result = run_carbon(instance, config, seed=0)

    print("\nCARBON result")
    print(f"  best %-gap (paper Table III metric): {result.best_gap:.2f}%")
    print(f"  best revenue (paper Table IV metric): {result.best_upper:.2f}")
    print(f"  budget used: {result.ul_evaluations_used} UL + "
          f"{result.ll_evaluations_used} LL evaluations "
          f"in {result.wall_time:.1f}s")
    print(f"  LP relaxations cached: {result.extras['lp_cache']}")

    print("\nevolved champion scoring heuristic (lower = buy first):")
    print(f"  {result.extras['champion']}")

    sol = result.best_solution
    bought_own = sol.selection[: instance.n_own].sum()
    print("\nbest pricing found:")
    print(f"  customer buys {int(sol.selection.sum())} bundles, "
          f"{int(bought_own)} of them from the leader")
    print(f"  customer pays {sol.lower_objective:.2f} "
          f"(LP lower bound {sol.lower_bound:.2f}, gap {sol.gap:.2f}%)")


if __name__ == "__main__":
    main()
