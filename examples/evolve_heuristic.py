#!/usr/bin/env python3
"""GP hyper-heuristics in isolation: evolve a covering heuristic.

CARBON's second population is a GP hyper-heuristic engine (paper §IV,
Burke et al.'s "generate heuristics from scratch").  This example uses
that engine *outside* the bi-level loop: evolve a scoring function that
solves a fixed family of covering instances well, and compare it against

* the classical hand-written rules (Chvátal, cost-only, dual, LP-guided),
* the exact optimum (branch & bound) on instances small enough to certify.

Run:  python examples/evolve_heuristic.py
"""

from __future__ import annotations

import numpy as np

from repro.covering.exact import solve_exact
from repro.covering.greedy import greedy_cover
from repro.covering.heuristics import NAMED_HEURISTICS
from repro.gp.generate import ramped_half_and_half
from repro.gp.operators import one_point_crossover, uniform_mutation
from repro.gp.primitives import paper_primitive_set
from repro.gp.selection import tournament
from repro.bcpop.generator import GeneratorSpec, generate_covering_instance
from repro.gp.simplify import simplify_tree
from repro.lp.relaxation import solve_relaxation


def make_training_set(n_instances: int = 6):
    """Small covering instances with pre-solved relaxations."""
    spec = GeneratorSpec(n_bundles=40, n_services=5)
    instances = [
        generate_covering_instance(spec, np.random.default_rng(seed),
                                   name=f"train-{seed}")
        for seed in range(n_instances)
    ]
    relaxations = [solve_relaxation(inst) for inst in instances]
    return instances, relaxations


def mean_gap(score_fn, instances, relaxations) -> float:
    gaps = []
    for inst, relax in zip(instances, relaxations):
        sol = greedy_cover(inst, score_fn, duals=relax.duals, xbar=relax.xbar)
        gaps.append(relax.percent_gap(sol.cost) if sol.feasible else np.inf)
    return float(np.mean(gaps))


def evolve(instances, relaxations, generations: int = 25, pop_size: int = 40,
           seed: int = 0):
    rng = np.random.default_rng(seed)
    pset = paper_primitive_set()
    pop = ramped_half_and_half(pset, pop_size, rng, 1, 4)
    fits = [mean_gap(t, instances, relaxations) for t in pop]
    best_idx = int(np.argmin(fits))
    best, best_fit = pop[best_idx], fits[best_idx]
    for gen in range(generations):
        offspring = []
        while len(offspring) < pop_size:
            r = rng.random()
            if r < 0.85:
                a, b = tournament(pop, fits, 2, rng, k=3)
                c1, c2 = one_point_crossover(a, b, rng)
                offspring.extend([c1, c2])
            elif r < 0.95:
                (a,) = tournament(pop, fits, 1, rng, k=3)
                offspring.append(uniform_mutation(a, pset, rng))
            else:
                (a,) = tournament(pop, fits, 1, rng, k=3)
                offspring.append(a.copy())
        pop = offspring[: pop_size - 1] + [best]
        fits = [mean_gap(t, instances, relaxations) for t in pop]
        gen_best = int(np.argmin(fits))
        if fits[gen_best] < best_fit:
            best, best_fit = pop[gen_best], fits[gen_best]
        if gen % 5 == 0:
            print(f"  gen {gen:3d}: best mean gap {best_fit:6.2f}%")
    return best, best_fit


def main() -> None:
    instances, relaxations = make_training_set()
    print(f"training set: {len(instances)} covering instances (40 bundles, "
          "5 services)\n")

    print("hand-written baselines (mean %-gap to the LP bound):")
    for name, fn in NAMED_HEURISTICS.items():
        print(f"  {name:>10}: {mean_gap(fn, instances, relaxations):6.2f}%")

    print("\nevolving a scoring function (GP, Table I language):")
    champion, champ_gap = evolve(instances, relaxations)
    print(f"\nchampion mean gap: {champ_gap:.2f}%")
    print(f"champion (raw)       : {champion.to_infix()}")
    print(f"champion (simplified): {simplify_tree(champion).to_infix()}")

    # Certify against the exact optimum on one instance.
    inst, relax = instances[0], relaxations[0]
    exact = solve_exact(inst, method="branch_and_bound")
    sol = greedy_cover(inst, champion, duals=relax.duals, xbar=relax.xbar)
    print("\ncertification on instance 0:")
    print(f"  LP lower bound : {relax.lower_bound:9.2f}")
    print(f"  exact optimum  : {exact.cost:9.2f}")
    print(f"  champion value : {sol.cost:9.2f} "
          f"({100 * (sol.cost - exact.cost) / exact.cost:.2f}% above optimal)")


if __name__ == "__main__":
    main()
