#!/usr/bin/env python3
"""The paper's linear worked example (Program 3 / Fig. 1), end to end.

Shows, with exact closed-form lower-level solves:

* the rational reaction curve y(x),
* why the inducible region is discontinuous (UL constraints that the
  follower ignores),
* the (x=6, y=12) trap from the paper's §II and §V-B,
* the optimistic bi-level optimum.

Run:  python examples/linear_bilevel.py
"""

from __future__ import annotations

from repro.bilevel.linear import mersha_dempe_example
from repro.experiments.figures import fig1_series
from repro.experiments.reporting import ascii_curve


def main() -> None:
    ex = mersha_dempe_example()
    print("Program 3 (Mersha & Dempe 2006):")
    print("  min F(x,y) = -x - 2y")
    print("  s.t. 2x - 3y >= -12 ;  x + y <= 14        (upper level)")
    print("       min f(y) = -y")
    print("       s.t. -3x + y <= -3 ;  3x + y <= 30 ; y >= 0   (lower level)\n")

    print("rational reactions (closed form):")
    for x in (2.0, 4.0, 6.0, 8.0):
        r = ex.rational_reaction(x)
        y = r.reactions[0]
        flag = "UL-FEASIBLE" if ex.upper_feasible(x, y) else "UL-INFEASIBLE"
        print(f"  x={x:4.1f} -> P(x)={{{y:5.2f}}}  F={ex.upper_objective(x, y):7.2f}  [{flag}]")

    print("\nthe paper's trap at x=6:")
    print("  the leader may hope the follower picks y=8 "
          f"(UL-feasible: {ex.upper_feasible(6.0, 8.0)}),")
    r6 = ex.rational_reaction(6.0)
    print(f"  but the rational reaction is y={r6.reactions[0]:.0f}, and "
          f"(6, {r6.reactions[0]:.0f}) violates 2x - 3y >= -12 "
          f"-> the leader ends with no feasible solution at all.\n")

    series = fig1_series(n_grid=241)
    print(ascii_curve(series.x, series.y_rational,
                      label="Fig. 1: rational reaction y(x), x in [1, 10]"))
    lo, hi = series.infeasible_xs.min(), series.infeasible_xs.max()
    print(f"\ninducible region discontinuity: rational pairs are "
          f"UL-infeasible for x in [{lo:.2f}, {hi:.2f}]")

    best = ex.solve_optimistic(n_grid=4001)
    print(f"\noptimistic bi-level optimum: x={best.x:.3f}, y={best.y:.3f}, "
          f"F={best.upper_objective:.3f}")
    assert best.bilevel_feasible


if __name__ == "__main__":
    main()
