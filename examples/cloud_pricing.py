#!/usr/bin/env python3
"""The Bi-level Cloud Pricing problem, explored by hand.

This walkthrough shows *why* pricing is a bi-level problem before any
evolution happens:

1. build a BCPOP instance (leader bundles + competitor market),
2. sweep a uniform leader price and watch the customer's rational-ish
   reaction (greedy + LP features) switch between "buy from the leader"
   and "buy from the market" — the revenue curve is non-monotone because
   the follower re-optimizes against every pricing,
3. show the overestimation trap: evaluating a pricing against a *stale*
   basket (COBRA-style) predicts far more revenue than the follower will
   actually concede,
4. hand the problem to CARBON and compare.

Run:  python examples/cloud_pricing.py
"""

from __future__ import annotations

import numpy as np

from repro import CarbonConfig, generate_instance, run_carbon
from repro.bcpop.evaluate import LowerLevelEvaluator
from repro.covering.heuristics import chvatal_score


def price_sweep(instance, evaluator) -> None:
    print("uniform-price sweep (every leader bundle at the same price):")
    print(f"  {'price':>8} {'revenue':>10} {'bought(own)':>12} {'LL gap%':>8}")
    for frac in (0.0, 0.2, 0.4, 0.6, 0.8, 1.0):
        price = frac * instance.price_cap
        prices = np.full(instance.n_own, price)
        out = evaluator.evaluate_heuristic(prices, chvatal_score)
        bought = int(out.selection[: instance.n_own].sum())
        print(f"  {price:8.1f} {out.revenue:10.1f} {bought:12d} {out.gap:8.2f}")
    print("  -> revenue rises with price only while the follower keeps "
          "buying; past the competitive point it collapses.\n")


def stale_basket_trap(instance, evaluator) -> None:
    """COBRA's shortcut: F(x, y_stale) with a basket frozen from cheaper
    times wildly overestimates the payoff."""
    cheap = np.full(instance.n_own, 0.1 * instance.price_cap)
    basket_when_cheap = evaluator.evaluate_heuristic(cheap, chvatal_score).selection

    greedy_prices = np.full(instance.n_own, 0.95 * instance.price_cap)
    claimed = instance.revenue(greedy_prices, basket_when_cheap)
    actual = evaluator.evaluate_heuristic(greedy_prices, chvatal_score).revenue
    print("the stale-basket trap (paper Eq. 2-3 in miniature):")
    print(f"  pricing at 95% of cap, evaluated against the basket the "
          f"customer chose when prices were at 10%:")
    print(f"    claimed revenue (stale pairing) : {claimed:10.1f}")
    print(f"    actual revenue (fresh reaction) : {actual:10.1f}")
    print("  -> a co-evolutionary algorithm that pairs decision vectors "
          "across levels optimizes the *claimed* number.\n")


def main() -> None:
    instance = generate_instance(n_bundles=120, n_services=10, seed=7,
                                 name="cloud-pricing-demo")
    evaluator = LowerLevelEvaluator(instance)
    print(f"{instance.name}: {instance.n_bundles} bundles "
          f"({instance.n_own} leader-owned), {instance.n_services} services, "
          f"price cap {instance.price_cap:.1f}\n")

    price_sweep(instance, evaluator)
    stale_basket_trap(instance, evaluator)

    print("CARBON optimizing the pricing (competitive co-evolution):")
    result = run_carbon(
        instance,
        CarbonConfig.quick(ul_evaluations=1_500, ll_evaluations=1_500,
                           population_size=20),
        seed=0,
    )
    print(f"  best realizable revenue : {result.best_upper:.1f}")
    print(f"  forecast quality (gap)  : {result.best_gap:.2f}%")
    print(f"  champion heuristic      : {result.extras['champion']}")


if __name__ == "__main__":
    main()
