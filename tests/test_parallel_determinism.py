"""Serial/parallel bit-identity of the evaluation pipeline.

The determinism contract (DESIGN.md): all randomness lives in the parent
process, lower-level evaluations are pure functions of (instance, prices,
heuristic), and the pipeline folds worker results back in request order —
so a run with :class:`ProcessExecutor` must reproduce a
:class:`SerialExecutor` run *bit for bit*, not approximately.  These tests
compare full :class:`RunResult` objects between the two substrates for
both CARBON and COBRA (and the nested baseline, which shares the
pipeline) on a small BCPOP instance.
"""

from __future__ import annotations

import numpy as np
import pytest

from dataclasses import replace

from repro.bcpop.generator import generate_instance
from repro.core.carbon import Carbon, run_carbon
from repro.core.cobra import run_cobra
from repro.core.config import CarbonConfig, CobraConfig, ExecutionConfig, UpperLevelConfig
from repro.core.engine import EngineLoop
from repro.core.nested import run_nested
from repro.parallel.executor import ProcessExecutor, SerialExecutor
from repro.parallel.rng import AuditedGenerator, RngAudit


@pytest.fixture(scope="module")
def instance():
    return generate_instance(24, 3, seed=5, name="det-24x3")


def _history_points(result):
    return [
        (p.ul_evaluations, p.ll_evaluations, p.best_fitness, p.best_gap, p.mean_gap)
        for p in result.history.points
    ]


def assert_bit_identical(a, b):
    """Full RunResult equality: scalars with ``==`` (bit-identity, not
    approx), trajectories point by point, NaN-aware."""
    assert a.best_upper == b.best_upper
    assert a.best_gap == b.best_gap
    assert a.ul_evaluations_used == b.ul_evaluations_used
    assert a.ll_evaluations_used == b.ll_evaluations_used
    assert np.array_equal(a.best_solution.prices, b.best_solution.prices)
    assert np.array_equal(a.best_solution.selection, b.best_solution.selection)
    assert a.best_solution.upper_objective == b.best_solution.upper_objective
    assert a.best_solution.lower_objective == b.best_solution.lower_objective
    pa, pb = _history_points(a), _history_points(b)
    assert len(pa) == len(pb)
    for ra, rb in zip(pa, pb):
        for va, vb in zip(ra, rb):
            if isinstance(va, float) and np.isnan(va):
                assert np.isnan(vb)
            else:
                assert va == vb


class TestCarbonDeterminism:
    def test_serial_vs_process_bit_identical(self, instance):
        cfg = CarbonConfig.quick(
            ul_evaluations=120, ll_evaluations=120, population_size=10
        )
        serial = run_carbon(instance, cfg, seed=0, executor=SerialExecutor())
        with ProcessExecutor(workers=2) as ex:
            process = run_carbon(instance, cfg, seed=0, executor=ex)
        assert_bit_identical(serial, process)
        # The GP champion itself must match, not just its score.
        assert serial.extras["champion"] == process.extras["champion"]
        assert (
            serial.extras["champion_tree"].serialize()
            == process.extras["champion_tree"].serialize()
        )

    def test_process_run_actually_used_workers(self, instance):
        cfg = CarbonConfig.quick(
            ul_evaluations=60, ll_evaluations=60, population_size=8
        )
        with ProcessExecutor(workers=2) as ex:
            result = run_carbon(instance, cfg, seed=1, executor=ex)
        stats = result.extras["pipeline"]
        assert stats["worker_evaluations"] > 0
        assert stats["worker_batches"] > 0

    def test_memo_consistent_across_substrates(self, instance):
        """The memo observes identical traffic on both substrates — its
        hit/miss counters are part of the deterministic state."""
        cfg = CarbonConfig.quick(
            ul_evaluations=120, ll_evaluations=120, population_size=10
        )
        serial = run_carbon(instance, cfg, seed=0, executor=SerialExecutor())
        with ProcessExecutor(workers=2) as ex:
            process = run_carbon(instance, cfg, seed=0, executor=ex)
        assert serial.extras["pipeline"]["memo"] == process.extras["pipeline"]["memo"]
        assert (
            serial.extras["pipeline"]["deduplicated"]
            == process.extras["pipeline"]["deduplicated"]
        )


class TestCobraDeterminism:
    def test_serial_vs_process_bit_identical(self, instance):
        cfg = CobraConfig.quick(
            ul_evaluations=150, ll_evaluations=150, population_size=10
        )
        serial = run_cobra(instance, cfg, seed=0, executor=SerialExecutor())
        with ProcessExecutor(workers=2) as ex:
            process = run_cobra(instance, cfg, seed=0, executor=ex)
        assert_bit_identical(serial, process)
        # Relaxation prefetch seeds the same cache values the serial run
        # computes lazily; the cache contents must therefore agree.
        assert (
            serial.extras["lp_cache"]["entries"]
            == process.extras["lp_cache"]["entries"]
        )


class TestNestedDeterminism:
    def test_serial_vs_process_bit_identical(self, instance):
        cfg = UpperLevelConfig(
            population_size=10, archive_size=10, fitness_evaluations=80
        )
        serial = run_nested(instance, cfg, seed=0, executor=SerialExecutor())
        with ProcessExecutor(workers=2) as ex:
            process = run_nested(instance, cfg, seed=0, executor=ex)
        assert_bit_identical(serial, process)


class TestRngAudit:
    """The RNG-audit sanitizer (``ExecutionConfig(rng_audit=True)``).

    Static analysis (repro-lint R001) proves no draw bypasses the seeded
    streams; these tests prove the seeded streams are *consumed
    identically* across execution substrates — a draw sneaking into a
    worker, or a draw-order change from batching, shifts the trace even
    if the final populations happen to coincide.
    """

    def test_wrapped_generator_stream_is_bit_identical(self):
        plain = np.random.default_rng(123)
        audit = RngAudit()
        audited = audit.wrap(np.random.default_rng(123), "test")
        assert isinstance(audited, np.random.Generator)
        assert np.array_equal(plain.integers(0, 100, size=50),
                              audited.integers(0, 100, size=50))
        assert plain.random() == audited.random()
        assert np.array_equal(plain.normal(size=7), audited.normal(size=7))

    def test_trace_records_component_generation_method_count(self):
        audit = RngAudit()
        gen = [0]
        rng = audit.wrap(np.random.default_rng(0), "carbon", generation=lambda: gen[0])
        rng.random()
        gen[0] = 3
        rng.integers(0, 10, size=5)
        assert audit.trace == (("carbon", 0, "random", 1),
                               ("carbon", 3, "integers", 5))
        assert audit.total_draws == 6
        summary = audit.summary()
        assert summary["per_component"] == {"carbon": 6}
        assert summary["per_generation"] == {"0": 1, "3": 5}
        assert summary["per_method"] == {"integers": 5, "random": 1}

    def test_spawned_children_stay_uncounted_but_usable(self):
        # spawn() goes through numpy's own machinery; children draw fine
        # and (not being wrapped) don't pollute the parent's trace.
        audit = RngAudit()
        rng = audit.wrap(np.random.default_rng(0), "parent")
        (child,) = rng.spawn(1)
        child.random(10)
        assert audit.trace == ()
        assert isinstance(child, AuditedGenerator)

    def test_carbon_results_unchanged_by_audit(self, instance):
        cfg = CarbonConfig.quick(
            ul_evaluations=120, ll_evaluations=120, population_size=10
        )
        audited_cfg = replace(cfg, execution=ExecutionConfig(rng_audit=True))
        bare = run_carbon(instance, cfg, seed=0, executor=SerialExecutor())
        audited = run_carbon(instance, audited_cfg, seed=0, executor=SerialExecutor())
        assert_bit_identical(bare, audited)
        report = audited.extras["rng_audit"]
        assert report["draws"] > 0
        assert set(report["per_component"]) == {"carbon"}
        assert "rng_audit" not in bare.extras

    def test_serial_and_parallel_draw_traces_identical(self, instance):
        cfg = replace(
            CarbonConfig.quick(
                ul_evaluations=120, ll_evaluations=120, population_size=10
            ),
            execution=ExecutionConfig(rng_audit=True),
        )

        def run(executor):
            algo = Carbon(instance, config=cfg,
                          rng=np.random.default_rng(0), executor=executor)
            result = EngineLoop(algo).run(seed_label=0)
            return result, algo.rng_audit

        serial_result, serial_audit = run(SerialExecutor())
        with ProcessExecutor(workers=2) as ex:
            process_result, process_audit = run(ex)
        # The full event-by-event draw trace — not just totals — agrees.
        assert serial_audit.trace == process_audit.trace
        assert serial_result.extras["rng_audit"] == process_result.extras["rng_audit"]
        assert_bit_identical(serial_result, process_result)
