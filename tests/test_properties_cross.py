"""Cross-cutting property tests on system-level invariants.

These hold across modules and catch integration drift that unit tests
miss: the bound sandwich, gap consistency through the evaluation
pipeline, archive/selection interaction, and convergence bookkeeping.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bcpop.generator import generate_instance
from repro.bcpop.evaluate import LowerLevelEvaluator
from repro.core.archive import Archive
from repro.core.convergence import ConvergenceHistory, resample_history, seesaw_index
from repro.covering.greedy import greedy_cover
from repro.covering.heuristics import NAMED_HEURISTICS
from repro.gp.generate import grow_tree
from repro.gp.primitives import paper_primitive_set
from tests.conftest import random_covering


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_bound_sandwich_full_stack(seed):
    """LB(Lagrangian) <= LB(LP) <= exact <= every heuristic value."""
    from repro.covering.exact import solve_exact
    from repro.lp.lagrangian import lagrangian_bound
    from repro.lp.relaxation import solve_relaxation

    inst = random_covering(seed, 3, 14)
    if not inst.is_coverable():
        return
    lp = solve_relaxation(inst)
    lag = lagrangian_bound(inst, max_iterations=200)
    exact = solve_exact(inst, method="enumeration")
    heuristics = [
        greedy_cover(inst, fn).cost for fn in NAMED_HEURISTICS.values()
    ]
    assert lag.lower_bound <= lp.lower_bound + 1e-6
    assert lp.lower_bound <= exact.cost + 1e-6
    for value in heuristics:
        assert exact.cost <= value + 1e-6


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 10_000), price_frac=st.floats(0.0, 1.0))
def test_property_pipeline_gap_consistency(seed, price_frac):
    """For any price point and any GP tree, the evaluator's outcome is
    internally consistent: cost, revenue, gap and bound all agree."""
    instance = generate_instance(16, 2, seed=seed % 7)
    ev = LowerLevelEvaluator(instance)
    gen = np.random.default_rng(seed)
    tree = grow_tree(paper_primitive_set(), 3, gen)
    prices = np.full(instance.n_own, price_frac * instance.price_cap)
    out = ev.evaluate_heuristic(prices, tree)
    assert out.feasible
    ll = instance.lower_level(prices)
    assert out.ll_cost == pytest.approx(ll.cost_of(out.selection))
    assert out.revenue == pytest.approx(instance.revenue(prices, out.selection))
    assert out.revenue <= out.ll_cost + 1e-6  # leader's share of the bill
    assert out.lower_bound <= out.ll_cost + 1e-6
    expected_gap = 100.0 * (out.ll_cost - out.lower_bound) / max(out.lower_bound, 1e-9)
    assert out.gap == pytest.approx(expected_gap)


@settings(max_examples=30, deadline=None)
@given(
    scores=st.lists(
        st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=40
    ),
    maxsize=st.integers(1, 10),
    minimize=st.booleans(),
)
def test_property_archive_keeps_the_best(scores, maxsize, minimize):
    """After any insertion sequence, the archive holds exactly the
    ``maxsize`` best distinct scores."""
    archive = Archive(maxsize, minimize=minimize)
    for i, s in enumerate(scores):
        archive.add(f"item-{i}", s)
    kept = [e.score for e in archive.entries()]
    expected = sorted(scores, reverse=not minimize)[: maxsize]
    assert sorted(kept) == sorted(expected)
    # entries() is best-first.
    assert kept == sorted(kept, reverse=not minimize)


@settings(max_examples=30, deadline=None)
@given(
    values=st.lists(st.floats(-100, 100, allow_nan=False), min_size=2, max_size=60),
)
def test_property_seesaw_bounds_and_monotone_zero(values):
    ss = seesaw_index(values)
    assert 0.0 <= ss <= 1.0
    assert seesaw_index(sorted(values)) == pytest.approx(0.0, abs=1e-9)


@settings(max_examples=20, deadline=None)
@given(
    n_runs=st.integers(1, 4),
    lengths=st.integers(3, 20),
    n_points=st.integers(2, 30),
)
def test_property_resampling_preserves_range(n_runs, lengths, n_points):
    """Resampled curves never leave the [min, max] envelope of the
    original per-run values."""
    gen = np.random.default_rng(n_runs * 1000 + lengths)
    histories = []
    all_vals = []
    for _ in range(n_runs):
        h = ConvergenceHistory()
        for i in range(lengths):
            v = float(gen.normal())
            all_vals.append(v)
            h.record(10 * (i + 1), 10 * (i + 1), v, 1.0, 1.0)
        histories.append(h)
    grid, mean = resample_history(histories, "fitness", n_points=n_points)
    assert grid.shape == mean.shape == (n_points,)
    assert mean.min() >= min(all_vals) - 1e-9
    assert mean.max() <= max(all_vals) + 1e-9


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 1000))
def test_property_repair_idempotent(seed):
    """Repairing a repaired vector changes nothing."""
    from repro.covering.repair import repair_cover

    inst = random_covering(seed)
    if not inst.is_coverable():
        return
    gen = np.random.default_rng(seed)
    start = gen.random(inst.n_bundles) < 0.4
    once = repair_cover(inst, start)
    twice = repair_cover(inst, once)
    assert (once == twice).all()
