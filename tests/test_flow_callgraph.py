"""Project model + call-graph builder on adversarial shapes.

Covers the resolution paths ISSUE 10 calls out explicitly: cyclic
imports, decorated/wrapped functions, ``functools.partial``, method
dispatch through ``EngineAlgorithm``-style subclass hierarchies — and
pins that the analysis is deterministic (same findings, same order)
across repeated runs.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis.flow.callgraph import build_call_graph
from repro.analysis.flow.project import Project


def make_package(tmp_path: Path, files: dict[str, str], name: str = "pkg") -> Path:
    root = tmp_path / name
    root.mkdir()
    (root / "__init__.py").write_text(files.pop("__init__.py", ""), encoding="utf-8")
    for rel, source in files.items():
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")
    return root


class TestProjectModel:
    def test_module_name_resolution_through_imports(self, tmp_path):
        root = make_package(tmp_path, {
            "alpha.py": """
                def helper():
                    return 1
            """,
            "beta.py": """
                from pkg import alpha
                from pkg.alpha import helper as h

                def caller():
                    return alpha.helper() + h()
            """,
        })
        project = Project.load(root, "pkg")
        beta = project.modules["pkg.beta"]
        assert project.resolve(beta, "alpha.helper") == "pkg.alpha.helper"
        assert project.resolve(beta, "h") == "pkg.alpha.helper"

    def test_reexport_through_init_is_chased(self, tmp_path):
        root = make_package(tmp_path, {
            "__init__.py": "from pkg.impl import thing\n",
            "impl.py": """
                def thing():
                    return 42
            """,
            "user.py": """
                import pkg

                def use():
                    return pkg.thing()
            """,
        })
        project = Project.load(root, "pkg")
        user = project.modules["pkg.user"]
        assert project.resolve(user, "pkg.thing") == "pkg.impl.thing"

    def test_cyclic_imports_terminate_and_resolve(self, tmp_path):
        root = make_package(tmp_path, {
            "a.py": """
                from pkg import b

                def fa():
                    return b.fb()
            """,
            "b.py": """
                from pkg import a

                def fb():
                    return a.fa()
            """,
        })
        project = Project.load(root, "pkg")
        graph = build_call_graph(project)
        assert graph.callees("pkg.a.fa") == ("pkg.b.fb",)
        assert graph.callees("pkg.b.fb") == ("pkg.a.fa",)

    def test_parse_error_is_reported_not_fatal(self, tmp_path):
        root = make_package(tmp_path, {
            "ok.py": "def fine():\n    return 1\n",
            "broken.py": "def broken(:\n",
        })
        project = Project.load(root, "pkg")
        assert "pkg.ok" in project.modules
        assert len(project.parse_errors) == 1
        assert "broken.py" in project.parse_errors[0][0]


ENGINE_HIERARCHY = {
    "engine.py": """
        class EngineAlgorithm:
            def ask(self):
                raise NotImplementedError

            def step(self):
                return self.ask()
    """,
    "algos.py": """
        from pkg.engine import EngineAlgorithm

        class Carbon(EngineAlgorithm):
            def ask(self):
                return "carbon"

        class Cobra(EngineAlgorithm):
            def ask(self):
                return "cobra"

        class Cobra3(Cobra):
            def ask(self):
                return "cobra3"
    """,
    "loop.py": """
        from pkg.engine import EngineAlgorithm

        def run(algorithm: EngineAlgorithm):
            return algorithm.step()
    """,
}


class TestDispatch:
    def test_subclass_fanout_through_declared_base_type(self, tmp_path):
        project = Project.load(make_package(tmp_path, dict(ENGINE_HIERARCHY)), "pkg")
        graph = build_call_graph(project)
        # run() dispatches step() on the declared base class only.
        assert graph.callees("pkg.loop.run") == ("pkg.engine.EngineAlgorithm.step",)
        # step() calls self.ask(): the base raise + every subclass override.
        assert graph.callees("pkg.engine.EngineAlgorithm.step") == (
            "pkg.algos.Carbon.ask",
            "pkg.algos.Cobra.ask",
            "pkg.algos.Cobra3.ask",
            "pkg.engine.EngineAlgorithm.ask",
        )

    def test_mro_walks_to_inherited_method(self, tmp_path):
        project = Project.load(make_package(tmp_path, dict(ENGINE_HIERARCHY)), "pkg")
        resolved = project.resolve_method("pkg.algos.Cobra3", "step")
        assert resolved is not None
        assert resolved.qualname == "pkg.engine.EngineAlgorithm.step"

    def test_constructor_call_lands_on_init(self, tmp_path):
        root = make_package(tmp_path, {
            "cls.py": """
                class Widget:
                    def __init__(self, n):
                        self.n = n
            """,
            "make.py": """
                from pkg.cls import Widget

                def build():
                    return Widget(3)
            """,
        })
        project = Project.load(root, "pkg")
        graph = build_call_graph(project)
        assert graph.callees("pkg.make.build") == ("pkg.cls.Widget.__init__",)

    def test_local_constructor_assignment_gives_type_evidence(self, tmp_path):
        root = make_package(tmp_path, {
            "svc.py": """
                class Service:
                    def ping(self):
                        return True
            """,
            "use.py": """
                from pkg.svc import Service

                def call():
                    s = Service()
                    return s.ping()
            """,
        })
        project = Project.load(root, "pkg")
        graph = build_call_graph(project)
        assert "pkg.svc.Service.ping" in graph.callees("pkg.use.call")


class TestAdversarialShapes:
    def test_decorated_function_stays_a_target(self, tmp_path):
        root = make_package(tmp_path, {
            "deco.py": """
                import functools

                def wraps_it(fn):
                    @functools.wraps(fn)
                    def wrapper(*a, **k):
                        return fn(*a, **k)
                    return wrapper

                @wraps_it
                def decorated():
                    return 7

                def caller():
                    return decorated()
            """,
        })
        project = Project.load(root, "pkg")
        graph = build_call_graph(project)
        assert "pkg.deco.decorated" in graph.callees("pkg.deco.caller")

    def test_functools_partial_edges_to_wrapped_function(self, tmp_path):
        root = make_package(tmp_path, {
            "part.py": """
                import functools

                def worker(x, y):
                    return x + y

                def bind():
                    return functools.partial(worker, 1)
            """,
        })
        project = Project.load(root, "pkg")
        graph = build_call_graph(project)
        assert "pkg.part.worker" in graph.callees("pkg.part.bind")

    def test_nested_function_calls_resolve_in_enclosing_scope(self, tmp_path):
        root = make_package(tmp_path, {
            "nest.py": """
                def outer():
                    def inner():
                        return 1
                    return inner()
            """,
        })
        project = Project.load(root, "pkg")
        graph = build_call_graph(project)
        assert graph.callees("pkg.nest.outer") == ("pkg.nest.outer.inner",)
        assert project.functions["pkg.nest.outer.inner"].is_nested

    def test_generator_detection_ignores_nested_defs(self, tmp_path):
        root = make_package(tmp_path, {
            "gen.py": """
                def plain():
                    def nested_gen():
                        yield 1
                    return list(nested_gen())

                def actual_gen():
                    yield 2
            """,
        })
        project = Project.load(root, "pkg")
        assert not project.functions["pkg.gen.plain"].is_generator
        assert project.functions["pkg.gen.plain.nested_gen"].is_generator
        assert project.functions["pkg.gen.actual_gen"].is_generator


class TestDeterminism:
    def test_two_loads_yield_identical_graphs(self, tmp_path):
        root = make_package(tmp_path, dict(ENGINE_HIERARCHY))
        graphs = [build_call_graph(Project.load(root, "pkg")) for _ in range(2)]
        assert graphs[0].edges == graphs[1].edges
        assert [
            (s.caller, s.raw, s.targets, s.line, s.col) for s in graphs[0].sites
        ] == [(s.caller, s.raw, s.targets, s.line, s.col) for s in graphs[1].sites]

    def test_edges_and_sites_are_sorted(self, tmp_path):
        root = make_package(tmp_path, dict(ENGINE_HIERARCHY))
        graph = build_call_graph(Project.load(root, "pkg"))
        assert list(graph.edges) == sorted(graph.edges)
        keys = [(s.caller, s.line, s.col, s.raw) for s in graph.sites]
        assert keys == sorted(keys)
        for callees in graph.edges.values():
            assert list(callees) == sorted(callees)


class TestCallGraphOnRealTree:
    @pytest.fixture(scope="class")
    def graph(self):
        return build_call_graph(Project.load(Path("src/repro"), "repro"))

    def test_loads_the_full_package(self, graph):
        assert not graph.project.parse_errors
        assert len(graph.project.modules) > 50

    def test_router_dispatch_reaches_broadcast(self, graph):
        callees = graph.callees("repro.serve.router.SolveRouter._process")
        assert "repro.serve.router.SolveRouter._broadcast" in callees
