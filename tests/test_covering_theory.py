"""Theory-backed tests on the covering substrate.

On *binary* set-covering instances Chvátal's greedy is an
``H(d)``-approximation (``d`` = largest set size, ``H`` the harmonic
number) relative to the LP bound.  Our instances are generally
non-binary, but the binary special case gives a sharp, provable envelope
that doubles as a regression guard on the greedy implementation.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.covering.greedy import greedy_cover
from repro.covering.heuristics import chvatal_score
from repro.covering.instance import CoveringInstance
from repro.lp.relaxation import solve_relaxation


def _harmonic(d: int) -> float:
    return float(sum(1.0 / k for k in range(1, d + 1)))


def _random_binary_cover(seed: int, n_elements: int, n_sets: int) -> CoveringInstance:
    gen = np.random.default_rng(seed)
    q = (gen.random((n_elements, n_sets)) < 0.35).astype(np.float64)
    # Guarantee coverability: every element is in at least one set.
    for k in range(n_elements):
        if q[k].sum() == 0:
            q[k, gen.integers(n_sets)] = 1.0
    costs = gen.uniform(1.0, 10.0, n_sets)
    return CoveringInstance(costs=costs, q=q, demand=np.ones(n_elements))


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_chvatal_harmonic_bound(seed):
    """greedy <= H(d) * LP bound on binary unit-demand instances."""
    inst = _random_binary_cover(seed, n_elements=8, n_sets=14)
    relax = solve_relaxation(inst)
    sol = greedy_cover(inst, chvatal_score)
    assert sol.feasible
    d = int(inst.q.sum(axis=0).max())
    assert sol.cost <= _harmonic(max(d, 1)) * relax.lower_bound + 1e-6


class TestBinarySpecialCases:
    def test_unit_cost_single_covering_set(self):
        """One set covering everything at cost 1 must be found exactly."""
        q = np.zeros((4, 5))
        q[:, 0] = 1.0  # set 0 covers all
        q[0, 1] = q[1, 2] = q[2, 3] = q[3, 4] = 1.0  # singletons
        inst = CoveringInstance(
            costs=[1.0, 0.9, 0.9, 0.9, 0.9], q=q, demand=np.ones(4)
        )
        sol = greedy_cover(inst, chvatal_score)
        assert sol.cost == pytest.approx(1.0)
        assert sol.selected[0] and sol.n_selected == 1

    def test_classic_greedy_trap(self):
        """The textbook instance where greedy pays ~H(n) x optimum:
        elements {1..4}; optimum = two 'half' sets at 1+eps each; greedy
        chains the singletons with costs 1/4, 1/3, 1/2, 1."""
        n_el = 4
        q = np.zeros((n_el, n_el + 2))
        for k in range(n_el):
            q[k, k] = 1.0  # singleton sets
        q[:2, n_el] = 1.0      # lower half
        q[2:, n_el + 1] = 1.0  # upper half
        costs = np.array([1 / 4, 1 / 3 - 0.02, 1 / 2 - 0.02, 1.0 - 0.02, 1.1, 1.1])
        inst = CoveringInstance(costs=costs, q=q, demand=np.ones(n_el))
        sol = greedy_cover(inst, chvatal_score)
        relax = solve_relaxation(inst)
        assert sol.feasible
        # Greedy overpays here, but stays inside the harmonic envelope.
        assert sol.cost <= _harmonic(2) * relax.lower_bound + 1e-6
        from repro.covering.exact import solve_exact

        exact = solve_exact(inst, method="enumeration")
        assert sol.cost >= exact.cost - 1e-9

    def test_lp_integral_on_interval_matrices(self):
        """Consecutive-ones (interval) matrices are totally unimodular:
        the LP bound equals the integer optimum."""
        q = np.array([
            [1.0, 1.0, 0.0, 0.0],
            [0.0, 1.0, 1.0, 0.0],
            [0.0, 0.0, 1.0, 1.0],
        ])
        inst = CoveringInstance(costs=[2.0, 3.0, 2.0, 4.0], q=q, demand=np.ones(3))
        relax = solve_relaxation(inst)
        from repro.covering.exact import solve_exact

        exact = solve_exact(inst, method="enumeration")
        assert relax.lower_bound == pytest.approx(exact.cost, abs=1e-6)
