"""Tests for repair and redundancy pruning."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.covering.instance import CoveringInstance
from repro.covering.repair import prune_redundant, repair_cover
from tests.conftest import random_covering


class TestPruneRedundant:
    def test_removes_redundant_bundle(self, tiny_covering):
        sel = np.array([True, True, True, False])  # bundle 0 redundant given 1,2
        pruned = prune_redundant(tiny_covering, sel)
        assert tiny_covering.is_feasible(pruned)
        assert pruned.sum() < sel.sum()

    def test_keeps_minimal_cover(self, tiny_covering):
        sel = np.array([False, True, True, False])
        pruned = prune_redundant(tiny_covering, sel)
        assert (pruned == sel).all()

    def test_input_not_mutated(self, tiny_covering):
        sel = np.array([True, True, True, True])
        snapshot = sel.copy()
        prune_redundant(tiny_covering, sel)
        assert (sel == snapshot).all()

    def test_drops_most_expensive_first(self, tiny_covering):
        # All selected; bundle 3 (cost 10) must go before bundle 0 (cost 4).
        pruned = prune_redundant(tiny_covering, np.ones(4, dtype=bool))
        assert not pruned[3]

    def test_result_is_minimal(self, small_covering):
        pruned = prune_redundant(small_covering, np.ones(12, dtype=bool))
        assert small_covering.is_feasible(pruned)
        for j in np.flatnonzero(pruned):
            reduced = pruned.copy()
            reduced[j] = False
            assert not small_covering.is_feasible(reduced)


class TestRepairCover:
    @pytest.mark.parametrize("order", ["chvatal", "cost", "random"])
    def test_repairs_empty_selection(self, small_covering, rng, order):
        sel = repair_cover(
            small_covering, np.zeros(12, dtype=bool), order=order, rng=rng
        )
        assert small_covering.is_feasible(sel)

    def test_feasible_input_only_pruned(self, tiny_covering):
        sel = np.array([False, True, True, False])
        out = repair_cover(tiny_covering, sel)
        assert (out == sel).all()

    def test_uncoverable_saturates(self):
        inst = CoveringInstance(costs=[1.0], q=[[1.0]], demand=[5.0])
        out = repair_cover(inst, np.zeros(1, dtype=bool))
        assert out.all()
        assert not inst.is_feasible(out)

    def test_random_without_rng_raises(self, small_covering):
        with pytest.raises(ValueError, match="rng"):
            repair_cover(small_covering, np.zeros(12, dtype=bool), order="random")

    def test_unknown_order_raises(self, small_covering):
        with pytest.raises(ValueError, match="repair order"):
            repair_cover(small_covering, np.zeros(12, dtype=bool), order="best")

    def test_wrong_shape_raises(self, small_covering):
        with pytest.raises(ValueError, match="shape"):
            repair_cover(small_covering, np.zeros(3, dtype=bool))

    def test_chvatal_repair_cheaper_than_random_on_average(self):
        inst = random_covering(42, n_services=4, n_bundles=25)
        gen = np.random.default_rng(0)
        chv = inst.cost_of(repair_cover(inst, np.zeros(25, dtype=bool)))
        rnd = np.mean([
            inst.cost_of(
                repair_cover(inst, np.zeros(25, dtype=bool), order="random", rng=gen)
            )
            for _ in range(8)
        ])
        assert chv <= rnd + 1e-9

    def test_no_prune_keeps_additions(self, small_covering):
        out = repair_cover(small_covering, np.zeros(12, dtype=bool), prune=False)
        assert small_covering.is_feasible(out)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), density=st.floats(0.0, 1.0))
def test_property_repair_yields_feasible_minimal(seed, density):
    """Property: repair of any starting vector is feasible (on coverable
    instances) and minimal after pruning."""
    inst = random_covering(seed)
    if not inst.is_coverable():
        return
    gen = np.random.default_rng(seed)
    start = gen.random(inst.n_bundles) < density
    out = repair_cover(inst, start)
    assert inst.is_feasible(out)
    for j in np.flatnonzero(out):
        reduced = out.copy()
        reduced[j] = False
        assert not inst.is_feasible(reduced)
