"""Tests for the exact covering solvers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.covering.exact import solve_exact
from repro.covering.greedy import greedy_cover
from repro.covering.heuristics import chvatal_score
from repro.covering.instance import CoveringInstance
from repro.lp.relaxation import solve_relaxation
from tests.conftest import random_covering


class TestEnumeration:
    def test_known_optimum(self, tiny_covering):
        sol = solve_exact(tiny_covering, method="enumeration")
        assert sol.feasible
        assert sol.cost == pytest.approx(5.0)
        assert list(np.flatnonzero(sol.selected)) == [1, 2]

    def test_uncoverable(self):
        inst = CoveringInstance(costs=[1.0], q=[[1.0]], demand=[9.0])
        sol = solve_exact(inst, method="enumeration")
        assert not sol.feasible

    def test_size_cap(self):
        inst = CoveringInstance(
            costs=np.ones(30), q=np.ones((1, 30)), demand=[1.0]
        )
        with pytest.raises(ValueError, match="enumeration limited"):
            solve_exact(inst, method="enumeration")

    def test_zero_demand(self):
        inst = CoveringInstance(costs=[3.0, 1.0], q=[[2.0, 2.0]], demand=[0.0])
        sol = solve_exact(inst, method="enumeration")
        assert sol.feasible and sol.cost == 0.0 and sol.n_selected == 0


class TestBranchAndBound:
    @pytest.mark.parametrize("seed", range(10))
    def test_matches_enumeration(self, seed):
        inst = random_covering(seed, n_services=3, n_bundles=12)
        enum = solve_exact(inst, method="enumeration")
        bb = solve_exact(inst, method="branch_and_bound")
        assert enum.feasible == bb.feasible
        if enum.feasible:
            assert bb.cost == pytest.approx(enum.cost, abs=1e-6)

    def test_uncoverable(self):
        inst = CoveringInstance(costs=[1.0, 1.0], q=[[1.0, 1.0]], demand=[9.0])
        sol = solve_exact(inst, method="branch_and_bound")
        assert not sol.feasible

    def test_node_budget_returns_incumbent(self, small_covering):
        sol = solve_exact(small_covering, method="branch_and_bound", max_nodes=1)
        assert sol.feasible  # Chvátal warm start always available
        assert sol.meta["stats"].nodes <= 1

    def test_never_worse_than_greedy(self, small_covering):
        exact = solve_exact(small_covering, method="branch_and_bound")
        greedy = greedy_cover(small_covering, chvatal_score)
        assert exact.cost <= greedy.cost + 1e-9

    def test_never_better_than_lp_bound(self, small_covering):
        exact = solve_exact(small_covering, method="branch_and_bound")
        relax = solve_relaxation(small_covering)
        assert exact.cost >= relax.lower_bound - 1e-6


class TestDispatch:
    def test_auto_small_uses_enumeration(self, tiny_covering):
        sol = solve_exact(tiny_covering, method="auto")
        assert sol.meta["stats"].method == "enumeration"

    def test_auto_large_uses_bnb(self):
        inst = random_covering(1, n_services=3, n_bundles=30)
        sol = solve_exact(inst, method="auto")
        assert sol.meta["stats"].method == "branch_and_bound"

    def test_unknown_method_raises(self, tiny_covering):
        with pytest.raises(ValueError, match="unknown exact method"):
            solve_exact(tiny_covering, method="magic")
