"""Tests for the covering instance/solution containers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.covering.instance import CoveringInstance, CoverSolution


class TestConstruction:
    def test_arrays_coerced_contiguous_float(self, small_covering):
        assert small_covering.q.flags["C_CONTIGUOUS"]
        assert small_covering.costs.dtype == np.float64

    def test_dimension_properties(self, small_covering):
        assert small_covering.n_services == 4
        assert small_covering.n_bundles == 12

    def test_rejects_1d_q(self):
        with pytest.raises(ValueError, match="2-D"):
            CoveringInstance(costs=[1.0], q=[1.0], demand=[1.0])

    def test_rejects_mismatched_costs(self):
        with pytest.raises(ValueError, match="costs"):
            CoveringInstance(costs=[1.0], q=[[1.0, 2.0]], demand=[1.0])

    def test_rejects_mismatched_demand(self):
        with pytest.raises(ValueError, match="demand"):
            CoveringInstance(costs=[1.0, 2.0], q=[[1.0, 2.0]], demand=[1.0, 2.0])

    def test_rejects_negative_cost(self):
        with pytest.raises(ValueError, match="non-negative"):
            CoveringInstance(costs=[-1.0], q=[[1.0]], demand=[1.0])

    def test_rejects_negative_q(self):
        with pytest.raises(ValueError, match="non-negative"):
            CoveringInstance(costs=[1.0], q=[[-1.0]], demand=[1.0])

    def test_rejects_negative_demand(self):
        with pytest.raises(ValueError, match="non-negative"):
            CoveringInstance(costs=[1.0], q=[[1.0]], demand=[-1.0])


class TestSemantics:
    def test_coverability(self, tiny_covering):
        assert tiny_covering.is_coverable()

    def test_uncoverable(self):
        inst = CoveringInstance(costs=[1.0], q=[[1.0]], demand=[2.0])
        assert not inst.is_coverable()

    def test_coverage_of_selection(self, tiny_covering):
        sel = np.array([False, True, True, False])
        assert tiny_covering.coverage_of(sel) == pytest.approx([4.0, 6.0])

    def test_feasibility_check(self, tiny_covering):
        assert tiny_covering.is_feasible([False, True, True, False])
        assert not tiny_covering.is_feasible([True, False, False, False])

    def test_cost_of_selection(self, tiny_covering):
        assert tiny_covering.cost_of([False, True, True, False]) == pytest.approx(5.0)

    def test_selection_shape_validated(self, tiny_covering):
        with pytest.raises(ValueError, match="shape"):
            tiny_covering.coverage_of(np.ones(3, dtype=bool))

    def test_with_costs_shares_structure(self, tiny_covering):
        new = tiny_covering.with_costs([1.0, 1.0, 1.0, 1.0])
        assert new.q is tiny_covering.q
        assert new.demand is tiny_covering.demand
        assert new.cost_of([True, True, False, False]) == pytest.approx(2.0)

    def test_with_costs_keeps_name_by_default(self, tiny_covering):
        assert tiny_covering.with_costs(tiny_covering.costs).name == "tiny"


class TestCoverSolution:
    def test_check_passes_on_consistent_solution(self, tiny_covering):
        sel = np.array([False, True, True, False])
        sol = CoverSolution(selected=sel, cost=5.0, feasible=True)
        sol.check(tiny_covering)

    def test_check_detects_wrong_cost(self, tiny_covering):
        sel = np.array([False, True, True, False])
        sol = CoverSolution(selected=sel, cost=99.0, feasible=True)
        with pytest.raises(AssertionError, match="cost"):
            sol.check(tiny_covering)

    def test_check_detects_wrong_feasibility(self, tiny_covering):
        sel = np.array([True, False, False, False])
        sol = CoverSolution(selected=sel, cost=4.0, feasible=True)
        with pytest.raises(AssertionError, match="feasibility"):
            sol.check(tiny_covering)

    def test_n_selected(self):
        sol = CoverSolution(selected=np.array([1, 0, 1], dtype=bool), cost=1.0, feasible=True)
        assert sol.n_selected == 2
