"""Stock-observer tests: JSONL logging schema and periodic checkpoints.

The headline assertion here is the *shared flat schema*: the JSONL
logger's per-generation lines and ``RunResult.summary_row()`` must carry
exactly the same keys (``SUMMARY_FIELDS``), so the budget/gap math lives
in one place and both outputs are interchangeable for table code.
"""

from __future__ import annotations

import json

import pytest

from repro.core.checkpoint import Checkpointer, load_checkpoint
from repro.core.events import JsonlRunLogger
from repro.core.results import SUMMARY_FIELDS

from tests.test_engine import FakeAlgorithm


def read_jsonl(path):
    with open(path) as fh:
        return [json.loads(line) for line in fh if line.strip()]


class TestJsonlRunLogger:
    def test_generation_lines_share_summary_schema(self, tmp_path):
        """Satellite: JSONL generation lines == summary_row keys, exactly."""
        log = tmp_path / "run.jsonl"
        algo = FakeAlgorithm(budget=3)
        result = algo.run(seed_label=7, observers=[JsonlRunLogger(log)])
        lines = read_jsonl(log)
        generation_lines = [l for l in lines if l["event"] == "generation"]
        assert len(generation_lines) == 3
        for line in generation_lines:
            assert set(line) == {"event", "generation"} | set(SUMMARY_FIELDS)
        # Live rows track the algorithm's actual counters and identity.
        last = generation_lines[-1]
        assert last["algorithm"] == "FAKE"
        assert last["instance"] == "fake-instance"
        assert last["seed"] == 7
        assert last["ul_evals"] == result.ul_evaluations_used

    def test_run_end_line_is_summary_row(self, tmp_path):
        log = tmp_path / "run.jsonl"
        algo = FakeAlgorithm(budget=2)
        result = algo.run(seed_label=1, observers=[JsonlRunLogger(log)])
        final = read_jsonl(log)[-1]
        assert final["event"] == "run_end"
        expected = result.summary_row()
        for key in SUMMARY_FIELDS:
            if key == "wall_time":
                continue  # timing is real, just present
            assert final[key] == expected[key], key
        assert final["wall_time"] >= 0.0

    def test_event_sequence(self, tmp_path):
        log = tmp_path / "run.jsonl"
        algo = FakeAlgorithm(budget=4)
        algo.run(observers=[JsonlRunLogger(log)])
        events = [l["event"] for l in read_jsonl(log)]
        assert events[0] == "init"
        assert events[-1] == "run_end"
        assert events.count("generation") == 4

    def test_append_and_truncate_modes(self, tmp_path):
        log = tmp_path / "run.jsonl"
        FakeAlgorithm(budget=2).run(observers=[JsonlRunLogger(log)])
        n_first = len(read_jsonl(log))
        FakeAlgorithm(budget=2).run(observers=[JsonlRunLogger(log)])
        assert len(read_jsonl(log)) == 2 * n_first
        FakeAlgorithm(budget=2).run(observers=[JsonlRunLogger(log, append=False)])
        assert len(read_jsonl(log)) == n_first


class TestCheckpointer:
    def test_every_controls_save_cadence(self, tmp_path):
        path = tmp_path / "ckpt.json"
        ckpt = Checkpointer(path, every=2)
        FakeAlgorithm(budget=5).run(observers=[ckpt])
        # Generations 2 and 4, plus the unconditional run-end save.
        assert ckpt.saves == 3
        assert path.exists()

    def test_final_checkpoint_is_loadable_and_complete(self, tmp_path):
        path = tmp_path / "ckpt.json"
        algo = FakeAlgorithm(budget=4)
        algo.run(observers=[Checkpointer(path, every=1)])
        document = load_checkpoint(path)
        assert document["algorithm"] == "FAKE"
        assert document["generation"] == 4
        clone = FakeAlgorithm(budget=4)
        clone.load_state_dict(document["state"])
        assert clone.budget_used() == algo.budget_used()
        assert clone.rng.bit_generator.state == algo.rng.bit_generator.state

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError, match="every"):
            Checkpointer(tmp_path / "x.json", every=0)
