"""SolveServer: wire protocol, micro-batching, backpressure, exactness.

The server must be a transparent window onto the in-process evaluator:
for any (instance, prices, heuristic), the served %-gap equals direct
evaluation bit for bit, whether the request rode a batch of one or a
micro-batch — JSON floats round-trip exactly and every solve is pure.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.bcpop.evaluate import LowerLevelEvaluator
from repro.bcpop.generator import generate_instance
from repro.gp.generate import ramped_half_and_half
from repro.gp.primitives import paper_primitive_set
from repro.serve import (
    HeuristicRegistry,
    ServeClient,
    SolveServer,
    start_in_thread,
)


@pytest.fixture(scope="module")
def instance():
    return generate_instance(20, 3, seed=5)


@pytest.fixture(scope="module")
def trees():
    rng = np.random.default_rng(2)
    return ramped_half_and_half(paper_primitive_set(), 6, rng, min_depth=2, max_depth=4)


@pytest.fixture()
def price_vectors(instance):
    rng = np.random.default_rng(9)
    low, high = instance.price_bounds
    return [rng.uniform(low, high) for _ in range(8)]


def _server(instance, **kw) -> SolveServer:
    kw.setdefault("instances", [instance])
    kw.setdefault("max_wait_us", 50_000)
    return SolveServer(**kw)


class TestSolveExactness:
    def test_served_gap_is_bit_identical_serial_and_batched(
        self, instance, trees, price_vectors
    ):
        reference = LowerLevelEvaluator(instance, memo_size=0)
        expected = [
            reference.evaluate_heuristic_fresh(prices, tree)
            for prices in price_vectors
            for tree in trees[:2]
        ]
        with start_in_thread(_server(instance)) as handle:
            with ServeClient(*handle.address) as client:
                # Serial dispatch: one round trip per request.
                serial = [
                    client.solve(prices, tree)
                    for prices in price_vectors
                    for tree in trees[:2]
                ]
                # Micro-batched dispatch: pause, pipeline, resume.
                client.pause()
                requests = [
                    client.solve_request(prices, tree)
                    for prices in price_vectors
                    for tree in trees[:2]
                ]
                # Write everything while the batcher is held, then free it.
                import threading

                results_box = []
                writer = threading.Thread(
                    target=lambda: results_box.append(client.solve_many(requests))
                )
                writer.start()
                with ServeClient(*handle.address) as admin:
                    admin.resume()
                writer.join(30)
                assert not writer.is_alive()
                batched = results_box[0]
                stats = client.stats()
        for out, response_a, response_b in zip(expected, serial, batched):
            for response in (response_a, response_b):
                assert response["ok"], response
                assert response["gap"] == out.gap
                assert response["revenue"] == out.revenue
                assert response["ll_cost"] == out.ll_cost
                assert response["lower_bound"] == out.lower_bound
        assert stats["max_batch_size"] > 1  # micro-batching actually engaged

    def test_include_selection_roundtrip(self, instance, trees, price_vectors):
        reference = LowerLevelEvaluator(instance, memo_size=0)
        expected = reference.evaluate_heuristic_fresh(price_vectors[0], trees[0])
        with start_in_thread(_server(instance)) as handle:
            with ServeClient(*handle.address) as client:
                response = client.solve(
                    price_vectors[0], trees[0], include_selection=True
                )
        assert response["ok"]
        assert np.array_equal(
            np.asarray(response["selection"], dtype=bool), expected.selection
        )
        assert response["n_selected"] == int(expected.selection.sum())


class TestBackpressure:
    def test_overflow_returns_overload_not_crash(self, instance, trees, price_vectors):
        server = _server(instance, queue_depth=2, max_batch_size=2)
        with start_in_thread(server) as handle:
            with ServeClient(*handle.address) as client:
                client.pause()  # hold the batcher: nothing drains
                requests = [
                    client.solve_request(price_vectors[i % len(price_vectors)], trees[0])
                    for i in range(5)
                ]
                import threading

                results_box = []
                writer = threading.Thread(
                    target=lambda: results_box.append(client.solve_many(requests))
                )
                writer.start()
                # Admin connection frees the queue once overloads landed.
                with ServeClient(*handle.address) as admin:
                    deadline = 30.0
                    import time

                    t0 = time.monotonic()
                    while time.monotonic() - t0 < deadline:
                        if admin.stats()["overloads"] >= 3:
                            break
                        time.sleep(0.01)
                    admin.resume()
                writer.join(30)
                assert not writer.is_alive()
                responses = results_box[0]
                stats = client.stats()
        accepted = [r for r in responses if r["ok"]]
        rejected = [r for r in responses if not r["ok"]]
        assert len(accepted) == 2  # exactly the queue depth
        assert len(rejected) == 3
        assert all(r["error"] == "overloaded" for r in rejected)
        assert stats["overloads"] == 3
        assert stats["solved"] == 2
        # The server survived: a fresh request still works afterwards.


class TestResolution:
    def test_registry_ref_and_family(self, tmp_path, instance, trees, price_vectors):
        registry = HeuristicRegistry(tmp_path / "reg")
        family = f"n{instance.n_bundles}-m{instance.n_services}"
        worse = registry.publish(trees[0], {"family": family, "best_gap": 9.0})
        best = registry.publish(trees[1], {"family": family, "best_gap": 1.0})
        reference = LowerLevelEvaluator(instance, memo_size=0)
        with start_in_thread(_server(instance, registry=registry)) as handle:
            with ServeClient(*handle.address) as client:
                by_ref = client.solve(price_vectors[0], worse.artifact_id[:12])
                by_family = client.solve(price_vectors[0], f"family:{family}")
                missing = client.solve(price_vectors[0], "0" * 12)
        assert by_ref["gap"] == reference.evaluate_heuristic_fresh(
            price_vectors[0], trees[0]
        ).gap
        assert by_family["gap"] == reference.evaluate_heuristic_fresh(
            price_vectors[0], trees[1]
        ).gap
        assert best.artifact_id != worse.artifact_id
        assert not missing["ok"] and missing["error"] == "unknown-heuristic"

    def test_inline_instance_then_digest(self, instance, trees, price_vectors):
        # Server starts empty; the first request inlines the instance,
        # the second refers to it by digest alone.
        with start_in_thread(SolveServer(max_wait_us=1000)) as handle:
            with ServeClient(*handle.address) as client:
                inline = client.solve(price_vectors[0], trees[0], instance=instance)
                by_digest = client.solve(
                    price_vectors[0], trees[0], instance=instance.digest
                )
                unknown = client.solve(
                    price_vectors[0], trees[0], instance="deadbeef" * 8
                )
        assert inline["ok"] and by_digest["ok"]
        assert inline["gap"] == by_digest["gap"]
        assert not unknown["ok"] and unknown["error"] == "unknown-instance"

    def test_bad_requests_are_answered_not_fatal(self, instance, trees):
        with start_in_thread(_server(instance)) as handle:
            with ServeClient(*handle.address) as client:
                no_instance_needed = client.solve([1.0] * instance.n_own, trees[0])
                bad_prices = client.request(
                    {"op": "solve", "heuristic": {"tree": trees[0].serialize()},
                     "prices": [1.0]}  # wrong dimension
                )
                bad_op = client.request({"op": "warp"})
                bad_tree = client.request(
                    {"op": "solve", "prices": [1.0] * instance.n_own,
                     "heuristic": {"tree": "X:nope"}}
                )
                assert client.ping()
        assert no_instance_needed["ok"]
        assert not bad_prices["ok"] and bad_prices["error"] == "bad-request"
        assert not bad_op["ok"] and bad_op["error"] == "unknown-op"
        assert not bad_tree["ok"] and bad_tree["error"] == "bad-request"


class TestStatsAndShutdown:
    def test_stats_counts_and_memo_rate(self, instance, trees, price_vectors):
        with start_in_thread(_server(instance)) as handle:
            with ServeClient(*handle.address) as client:
                for _ in range(3):  # identical requests: memo hits after #1
                    client.solve(price_vectors[0], trees[0])
                stats = client.stats()
        assert stats["requests"] == 3
        assert stats["solved"] == 3
        assert stats["overloads"] == 0
        assert stats["memo_hit_rate"] > 0.0
        assert stats["instances"] == 1
        assert set(stats["latency_ms"]) == {"p50", "p95", "p99"}
        assert stats["batches"] >= 1

    def test_shutdown_op_dumps_metrics_jsonl(self, tmp_path, instance, trees):
        metrics_path = tmp_path / "serve-metrics.jsonl"
        server = _server(instance, metrics_path=metrics_path)
        handle = start_in_thread(server)
        with ServeClient(*handle.address) as client:
            client.solve([1.0] * instance.n_own, trees[0])
            assert client.shutdown()["stopping"]
        handle.thread.join(30)
        assert not handle.thread.is_alive()
        lines = [json.loads(line) for line in metrics_path.read_text().splitlines()]
        assert len(lines) == 1
        assert lines[0]["event"] == "server_stats"
        assert lines[0]["solved"] == 1
        assert lines[0]["requests"] == 1
        assert "batch_size_histogram" in lines[0]
