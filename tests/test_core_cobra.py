"""Tests for the COBRA baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bcpop.generator import generate_instance
from repro.core.cobra import Cobra, run_cobra
from repro.core.config import CobraConfig


@pytest.fixture(scope="module")
def instance():
    return generate_instance(24, 3, seed=11, name="cobra-test")


@pytest.fixture
def quick_cfg():
    return CobraConfig.quick(ul_evaluations=300, ll_evaluations=300, population_size=8)


class TestBudgets:
    def test_budgets_respected(self, instance, quick_cfg):
        result = run_cobra(instance, quick_cfg, seed=0)
        assert result.ul_evaluations_used <= quick_cfg.upper.fitness_evaluations
        assert result.ll_evaluations_used <= quick_cfg.ll_fitness_evaluations
        assert result.ul_evaluations_used > 0
        assert result.ll_evaluations_used > 0


class TestResults:
    def test_result_fields(self, instance, quick_cfg):
        result = run_cobra(instance, quick_cfg, seed=1)
        assert result.algorithm == "COBRA"
        assert np.isfinite(result.best_gap) and result.best_gap >= -1e-9
        assert np.isfinite(result.best_upper)
        assert len(result.history) > 1

    def test_reproducible_given_seed(self, instance, quick_cfg):
        a = run_cobra(instance, quick_cfg, seed=3)
        b = run_cobra(instance, quick_cfg, seed=3)
        assert a.best_gap == pytest.approx(b.best_gap)
        assert a.best_upper == pytest.approx(b.best_upper)

    def test_lower_population_always_feasible(self, instance, quick_cfg):
        """Repair keeps every basket covering the demand."""
        algo = Cobra(instance, quick_cfg, np.random.default_rng(4))
        algo.initialize()
        ll = instance.lower_level(np.zeros(instance.n_own))
        for _ in range(3):
            if not algo.step():
                break
            for ind in algo.pop_l:
                assert ll.is_feasible(ind.genome)

    def test_upper_fitness_is_partner_revenue(self, instance, quick_cfg):
        algo = Cobra(instance, quick_cfg, np.random.default_rng(5))
        algo.initialize()
        for ind in algo.pop_u:
            expected = instance.revenue(ind.genome, ind.aux["partner"])
            assert ind.fitness == pytest.approx(expected)

    def test_archived_pairs_have_gap(self, instance, quick_cfg):
        result = run_cobra(instance, quick_cfg, seed=6)
        assert np.isfinite(result.best_solution.gap)
        assert result.best_solution.gap >= -1e-9


class TestSeesawBehaviour:
    def test_see_saw_exceeds_carbon(self, instance):
        """The paper's Fig. 4-vs-5 contrast as a statistic."""
        from repro.core.carbon import run_carbon
        from repro.core.config import CarbonConfig
        from repro.core.convergence import seesaw_index

        cobra_ss, carbon_ss = [], []
        for seed in range(2):
            rc = run_cobra(
                instance,
                CobraConfig.quick(600, 600, population_size=10),
                seed=seed,
            )
            ra = run_carbon(
                instance,
                CarbonConfig.quick(600, 600, population_size=10),
                seed=seed,
            )
            cobra_ss.append(seesaw_index(rc.history.series("fitness")[1]))
            carbon_ss.append(seesaw_index(ra.history.series("fitness")[1]))
        assert np.mean(cobra_ss) > np.mean(carbon_ss)
