"""Tests for swap-descent local search."""

from __future__ import annotations

import numpy as np
import pytest

from repro.covering.greedy import greedy_cover
from repro.covering.heuristics import cost_score, make_heuristic
from repro.covering.local_search import improve_by_swap
from tests.conftest import random_covering


class TestImproveBySwap:
    def test_never_degrades(self, small_covering):
        start = greedy_cover(small_covering, cost_score).selected
        improved = improve_by_swap(small_covering, start)
        assert small_covering.is_feasible(improved)
        assert small_covering.cost_of(improved) <= small_covering.cost_of(start) + 1e-9

    def test_requires_feasible_start(self, small_covering):
        with pytest.raises(ValueError, match="feasible"):
            improve_by_swap(small_covering, np.zeros(12, dtype=bool))

    def test_input_not_mutated(self, small_covering):
        start = greedy_cover(small_covering, cost_score).selected
        snapshot = start.copy()
        improve_by_swap(small_covering, start)
        assert (start == snapshot).all()

    def test_result_minimal(self, small_covering):
        start = greedy_cover(small_covering, cost_score).selected
        improved = improve_by_swap(small_covering, start)
        for j in np.flatnonzero(improved):
            reduced = improved.copy()
            reduced[j] = False
            assert not small_covering.is_feasible(reduced)

    @pytest.mark.parametrize("seed", range(5))
    def test_improves_random_starts(self, seed):
        inst = random_covering(seed, n_services=4, n_bundles=20)
        if not inst.is_coverable():
            pytest.skip("uncoverable draw")
        gen = np.random.default_rng(seed)
        start = greedy_cover(inst, make_heuristic("random", rng=gen)).selected
        improved = improve_by_swap(inst, start)
        assert inst.cost_of(improved) <= inst.cost_of(start) + 1e-9

    def test_fixed_point(self, small_covering):
        start = greedy_cover(small_covering, cost_score).selected
        once = improve_by_swap(small_covering, start)
        twice = improve_by_swap(small_covering, once)
        assert small_covering.cost_of(twice) == pytest.approx(
            small_covering.cost_of(once)
        )
