"""Evaluation-mode properties and determinism.

Three layers:

* **Archive/pool invariants** (hypothesis property tests) — the canonical
  total order makes archive content a pure function of the *set* of
  offered (item, score) pairs: insertion-order independence, stable-hash
  deduplication of GP trees, deterministic bounded eviction, and the
  hall-of-fame pool's monotone best-quality watermark.
* **Mode semantics** — the payoff folds (worst-case / solved-count /
  mean), panel construction, ``current``-mode no-ops, and checkpoint
  state round-trips.
* **Substrate determinism** — every mode must stay bit-identical between
  :class:`SerialExecutor` and :class:`ProcessExecutor` (panels are chosen
  in the parent; the RNG-audit sanitizer pins the draw traces too).
"""

from __future__ import annotations

import math
from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bilevel import bilinear_instance
from repro.core.archive import Archive, identity_token
from repro.core.carbon import Carbon, run_carbon
from repro.core.cobra import run_cobra
from repro.core.config import (
    EVAL_MODES,
    CarbonConfig,
    CobraConfig,
    EvalModeConfig,
    ExecutionConfig,
    UpperLevelConfig,
)
from repro.core.engine import EngineLoop
from repro.core.evalmode import EvaluationMode, OpponentPool, stable_identity
from repro.core.nested import run_nested
from repro.gp.tree import SyntaxTree
from repro.parallel.executor import ProcessExecutor, SerialExecutor

from tests.test_parallel_determinism import assert_bit_identical

# -- strategies ---------------------------------------------------------------

#: (item, score) pairs with text identities and finite scores.
pairs = st.lists(
    st.tuples(
        st.text(alphabet="abcdefgh", min_size=1, max_size=3),
        st.floats(min_value=-100, max_value=100, allow_nan=False, width=32),
    ),
    min_size=0,
    max_size=20,
)


class TestArchiveOrderIndependence:
    @given(items=pairs, data=st.data(), minimize=st.booleans())
    @settings(max_examples=100, deadline=None)
    def test_any_insertion_order_same_archive(self, items, data, minimize):
        """The set-function invariant the archive docstring promises."""
        shuffled = data.draw(st.permutations(items))
        a, b = Archive(4, minimize=minimize), Archive(4, minimize=minimize)
        for item, score in items:
            a.add(item, score)
        for item, score in shuffled:
            b.add(item, score)
        assert [(e.item, e.score) for e in a.entries()] == [
            (e.item, e.score) for e in b.entries()
        ]

    @given(items=pairs)
    @settings(max_examples=50, deadline=None)
    def test_bounded_eviction_keeps_canonical_top_k(self, items):
        """Eviction is the canonical order's worst-out: the survivors are
        exactly the top-``maxsize`` of the best score per identity."""
        maxsize = 3
        archive = Archive(maxsize, minimize=True)
        for item, score in items:
            archive.add(item, score)
        best: dict[str, float] = {}
        for item, score in items:
            if item not in best or score < best[item]:
                best[item] = score
        expected = sorted(best.items(), key=lambda kv: (kv[1], identity_token(kv[0])))
        assert [(e.item, e.score) for e in archive.entries()] == expected[:maxsize]

    @given(items=pairs)
    @settings(max_examples=50, deadline=None)
    def test_state_roundtrip_preserves_entries(self, items):
        archive = Archive(5, minimize=False)
        for item, score in items:
            archive.add(item, score)
        clone = Archive(5, minimize=False)
        clone.load_state_dict(archive.state_dict())
        assert [(e.item, e.score) for e in clone.entries()] == [
            (e.item, e.score) for e in archive.entries()
        ]


class TestStableIdentity:
    def test_tree_identity_is_structural(self):
        t1 = SyntaxTree.deserialize("T:COST")
        t2 = SyntaxTree.deserialize("T:COST")
        assert t1 is not t2
        assert stable_identity(t1) == stable_identity(t2)
        assert stable_identity(t1) != stable_identity(SyntaxTree.deserialize("T:DUAL"))

    def test_pool_dedups_equal_trees(self):
        pool = OpponentPool(8, minimize=True, maximize_quality=False, label="lower")
        assert pool.offer(SyntaxTree.deserialize("T:COST"), 1.0, 1.0)
        assert not pool.offer(SyntaxTree.deserialize("T:COST"), 2.0, 2.0)
        assert pool.offer(SyntaxTree.deserialize("T:DUAL"), 3.0, 3.0)
        assert len(pool) == 2
        assert pool.offered == 3 and pool.stored == 2

    def test_array_identity_quantizes(self):
        key = stable_identity(np.array([0.1 + 0.2, 0.5]))
        assert key == stable_identity(np.array([0.3, 0.5]))


class TestPoolWatermark:
    @given(
        qualities=st.lists(
            st.floats(min_value=-50, max_value=50, allow_nan=False),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_best_quality_monotone_running_max(self, qualities):
        """The hall-of-fame invariant: the watermark only improves, and
        always equals the running extremum of offered qualities — even
        when the archive rejects or evicts the member itself."""
        pool = OpponentPool(2, minimize=False, maximize_quality=True, label="upper")
        for i, quality in enumerate(qualities):
            before = pool.best_quality
            pool.offer(f"i{i}", float(i), quality)
            assert pool.best_quality == max(qualities[: i + 1])
            if before is not None:
                assert pool.best_quality >= before

    def test_minimize_quality_direction(self):
        pool = OpponentPool(4, minimize=True, maximize_quality=False, label="lower")
        for quality in (5.0, 2.0, 7.0):
            pool.offer(f"q{quality}", quality, quality)
        assert pool.best_quality == 2.0

    def test_nonfinite_quality_ignored_by_watermark(self):
        pool = OpponentPool(4, minimize=False, maximize_quality=True, label="upper")
        pool.offer("a", 0.0, 1.0)
        pool.offer("b", 1.0, math.inf)
        assert pool.best_quality == 1.0


def mode(name: str, **kwargs) -> EvaluationMode:
    return EvaluationMode(EvalModeConfig(mode=name, **kwargs))


class TestModeSemantics:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown eval mode"):
            EvalModeConfig(mode="tournament")

    def test_current_is_noop(self):
        m = mode("current")
        rng = np.random.default_rng(0)
        m.record_upper(np.zeros(2), 1.0, 0)
        m.record_lower("champ", 1.0, 0)
        assert len(m.upper_pool) == 0 and len(m.lower_pool) == 0
        assert m.upper_panel(4, rng) == []
        assert m.lower_panel("champ", rng) == ["champ"]
        assert m.opponent("lower", rng) is None
        assert m.aggregate([3.25]) == 3.25

    @pytest.mark.parametrize("name", ["hall-of-fame", "archive"])
    def test_worst_case_fold(self, name):
        m = mode(name)
        assert m.aggregate([3.0, -1.0, 2.0]) == -1.0
        assert m.representative_index([3.0, -1.0, 2.0]) == 1

    def test_generalist_fold_is_mean(self):
        m = mode("generalist")
        assert m.aggregate([1.0, 2.0, 6.0]) == pytest.approx(3.0)
        assert m.representative_index([1.0, 2.0, 6.0]) == 0

    def test_maxsolve_fold_counts_solved(self):
        m = mode("maxsolve", solved_threshold=0.0)
        two = m.aggregate([1.0, -5.0, 2.0])
        assert 2.0 < two < 3.0  # 2 solved + tie-break in (0, 1)
        assert m.aggregate([1.0, 1.0, 2.0]) > two  # 3 solved beats 2
        # Same solved count: the mean payoff breaks the tie.
        assert m.aggregate([9.0, -5.0, 2.0]) > two

    def test_empty_payoffs_raise(self):
        with pytest.raises(ValueError, match="empty payoff"):
            mode("archive").aggregate([])

    def test_lower_panel_leads_with_champion_and_dedups(self):
        m = mode("archive", panel_size=3)
        rng = np.random.default_rng(0)
        champ = SyntaxTree.deserialize("T:COST")
        m.record_lower(SyntaxTree.deserialize("T:COST"), 0.5, 0)  # == champion
        m.record_lower(SyntaxTree.deserialize("T:DUAL"), 1.0, 1)
        m.record_lower(SyntaxTree.deserialize("T:COVER"), 2.0, 2)
        m.record_lower(SyntaxTree.deserialize("T:QSUM"), 3.0, 3)
        panel = m.lower_panel(champ, rng)
        assert len(panel) == 3
        assert panel[0] is champ
        keys = [stable_identity(t) for t in panel]
        assert len(set(keys)) == 3  # the archived champion copy was skipped

    def test_hall_of_fame_prefers_recent(self):
        m = mode("hall-of-fame", panel_size=2)
        rng = np.random.default_rng(0)
        m.record_lower("old", 0.0, generation=1)  # best quality, oldest
        m.record_lower("new", 9.0, generation=7)
        panel = m.lower_panel("champ", rng)
        assert panel == ["champ", "new"]

    def test_state_roundtrip(self):
        m = mode("archive")
        m.record_upper(np.array([0.25, 0.5]), 4.0, 1)
        m.record_lower("solver", 0.5, 1)
        clone = mode("archive")
        clone.load_state_dict(m.state_dict())
        assert len(clone.upper_pool) == 1 and len(clone.lower_pool) == 1
        assert clone.upper_pool.best_quality == 4.0

    def test_state_mode_mismatch_rejected(self):
        with pytest.raises(ValueError, match="eval mode"):
            mode("archive").load_state_dict(mode("maxsolve").state_dict())


# -- substrate determinism ----------------------------------------------------


@pytest.fixture(scope="module")
def bilinear():
    return bilinear_instance()


def carbon_config(mode_name: str) -> CarbonConfig:
    return replace(
        CarbonConfig.quick(ul_evaluations=300, ll_evaluations=300, population_size=10),
        eval_mode=EvalModeConfig(mode=mode_name, pool_size=16, panel_size=3),
        execution=ExecutionConfig(rng_audit=True),
    )


class TestModeDeterminism:
    """Serial vs process-pool bit-identity for every evaluation mode —
    including the full RNG draw trace, so archived-opponent panels cannot
    consume randomness differently across substrates."""

    @pytest.mark.parametrize("mode_name", EVAL_MODES)
    def test_carbon_bilinear_serial_vs_process(self, bilinear, mode_name):
        cfg = carbon_config(mode_name)

        def run(executor):
            algo = Carbon(
                bilinear, config=cfg, rng=np.random.default_rng(0), executor=executor
            )
            return EngineLoop(algo).run(seed_label=0), algo.rng_audit

        serial, serial_audit = run(SerialExecutor())
        with ProcessExecutor(workers=2) as ex:
            process, process_audit = run(ex)
        assert_bit_identical(serial, process)
        assert serial_audit.trace == process_audit.trace
        assert serial.extras["opponent_pools"] == process.extras["opponent_pools"]
        final = serial.extras["final_best_prices"]
        assert np.array_equal(final, process.extras["final_best_prices"])

    def test_cobra_archive_serial_vs_process(self):
        from repro.bcpop.generator import generate_instance

        instance = generate_instance(20, 3, seed=5)
        cfg = replace(
            CobraConfig.quick(ul_evaluations=150, ll_evaluations=150, population_size=10),
            eval_mode=EvalModeConfig(mode="archive", pool_size=16, panel_size=3),
        )
        serial = run_cobra(instance, cfg, seed=0, executor=SerialExecutor())
        with ProcessExecutor(workers=2) as ex:
            process = run_cobra(instance, cfg, seed=0, executor=ex)
        assert_bit_identical(serial, process)

    def test_nested_generalist_serial_vs_process(self):
        from repro.bcpop.generator import generate_instance

        instance = generate_instance(20, 3, seed=5)
        cfg = UpperLevelConfig(
            population_size=10, archive_size=10, fitness_evaluations=80
        )
        eval_mode = EvalModeConfig(mode="generalist", panel_size=3)
        serial = run_nested(
            instance, cfg, seed=0, executor=SerialExecutor(), eval_mode=eval_mode
        )
        with ProcessExecutor(workers=2) as ex:
            process = run_nested(instance, cfg, seed=0, executor=ex, eval_mode=eval_mode)
        assert_bit_identical(serial, process)


class TestIslandsInheritMode:
    def test_each_island_runs_under_the_configured_mode(self, bilinear):
        """IslandCarbon builds per-island Carbons from one config, so the
        ring picks up non-current modes with no wiring of its own."""
        from repro.parallel.islands import IslandCarbon

        cfg = replace(
            CarbonConfig.quick(ul_evaluations=200, ll_evaluations=200,
                               population_size=8),
            eval_mode=EvalModeConfig(mode="archive", pool_size=8, panel_size=2),
        )
        ring = IslandCarbon(bilinear, cfg, n_islands=2, seed=0)
        EngineLoop(ring).run(seed_label=0)
        for island in ring.islands:
            assert island.eval_mode.mode == "archive"
            assert len(island.eval_mode.lower_pool) > 0


class TestModeHarness:
    """The Nolfi-style comparison table (repro.experiments.modes)."""

    def test_bcpop_matrix_row_per_algorithm(self):
        from repro.experiments.modes import format_mode_table, run_bcpop_modes

        cells = run_bcpop_modes(modes=("current",), budget=150)
        assert [c.algorithm for c in cells] == [
            "CARBON", "COBRA", "NESTED[chvatal]", "SURROGATE[chvatal]"
        ]
        assert all(c.mode == "current" for c in cells)
        assert all(np.isnan(c.saddle_distance) for c in cells)
        assert all(0.0 <= c.seesaw <= 1.0 for c in cells)
        table = format_mode_table(cells, "smoke")
        assert "COBRA" in table and "best_gap" in table
        # No known optimum on BCPOP: the column renders as a dash.
        assert " - " in table or table.rstrip().endswith("-") or "-" in table

    def test_cell_row_is_plain_dict(self):
        from repro.experiments.modes import ModeCell

        cell = ModeCell(
            algorithm="CARBON", mode="archive", best_gap=0.0, best_upper=1.0,
            final_fitness=0.5, saddle_distance=float("nan"), seesaw=0.1,
            generations=3,
        )
        row = cell.row()
        assert row["algorithm"] == "CARBON" and row["generations"] == 3

    def test_gate_setup_is_the_documented_recipe(self):
        from repro.experiments.modes import gate_setup

        instance, config = gate_setup()
        assert instance.name.startswith("bilinear")
        assert config.eval_mode.mode == "archive"
        assert config.eval_mode.pool_size == 32
        assert config.eval_mode.panel_size == 6
        other_instance, other = gate_setup(mode="maxsolve")
        assert other.eval_mode.mode == "maxsolve"
        assert other_instance.digest == instance.digest


class TestCurrentModeIsHistoricalBehaviour:
    """``current`` must not merely be *a* mode — it must be bit-identical
    to a config predating the eval-mode field entirely (same draws, same
    results), which is what keeps the seed's recorded numbers valid."""

    def test_default_config_mode_is_current(self):
        assert CarbonConfig.quick().eval_mode.mode == "current"
        assert CobraConfig.quick().eval_mode.mode == "current"

    def test_explicit_current_matches_default(self, bilinear):
        cfg = CarbonConfig.quick(
            ul_evaluations=200, ll_evaluations=200, population_size=8
        )
        explicit = replace(
            cfg, eval_mode=EvalModeConfig(mode="current", pool_size=9, panel_size=5)
        )
        a = run_carbon(bilinear, cfg, seed=2)
        b = run_carbon(bilinear, explicit, seed=2)
        assert_bit_identical(a, b)
