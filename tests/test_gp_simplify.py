"""Tests for tree simplification (constant folding + identities)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.covering.greedy import GreedyContext
from repro.gp.generate import grow_tree
from repro.gp.nodes import Constant
from repro.gp.primitives import lookup_primitive as P_
from repro.gp.primitives import lookup_terminal as T_
from repro.gp.primitives import paper_primitive_set
from repro.gp.simplify import simplify_tree
from repro.gp.tree import SyntaxTree


class TestConstantFolding:
    def test_folds_pure_constant_subtree(self):
        t = SyntaxTree([P_("add"), Constant(2.0), Constant(3.0)])
        s = simplify_tree(t)
        assert s.size == 1
        assert isinstance(s.nodes[0], Constant)
        assert s.nodes[0].value == 5.0

    def test_folds_nested_constants(self):
        t = SyntaxTree(
            [P_("mul"), P_("add"), Constant(1.0), Constant(1.0), Constant(4.0)]
        )
        s = simplify_tree(t)
        assert s.nodes[0].value == 8.0

    def test_protected_div_constant_zero_folds_to_one(self):
        t = SyntaxTree([P_("div"), Constant(5.0), Constant(0.0)])
        s = simplify_tree(t)
        assert s.nodes[0].value == 1.0


class TestIdentities:
    def test_add_zero(self):
        t = SyntaxTree([P_("add"), Constant(0.0), T_("COST")])
        assert simplify_tree(t).to_infix() == "COST"

    def test_sub_zero(self):
        t = SyntaxTree([P_("sub"), T_("COST"), Constant(0.0)])
        assert simplify_tree(t).to_infix() == "COST"

    def test_mul_one(self):
        t = SyntaxTree([P_("mul"), T_("COST"), Constant(1.0)])
        assert simplify_tree(t).to_infix() == "COST"

    def test_mul_zero(self):
        t = SyntaxTree([P_("mul"), T_("QSUM"), Constant(0.0)])
        s = simplify_tree(t)
        assert isinstance(s.nodes[0], Constant) and s.nodes[0].value == 0.0

    def test_div_one(self):
        t = SyntaxTree([P_("div"), T_("COST"), Constant(1.0)])
        assert simplify_tree(t).to_infix() == "COST"

    def test_combined(self):
        # ((COST * 1) + (QSUM * 0)) -> COST
        t = SyntaxTree(
            [P_("add"),
             P_("mul"), T_("COST"), Constant(1.0),
             P_("mul"), T_("QSUM"), Constant(0.0)]
        )
        assert simplify_tree(t).to_infix() == "COST"

    def test_non_simplifiable_untouched(self):
        t = SyntaxTree([P_("add"), T_("COST"), T_("QSUM")])
        assert simplify_tree(t) == t


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_property_simplification_preserves_semantics(seed):
    """Property: simplified trees evaluate identically (finite cases) and
    never grow."""
    from tests.conftest import random_covering

    pset = paper_primitive_set(erc_probability=0.4)
    gen = np.random.default_rng(seed)
    t = grow_tree(pset, 5, gen)
    s = simplify_tree(t)
    assert s.size <= t.size
    inst = random_covering(seed % 13)
    ctx = GreedyContext.fresh(inst)
    a, b = t(ctx), s(ctx)
    both_finite = np.isfinite(a) & np.isfinite(b)
    assert np.allclose(a[both_finite], b[both_finite], rtol=1e-9, atol=1e-9)
    # Where one is non-finite the other must be too (protection aside).
    assert (np.isfinite(a) == np.isfinite(b)).all()
