"""Tests for the bi-level formalism and the paper's worked example."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bilevel.gap import percent_gap
from repro.bilevel.linear import LinearLowerLevel, mersha_dempe_example
from repro.bilevel.problem import GridBilevelProblem


class TestPercentGap:
    def test_zero_at_bound(self):
        assert percent_gap(10.0, 10.0) == 0.0

    def test_linear_scaling(self):
        assert percent_gap(11.0, 10.0) == pytest.approx(10.0)

    def test_guard_on_zero_bound(self):
        g = percent_gap(1.0, 0.0)
        assert np.isfinite(g) and g > 0

    def test_infinite_bound(self):
        assert np.isinf(percent_gap(5.0, np.inf))

    def test_value_below_bound_raises(self):
        with pytest.raises(ValueError, match="below the lower bound"):
            percent_gap(5.0, 10.0)


class TestLinearLowerLevel:
    @pytest.fixture
    def ll(self):
        # The Program-3 lower level.
        return LinearLowerLevel(
            d=-1.0, rows=((-3.0, 1.0, -3.0), (3.0, 1.0, 30.0))
        )

    def test_feasible_interval(self, ll):
        lo, hi = ll.feasible_interval(6.0)
        assert lo == pytest.approx(0.0)
        assert hi == pytest.approx(12.0)

    def test_reaction_x6(self, ll):
        """Paper §II: P(6) = {12}."""
        r = ll.rational_reaction(6.0)
        assert r.reactions == (12.0,)

    def test_reaction_x2(self, ll):
        """Paper §V-B: x=2 leads to LL optimum y=3."""
        r = ll.rational_reaction(2.0)
        assert r.reactions == (3.0,)

    def test_infeasible_x(self, ll):
        # x small enough that y <= 3x-3 < 0 conflicts with y >= 0.
        r = ll.rational_reaction(0.5)
        assert not r.feasible

    def test_indifferent_objective(self):
        ll0 = LinearLowerLevel(d=0.0, rows=((0.0, 1.0, 5.0),))
        r = ll0.rational_reaction(1.0)
        assert r.feasible and set(r.reactions) == {0.0, 5.0}

    def test_feasibility_predicate(self, ll):
        assert ll.feasible(6.0, 12.0)
        assert not ll.feasible(6.0, 13.0)
        assert not ll.feasible(6.0, -1.0)


class TestMershaDempeExample:
    @pytest.fixture
    def ex(self):
        return mersha_dempe_example()

    def test_rational_pair_ul_infeasible(self, ex):
        """The paper's headline: (x=6, y=12) violates 2x - 3y >= -12."""
        assert ex.rational_reaction(6.0).reactions == (12.0,)
        assert not ex.upper_feasible(6.0, 12.0)

    def test_naive_y8_is_ul_feasible_but_not_rational(self, ex):
        assert ex.upper_feasible(6.0, 8.0)
        assert 8.0 not in ex.rational_reaction(6.0).reactions

    def test_inducible_region_discontinuous(self, ex):
        xs = np.linspace(1.0, 10.0, 181)
        points = ex.inducible_region(xs)
        feas = np.array([p.upper_feasible for p in points])
        # Feasible, then a forbidden band, then feasible again.
        transitions = np.abs(np.diff(feas.astype(int))).sum()
        assert transitions >= 2
        assert not feas.all() and feas.any()

    def test_optimistic_solution_is_bilevel_feasible(self, ex):
        best = ex.solve_optimistic(n_grid=4001)
        assert best is not None
        assert best.bilevel_feasible
        # Not in the forbidden band, reaction consistent.
        assert ex.rational_reaction(best.x).reactions[0] == pytest.approx(best.y)

    def test_grid_enumeration_agrees_with_closed_form(self, ex):
        grid = GridBilevelProblem(ex, y_grid=np.linspace(0.0, 15.0, 3001))
        for x in (2.0, 4.0, 6.0, 8.0):
            exact = ex.rational_reaction(x).reactions[0]
            approx = grid.rational_reaction(x).reactions
            assert min(abs(y - exact) for y in approx) < 0.01

    def test_classify_matches_definitions(self, ex):
        grid = GridBilevelProblem(ex, y_grid=np.linspace(0.0, 15.0, 1501))
        p = grid.classify(6.0, 12.0)
        assert p.lower_feasible and p.lower_optimal and not p.upper_feasible
        assert not p.bilevel_feasible
        q = grid.classify(6.0, 8.0)
        assert q.upper_feasible and q.lower_feasible and not q.lower_optimal


class TestGridProblem:
    def test_empty_grid_rejected(self, rng):
        ex = mersha_dempe_example()
        with pytest.raises(ValueError, match="empty"):
            GridBilevelProblem(ex, y_grid=[])

    def test_solve_optimistic_on_grid(self):
        ex = mersha_dempe_example()
        grid = GridBilevelProblem(ex, y_grid=np.linspace(0.0, 15.0, 751))
        best = grid.solve_optimistic(np.linspace(1.0, 10.0, 181))
        closed = ex.solve_optimistic(n_grid=4001)
        assert best is not None and closed is not None
        assert best.upper_objective == pytest.approx(closed.upper_objective, abs=0.2)


class TestTaxonomy:
    def test_strategies_present(self):
        from repro.bilevel.taxonomy import STRATEGY_CODES, bilevel_taxonomy

        g = bilevel_taxonomy()
        for code in ("NSQ", "STA", "COE", "MOA", "APP"):
            assert code in g
        assert set(STRATEGY_CODES) >= {"NSQ", "REP", "CST", "STA", "COE", "MOA", "APP"}

    def test_carbon_and_cobra_are_coevolutionary(self):
        from repro.bilevel.taxonomy import bilevel_taxonomy

        g = bilevel_taxonomy()
        assert g.has_edge("COE", "CARBON (this paper)")
        assert g.has_edge("COE", "COBRA (Legillon et al. 2012)")

    def test_is_a_tree(self):
        import networkx as nx

        from repro.bilevel.taxonomy import bilevel_taxonomy

        g = bilevel_taxonomy()
        assert nx.is_directed_acyclic_graph(g)
        # Every non-root node has exactly one parent.
        roots = [n for n in g if g.in_degree(n) == 0]
        assert roots == ["bi-level metaheuristics"]
        assert all(g.in_degree(n) == 1 for n in g if n != roots[0])

    def test_render_contains_all_nodes(self):
        from repro.bilevel.taxonomy import bilevel_taxonomy, render_taxonomy

        g = bilevel_taxonomy()
        text = render_taxonomy(g)
        for _, data in g.nodes(data=True):
            assert data["label"] in text
