"""The maximin bilinear toy: analytic ground truth and evaluator surface.

Everything the convergence gate leans on is pinned here first, at the
unit level: the closed-form best response agrees with brute force over
all ``2^m`` baskets, the saddle sits exactly at ``mean(x) = a`` with
value 0, the Table I feature context makes the one-terminal tree
``COST`` (and the classical heuristics) optimal followers, and the
evaluator behaves like its BCPOP sibling (validation, memo keys, work
counters).
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bilevel import BilinearInstance, bilinear_instance
from repro.covering.heuristics import make_heuristic
from repro.gp.tree import SyntaxTree


@pytest.fixture(scope="module")
def inst():
    return bilinear_instance()


def brute_force_best_response(inst, prices):
    """Exact ``min_y g(x, y)`` by enumerating all 2^m baskets."""
    best = np.inf
    for bits in itertools.product([False, True], repeat=inst.m):
        best = min(best, inst.payoff(prices, np.array(bits)))
    return best


leader = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False, width=32),
    min_size=6,
    max_size=6,
).map(lambda xs: np.array(xs, dtype=np.float64))


class TestAnalytics:
    @given(prices=leader)
    @settings(max_examples=30, deadline=None)
    def test_closed_form_matches_brute_force(self, inst, prices):
        closed = inst.best_response_value(prices)
        brute = brute_force_best_response(inst, prices)
        assert closed == pytest.approx(brute, abs=1e-12)

    @given(prices=leader)
    @settings(max_examples=30, deadline=None)
    def test_best_response_achieves_the_bound(self, inst, prices):
        response = inst.best_response(prices)
        assert inst.payoff(prices, response) == pytest.approx(
            inst.best_response_value(prices), abs=1e-12
        )

    @given(prices=leader)
    @settings(max_examples=50, deadline=None)
    def test_saddle_is_the_unique_argmax(self, inst, prices):
        """Any leader off ``mean(x) = a`` scores strictly below the
        maximin value 0 under rational reaction."""
        value = inst.best_response_value(prices)
        assert value <= inst.maximin_value + 1e-12
        lean = abs(prices.mean() - inst.a)
        if lean > 1e-9:
            assert value < -1e-9 * inst.scale * min(inst.b, 1 - inst.b)

    def test_saddle_value_is_zero(self, inst):
        at_saddle = np.full(inst.n, inst.a)
        assert inst.best_response_value(at_saddle) == pytest.approx(0.0, abs=1e-12)
        assert inst.saddle_distance(at_saddle) == pytest.approx(0.0, abs=1e-15)

    def test_bang_bang_switches_at_a(self, inst):
        below = np.full(inst.n, inst.a - 0.1)
        above = np.full(inst.n, inst.a + 0.1)
        assert inst.best_response(below).all()
        assert not inst.best_response(above).any()


class TestOptimalFollowers:
    """The policies that should read the saddle geometry perfectly."""

    @pytest.mark.parametrize("tree_text", ["T:COST", "P:div T:COST T:COVER"])
    @given(prices=leader)
    @settings(max_examples=25, deadline=None)
    def test_cost_trees_are_rational(self, inst, tree_text, prices):
        evaluator = inst.make_evaluator()
        out = evaluator.evaluate_heuristic(prices, SyntaxTree.deserialize(tree_text))
        assert out.gap == pytest.approx(0.0, abs=1e-9)

    @pytest.mark.parametrize("name", ["cost", "chvatal", "dual", "lp_guided"])
    def test_classical_heuristics_are_rational(self, inst, name):
        evaluator = inst.make_evaluator()
        rng = np.random.default_rng(11)
        for _ in range(10):
            prices = rng.uniform(0, 1, size=inst.n)
            out = evaluator.evaluate_heuristic(prices, make_heuristic(name))
            assert out.gap == pytest.approx(0.0, abs=1e-6)

    def test_constant_specialist_has_one_sided_gap(self, inst):
        """A take-all specialist is rational below ``a`` and pays the
        full overshoot above it — the cycling mechanism in one assert."""
        take_all = SyntaxTree.deserialize("P:sub T:BSUM T:QSUM")  # b - w < 0
        evaluator = inst.make_evaluator()
        below = evaluator.evaluate_heuristic(np.full(inst.n, inst.a - 0.2), take_all)
        above = evaluator.evaluate_heuristic(np.full(inst.n, inst.a + 0.2), take_all)
        assert below.selection.all() and above.selection.all()
        assert below.gap == pytest.approx(0.0, abs=1e-9)
        assert above.gap > 1.0


class TestEvaluatorSurface:
    def test_validation(self):
        with pytest.raises(ValueError, match="weights"):
            BilinearInstance(n=2, weights=np.array([1.0, -1.0]), a=0.5, b=0.5, scale=1.0)
        with pytest.raises(ValueError, match="a must be"):
            bilinear_instance(a=1.5)
        with pytest.raises(ValueError, match="b must be"):
            bilinear_instance(b=0.0)
        inst = bilinear_instance()
        with pytest.raises(ValueError, match="shape"):
            inst.validate_prices(np.zeros(3))
        assert inst.validate_prices(np.full(inst.n, 7.0)).max() == 1.0

    def test_digest_distinguishes_instances(self):
        assert bilinear_instance().digest == bilinear_instance().digest
        assert bilinear_instance().digest != bilinear_instance(a=0.4).digest

    def test_context_features(self, inst):
        evaluator = inst.make_evaluator()
        prices = np.full(inst.n, inst.a + 0.1)
        ctx = evaluator.context(prices)
        assert ctx.costs.shape == (inst.m,)
        assert (ctx.costs > 0).all()  # above a: every take hurts
        assert np.array_equal(ctx.duals, -ctx.costs)
        assert not ctx.xbar.any()
        below = evaluator.context(np.full(inst.n, inst.a - 0.1))
        assert (below.costs < 0).all() and below.xbar.all()

    def test_memo_and_key(self, inst):
        evaluator = inst.make_evaluator(memo_size=16)
        tree = SyntaxTree.deserialize("T:COST")
        prices = np.full(inst.n, 0.5)
        first = evaluator.evaluate_heuristic(prices, tree)
        second = evaluator.evaluate_heuristic(prices, tree)
        assert evaluator.n_evaluations == 1
        assert second.revenue == first.revenue
        assert evaluator.memo_stats["hits"] == 1
        # Non-tree callables are not content-addressable: no key, no memo.
        assert evaluator.heuristic_key(prices, make_heuristic("cost")) is None

    def test_key_separates_prices_and_trees(self, inst):
        evaluator = inst.make_evaluator()
        tree = SyntaxTree.deserialize("T:COST")
        base = evaluator.heuristic_key(np.full(inst.n, 0.5), tree)
        assert base == evaluator.heuristic_key(np.full(inst.n, 0.5), tree)
        assert base != evaluator.heuristic_key(np.full(inst.n, 0.6), tree)
        assert base != evaluator.heuristic_key(
            np.full(inst.n, 0.5), SyntaxTree.deserialize("T:DUAL")
        )

    def test_outcome_is_bcpop_shaped(self, inst):
        out = inst.make_evaluator().evaluate_heuristic(
            np.full(inst.n, 0.2), SyntaxTree.deserialize("T:COST")
        )
        assert out.feasible
        assert out.selection.dtype == bool and out.selection.shape == (inst.m,)
        assert out.revenue == out.ll_cost
        assert out.gap >= 0.0
        assert out.lower_bound <= out.revenue + 1e-12
