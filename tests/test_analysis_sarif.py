"""SARIF 2.1.0 output: schema shape, determinism, CLI wiring."""

from __future__ import annotations

import json
import textwrap

from repro.analysis.cli import main as lint_main
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.flow.cli import main as flow_main
from repro.analysis.sarif import SARIF_SCHEMA, SARIF_VERSION, render_sarif, to_sarif


def _diag(path="src/m.py", line=3, col=4, code="R001", message="msg"):
    return Diagnostic(path=path, line=line, col=col, code=code, message=message)


class TestSarifShape:
    def test_top_level_schema_fields(self):
        log = to_sarif([_diag()], "repro-lint", {"R001": "rule one"})
        assert log["$schema"] == SARIF_SCHEMA
        assert log["version"] == SARIF_VERSION
        assert len(log["runs"]) == 1

    def test_driver_carries_only_fired_rules(self):
        findings = [_diag(code="R001"), _diag(line=9, code="R004")]
        log = to_sarif(findings, "repro-lint", {"R001": "a", "R004": "b", "R007": "c"})
        rules = log["runs"][0]["tool"]["driver"]["rules"]
        assert [r["id"] for r in rules] == ["R001", "R004"]
        assert rules[0]["shortDescription"]["text"] == "a"

    def test_result_location_is_one_based(self):
        log = to_sarif([_diag(line=3, col=4)], "t", {})
        result = log["runs"][0]["results"][0]
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 3
        assert region["startColumn"] == 5  # 0-based col 4 -> SARIF col 5
        uri = result["locations"][0]["physicalLocation"]["artifactLocation"]["uri"]
        assert uri == "src/m.py"

    def test_unknown_rule_code_falls_back_to_code_text(self):
        log = to_sarif([_diag(code="F999")], "t", {})
        rules = log["runs"][0]["tool"]["driver"]["rules"]
        assert rules[0]["shortDescription"]["text"] == "F999"

    def test_results_sorted_and_render_deterministic(self):
        findings = [_diag(line=9, code="R004"), _diag(line=3, code="R001")]
        first = render_sarif(findings, "t", {})
        second = render_sarif(list(reversed(findings)), "t", {})
        assert first == second
        results = json.loads(first)["runs"][0]["results"]
        assert [r["ruleId"] for r in results] == ["R001", "R004"]

    def test_empty_findings_is_valid_sarif(self):
        log = to_sarif([], "t", {})
        assert log["runs"][0]["results"] == []
        assert log["runs"][0]["tool"]["driver"]["rules"] == []


class TestCliSarif:
    def test_repro_lint_sarif_output(self, tmp_path, capsys):
        target = tmp_path / "mod.py"
        target.write_text(
            textwrap.dedent("""
                import numpy as np
                rng = np.random.default_rng()
            """),
            encoding="utf-8",
        )
        exit_code = lint_main(["--format", "sarif", str(target)])
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == SARIF_VERSION
        results = payload["runs"][0]["results"]
        if exit_code == 1:  # findings present -> every result well-formed
            assert all(r["ruleId"].startswith("R") for r in results)

    def test_repro_flow_sarif_output(self, tmp_path, capsys):
        root = tmp_path / "pkg"
        root.mkdir()
        (root / "__init__.py").write_text("", encoding="utf-8")
        (root / "noisy.py").write_text(
            textwrap.dedent("""
                import numpy as np

                def fold():
                    fitness = np.random.default_rng().random()
                    return fitness
            """),
            encoding="utf-8",
        )
        assert flow_main(["--format", "sarif", str(root)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == SARIF_VERSION
        results = payload["runs"][0]["results"]
        assert [r["ruleId"] for r in results] == ["F001"]
        assert "noisy.py" in results[0]["locations"][0]["physicalLocation"][
            "artifactLocation"
        ]["uri"]
