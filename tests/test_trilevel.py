"""Tests for the tri-level extension (paper future work, §VI)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bcpop.generator import generate_instance
from repro.core.config import CarbonConfig
from repro.covering.heuristics import chvatal_score
from repro.trilevel import (
    TriLevelEvaluator,
    TriLevelInstance,
    run_trilevel_carbon,
)


@pytest.fixture(scope="module")
def tri():
    return TriLevelInstance.from_bcpop(
        generate_instance(30, 4, seed=5, name="tri-test")
    )


class TestInstance:
    def test_from_bcpop_caps(self, tri):
        assert 0 < tri.wholesale_cap < tri.retail_cap
        assert tri.is_coverable()

    def test_bad_wholesale_fraction(self):
        base = generate_instance(20, 3, seed=1)
        with pytest.raises(ValueError, match="wholesale_fraction"):
            TriLevelInstance.from_bcpop(base, wholesale_fraction=0.0)

    def test_bad_caps_rejected(self, tri):
        with pytest.raises(ValueError, match="wholesale_cap"):
            TriLevelInstance(
                q=tri.q, demand=tri.demand, market_prices=tri.market_prices,
                n_own=tri.n_own, retail_cap=10.0, wholesale_cap=20.0,
            )

    def test_wholesale_validation(self, tri):
        with pytest.raises(ValueError, match="wholesale shape"):
            tri.validate_wholesale(np.zeros(tri.n_own + 1))
        clipped = tri.validate_wholesale(np.full(tri.n_own, 1e9))
        assert (clipped == tri.wholesale_cap).all()

    def test_retail_instance_costs(self, tri):
        retail = np.full(tri.n_own, 0.5 * tri.retail_cap)
        ll = tri.retail_instance(retail)
        assert ll.costs[: tri.n_own] == pytest.approx(retail)
        assert ll.costs[tri.n_own:] == pytest.approx(tri.market_prices)

    def test_provider_revenue_counts_wholesale(self, tri):
        sel = np.zeros(tri.n_bundles, dtype=bool)
        sel[0] = True
        w = np.full(tri.n_own, 10.0)
        assert tri.provider_revenue(w, sel) == pytest.approx(10.0)

    def test_reseller_margin(self, tri):
        sel = np.zeros(tri.n_bundles, dtype=bool)
        sel[0] = True
        w = np.full(tri.n_own, 10.0)
        r = np.full(tri.n_own, 25.0)
        assert tri.reseller_margin(w, r, sel) == pytest.approx(15.0)

    def test_margin_never_negative_after_clipping(self, tri):
        sel = np.ones(tri.n_bundles, dtype=bool)
        w = np.full(tri.n_own, 10.0)
        r_below_cost = np.full(tri.n_own, 5.0)  # clipped up to w
        assert tri.reseller_margin(w, r_below_cost, sel) == pytest.approx(0.0)


class TestEvaluator:
    def test_reaction_consistency(self, tri):
        ev = TriLevelEvaluator(tri, chvatal_score, reseller_population=6,
                               reseller_generations=2)
        rng = np.random.default_rng(0)
        w = np.full(tri.n_own, 0.3 * tri.wholesale_cap)
        reaction = ev.reseller_react(w, rng)
        # Retail never sells below wholesale.
        assert (reaction.retail >= w - 1e-9).all()
        # The reported payoffs recompute from the basket.
        assert reaction.provider_revenue == pytest.approx(
            tri.provider_revenue(w, reaction.selection)
        )
        assert reaction.reseller_margin == pytest.approx(
            tri.reseller_margin(w, reaction.retail, reaction.selection)
        )
        assert reaction.customer_gap >= -1e-9

    def test_nesting_multiplier_books(self, tri):
        ev = TriLevelEvaluator(tri, chvatal_score, reseller_population=5,
                               reseller_generations=3)
        rng = np.random.default_rng(1)
        ev.reseller_react(np.zeros(tri.n_own), rng)
        # population * (generations + 1) level-3 solves per reaction.
        assert ev.level3_evaluations == 5 * 4
        assert ev.nesting_multiplier == pytest.approx(20.0)

    def test_zero_wholesale_maximizes_reseller_freedom(self, tri):
        """With w = 0 the provider earns nothing regardless of reaction."""
        ev = TriLevelEvaluator(tri, chvatal_score, reseller_population=5,
                               reseller_generations=1)
        reaction = ev.reseller_react(np.zeros(tri.n_own), np.random.default_rng(2))
        assert reaction.provider_revenue == pytest.approx(0.0)

    def test_validation(self, tri):
        with pytest.raises(ValueError, match="reseller_population"):
            TriLevelEvaluator(tri, chvatal_score, reseller_population=1)


class TestTriLevelCarbon:
    def test_runs_and_accounts(self, tri):
        result = run_trilevel_carbon(
            tri, CarbonConfig.quick(15, 600, population_size=6),
            seed=0, reseller_population=5, reseller_generations=1,
        )
        assert result.algorithm == "CARBON3"
        assert result.ul_evaluations_used <= 15
        assert result.ll_evaluations_used <= 600
        assert result.extras["nesting_multiplier"] > 1.0
        assert np.isfinite(result.best_gap)

    def test_reproducible(self, tri):
        cfg = CarbonConfig.quick(10, 400, population_size=5)
        a = run_trilevel_carbon(tri, cfg, seed=4, reseller_population=4,
                                reseller_generations=1)
        b = run_trilevel_carbon(tri, cfg, seed=4, reseller_population=4,
                                reseller_generations=1)
        assert a.best_upper == pytest.approx(b.best_upper)
        assert a.best_gap == pytest.approx(b.best_gap)

    def test_nesting_consumes_l3_budget(self, tri):
        """The future-work observation: the deeper level eats the budget —
        level-3 solves per level-1 evaluation match the embedded GA size."""
        result = run_trilevel_carbon(
            tri, CarbonConfig.quick(15, 600, population_size=6),
            seed=1, reseller_population=6, reseller_generations=2,
        )
        assert result.extras["nesting_multiplier"] >= 6 * 3 * 0.5
