"""Tests for the classical scoring rules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.covering.greedy import GreedyContext, greedy_cover
from repro.covering.heuristics import (
    NAMED_HEURISTICS,
    chvatal_score,
    cost_score,
    coverage_score,
    dual_score,
    lp_guided_score,
    make_heuristic,
)
from repro.lp.relaxation import solve_relaxation
from tests.conftest import random_covering


class TestScores:
    def test_chvatal_prefers_efficient_bundle(self, tiny_covering):
        ctx = GreedyContext.fresh(tiny_covering)
        scores = chvatal_score(ctx)
        # bundle 1: cost 3, useful 6 -> 0.5, the clear best.
        assert np.argmin(scores) == 1

    def test_cost_score_is_cost(self, tiny_covering):
        ctx = GreedyContext.fresh(tiny_covering)
        assert cost_score(ctx) == pytest.approx(tiny_covering.costs)

    def test_cost_score_returns_copy(self, tiny_covering):
        ctx = GreedyContext.fresh(tiny_covering)
        s = cost_score(ctx)
        s[0] = -1.0
        assert tiny_covering.costs[0] != -1.0

    def test_coverage_score_prefers_big_bundles(self, tiny_covering):
        ctx = GreedyContext.fresh(tiny_covering)
        assert np.argmin(coverage_score(ctx)) == 1  # useful coverage 6

    def test_dual_score_without_relaxation_equals_cost(self, tiny_covering):
        ctx = GreedyContext.fresh(tiny_covering)
        assert dual_score(ctx) == pytest.approx(tiny_covering.costs)

    def test_dual_score_with_relaxation(self, small_covering):
        relax = solve_relaxation(small_covering)
        ctx = GreedyContext.fresh(small_covering, duals=relax.duals, xbar=relax.xbar)
        expected = small_covering.costs - relax.duals @ small_covering.q
        assert dual_score(ctx) == pytest.approx(expected)

    def test_lp_guided_follows_xbar(self, small_covering):
        relax = solve_relaxation(small_covering)
        ctx = GreedyContext.fresh(small_covering, duals=relax.duals, xbar=relax.xbar)
        scores = lp_guided_score(ctx)
        # Bundles at x̄=1 must be strictly preferred over x̄=0 bundles.
        ones = relax.xbar > 0.999
        zeros = relax.xbar < 0.001
        if ones.any() and zeros.any():
            assert scores[ones].max() < scores[zeros].min()


class TestRegistry:
    def test_all_named_heuristics_solve(self, small_covering):
        for name, fn in NAMED_HEURISTICS.items():
            sol = greedy_cover(small_covering, fn)
            assert sol.feasible, name

    def test_make_heuristic_lookup(self):
        assert make_heuristic("chvatal") is chvatal_score

    def test_make_heuristic_random_needs_rng(self):
        with pytest.raises(ValueError, match="rng"):
            make_heuristic("random")

    def test_make_heuristic_random_with_rng(self, small_covering, rng):
        fn = make_heuristic("random", rng=rng)
        sol = greedy_cover(small_covering, fn)
        assert sol.feasible

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown heuristic"):
            make_heuristic("bogus")


class TestRelativeQuality:
    @pytest.mark.parametrize("seed", range(6))
    def test_chvatal_beats_random_on_average(self, seed):
        inst = random_covering(seed, n_services=4, n_bundles=20)
        if not inst.is_coverable():
            pytest.skip("uncoverable draw")
        chv = greedy_cover(inst, chvatal_score).cost
        gen = np.random.default_rng(seed)
        rand_costs = [
            greedy_cover(inst, make_heuristic("random", rng=gen)).cost
            for _ in range(5)
        ]
        assert chv <= np.mean(rand_costs) + 1e-9
