"""Differential tests: compiled GP evaluation vs the tree interpreter.

The compiler's whole contract is *bit-identity*: for every tree and every
context, ``compile_tree(t)(ctx)`` returns exactly the array
``t.evaluate(ctx)`` would — including NaN/inf propagation, protected
division/modulo edge cases, and constant-folded subtrees.  The interpreter
(``ExecutionConfig(compile=False)``) is the oracle throughout.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bcpop.generator import generate_instance
from repro.covering.greedy import ContextStatics, GreedyContext, greedy_cover
from repro.gp.compile import (
    STATIC_TERMINALS,
    CompileCache,
    CompiledProgram,
    compile_tree,
)
from repro.gp.generate import full_tree, grow_tree
from repro.gp.nodes import Constant
from repro.gp.primitives import (
    lookup_primitive,
    lookup_terminal,
    paper_primitive_set,
)
from repro.gp.tree import SyntaxTree
from repro.lp.bounds import RelaxationCache
from tests.conftest import random_covering


def T(name):
    return lookup_terminal(name)


def P(name):
    return lookup_primitive(name)


def C(value):
    return Constant(value)


def assert_bitwise_equal(a: np.ndarray, b: np.ndarray) -> None:
    """Exact equality including NaN positions and signed zeros."""
    assert a.shape == b.shape
    assert a.dtype == b.dtype == np.float64
    assert np.array_equal(
        a.view(np.uint64), b.view(np.uint64)
    ), f"bit mismatch: {a} vs {b}"


def random_tree(seed: int, max_depth: int = 6) -> SyntaxTree:
    gen = np.random.default_rng(seed)
    pset = paper_primitive_set(erc_probability=0.3)
    depth = int(gen.integers(0, max_depth + 1))
    build = full_tree if seed % 2 else grow_tree
    return build(pset, depth, gen)


class TestBasicLowering:
    def test_single_terminal(self, tiny_covering):
        ctx = GreedyContext.fresh(tiny_covering)
        prog = compile_tree(SyntaxTree([T("COST")]))
        assert_bitwise_equal(prog(ctx), np.asarray(tiny_covering.costs))

    def test_single_constant_broadcasts(self, tiny_covering):
        ctx = GreedyContext.fresh(tiny_covering)
        tree = SyntaxTree([C(2.5)])
        prog = compile_tree(tree)
        assert_bitwise_equal(prog(ctx), tree.evaluate(ctx))
        assert prog(ctx).shape == (tiny_covering.n_bundles,)

    def test_constant_folding_collapses_instructions(self):
        # ((1 + 2) * 3) is one CONST instruction, value 9.
        tree = SyntaxTree([P("mul"), P("add"), C(1.0), C(2.0), C(3.0)])
        prog = compile_tree(tree)
        assert prog.n_instructions == 1
        assert prog.is_static

    def test_folding_protected_division_by_zero(self, tiny_covering):
        # 1 / 0 under the protected division is 1.0 — folded or not.
        tree = SyntaxTree([P("div"), C(1.0), C(0.0)])
        ctx = GreedyContext.fresh(tiny_covering)
        prog = compile_tree(tree)
        assert prog.n_instructions == 1  # folded
        assert_bitwise_equal(prog(ctx), tree.evaluate(ctx))

    def test_cse_deduplicates_repeated_subtree(self):
        # (COST/QSUM) + (COST/QSUM): the division is emitted once.
        nodes = [
            P("add"),
            P("div"), T("COST"), T("QSUM"),
            P("div"), T("COST"), T("QSUM"),
        ]
        prog = compile_tree(SyntaxTree(nodes))
        # 2 loads + 1 div + 1 add = 4, not 5.
        assert prog.n_instructions == 4

    def test_cse_result_identical(self, small_covering):
        nodes = [
            P("sub"),
            P("mul"), T("COVER"), T("COST"),
            P("mul"), T("COVER"), T("COST"),
        ]
        tree = SyntaxTree(nodes)
        ctx = GreedyContext.fresh(small_covering)
        assert_bitwise_equal(compile_tree(tree)(ctx), tree.evaluate(ctx))

    def test_static_partition(self):
        # COVER is dynamic, COST is static.
        tree = SyntaxTree([P("div"), T("COST"), T("COVER")])
        prog = compile_tree(tree)
        assert not prog.is_static
        assert len(prog.static_instrs) == 1   # load COST
        assert len(prog.dynamic_instrs) == 2  # load COVER, div
        static_only = SyntaxTree([P("add"), T("COST"), T("DUAL")])
        assert compile_tree(static_only).is_static

    def test_static_terminal_set_matches_pick_semantics(self):
        # The two features GreedyContext.pick refreshes are exactly the
        # dynamic ones; everything else in Table I is static.
        assert "COVER" not in STATIC_TERMINALS
        assert "BRES" not in STATIC_TERMINALS
        for name in ("COST", "QSUM", "QMAX", "BSUM", "DUAL", "XLP"):
            assert name in STATIC_TERMINALS

    def test_malformed_tree_rejected(self):
        with pytest.raises(ValueError, match="stack"):
            compile_tree(SyntaxTree([P("add"), T("COST")]))


class TestDifferentialRandomTrees:
    @settings(max_examples=120, deadline=None)
    @given(seed=st.integers(0, 1_000_000), inst_seed=st.integers(0, 40))
    def test_random_tree_bit_identical(self, seed, inst_seed):
        tree = random_tree(seed)
        inst = random_covering(inst_seed)
        ctx = GreedyContext.fresh(inst)
        expected = tree.evaluate(ctx)
        got = compile_tree(tree)(GreedyContext.fresh(inst))
        assert_bitwise_equal(got, expected)

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 1_000_000))
    def test_with_duals_and_xbar(self, seed):
        tree = random_tree(seed)
        inst = random_covering(seed % 13)
        cache = RelaxationCache()
        relax = cache.get(inst)
        kw = dict(duals=relax.duals, xbar=relax.xbar)
        expected = tree.evaluate(GreedyContext.fresh(inst, **kw))
        got = compile_tree(tree)(GreedyContext.fresh(inst, **kw))
        assert_bitwise_equal(got, expected)

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 1_000_000), step_seed=st.integers(0, 10_000))
    def test_mid_solve_context_bit_identical(self, seed, step_seed):
        """After picks mutate the dynamic features, the static bank is
        replayed and the dynamic suffix recomputed — still bit-identical."""
        tree = random_tree(seed)
        inst = random_covering(seed % 13)
        prog = compile_tree(tree)
        ctx_i = GreedyContext.fresh(inst)
        ctx_c = GreedyContext.fresh(inst)
        # Warm the static bank before mutating the context.
        assert_bitwise_equal(prog(ctx_c), tree.evaluate(ctx_i))
        gen = np.random.default_rng(step_seed)
        for j in gen.permutation(inst.n_bundles)[:3]:
            ctx_i.pick(int(j))
            ctx_c.pick(int(j))
            assert_bitwise_equal(prog(ctx_c), tree.evaluate(ctx_i))

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 1_000_000))
    def test_nan_inf_inputs_propagate_identically(self, seed):
        """Poisoned features (NaN, ±inf) flow through both paths the same
        way — protected primitives only guard division/modulo by ~0."""
        tree = random_tree(seed)
        inst = random_covering(seed % 7)
        poison = GreedyContext.fresh(inst)
        gen = np.random.default_rng(seed)
        n = inst.n_bundles
        bad = np.where(
            gen.random(n) < 0.3,
            gen.choice([np.nan, np.inf, -np.inf, 0.0], size=n),
            poison.duals,
        )
        poison.duals = bad
        poison2 = GreedyContext.fresh(inst)
        poison2.duals = bad.copy()
        assert_bitwise_equal(compile_tree(tree)(poison2), tree.evaluate(poison))

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 1_000_000))
    def test_serialize_compile_roundtrip(self, seed):
        """serialize → deserialize → compile evaluates identically, and
        the program key round-trips with the canonical serialization."""
        tree = random_tree(seed)
        clone = SyntaxTree.deserialize(tree.serialize())
        inst = random_covering(seed % 11)
        a = compile_tree(tree)(GreedyContext.fresh(inst))
        b = compile_tree(clone)(GreedyContext.fresh(inst))
        assert_bitwise_equal(a, b)
        assert compile_tree(tree).key == clone.serialize()

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 1_000_000))
    def test_evaluate_stacked_rows_match(self, seed):
        tree = random_tree(seed)
        prog = compile_tree(tree)
        ctxs = [
            GreedyContext.fresh(random_covering(s, n_services=3, n_bundles=8))
            for s in range(seed % 3 + 2)
        ]
        stacked = prog.evaluate_stacked(ctxs)
        assert stacked.shape == (len(ctxs), 8)
        for i, ctx in enumerate(ctxs):
            assert_bitwise_equal(
                stacked[i].copy(), prog(GreedyContext.fresh(ctx.instance))
            )


class TestGreedyEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 1_000_000), inst_seed=st.integers(0, 30))
    def test_greedy_cover_identical_solutions(self, seed, inst_seed):
        """The full greedy solve — static hoist, shared statics and all —
        selects the same bundles at the same cost as the interpreter."""
        tree = random_tree(seed)
        inst = random_covering(inst_seed)
        base = greedy_cover(inst, tree)
        prog = compile_tree(tree)
        statics = ContextStatics.for_instance(inst)
        fast = greedy_cover(inst, prog, statics=statics)
        assert np.array_equal(base.selected, fast.selected)
        assert base.cost == fast.cost
        assert base.feasible == fast.feasible
        assert base.iterations == fast.iterations

    def test_statics_match_fresh_construction(self):
        inst = random_covering(3)
        statics = ContextStatics.for_instance(inst)
        fresh = GreedyContext.fresh(inst)
        assert_bitwise_equal(statics.q_sum, fresh.q_sum)
        assert_bitwise_equal(statics.q_max, fresh.q_max)
        assert_bitwise_equal(statics.coverage, fresh.coverage)
        assert_bitwise_equal(statics.demand_total, fresh.demand_total)

    def test_statics_shape_mismatch_rejected(self):
        statics = ContextStatics.for_instance(random_covering(1, n_bundles=10))
        other = random_covering(2, n_bundles=5)
        with pytest.raises(ValueError, match="statics"):
            GreedyContext.fresh(other, statics=statics)


class TestEvaluatorIntegration:
    def test_compiled_vs_interpreted_outcomes(self, small_bcpop):
        """Evaluator-level differential: compile=True and compile=False
        produce byte-identical outcomes over a random population."""
        fast = small_bcpop.make_evaluator(compile=True)
        oracle = small_bcpop.make_evaluator(compile=False)
        gen = np.random.default_rng(11)
        low, high = small_bcpop.price_bounds
        for seed in range(12):
            tree = random_tree(seed)
            prices = gen.uniform(low, high)
            a = fast.evaluate_heuristic(prices, tree)
            b = oracle.evaluate_heuristic(prices, tree)
            assert np.array_equal(a.selection, b.selection)
            assert a.ll_cost == b.ll_cost
            assert a.revenue == b.revenue
            assert a.gap == b.gap
            assert a.lower_bound == b.lower_bound

    def test_kernel_stats_exposed(self, small_bcpop):
        ev = small_bcpop.make_evaluator(compile=True)
        tree = SyntaxTree([P("div"), T("COST"), T("COVER")])
        prices = np.zeros(small_bcpop.n_own)
        ev.evaluate_heuristic_fresh(prices, tree)
        ev.evaluate_heuristic_fresh(prices, tree)
        stats = ev.kernel_stats
        assert stats["enabled"]
        assert stats["misses"] == 1
        assert stats["hits"] == 1
        off = small_bcpop.make_evaluator(compile=False)
        assert off.kernel_stats == {"enabled": False}

    def test_compile_off_uses_interpreter_directly(self, small_bcpop):
        ev = small_bcpop.make_evaluator(compile=False)
        assert ev.kernel is None
        tree = SyntaxTree([T("COST")])
        out = ev.evaluate_heuristic_fresh(np.zeros(small_bcpop.n_own), tree)
        assert out.feasible


class TestCompileCache:
    def test_structural_sharing(self):
        cache = CompileCache(maxsize=4)
        t1 = SyntaxTree([P("add"), T("COST"), T("QSUM")])
        t2 = SyntaxTree([P("add"), T("COST"), T("QSUM")])  # equal structure
        p1 = cache.get(t1)
        p2 = cache.get(t2)
        assert p1 is p2
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction(self):
        cache = CompileCache(maxsize=2)
        trees = [SyntaxTree([C(float(i))]) for i in range(3)]
        for t in trees:
            cache.get(t)
        assert len(cache) == 2
        assert cache.evictions == 1
        # Oldest (0.0) was evicted; re-getting it is a miss.
        cache.get(trees[0])
        assert cache.misses == 4

    def test_stats_shape(self):
        cache = CompileCache()
        stats = cache.stats
        assert set(stats) == {
            "entries", "capacity", "hits", "misses", "evictions", "hit_rate",
        }

    def test_programs_are_reusable_across_instances(self):
        cache = CompileCache()
        tree = SyntaxTree([P("mod"), T("COST"), T("COVER")])
        prog = cache.get(tree)
        for s in range(3):
            inst = random_covering(s)
            ctx = GreedyContext.fresh(inst)
            assert_bitwise_equal(prog(ctx), tree.evaluate(GreedyContext.fresh(inst)))


class TestStaticBankCaching:
    def test_bank_cached_per_program_and_width(self):
        inst = random_covering(5)
        tree = SyntaxTree([P("div"), T("COST"), T("COVER")])
        prog = compile_tree(tree)
        ctx = GreedyContext.fresh(inst)
        prog(ctx)
        from repro.gp.compile import _STATE_KEY

        state = ctx.extras[_STATE_KEY]
        assert state[0] is prog and state[1] == inst.n_bundles
        # A different program on the same context rebuilds its own bank.
        other = compile_tree(SyntaxTree([P("add"), T("COST"), T("COVER")]))
        other(ctx)
        assert ctx.extras[_STATE_KEY][0] is other

    def test_bank_never_leaks_between_solves(self):
        """Two consecutive solves of different instances with the same
        program must not share static registers."""
        tree = SyntaxTree([P("div"), T("COST"), T("COVER")])
        prog = compile_tree(tree)
        a = random_covering(1)
        b = random_covering(2)
        out_a = prog(GreedyContext.fresh(a))
        out_b = prog(GreedyContext.fresh(b))
        assert_bitwise_equal(out_a, tree.evaluate(GreedyContext.fresh(a)))
        assert_bitwise_equal(out_b, tree.evaluate(GreedyContext.fresh(b)))


class TestBcpopScale:
    def test_generated_instance_differential(self):
        """A Table-II-shaped (scaled-down) BCPOP instance: full pipeline
        differential across a small population of random trees."""
        inst = generate_instance(60, 6, seed=3)
        ev_fast = inst.make_evaluator(compile=True)
        ev_ref = inst.make_evaluator(compile=False)
        gen = np.random.default_rng(0)
        low, high = inst.price_bounds
        for seed in range(6):
            tree = random_tree(seed, max_depth=5)
            prices = gen.uniform(low, high)
            a = ev_fast.evaluate_heuristic_fresh(prices, tree)
            b = ev_ref.evaluate_heuristic_fresh(prices, tree)
            assert np.array_equal(a.selection, b.selection)
            assert a.gap == b.gap
