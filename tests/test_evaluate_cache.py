"""Property tests for the content-addressed evaluation memo and the
batched pipeline's dedup/accounting semantics.

The contract under test (DESIGN.md, evaluation-pipeline section):

* a memo hit returns exactly what a fresh evaluation would have produced
  (greedy solves are pure, so memoization is exact);
* the evaluator's ``n_evaluations`` budget counter counts solver work
  actually performed — misses only, never hits;
* memo keys address *content* (canonical tree serialization), so trees
  that merely print alike never collide.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bcpop.evaluate import (
    EvaluationMemo,
    EvaluationPipeline,
    LowerLevelEvaluator,
    LowerLevelOutcome,
)
from repro.bcpop.generator import generate_instance
from repro.covering.heuristics import chvatal_score
from repro.gp.generate import grow_tree
from repro.gp.nodes import Constant
from repro.gp.primitives import lookup_primitive, lookup_terminal, paper_primitive_set
from repro.gp.tree import SyntaxTree


@pytest.fixture(scope="module")
def instance():
    return generate_instance(20, 3, seed=11, name="memo-20x3")


@pytest.fixture
def evaluator(instance):
    return LowerLevelEvaluator(instance)


@pytest.fixture
def tree():
    return SyntaxTree(
        [lookup_primitive("add"), lookup_terminal("COST"), lookup_terminal("QSUM")]
    )


def prices_for(instance, seed=0):
    gen = np.random.default_rng(seed)
    return gen.uniform(0.1, instance.price_cap, instance.n_own)


def outcomes_equal(a: LowerLevelOutcome, b: LowerLevelOutcome) -> bool:
    return (
        np.array_equal(a.prices, b.prices)
        and np.array_equal(a.selection, b.selection)
        and a.ll_cost == b.ll_cost
        and a.revenue == b.revenue
        and a.gap == b.gap
        and a.lower_bound == b.lower_bound
        and a.feasible == b.feasible
    )


class TestMemoCorrectness:
    def test_hit_equals_fresh_evaluation(self, instance, evaluator, tree):
        prices = prices_for(instance)
        first = evaluator.evaluate_heuristic(prices, tree)
        hit = evaluator.evaluate_heuristic(prices, tree)
        fresh = LowerLevelEvaluator(instance, memo_size=0).evaluate_heuristic(
            prices, tree
        )
        assert outcomes_equal(first, hit)
        assert outcomes_equal(hit, fresh)
        assert evaluator.memo.hits == 1

    def test_budget_counter_counts_misses_only(self, instance, evaluator, tree):
        prices = prices_for(instance)
        for _ in range(5):
            evaluator.evaluate_heuristic(prices, tree)
        assert evaluator.n_evaluations == 1
        assert evaluator.memo.hits == 4
        assert evaluator.memo.misses == 1
        other = prices_for(instance, seed=1)
        evaluator.evaluate_heuristic(other, tree)
        assert evaluator.n_evaluations == 2

    def test_empty_memo_still_memoizes(self, instance, tree):
        """Regression: EvaluationMemo has __len__, so an *empty* memo is
        falsy — the enablement checks must use ``is not None`` or the
        memo never records its first entry."""
        ev = LowerLevelEvaluator(instance)
        assert len(ev.memo) == 0 and not ev.memo  # falsy when empty
        ev.evaluate_heuristic(prices_for(instance), tree)
        assert len(ev.memo) == 1
        assert ev.memo.misses == 1

    def test_memo_disabled_when_size_zero(self, instance, tree):
        ev = LowerLevelEvaluator(instance, memo_size=0)
        assert ev.memo is None
        prices = prices_for(instance)
        ev.evaluate_heuristic(prices, tree)
        ev.evaluate_heuristic(prices, tree)
        assert ev.n_evaluations == 2
        assert ev.memo_stats == {"enabled": False}

    def test_opaque_callables_never_memoized(self, instance, evaluator):
        prices = prices_for(instance)
        assert evaluator.heuristic_key(prices, chvatal_score) is None
        evaluator.evaluate_heuristic(prices, chvatal_score)
        evaluator.evaluate_heuristic(prices, chvatal_score)
        assert evaluator.n_evaluations == 2
        assert len(evaluator.memo) == 0


class TestMemoKeys:
    def test_keys_distinguish_trees_that_print_alike(self, instance, evaluator):
        """ERC rounding in to_infix makes 2.0 and 2.0000001 display as
        "2"; the content-addressed key must still tell them apart."""
        a = SyntaxTree([Constant(2.0)])
        b = SyntaxTree([Constant(2.0 + 1e-7)])
        assert a.to_infix() == b.to_infix()
        prices = prices_for(instance)
        ka = evaluator.heuristic_key(prices, a)
        kb = evaluator.heuristic_key(prices, b)
        assert ka != kb

    def test_keys_distinguish_prices(self, instance, evaluator, tree):
        ka = evaluator.heuristic_key(prices_for(instance, 0), tree)
        kb = evaluator.heuristic_key(prices_for(instance, 1), tree)
        assert ka != kb

    def test_keys_distinguish_instances(self, tree):
        a = LowerLevelEvaluator(generate_instance(20, 3, seed=1))
        b = LowerLevelEvaluator(generate_instance(20, 3, seed=2))
        prices = np.full(a.instance.n_own, 5.0)
        assert a.heuristic_key(prices, tree) != b.heuristic_key(prices, tree)

    def test_key_stable_across_evaluator_instances(self, instance, tree):
        prices = prices_for(instance)
        a = LowerLevelEvaluator(instance).heuristic_key(prices, tree)
        b = LowerLevelEvaluator(instance).heuristic_key(prices, tree)
        assert a == b

    def test_random_trees_round_trip_through_keys(self, instance, evaluator):
        """Serialization inside the key is canonical: equal trees (same
        node sequence) produce equal keys; different trees differ."""
        pset = paper_primitive_set()
        gen = np.random.default_rng(3)
        trees = [grow_tree(pset, 3, gen) for _ in range(12)]
        prices = prices_for(instance)
        keys = [evaluator.heuristic_key(prices, t) for t in trees]
        for t, k in zip(trees, keys):
            clone = SyntaxTree.deserialize(t.serialize())
            assert evaluator.heuristic_key(prices, clone) == k
        distinct_serials = {t.serialize() for t in trees}
        assert len(set(keys)) == len(distinct_serials)


class TestMemoLru:
    def test_eviction_order(self):
        memo = EvaluationMemo(maxsize=2)
        out = object()
        memo.put(b"a", out)
        memo.put(b"b", out)
        assert memo.get(b"a") is out  # refreshes a
        memo.put(b"c", out)  # evicts b (least recent)
        assert memo.get(b"b") is None
        assert memo.get(b"a") is out
        assert memo.get(b"c") is out

    def test_clear_resets_counters(self):
        memo = EvaluationMemo(maxsize=4)
        memo.put(b"a", object())
        memo.get(b"a")
        memo.get(b"x")
        memo.clear()
        assert len(memo) == 0 and memo.hits == 0 and memo.misses == 0
        assert memo.hit_rate == 0.0

    def test_invalid_maxsize(self):
        with pytest.raises(ValueError, match="maxsize"):
            EvaluationMemo(maxsize=0)


class TestPipelineDedup:
    def test_duplicate_requests_solved_once(self, instance, tree):
        ev = LowerLevelEvaluator(instance)
        pipe = EvaluationPipeline(ev)
        prices = prices_for(instance)
        outcomes = pipe.evaluate_heuristics([(prices, tree)] * 4)
        assert ev.n_evaluations == 1
        assert pipe.n_deduplicated == 3
        for out in outcomes[1:]:
            assert outcomes_equal(outcomes[0], out)

    def test_second_batch_served_from_memo(self, instance, tree):
        ev = LowerLevelEvaluator(instance)
        pipe = EvaluationPipeline(ev)
        requests = [(prices_for(instance, s), tree) for s in range(3)]
        first = pipe.evaluate_heuristics(requests)
        assert ev.n_evaluations == 3
        second = pipe.evaluate_heuristics(requests)
        assert ev.n_evaluations == 3  # all hits, zero fresh work
        for a, b in zip(first, second):
            assert outcomes_equal(a, b)
        assert ev.memo.hits == 3

    def test_request_order_preserved_with_mixed_solvers(self, instance, tree):
        """Memoizable (tree) and opaque (callable) requests interleave;
        outcomes come back in request order regardless."""
        ev = LowerLevelEvaluator(instance)
        pipe = EvaluationPipeline(ev)
        p0, p1 = prices_for(instance, 0), prices_for(instance, 1)
        requests = [(p0, tree), (p1, chvatal_score), (p1, tree), (p0, chvatal_score)]
        outcomes = pipe.evaluate_heuristics(requests)
        expected = [
            LowerLevelEvaluator(instance, memo_size=0).evaluate_heuristic_fresh(p, f)
            for p, f in requests
        ]
        for got, want in zip(outcomes, expected):
            assert outcomes_equal(got, want)

    def test_stats_shape(self, instance, tree):
        ev = LowerLevelEvaluator(instance)
        pipe = EvaluationPipeline(ev)
        pipe.evaluate_heuristics([(prices_for(instance), tree)])
        stats = pipe.stats
        assert stats["requests"] == 1
        assert stats["parent_evaluations"] == 1
        assert stats["worker_evaluations"] == 0
        assert stats["memo"]["enabled"] is True
        assert stats["memo"]["misses"] == 1
