"""Tests for the score-ordered greedy framework."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.covering.greedy import GreedyContext, greedy_cover
from repro.covering.heuristics import chvatal_score, cost_score
from repro.covering.instance import CoveringInstance
from tests.conftest import random_covering


class TestGreedyContext:
    def test_fresh_features(self, tiny_covering):
        ctx = GreedyContext.fresh(tiny_covering)
        assert ctx.q_sum == pytest.approx([4.0, 6.0, 4.0, 4.0])
        assert ctx.q_max == pytest.approx([4.0, 4.0, 4.0, 2.0])
        assert ctx.demand_total == pytest.approx([8.0] * 4)
        assert ctx.residual_total == pytest.approx([8.0] * 4)
        assert not ctx.covered

    def test_coverage_clips_at_residual(self, tiny_covering):
        ctx = GreedyContext.fresh(tiny_covering)
        # bundle 1 provides (4, 2); residual (4, 4) -> useful = 6
        assert ctx.coverage[1] == pytest.approx(6.0)

    def test_pick_updates_residual_in_place(self, tiny_covering):
        ctx = GreedyContext.fresh(tiny_covering)
        residual_ref = ctx.residual
        ctx.pick(1)
        assert ctx.residual is residual_ref  # in-place update
        assert ctx.residual == pytest.approx([0.0, 2.0])
        assert ctx.selected[1]
        assert ctx.step == 1

    def test_double_pick_raises(self, tiny_covering):
        ctx = GreedyContext.fresh(tiny_covering)
        ctx.pick(0)
        with pytest.raises(ValueError, match="already selected"):
            ctx.pick(0)

    def test_duals_aggregated_per_bundle(self, tiny_covering):
        duals = np.array([1.0, 2.0])
        ctx = GreedyContext.fresh(tiny_covering, duals=duals)
        assert ctx.duals == pytest.approx(duals @ tiny_covering.q)

    def test_bad_xbar_shape_raises(self, tiny_covering):
        with pytest.raises(ValueError, match="xbar"):
            GreedyContext.fresh(tiny_covering, xbar=np.ones(2))


class TestGreedyCover:
    def test_finds_feasible_cover(self, small_covering):
        sol = greedy_cover(small_covering, chvatal_score)
        assert sol.feasible
        sol.check(small_covering)

    def test_chvatal_on_tiny_instance_is_optimal(self, tiny_covering):
        sol = greedy_cover(tiny_covering, chvatal_score)
        assert sol.feasible
        assert sol.cost == pytest.approx(5.0)  # the known optimum

    def test_infeasible_instance_reported(self):
        inst = CoveringInstance(costs=[1.0], q=[[1.0]], demand=[3.0])
        sol = greedy_cover(inst, cost_score)
        assert not sol.feasible

    def test_prune_removes_redundancy(self, small_covering):
        # Score that greedily picks *everything cheap first* tends to
        # over-select; pruning must leave a minimal cover.
        sol = greedy_cover(small_covering, cost_score, prune=True)
        assert sol.feasible
        # No single selected bundle is removable.
        for j in np.flatnonzero(sol.selected):
            reduced = sol.selected.copy()
            reduced[j] = False
            assert not small_covering.is_feasible(reduced)

    def test_prune_false_keeps_raw_greedy(self, small_covering):
        raw = greedy_cover(small_covering, cost_score, prune=False)
        pruned = greedy_cover(small_covering, cost_score, prune=True)
        assert pruned.cost <= raw.cost + 1e-9

    def test_nonfinite_scores_handled(self, small_covering):
        def nan_score(ctx):
            return np.full(ctx.costs.shape[0], np.nan)

        sol = greedy_cover(small_covering, nan_score)
        assert sol.feasible  # falls back to first-eligible picks

    def test_wrong_score_shape_raises(self, small_covering):
        with pytest.raises(ValueError, match="score function"):
            greedy_cover(small_covering, lambda ctx: np.zeros(3))

    def test_max_steps_cap(self, small_covering):
        sol = greedy_cover(small_covering, cost_score, max_steps=1)
        # One pick cannot cover this instance.
        assert not sol.feasible or sol.iterations <= 1

    def test_zero_demand_selects_nothing(self):
        inst = CoveringInstance(costs=[5.0, 1.0], q=[[1.0, 1.0]], demand=[0.0])
        sol = greedy_cover(inst, cost_score)
        assert sol.feasible
        assert sol.n_selected == 0
        assert sol.cost == 0.0


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_greedy_always_feasible_on_coverable(seed):
    """Property: on coverable instances, any total score function yields a
    feasible, pruned-minimal cover whose cost >= the LP bound."""
    inst = random_covering(seed)
    if not inst.is_coverable():
        return
    sol = greedy_cover(inst, chvatal_score)
    assert sol.feasible
    sol.check(inst)
    from repro.lp.relaxation import solve_relaxation

    relax = solve_relaxation(inst)
    assert sol.cost >= relax.lower_bound - 1e-6


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), const=st.floats(-5, 5))
def test_property_constant_scores_still_total(seed, const):
    """Even a constant (useless) scoring function terminates feasibly."""
    inst = random_covering(seed)
    if not inst.is_coverable():
        return
    sol = greedy_cover(inst, lambda ctx: np.full(ctx.costs.shape[0], const))
    assert sol.feasible
