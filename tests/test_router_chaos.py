"""Router chaos suite: planned shard faults, zero request loss.

The acceptance contract of the sharded serving layer: killing, hanging
or disconnecting a shard mid-stream loses *nothing* — every request is
answered, the served %-gaps are bit-identical to an unfaulted
single-server run (solves are pure, any shard can serve any digest), and
the fleet heals itself (respawn with a generation bump for dead/hung
shards, plain reconnect for a dropped link).

Faults are deterministic plans (:class:`~repro.parallel.ShardFaultPlan`:
a named shard at a named router-arrival index), so each test asserts
exact fault and respawn counts, not "something eventually recovered".
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.bcpop.evaluate import LowerLevelEvaluator
from repro.bcpop.generator import generate_instance
from repro.gp.generate import ramped_half_and_half
from repro.gp.primitives import paper_primitive_set
from repro.parallel import ShardFaultPlan, ShardFaultSpec
from repro.serve import (
    RetryingServeClient,
    ServeClient,
    SolveRouter,
    SolveServer,
    start_in_thread,
    start_router_in_thread,
)

N_SHARDS = 4


@pytest.fixture(scope="module")
def instance():
    return generate_instance(20, 3, seed=5)


@pytest.fixture(scope="module")
def trees():
    rng = np.random.default_rng(2)
    return ramped_half_and_half(paper_primitive_set(), 4, rng, min_depth=2, max_depth=4)


@pytest.fixture(scope="module")
def cases(instance, trees):
    rng = np.random.default_rng(9)
    low, high = instance.price_bounds
    return [
        (rng.uniform(low, high), trees[i % len(trees)]) for i in range(24)
    ]


@pytest.fixture(scope="module")
def baseline_gaps(instance, cases):
    """The unfaulted single-server run the chaos runs must match bit for
    bit (itself pinned to in-process evaluation by tests/test_serve_server.py)."""
    server = SolveServer(instances=[instance])
    with start_in_thread(server) as handle:
        with ServeClient(*handle.address) as client:
            replies = client.solve_many(
                [
                    client.solve_request(prices, tree, instance=instance.digest)
                    for prices, tree in cases
                ]
            )
    assert all(r["ok"] for r in replies)
    expected = [
        LowerLevelEvaluator(instance, memo_size=0)
        .evaluate_heuristic_fresh(prices, tree)
        .gap
        for prices, tree in cases
    ]
    assert [r["gap"] for r in replies] == expected
    return [r["gap"] for r in replies]


def _run_with_plan(instance, cases, plan, **router_kw):
    """Serve all cases through a 4-shard fleet under ``plan``; returns
    (gaps, stats, topology) after every reply arrived."""
    router = SolveRouter(
        instances=[instance],
        n_shards=N_SHARDS,
        health_interval=0.1,
        health_timeout=0.5,
        shard_fault_plan=plan,
        **router_kw,
    )
    with start_router_in_thread(router) as handle:
        host, port = handle.address
        victim = router.ring.primary(instance.digest)
        with RetryingServeClient(host, port, timeout=60.0, seed=0) as client:
            replies = client.solve_many(
                [
                    client.solve_request(prices, tree, instance=instance.digest)
                    for prices, tree in cases
                ]
            )
            assert all(r["ok"] for r in replies), [
                r for r in replies if not r["ok"]
            ]
            stats, topology = _await_recovery(client, plan)
    return [r["gap"] for r in replies], stats, topology, victim


def _await_recovery(client, plan, deadline_s=30.0):
    """Poll until every faulted shard is alive + connected again."""
    faulted = {spec.shard for spec in plan.specs}
    deadline = time.monotonic() + deadline_s
    while True:
        topology = {
            s["name"]: s for s in client.request({"op": "shards"})["shards"]
        }
        recovered = all(
            topology[name]["alive"] and topology[name]["connected"]
            for name in faulted
        )
        if recovered or time.monotonic() > deadline:
            assert recovered, f"fleet did not heal in {deadline_s}s: {topology}"
            return client.stats(), topology


class TestKillShardMidStream:
    def test_zero_loss_and_bit_identical_gaps(self, instance, cases, baseline_gaps):
        # Build a throwaway router only to learn which shard owns the
        # digest (ring placement is deterministic per fleet size), then
        # plan the kill for that primary at arrival 6 — mid-stream, with
        # requests already in flight on the victim.
        probe = SolveRouter(instances=[instance], n_shards=N_SHARDS)
        victim = probe.ring.primary(instance.digest)
        plan = ShardFaultPlan([ShardFaultSpec("kill", victim, 6)])

        gaps, stats, topology, primary = _run_with_plan(instance, cases, plan)
        assert primary == victim
        assert gaps == baseline_gaps  # zero loss, bit-identical
        assert stats["shard_faults_injected"] == 1
        assert stats["respawns"] == 1
        assert stats["failovers"] > 0  # survivors took the victim's traffic
        assert topology[victim]["generation"] == 1
        assert topology[victim]["respawns"] == 1

    def test_failback_after_respawn(self, instance, trees):
        # After the respawned primary reconnects, its digest's traffic
        # returns to it (the ring never changed; only liveness did).
        probe = SolveRouter(instances=[instance], n_shards=N_SHARDS)
        victim = probe.ring.primary(instance.digest)
        plan = ShardFaultPlan([ShardFaultSpec("kill", victim, 0)])
        router = SolveRouter(
            instances=[instance],
            n_shards=N_SHARDS,
            health_interval=0.1,
            health_timeout=0.5,
            shard_fault_plan=plan,
        )
        rng = np.random.default_rng(3)
        low, high = instance.price_bounds
        with start_router_in_thread(router) as handle:
            with RetryingServeClient(*handle.address, timeout=60.0, seed=0) as client:
                # Arrival 0 kills the primary; the solve fails over.
                assert client.solve(
                    rng.uniform(low, high), trees[0], instance=instance.digest
                )["ok"]
                _await_recovery(client, plan)
                before = {
                    s["name"]: s["routed"]
                    for s in client.request({"op": "shards"})["shards"]
                }
                assert client.solve(
                    rng.uniform(low, high), trees[1], instance=instance.digest
                )["ok"]
                after = {
                    s["name"]: s["routed"]
                    for s in client.request({"op": "shards"})["shards"]
                }
        assert after[victim] == before[victim] + 1  # traffic failed back


class TestHangShardMidStream:
    def test_hung_shard_is_detected_and_replaced(
        self, instance, cases, baseline_gaps
    ):
        # SIGSTOP: the process is alive, the socket stays open, nothing
        # answers.  Only the health probe's deadline can see this; the
        # respawn closes the link, failing pending solves over.
        probe = SolveRouter(instances=[instance], n_shards=N_SHARDS)
        victim = probe.ring.primary(instance.digest)
        plan = ShardFaultPlan([ShardFaultSpec("hang", victim, 4)])

        gaps, stats, topology, _ = _run_with_plan(instance, cases, plan)
        assert gaps == baseline_gaps
        assert stats["shard_faults_injected"] == 1
        assert stats["health_failures"] >= 1  # the missed ping deadline
        assert stats["respawns"] >= 1
        assert topology[victim]["generation"] >= 1


class TestDropLinkMidStream:
    def test_dropped_link_reconnects_without_a_respawn(
        self, instance, cases, baseline_gaps
    ):
        # Severing the router->shard connection must cost a reconnect,
        # not a process replacement: the shard itself is healthy.
        probe = SolveRouter(instances=[instance], n_shards=N_SHARDS)
        victim = probe.ring.primary(instance.digest)
        plan = ShardFaultPlan([ShardFaultSpec("drop", victim, 6)])

        gaps, stats, topology, _ = _run_with_plan(instance, cases, plan)
        assert gaps == baseline_gaps
        assert stats["shard_faults_injected"] == 1
        assert topology[victim]["generation"] == 0  # same process throughout
        assert topology[victim]["respawns"] == 0
