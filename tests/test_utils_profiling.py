"""Tests for profiling utilities."""

from __future__ import annotations

import time

from repro.utils.profiling import profiled, time_block


class TestProfiled:
    def test_captures_stats(self):
        with profiled() as report:
            sum(i * i for i in range(50_000))
        assert report.total_seconds > 0
        assert "function calls" in report.text

    def test_top_truncates(self):
        with profiled() as report:
            sorted(range(1000), key=lambda v: -v)
        top = report.top(3)
        assert len(top.splitlines()) <= len(report.text.splitlines())

    def test_exception_still_fills_report(self):
        try:
            with profiled() as report:
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert report.total_seconds >= 0
        assert report.text


class TestTimeBlock:
    def test_measures_elapsed(self):
        with time_block("nap") as t:
            time.sleep(0.01)
        assert t.seconds >= 0.009
        assert "nap" in str(t)

    def test_default_label(self):
        with time_block() as t:
            pass
        assert "block" in str(t)
