"""Tests for GP bloat control and diversity analytics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gp.bloat import lexicographic_tournament, mean_size, tarpeian_mask
from repro.gp.diversity import (
    entropy_of_shapes,
    primitive_usage,
    size_statistics,
    structural_uniqueness,
)
from repro.gp.generate import full_tree, grow_tree
from repro.gp.primitives import lookup_terminal, paper_primitive_set
from repro.gp.tree import SyntaxTree


@pytest.fixture
def trees(rng, pset):
    return [grow_tree(pset, 4, rng) for _ in range(20)]


class TestLexicographicTournament:
    def test_prefers_fitness_first(self, rng, pset):
        small_bad = SyntaxTree([lookup_terminal("COST")])
        big_good = full_tree(pset, 4, rng)
        pop = [small_bad, big_good]
        out = lexicographic_tournament(pop, [10.0, 1.0], 50, rng, k=2)
        assert sum(1 for t in out if t is big_good) > 25

    def test_breaks_ties_by_size(self, rng, pset):
        small = SyntaxTree([lookup_terminal("COST")])
        big = full_tree(pset, 4, rng)
        out = lexicographic_tournament([small, big], [5.0, 5.0], 100, rng, k=2)
        # Whenever both enter (3/4 of draws), small wins.
        assert sum(1 for t in out if t is small) > 60

    def test_mismatched_lengths_raise(self, rng):
        with pytest.raises(ValueError, match="population size"):
            lexicographic_tournament([], [1.0], 1, rng)

    def test_nan_fitness_loses(self, rng, pset):
        good = grow_tree(pset, 2, rng)
        bad = grow_tree(pset, 2, rng)
        out = lexicographic_tournament([bad, good], [np.nan, 3.0], 40, rng, k=2)
        assert sum(1 for t in out if t is good) > 20


class TestTarpeian:
    def test_only_above_average_marked(self, rng, pset):
        trees = [full_tree(pset, 1, rng)] * 10 + [full_tree(pset, 6, rng)]
        mask = tarpeian_mask(trees, rng, probability=1.0)
        sizes = np.array([t.size for t in trees])
        assert mask[sizes <= sizes.mean()].sum() == 0
        assert mask[-1]  # the big one is always hit at p=1

    def test_zero_probability_marks_none(self, trees, rng):
        assert tarpeian_mask(trees, rng, probability=0.0).sum() == 0

    def test_empty_population(self, rng):
        assert tarpeian_mask([], rng).size == 0

    def test_invalid_probability(self, trees, rng):
        with pytest.raises(ValueError, match="probability"):
            tarpeian_mask(trees, rng, probability=1.5)

    def test_mean_size(self, rng, pset):
        trees = [full_tree(pset, 1, rng), full_tree(pset, 1, rng)]
        assert mean_size(trees) == pytest.approx(3.0)  # binary ops: 3 nodes


class TestDiversity:
    def test_uniqueness_bounds(self, trees):
        u = structural_uniqueness(trees)
        assert 1 / len(trees) <= u <= 1.0

    def test_uniqueness_of_clones(self, rng, pset):
        t = grow_tree(pset, 3, rng)
        assert structural_uniqueness([t, t.copy(), t.copy()]) == pytest.approx(1 / 3)

    def test_size_statistics_keys(self, trees):
        stats = size_statistics(trees)
        assert stats["size_min"] <= stats["size_mean"] <= stats["size_max"]
        assert stats["depth_min"] <= stats["depth_mean"] <= stats["depth_max"]

    def test_primitive_usage_sums_to_one(self, trees):
        usage = primitive_usage(trees)
        assert sum(usage.values()) == pytest.approx(1.0)

    def test_primitive_usage_pools_ercs(self, rng):
        pset = paper_primitive_set(erc_probability=1.0)
        trees = [full_tree(pset, 2, rng) for _ in range(5)]
        usage = primitive_usage(trees)
        assert "ERC" in usage

    def test_entropy_extremes(self, rng, pset):
        t = grow_tree(pset, 3, rng)
        assert entropy_of_shapes([t, t.copy()]) == pytest.approx(0.0)
        distinct = [full_tree(pset, d, rng) for d in (0, 1, 2, 3)]
        if structural_uniqueness(distinct) == 1.0:
            assert entropy_of_shapes(distinct) == pytest.approx(np.log(4))

    def test_empty_rejections(self):
        for fn in (structural_uniqueness, size_statistics, primitive_usage,
                   entropy_of_shapes):
            with pytest.raises(ValueError, match="empty"):
                fn([])
