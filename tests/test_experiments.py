"""Tests for the experiment harness (tables, figures, reporting, stats)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import CarbonConfig, CobraConfig
from repro.experiments.figures import (
    convergence_experiment,
    fig1_series,
    fig2_structure,
)
from repro.experiments.reporting import (
    ascii_curve,
    format_convergence,
    format_fig1,
    format_table1,
    format_table2,
    format_table3,
    format_table4,
)
from repro.experiments.stats import rank_test, summarize
from repro.experiments.tables import (
    RunTask,
    execute_task,
    run_comparison,
    table1_rows,
    table2_rows,
)

TINY_CARBON = CarbonConfig.quick(ul_evaluations=80, ll_evaluations=80, population_size=6)
TINY_COBRA = CobraConfig.quick(ul_evaluations=80, ll_evaluations=80, population_size=6)


@pytest.fixture(scope="module")
def tiny_comparison():
    return run_comparison(
        classes=[(16, 2), (20, 3)],
        runs=2,
        carbon_config=TINY_CARBON,
        cobra_config=TINY_COBRA,
    )


class TestStats:
    def test_summarize_basic(self):
        s = summarize([1.0, 2.0, 3.0], minimize=True)
        assert s.mean == pytest.approx(2.0)
        assert s.best == 1.0 and s.worst == 3.0 and s.n == 3

    def test_summarize_maximize(self):
        s = summarize([1.0, 3.0], minimize=False)
        assert s.best == 3.0 and s.worst == 1.0

    def test_summarize_drops_nonfinite(self):
        s = summarize([1.0, np.inf, np.nan, 3.0])
        assert s.n == 2 and s.mean == pytest.approx(2.0)

    def test_summarize_empty(self):
        s = summarize([np.nan])
        assert s.n == 0 and np.isnan(s.mean)

    def test_rank_test_detects_difference(self):
        stat, p = rank_test([1, 1, 1, 1, 1], [9, 9, 9, 9, 9])
        assert p < 0.05

    def test_rank_test_degenerate(self):
        stat, p = rank_test([1.0], [2.0])
        assert np.isnan(p)


class TestConfigTables:
    def test_table1_contains_operators_and_terminals(self):
        names = [r[0] for r in table1_rows()]
        for required in ("+", "-", "*", "%", "mod", "COST", "DUAL", "XLP"):
            assert required in names

    def test_table2_paper_values(self):
        rows = dict((r[0], (r[1], r[2])) for r in table2_rows())
        assert rows["UL population size"] == ("100", "100")
        assert rows["LL encoding"] == ("syntax trees", "binary values")
        assert rows["LL mutation probability"] == ("0.1", "1/#variables")
        assert rows["LL reproduction probability"][1] == "-"


class TestRunTask:
    def test_execute_carbon_task(self):
        task = RunTask(
            algorithm="CARBON", n_bundles=16, n_services=2,
            instance_seed=0, run_seed=0,
            carbon_config=TINY_CARBON, cobra_config=TINY_COBRA,
        )
        result = execute_task(task)
        assert result.algorithm == "CARBON"
        assert np.isfinite(result.best_gap)

    def test_execute_unknown_algorithm(self):
        task = RunTask(
            algorithm="XXX", n_bundles=16, n_services=2,
            instance_seed=0, run_seed=0,
            carbon_config=TINY_CARBON, cobra_config=TINY_COBRA,
        )
        with pytest.raises(ValueError, match="unknown algorithm"):
            execute_task(task)

    def test_history_dropped_when_not_recording(self):
        task = RunTask(
            algorithm="COBRA", n_bundles=16, n_services=2,
            instance_seed=0, run_seed=0,
            carbon_config=TINY_CARBON, cobra_config=TINY_COBRA,
            record_history=False,
        )
        result = execute_task(task)
        assert len(result.history) == 0

    def test_task_instance_matches_direct_generation(self):
        """Workers regenerate identical instances from the addressed seed."""
        from repro.bcpop.generator import generate_instance
        from repro.parallel.rng import stream_for

        a = generate_instance(16, 2, seed=stream_for(0, "bcpop", 16, 2, 0))
        b = generate_instance(16, 2, seed=stream_for(0, "bcpop", 16, 2, 0))
        assert np.array_equal(a.q, b.q)


class TestComparison:
    def test_structure(self, tiny_comparison):
        assert len(tiny_comparison.classes) == 2
        assert tiny_comparison.runs == 2
        for cls in tiny_comparison.classes:
            assert cls.carbon_gap.n == 2
            assert cls.cobra_gap.n == 2

    def test_table_rows(self, tiny_comparison):
        t3 = tiny_comparison.table3_rows()
        t4 = tiny_comparison.table4_rows()
        assert [(r[0], r[1]) for r in t3] == [(16, 2), (20, 3)]
        assert all(np.isfinite(r[2]) and np.isfinite(r[3]) for r in t3 + t4)

    def test_averages_and_claims(self, tiny_comparison):
        avg = tiny_comparison.averages()
        assert set(avg) == {"carbon_gap", "cobra_gap", "carbon_upper", "cobra_upper"}
        claims = tiny_comparison.shape_claims()
        assert set(claims) == {
            "carbon_gap_below_cobra_everywhere",
            "carbon_gap_below_cobra_on_average",
            "cobra_upper_exceeds_carbon_everywhere",
            "cobra_upper_exceeds_carbon_on_average",
        }


class TestFigures:
    def test_fig1_discontinuity(self):
        series = fig1_series()
        assert series.infeasible_xs.size > 0
        assert 6.0 == pytest.approx(series.infeasible_xs.mean(), abs=1.5)

    def test_fig2_structure(self):
        s = fig2_structure()
        assert "COE" in s["strategies"]
        assert s["algorithms"]["CARBON (this paper)"] == "COE"

    def test_convergence_experiment(self):
        curves = convergence_experiment(
            "CARBON", n_bundles=16, n_services=2, runs=2,
            carbon_config=TINY_CARBON, cobra_config=TINY_COBRA, n_points=10,
        )
        assert curves.evaluations.shape == (10,)
        assert curves.fitness.shape == (10,)
        assert 0.0 <= curves.fitness_seesaw <= 1.0

    def test_convergence_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            convergence_experiment("XXX", runs=1)


class TestReporting:
    def test_format_table1(self):
        out = format_table1(table1_rows())
        assert "TABLE I" in out and "COST" in out

    def test_format_table2(self):
        out = format_table2(table2_rows())
        assert "TABLE II" in out and "CARBON" in out and "COBRA" in out

    def test_format_table3_and_4(self, tiny_comparison):
        t3 = format_table3(tiny_comparison)
        t4 = format_table4(tiny_comparison)
        assert "TABLE III" in t3 and "Average" in t3
        assert "TABLE IV" in t4 and "Average" in t4

    def test_format_fig1(self):
        out = format_fig1(fig1_series())
        assert "discontinuous IR" in out

    def test_format_convergence(self):
        curves = convergence_experiment(
            "COBRA", n_bundles=16, n_services=2, runs=1,
            carbon_config=TINY_CARBON, cobra_config=TINY_COBRA, n_points=8,
        )
        out = format_convergence(curves)
        assert "Fig. 5" in out and "see-saw" in out

    def test_ascii_curve_bounds_label(self):
        out = ascii_curve(np.arange(10.0), np.arange(10.0) ** 2, label="sq")
        assert "sq" in out and "[0.00 .. 81.00]" in out

    def test_ascii_curve_insufficient(self):
        out = ascii_curve(np.array([0.0]), np.array([np.nan]), label="x")
        assert "insufficient" in out


class TestRunnerCLI:
    def test_table1_command(self, capsys):
        from repro.experiments.runner import main

        assert main(["table1"]) == 0
        assert "TABLE I" in capsys.readouterr().out

    def test_fig2_command(self, capsys):
        from repro.experiments.runner import main

        assert main(["fig2"]) == 0
        assert "taxonomy" in capsys.readouterr().out

    def test_out_file(self, tmp_path, capsys):
        from repro.experiments.runner import main

        out = tmp_path / "report.txt"
        assert main(["fig1", "--out", str(out)]) == 0
        capsys.readouterr()
        assert "discontinuous" in out.read_text()

    def test_configs_for_scale(self):
        from repro.experiments.runner import configs_for_scale

        ca, co = configs_for_scale("paper")
        assert ca.upper.fitness_evaluations == 50_000
        assert co.ll_fitness_evaluations == 50_000
        with pytest.raises(ValueError, match="unknown scale"):
            configs_for_scale("huge")
