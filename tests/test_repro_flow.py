"""``repro-flow`` — dataflow engine, F-rules, baseline ratchet, CLI.

The load-bearing cases:

* interprocedural determinism taint (F001–F003): source in one module,
  sink three calls away in another, attribute flows through ``self``;
* process-boundary safety (F101) beyond the literal call site;
* wire-protocol conformance (F201–F203) against a copy of the *real*
  ``repro.serve`` package with a seeded fault: the ``shards`` dispatch
  branch removed from ``SolveRouter`` must be reported as
  sent-but-never-handled;
* byte-determinism: identical output across runs and under
  ``PYTHONHASHSEED`` variation (subprocess);
* the shrink-only baseline ratchet and CLI exit codes.
"""

from __future__ import annotations

import json
import os
import re
import shutil
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis.flow import baseline as baseline_mod
from repro.analysis.flow.checks import FLOW_RULES, flow_diagnostics
from repro.analysis.flow.cli import main as flow_main
from repro.analysis.flow.dataflow import analyze_dataflow
from repro.analysis.flow.project import Project

REPO_ROOT = Path(__file__).resolve().parent.parent
SERVE_DIR = REPO_ROOT / "src" / "repro" / "serve"


def make_package(tmp_path: Path, files: dict[str, str], name: str = "pkg") -> Path:
    root = tmp_path / name
    root.mkdir()
    (root / "__init__.py").write_text(files.pop("__init__.py", ""), encoding="utf-8")
    for rel, source in files.items():
        (root / rel).write_text(textwrap.dedent(source), encoding="utf-8")
    return root


def codes(diagnostics) -> list[str]:
    return [d.code for d in diagnostics]


class TestDeterminismTaint:
    def test_rng_reaches_fitness_across_modules(self, tmp_path):
        root = make_package(tmp_path, {
            "maker.py": """
                import numpy as np

                def fresh_rng():
                    return np.random.default_rng()
            """,
            "consumer.py": """
                from pkg.maker import fresh_rng

                def fold():
                    rng = fresh_rng()
                    fitness = rng.normal()
                    return fitness
            """,
        })
        findings = flow_diagnostics(Project.load(root, "pkg"))
        assert "F001" in codes(findings)
        f001 = next(d for d in findings if d.code == "F001")
        assert "consumer.py" in f001.path  # reported at the sink...
        assert "maker.py" in f001.message  # ...naming the source module

    def test_seeded_rng_is_clean(self, tmp_path):
        root = make_package(tmp_path, {
            "ok.py": """
                import numpy as np

                def fold(seed):
                    rng = np.random.default_rng(seed)
                    fitness = rng.normal()
                    return fitness
            """,
        })
        assert flow_diagnostics(Project.load(root, "pkg")) == []

    def test_attribute_taint_flows_between_methods(self, tmp_path):
        root = make_package(tmp_path, {
            "algo.py": """
                import numpy as np

                class Algo:
                    def __init__(self):
                        self._rng = np.random.default_rng()

                    def step(self):
                        gap = self._rng.random()
                        return gap
            """,
        })
        findings = flow_diagnostics(Project.load(root, "pkg"))
        assert "F001" in codes(findings)

    def test_clock_reaches_state_dict(self, tmp_path):
        root = make_package(tmp_path, {
            "ckpt.py": """
                import time

                class Loop:
                    def state_dict(self):
                        return {"stamp": time.time()}
            """,
        })
        findings = flow_diagnostics(Project.load(root, "pkg"))
        assert codes(findings) == ["F002"]

    def test_set_iteration_reaches_memo_key_but_sorted_is_clean(self, tmp_path):
        root = make_package(tmp_path, {
            "keys.py": """
                def dirty(memo, items):
                    for key in set(items):
                        memo.get(key)

                def clean(memo, items):
                    for key in sorted(set(items)):
                        memo.get(key)
            """,
        })
        findings = flow_diagnostics(Project.load(root, "pkg"))
        assert codes(findings) == ["F003"]
        assert findings[0].line == 4  # only the unsorted loop's memo.get sink

    def test_param_sink_reports_at_the_caller(self, tmp_path):
        root = make_package(tmp_path, {
            "lib.py": """
                def digest_of(stable_hash, value):
                    return stable_hash(value)
            """,
            "app.py": """
                import numpy as np
                from pkg.lib import digest_of

                def run(stable_hash):
                    noisy = np.random.default_rng().random()
                    return digest_of(stable_hash, noisy)
            """,
        })
        findings = flow_diagnostics(Project.load(root, "pkg"))
        f001 = [d for d in findings if d.code == "F001"]
        assert f001 and any("app.py" in d.path for d in f001)

    def test_pragma_suppresses_a_finding(self, tmp_path):
        root = make_package(tmp_path, {
            "noisy.py": """
                import numpy as np

                def fold():
                    # repro-lint: disable-next-line=F001  # test pragma
                    fitness = np.random.default_rng().random()
                    return fitness
            """,
        })
        assert flow_diagnostics(Project.load(root, "pkg")) == []


class TestProcessBoundary:
    def test_lambda_crossing_submit_interprocedurally(self, tmp_path):
        root = make_package(tmp_path, {
            "work.py": """
                def dispatch(executor, fn):
                    executor.submit(fn)
            """,
            "app.py": """
                from pkg.work import dispatch

                def run(executor):
                    dispatch(executor, lambda: 1)
            """,
        })
        findings = flow_diagnostics(Project.load(root, "pkg"))
        f101 = [d for d in findings if d.code == "F101"]
        assert f101 and any("app.py" in d.path for d in f101)

    def test_nested_closure_to_executor_map(self, tmp_path):
        root = make_package(tmp_path, {
            "app.py": """
                def run(executor, items):
                    def bump(x):
                        return x + 1
                    return list(executor.map(bump, items))
            """,
        })
        findings = flow_diagnostics(Project.load(root, "pkg"))
        assert "F101" in codes(findings)

    def test_module_level_function_is_clean(self, tmp_path):
        root = make_package(tmp_path, {
            "app.py": """
                def bump(x):
                    return x + 1

                def run(executor, items):
                    return list(executor.map(bump, items))
            """,
        })
        assert flow_diagnostics(Project.load(root, "pkg")) == []

    def test_materialized_generator_is_clean_but_raw_generator_flags(self, tmp_path):
        root = make_package(tmp_path, {
            "app.py": """
                def clean(executor, items):
                    docs = tuple(str(i) for i in items)
                    executor.submit(docs)

                def dirty(executor, items):
                    docs = (str(i) for i in items)
                    executor.submit(docs)
            """,
        })
        findings = flow_diagnostics(Project.load(root, "pkg"))
        assert codes(findings) == ["F101"]
        assert findings[0].line == 8

    def test_lock_into_shardspec_constructor(self, tmp_path):
        root = make_package(tmp_path, {
            "spec.py": """
                class ShardSpec:
                    def __init__(self, name, guard):
                        self.name = name
                        self.guard = guard
            """,
            "app.py": """
                import threading
                from pkg.spec import ShardSpec

                def build():
                    return ShardSpec("s0", threading.Lock())
            """,
        })
        findings = flow_diagnostics(Project.load(root, "pkg"))
        assert "F101" in codes(findings)


class TestProtocolConformance:
    """F201–F203 against a copy of the real serve package."""

    @pytest.fixture()
    def serve_copy(self, tmp_path):
        root = tmp_path / "serveproj"
        shutil.copytree(SERVE_DIR, root)
        return root

    def test_real_serve_package_is_conformant(self, serve_copy):
        findings = flow_diagnostics(Project.load(serve_copy, "serveproj"))
        assert [d for d in findings if d.code in ("F201", "F202", "F203")] == []

    def test_seeded_fault_removed_dispatch_reports_sent_but_never_handled(
        self, serve_copy
    ):
        router = serve_copy / "router.py"
        source = router.read_text(encoding="utf-8")
        faulted, n = re.subn(
            r'elif op == "shards":.*?(?=\n        elif op )',
            "",
            source,
            flags=re.DOTALL,
        )
        assert n == 1, "seeded fault did not apply; router dispatch changed shape"
        router.write_text(faulted, encoding="utf-8")

        findings = flow_diagnostics(Project.load(serve_copy, "serveproj"))
        f201 = [d for d in findings if d.code == "F201"]
        assert f201, "removed dispatch branch must be reported"
        assert any('"shards"' in d.message for d in f201)
        # The send site (client.py) is where the diagnostic lands.
        assert any(d.path.endswith("client.py") for d in f201)

    def test_handled_but_never_sent(self, tmp_path):
        root = make_package(tmp_path, {
            "client.py": """
                def ping(sock):
                    sock.send({"op": "ping"})
            """,
            "server.py": """
                def process(request, out):
                    op = request.get("op")
                    if op == "ping":
                        out({"ok": True})
                    elif op == "drain":
                        out({"ok": True})
            """,
        })
        findings = flow_diagnostics(Project.load(root, "pkg"))
        f202 = [d for d in findings if d.code == "F202"]
        assert len(f202) == 1 and '"drain"' in f202[0].message

    def test_reply_field_never_constructed(self, tmp_path):
        root = make_package(tmp_path, {
            "protocol.py": """
                def ok_response(request):
                    return {"ok": True}
            """,
            "client.py": """
                def stats(sock):
                    sock.send({"op": "stats"})
                    return sock.recv()["stats"]
            """,
            "server.py": """
                from pkg.protocol import ok_response

                def process(request, out):
                    op = request.get("op")
                    if op == "stats":
                        out(ok_response(request))
            """,
        })
        findings = flow_diagnostics(Project.load(root, "pkg"))
        f203 = [d for d in findings if d.code == "F203"]
        assert len(f203) == 1 and '"stats"' in f203[0].message


class TestSourceTreeIsClean:
    def test_src_repro_has_zero_unbaselined_findings(self):
        findings = flow_diagnostics(Project.load(REPO_ROOT / "src" / "repro", "repro"))
        assert findings == [], "\n".join(d.format() for d in findings)


class TestDeterministicOutput:
    def test_same_findings_same_order_across_runs(self, tmp_path):
        root = make_package(tmp_path, {
            "a.py": """
                import numpy as np

                def one():
                    fitness = np.random.default_rng().random()
                    return fitness

                def two(memo, items):
                    for key in set(items):
                        memo.put(key, 1)
            """,
        })
        runs = [flow_diagnostics(Project.load(root, "pkg")) for _ in range(2)]
        assert runs[0] == runs[1]
        assert [d.format() for d in runs[0]] == [d.format() for d in runs[1]]

    def test_byte_identical_under_hashseed_variation(self):
        """Full src/repro pass twice, different PYTHONHASHSEED, same bytes."""
        outputs = []
        for seed in ("0", "31337"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = seed
            env["PYTHONPATH"] = str(REPO_ROOT / "src")
            proc = subprocess.run(
                [sys.executable, "-m", "repro.analysis.flow.cli",
                 "--format", "json", "src/repro"],
                capture_output=True,
                cwd=REPO_ROOT,
                env=env,
                timeout=120,
            )
            assert proc.returncode == 0, proc.stderr.decode()
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1]


class TestBaselineRatchet:
    def _diag(self, path="src/x.py", code="F001", line=1):
        from repro.analysis.diagnostics import Diagnostic

        return Diagnostic(path=path, line=line, col=0, code=code, message="m")

    def test_growth_fails(self):
        failures, _ = baseline_mod.check([self._diag()], {"total-findings": 0})
        assert failures

    def test_within_budget_passes(self):
        budget = {"total-findings": 1, "src/x.py:F001": 1}
        failures, warnings = baseline_mod.check([self._diag()], budget)
        assert not failures and not warnings

    def test_shrink_warns_to_ratchet_down(self):
        failures, warnings = baseline_mod.check([], {"total-findings": 2})
        assert not failures
        assert any("ratchet" in w for w in warnings)

    def test_new_bucket_fails_even_under_total(self):
        budget = {"total-findings": 5, "src/y.py:F003": 5}
        failures, _ = baseline_mod.check([self._diag()], budget)
        assert any("src/x.py:F001" in f for f in failures)

    def test_write_then_load_roundtrips(self, tmp_path):
        path = tmp_path / "flow-baseline.txt"
        counts = {"src/x.py:F001": 2, "src/y.py:F202": 1}
        baseline_mod.write_baseline(path, counts)
        loaded = baseline_mod.load_baseline(path)
        assert loaded.pop("total-findings") == 3
        assert loaded == counts

    def test_malformed_baseline_raises(self, tmp_path):
        path = tmp_path / "flow-baseline.txt"
        path.write_text("not a baseline line\n", encoding="utf-8")
        with pytest.raises(ValueError):
            baseline_mod.load_baseline(path)


class TestCli:
    def _noisy_package(self, tmp_path):
        return make_package(tmp_path, {
            "noisy.py": """
                import numpy as np

                def fold():
                    fitness = np.random.default_rng().random()
                    return fitness
            """,
        })

    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        root = make_package(tmp_path, {"ok.py": "def f():\n    return 1\n"})
        assert flow_main([str(root)]) == 0

    def test_exit_one_on_findings_with_text_output(self, tmp_path, capsys):
        root = self._noisy_package(tmp_path)
        assert flow_main([str(root)]) == 1
        out = capsys.readouterr().out
        assert "F001" in out and "noisy.py" in out

    def test_json_format_shape(self, tmp_path, capsys):
        root = self._noisy_package(tmp_path)
        assert flow_main(["--format", "json", str(root)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["code"] == "F001"

    def test_select_filters_rules(self, tmp_path, capsys):
        root = self._noisy_package(tmp_path)
        assert flow_main(["--select", "F202", str(root)]) == 0

    def test_unknown_select_code_errors(self, tmp_path):
        root = self._noisy_package(tmp_path)
        assert flow_main(["--select", "F999", str(root)]) == 2

    def test_missing_directory_errors(self):
        assert flow_main(["definitely/not/a/dir"]) == 2

    def test_list_rules_prints_catalogue(self, capsys):
        assert flow_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in FLOW_RULES:
            assert code in out

    def test_update_then_check_gates_growth(self, tmp_path, capsys):
        root = self._noisy_package(tmp_path)
        baseline = tmp_path / "flow-baseline.txt"
        # --update writes the budget and exits clean (it IS the ratchet).
        assert flow_main(["--update", "--baseline", str(baseline), str(root)]) == 0
        assert flow_main(["--check", "--baseline", str(baseline), str(root)]) == 0
        # A second finding appears -> the gate fails.
        (root / "more.py").write_text(
            "import numpy as np\n\n"
            "def worse():\n"
            "    gap = np.random.default_rng().random()\n"
            "    return gap\n",
            encoding="utf-8",
        )
        assert flow_main(["--check", "--baseline", str(baseline), str(root)]) == 1

    def test_repro_lint_flow_delegates(self, tmp_path, capsys):
        from repro.analysis.cli import main as lint_main

        root = self._noisy_package(tmp_path)
        assert lint_main(["--flow", str(root)]) == 1
        assert "F001" in capsys.readouterr().out

    def test_parse_error_exits_two_and_reports_f000(self, tmp_path, capsys):
        root = make_package(tmp_path, {"bad.py": "def broken(:\n"})
        assert flow_main([str(root)]) == 2
        assert "F000" in capsys.readouterr().out


class TestEngineInternals:
    def test_summaries_reach_fixpoint_quickly(self):
        project = Project.load(REPO_ROOT / "src" / "repro", "repro")
        result = analyze_dataflow(project)
        assert result.rounds < 8  # converged, did not hit the bound
        assert result.summaries  # every function has a summary
