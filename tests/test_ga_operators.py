"""Tests for real-coded and binary GA operators, bounds, populations."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ga.encoding import Bounds
from repro.ga.operators import (
    polynomial_mutation,
    sbx_crossover,
    swap_mutation,
    two_point_crossover,
)
from repro.ga.population import Individual, evaluate_population, random_real_population
from repro.ga.selection import binary_tournament


@pytest.fixture
def box() -> Bounds:
    return Bounds.uniform(8, 0.0, 10.0)


class TestBounds:
    def test_uniform_constructor(self, box):
        assert box.size == 8
        assert box.span == pytest.approx(np.full(8, 10.0))

    def test_mismatched_shapes_raise(self):
        with pytest.raises(ValueError, match="mismatch"):
            Bounds(np.zeros(3), np.ones(2))

    def test_inverted_bounds_raise(self):
        with pytest.raises(ValueError, match="high < low"):
            Bounds([1.0], [0.0])

    def test_clip(self, box):
        out = box.clip(np.array([-5.0, 3.0, 15.0, 0, 0, 0, 0, 0]))
        assert out[0] == 0.0 and out[2] == 10.0 and out[1] == 3.0

    def test_contains(self, box):
        assert box.contains(np.full(8, 5.0))
        assert not box.contains(np.full(8, 11.0))

    def test_sample_shapes(self, box, rng):
        single = box.sample(rng)
        batch = box.sample(rng, 5)
        assert single.shape == (8,)
        assert batch.shape == (5, 8)
        assert box.contains(single)


class TestSBX:
    def test_children_within_bounds(self, box, rng):
        for _ in range(50):
            p1, p2 = box.sample(rng), box.sample(rng)
            c1, c2 = sbx_crossover(p1, p2, box, rng, per_gene_probability=1.0)
            assert box.contains(c1) and box.contains(c2)

    def test_identical_parents_unchanged(self, box, rng):
        p = box.sample(rng)
        c1, c2 = sbx_crossover(p, p.copy(), box, rng, per_gene_probability=1.0)
        assert c1 == pytest.approx(p)
        assert c2 == pytest.approx(p)

    def test_mean_preserved_per_gene_without_bound_clipping(self, rng):
        wide = Bounds.uniform(4, -1e6, 1e6)
        p1 = np.array([1.0, 2.0, 3.0, 4.0])
        p2 = np.array([5.0, 4.0, 9.0, 0.0])
        means = []
        for _ in range(400):
            c1, c2 = sbx_crossover(p1, p2, wide, rng, per_gene_probability=1.0)
            means.append((c1 + c2) / 2)
        # SBX keeps the parent midpoint per crossing in expectation and,
        # away from bounds, exactly per sample.
        assert np.mean(means, axis=0) == pytest.approx((p1 + p2) / 2, rel=0.05)

    def test_high_eta_stays_near_parents(self, rng):
        wide = Bounds.uniform(1, 0.0, 100.0)
        p1, p2 = np.array([49.0]), np.array([51.0])
        for _ in range(50):
            c1, c2 = sbx_crossover(p1, p2, wide, rng, eta=100.0, per_gene_probability=1.0)
            assert 45.0 < c1[0] < 55.0 and 45.0 < c2[0] < 55.0

    def test_shape_mismatch_raises(self, box, rng):
        with pytest.raises(ValueError, match="incompatible"):
            sbx_crossover(np.zeros(3), np.zeros(8), box, rng)

    def test_bad_eta_raises(self, box, rng):
        with pytest.raises(ValueError, match="eta"):
            sbx_crossover(box.sample(rng), box.sample(rng), box, rng, eta=0.0)

    def test_parents_not_mutated(self, box, rng):
        p1, p2 = box.sample(rng), box.sample(rng)
        s1, s2 = p1.copy(), p2.copy()
        sbx_crossover(p1, p2, box, rng)
        assert (p1 == s1).all() and (p2 == s2).all()


class TestPolynomialMutation:
    def test_within_bounds(self, box, rng):
        for _ in range(50):
            x = box.sample(rng)
            m = polynomial_mutation(x, box, rng, per_gene_probability=1.0)
            assert box.contains(m)

    def test_zero_probability_is_identity(self, box, rng):
        x = box.sample(rng)
        m = polynomial_mutation(x, box, rng, per_gene_probability=0.0)
        assert (m == x).all()

    def test_default_rate_one_over_n(self, box, rng):
        changed = 0
        trials = 400
        for _ in range(trials):
            x = box.sample(rng)
            m = polynomial_mutation(x, box, rng)
            changed += int((m != x).any())
        # P(at least one gene mutates) = 1 - (1 - 1/8)^8 ~ 0.66.
        assert 0.4 < changed / trials < 0.9

    def test_input_not_mutated(self, box, rng):
        x = box.sample(rng)
        snap = x.copy()
        polynomial_mutation(x, box, rng, per_gene_probability=1.0)
        assert (x == snap).all()

    def test_bad_eta_raises(self, box, rng):
        with pytest.raises(ValueError, match="eta"):
            polynomial_mutation(box.sample(rng), box, rng, eta=-1.0)


class TestBinaryOperators:
    def test_two_point_preserves_multiset(self, rng):
        a = np.array([True] * 5 + [False] * 5)
        b = np.array([False] * 5 + [True] * 5)
        c1, c2 = two_point_crossover(a, b, rng)
        assert (c1.sum() + c2.sum()) == (a.sum() + b.sum())

    def test_two_point_children_mix_segments(self, rng):
        a = np.zeros(20, dtype=bool)
        b = np.ones(20, dtype=bool)
        mixed = False
        for _ in range(20):
            c1, _ = two_point_crossover(a, b, rng)
            if 0 < c1.sum() < 20:
                mixed = True
                break
        assert mixed

    def test_two_point_parents_unchanged(self, rng):
        a = np.zeros(10, dtype=bool)
        b = np.ones(10, dtype=bool)
        two_point_crossover(a, b, rng)
        assert not a.any() and b.all()

    def test_two_point_shape_mismatch_raises(self, rng):
        with pytest.raises(ValueError, match="incompatible"):
            two_point_crossover(np.zeros(3, bool), np.zeros(5, bool), rng)

    def test_swap_mutation_rate(self, rng):
        x = np.zeros(1000, dtype=bool)
        m = swap_mutation(x, rng)  # default 1/n
        assert 0 <= m.sum() <= 10  # ~Binomial(1000, 1/1000)

    def test_swap_mutation_full_rate_flips_all(self, rng):
        x = np.zeros(50, dtype=bool)
        m = swap_mutation(x, rng, per_gene_probability=1.0)
        assert m.all()


class TestPopulation:
    def test_random_population(self, box, rng):
        pop = random_real_population(box, 10, rng)
        assert len(pop) == 10
        assert all(box.contains(ind.genome) for ind in pop)
        assert not any(ind.evaluated for ind in pop)

    def test_evaluate_population_counts(self, box, rng):
        pop = random_real_population(box, 6, rng)
        count = evaluate_population(pop, lambda g: (g.sum(), {"tag": 1}))
        assert count == 6
        assert all(ind.evaluated for ind in pop)
        # Second call skips evaluated individuals.
        assert evaluate_population(pop, lambda g: (0.0, {})) == 0

    def test_individual_copy_is_deep_enough(self, box, rng):
        ind = Individual(genome=box.sample(rng), fitness=1.0, aux={"a": 1})
        clone = ind.copy()
        clone.genome[0] = -99.0
        clone.aux["a"] = 2
        assert ind.genome[0] != -99.0
        assert ind.aux["a"] == 1

    def test_binary_tournament_maximizes_by_default(self, rng):
        pop = ["low", "high"]
        picks = binary_tournament(pop, [1.0, 9.0], 100, rng)
        assert picks.count("high") > picks.count("low")


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 100_000), n=st.integers(1, 12))
def test_property_real_operators_respect_box(seed, n):
    """Property: SBX + polynomial mutation never leave the box."""
    gen = np.random.default_rng(seed)
    low = gen.uniform(-5, 0, n)
    high = low + gen.uniform(0.1, 10, n)
    box = Bounds(low, high)
    p1, p2 = box.sample(gen), box.sample(gen)
    c1, c2 = sbx_crossover(p1, p2, box, gen, per_gene_probability=1.0)
    m = polynomial_mutation(c1, box, gen, per_gene_probability=1.0)
    for v in (c1, c2, m):
        assert box.contains(v, tol=1e-9)
