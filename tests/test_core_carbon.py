"""Tests for the CARBON algorithm."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bcpop.generator import generate_instance
from repro.core.carbon import Carbon, run_carbon
from repro.core.config import CarbonConfig, UpperLevelConfig


@pytest.fixture(scope="module")
def instance():
    return generate_instance(24, 3, seed=11, name="carbon-test")


@pytest.fixture
def quick_cfg():
    return CarbonConfig.quick(ul_evaluations=120, ll_evaluations=120, population_size=8)


class TestBudgets:
    def test_budgets_respected(self, instance, quick_cfg):
        result = run_carbon(instance, quick_cfg, seed=0)
        assert result.ul_evaluations_used <= quick_cfg.upper.fitness_evaluations
        assert result.ll_evaluations_used <= quick_cfg.ll_fitness_evaluations
        # Budgets should be (nearly) consumed, not abandoned early.
        assert result.ul_evaluations_used >= quick_cfg.upper.fitness_evaluations - quick_cfg.upper.population_size
        assert result.ll_evaluations_used >= quick_cfg.ll_fitness_evaluations - quick_cfg.ll_population_size * quick_cfg.heuristic_eval_sample

    def test_too_small_ll_budget_raises(self, instance):
        cfg = CarbonConfig(
            upper=UpperLevelConfig(population_size=4, fitness_evaluations=10),
            ll_population_size=4,
            ll_fitness_evaluations=0,
            heuristic_eval_sample=1,
        )
        algo = Carbon(instance, cfg, np.random.default_rng(0))
        with pytest.raises(RuntimeError, match="budget too small"):
            algo.initialize()


class TestResults:
    def test_result_fields(self, instance, quick_cfg):
        result = run_carbon(instance, quick_cfg, seed=1)
        assert result.algorithm == "CARBON"
        assert result.instance_name == "carbon-test"
        assert np.isfinite(result.best_gap) and result.best_gap >= -1e-9
        assert np.isfinite(result.best_upper) and result.best_upper >= 0
        assert result.extras["champion"]  # an infix string
        assert len(result.history) > 1

    def test_reproducible_given_seed(self, instance, quick_cfg):
        a = run_carbon(instance, quick_cfg, seed=3)
        b = run_carbon(instance, quick_cfg, seed=3)
        assert a.best_gap == pytest.approx(b.best_gap)
        assert a.best_upper == pytest.approx(b.best_upper)

    def test_different_seeds_explore_differently(self, instance, quick_cfg):
        a = run_carbon(instance, quick_cfg, seed=1)
        b = run_carbon(instance, quick_cfg, seed=2)
        assert (
            a.best_gap != pytest.approx(b.best_gap)
            or a.best_upper != pytest.approx(b.best_upper)
        )

    def test_solution_is_consistent(self, instance, quick_cfg):
        result = run_carbon(instance, quick_cfg, seed=4)
        sol = result.best_solution
        assert instance.revenue(sol.prices, sol.selection) == pytest.approx(
            sol.upper_objective
        )
        ll = instance.lower_level(sol.prices)
        assert ll.is_feasible(sol.selection)
        assert ll.cost_of(sol.selection) == pytest.approx(sol.lower_objective)
        assert sol.lower_objective >= sol.lower_bound - 1e-6


class TestDynamics:
    def test_champion_gap_improves_or_holds(self, instance, quick_cfg):
        """The best archived heuristic gap is monotone non-increasing."""
        algo = Carbon(instance, quick_cfg, np.random.default_rng(5))
        algo.initialize()
        gaps = [algo.ll_archive.best_score()]
        while algo.step():
            gaps.append(algo.ll_archive.best_score())
        assert all(b <= a + 1e-12 for a, b in zip(gaps, gaps[1:]))

    def test_champion_beats_median_initial_tree(self, instance):
        """Evolution should find a heuristic no worse than a random tree."""
        cfg = CarbonConfig.quick(ul_evaluations=300, ll_evaluations=300, population_size=10)
        algo = Carbon(instance, cfg, np.random.default_rng(6))
        algo.initialize()
        initial_fits = sorted(
            ind.fitness for ind in algo.ll_pop if np.isfinite(ind.fitness)
        )
        median_initial = initial_fits[len(initial_fits) // 2]
        while algo.step():
            pass
        assert algo.ll_archive.best_score() <= median_initial + 1e-9

    def test_ul_archive_nonempty_and_bounded(self, instance, quick_cfg):
        algo = Carbon(instance, quick_cfg, np.random.default_rng(7))
        algo.initialize()
        while algo.step():
            pass
        assert 1 <= len(algo.ul_archive) <= quick_cfg.upper.archive_size
        assert 1 <= len(algo.ll_archive) <= quick_cfg.ll_archive_size

    def test_history_monotone_budget(self, instance, quick_cfg):
        result = run_carbon(instance, quick_cfg, seed=8)
        evals = [p.ul_evaluations + p.ll_evaluations for p in result.history.points]
        assert all(b >= a for a, b in zip(evals, evals[1:]))
