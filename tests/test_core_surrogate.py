"""Tests for the surrogate-assisted baseline (taxonomy APP branch)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bcpop.generator import generate_instance
from repro.core.config import UpperLevelConfig
from repro.core.surrogate import QuadraticSurrogate, SurrogateAssisted, run_surrogate


@pytest.fixture(scope="module")
def instance():
    return generate_instance(24, 3, seed=11, name="surrogate-test")


@pytest.fixture
def cfg():
    return UpperLevelConfig(population_size=8, fitness_evaluations=120)


class TestQuadraticSurrogate:
    def test_learns_a_quadratic_exactly(self, rng):
        model = QuadraticSurrogate(n_features=3, ridge=1e-9)
        def true(x):
            return 2.0 + x @ [1.0, -2.0, 0.5] + (x**2) @ [0.3, 0.0, -0.1]
        xs = rng.uniform(-2, 2, (60, 3))
        for x in xs:
            model.add(x, true(x))
        assert model.fit()
        test = rng.uniform(-2, 2, (10, 3))
        preds = model.predict(test)
        targets = np.array([true(x) for x in test])
        assert preds == pytest.approx(targets, abs=1e-3)

    def test_refuses_prediction_before_fit(self):
        model = QuadraticSurrogate(2)
        with pytest.raises(RuntimeError, match="not fit"):
            model.predict(np.zeros(2))

    def test_needs_enough_samples(self, rng):
        model = QuadraticSurrogate(5)
        for _ in range(3):
            model.add(rng.uniform(0, 1, 5), 1.0)
        assert not model.fit()

    def test_skips_nonfinite_targets(self, rng):
        model = QuadraticSurrogate(2)
        model.add(rng.uniform(0, 1, 2), -np.inf)
        assert model.n_samples == 0

    def test_wrong_feature_size_raises(self):
        model = QuadraticSurrogate(2)
        with pytest.raises(ValueError, match="x size"):
            model.add(np.zeros(3), 1.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="n_features"):
            QuadraticSurrogate(0)
        with pytest.raises(ValueError, match="ridge"):
            QuadraticSurrogate(2, ridge=0.0)

    def test_ridge_tames_collinearity(self, rng):
        model = QuadraticSurrogate(2, ridge=1.0)
        x = rng.uniform(0, 1, 2)
        for _ in range(20):
            model.add(x, 5.0)  # all-identical inputs: singular without ridge
        assert model.fit()
        assert np.isfinite(model.predict(x)).all()


class TestSurrogateAssisted:
    def test_budget_counts_true_evaluations_only(self, instance, cfg):
        result = run_surrogate(instance, cfg, seed=0, oversample=4)
        assert result.ul_evaluations_used <= cfg.fitness_evaluations
        # Screening really happened: more candidates than evaluations.
        assert result.extras["screened_out"] > 0
        assert result.extras["surrogate_samples"] == result.ul_evaluations_used

    def test_oversample_one_disables_screening(self, instance, cfg):
        result = run_surrogate(instance, cfg, seed=0, oversample=1)
        assert result.extras["screened_out"] == 0

    def test_reproducible(self, instance, cfg):
        a = run_surrogate(instance, cfg, seed=3)
        b = run_surrogate(instance, cfg, seed=3)
        assert a.best_upper == pytest.approx(b.best_upper)
        assert a.best_gap == pytest.approx(b.best_gap)

    def test_solution_consistent(self, instance, cfg):
        result = run_surrogate(instance, cfg, seed=1)
        sol = result.best_solution
        assert instance.revenue(sol.prices, sol.selection) == pytest.approx(
            result.best_upper
        )
        assert instance.lower_level(sol.prices).is_feasible(sol.selection)

    def test_validation(self, instance, cfg):
        with pytest.raises(ValueError, match="oversample"):
            SurrogateAssisted(instance, cfg, oversample=0)

    def test_gap_matches_fixed_heuristic_family(self, instance, cfg):
        """Like NSQ, the APP baseline's gap is pinned at the fixed
        heuristic's quality (it saves evaluations, not solver skill)."""
        from repro.bcpop.evaluate import LowerLevelEvaluator
        from repro.covering.heuristics import chvatal_score

        result = run_surrogate(instance, cfg, seed=2)
        ev = LowerLevelEvaluator(instance)
        replay = ev.evaluate_heuristic(result.best_solution.prices, chvatal_score)
        assert result.best_gap <= replay.gap + 1e-6
