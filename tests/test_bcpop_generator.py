"""Tests for the OR-library-style instance generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bcpop.generator import (
    PAPER_CLASSES,
    GeneratorSpec,
    generate_covering_instance,
    generate_instance,
    paper_instance_classes,
)


class TestGeneratorSpec:
    def test_rejects_degenerate_size(self):
        with pytest.raises(ValueError, match="degenerate"):
            GeneratorSpec(n_bundles=1, n_services=1)

    def test_rejects_bad_tightness(self):
        with pytest.raises(ValueError, match="tightness"):
            GeneratorSpec(n_bundles=10, n_services=2, tightness=1.5)

    def test_rejects_bad_own_fraction(self):
        with pytest.raises(ValueError, match="own_fraction"):
            GeneratorSpec(n_bundles=10, n_services=2, own_fraction=0.0)


class TestCoveringGeneration:
    def test_shapes_and_coverability(self, rng):
        spec = GeneratorSpec(n_bundles=40, n_services=6)
        inst = generate_covering_instance(spec, rng)
        assert inst.n_bundles == 40 and inst.n_services == 6
        assert inst.is_coverable()

    def test_tightness_scales_demand(self, rng):
        spec_loose = GeneratorSpec(n_bundles=40, n_services=3, tightness=0.1)
        spec_tight = GeneratorSpec(n_bundles=40, n_services=3, tightness=0.7)
        loose = generate_covering_instance(spec_loose, np.random.default_rng(5))
        tight = generate_covering_instance(spec_tight, np.random.default_rng(5))
        assert (tight.demand > loose.demand).all()

    def test_costs_positive(self, rng):
        inst = generate_covering_instance(GeneratorSpec(30, 4), rng)
        assert (inst.costs >= 0).all()


class TestBcpopGeneration:
    def test_reproducible_by_seed(self):
        a = generate_instance(50, 5, seed=3)
        b = generate_instance(50, 5, seed=3)
        assert np.array_equal(a.q, b.q)
        assert np.array_equal(a.market_prices, b.market_prices)

    def test_different_seeds_differ(self):
        a = generate_instance(50, 5, seed=3)
        b = generate_instance(50, 5, seed=4)
        assert not np.array_equal(a.q, b.q)

    def test_own_fraction_respected(self):
        inst = generate_instance(100, 5, seed=0, own_fraction=0.2)
        assert inst.n_own == 20

    def test_own_fraction_at_least_one(self):
        inst = generate_instance(10, 2, seed=0, own_fraction=0.01)
        assert inst.n_own == 1

    def test_default_cap_is_max_market_price(self):
        inst = generate_instance(60, 4, seed=1)
        assert inst.price_cap == pytest.approx(inst.market_prices.max())

    def test_explicit_cap(self):
        inst = generate_instance(60, 4, seed=1, price_cap=123.0)
        assert inst.price_cap == 123.0

    def test_name_defaults_to_class(self):
        inst = generate_instance(60, 4, seed=1)
        assert inst.name == "bcpop-n60-m4"


class TestPaperClasses:
    def test_the_nine_classes(self):
        assert len(PAPER_CLASSES) == 9
        assert set(n for n, _ in PAPER_CLASSES) == {100, 250, 500}
        assert set(m for _, m in PAPER_CLASSES) == {5, 10, 30}

    def test_paper_instance_classes_generates_all(self):
        suite = paper_instance_classes(seed=0, instances_per_class=1)
        assert set(suite) == set(PAPER_CLASSES)
        for (n, m), instances in suite.items():
            assert len(instances) == 1
            inst = instances[0]
            assert inst.n_bundles == n and inst.n_services == m
            assert inst.is_coverable()

    def test_addressable_seeding_is_order_independent(self):
        full = paper_instance_classes(seed=9, instances_per_class=1)
        from repro.parallel.rng import stream_for

        single = generate_instance(
            100, 5, seed=stream_for(9, "bcpop", 100, 5, 0),
            name="bcpop-n100-m5-s0",
        )
        assert np.array_equal(full[(100, 5)][0].q, single.q)
