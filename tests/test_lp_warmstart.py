"""LP warm-starting: correctness, fallback safety, and cache plumbing.

Warm-starting re-seeds the simplex tableau from a donor basis so that
solving a *sequence* of relaxations whose only difference is the cost
vector skips phase 1 and most of phase 2.  The contract is: same optimal
objective and status as a cold solve (the vertex may differ on degenerate
optima, which is why ``ExecutionConfig.lp_warm_start`` defaults to off),
and any invalid donor basis silently falls back to the cold path.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lp.bounds import RelaxationCache
from repro.lp.relaxation import solve_relaxation
from repro.lp.simplex import LPStatus, solve_lp
from tests.conftest import random_covering


def _perturbed(instance, seed, scale=0.05):
    gen = np.random.default_rng(seed)
    costs = instance.costs * (1.0 + scale * gen.standard_normal(instance.n_bundles))
    return instance.with_costs(np.abs(costs) + 1e-6)


class TestSolveLpWarmStart:
    def _cover_lp(self, seed):
        inst = random_covering(seed, n_services=4, n_bundles=14)
        return dict(
            c=inst.costs,
            A_ub=-inst.q,
            b_ub=-inst.demand,
            ub=np.ones(inst.n_bundles),
        )

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000), pert=st.integers(0, 10_000))
    def test_warm_solve_reaches_same_objective(self, seed, pert):
        kw = self._cover_lp(seed)
        cold = solve_lp(**kw)
        assert cold.status is LPStatus.OPTIMAL
        assert cold.basis is not None
        gen = np.random.default_rng(pert)
        kw2 = dict(kw, c=kw["c"] * (1.0 + 0.1 * gen.random(kw["c"].size)))
        warm = solve_lp(**kw2, basis0=cold.basis)
        ref = solve_lp(**kw2)
        assert warm.status is LPStatus.OPTIMAL
        assert warm.fun == pytest.approx(ref.fun, rel=1e-9, abs=1e-9)

    def test_warm_start_flag_and_iteration_savings(self):
        kw = self._cover_lp(3)
        cold = solve_lp(**kw)
        # Re-solving the *same* LP from its own optimal basis is already
        # optimal: the warm solve must flag itself and do (near) no work.
        warm = solve_lp(**kw, basis0=cold.basis)
        assert warm.warm_started
        assert not cold.warm_started
        assert warm.iterations <= cold.iterations
        assert warm.fun == pytest.approx(cold.fun, rel=1e-12)

    def test_wrong_shape_basis_falls_back(self):
        kw = self._cover_lp(5)
        cold = solve_lp(**kw)
        warm = solve_lp(**kw, basis0=np.array([0, 1], dtype=np.int64))
        assert not warm.warm_started
        assert warm.fun == pytest.approx(cold.fun, rel=1e-12)

    def test_out_of_range_basis_falls_back(self):
        kw = self._cover_lp(6)
        cold = solve_lp(**kw)
        m = cold.basis.size
        bogus = np.full(m, 10_000, dtype=np.int64)  # artificial-range columns
        warm = solve_lp(**kw, basis0=bogus)
        assert not warm.warm_started
        assert warm.fun == pytest.approx(cold.fun, rel=1e-12)

    def test_duplicate_basis_falls_back(self):
        kw = self._cover_lp(7)
        cold = solve_lp(**kw)
        dupes = np.zeros_like(cold.basis)
        warm = solve_lp(**kw, basis0=dupes)
        assert not warm.warm_started
        assert warm.fun == pytest.approx(cold.fun, rel=1e-12)

    def test_negative_indices_fall_back(self):
        kw = self._cover_lp(8)
        cold = solve_lp(**kw)
        bad = cold.basis.copy()
        bad[0] = -1
        warm = solve_lp(**kw, basis0=bad)
        assert not warm.warm_started
        assert warm.fun == pytest.approx(cold.fun, rel=1e-12)

    def test_cold_result_carries_reusable_basis(self):
        """The basis returned by one solve is a *valid* donor: feeding it
        back verbatim must be accepted, not rejected by validation."""
        kw = self._cover_lp(9)
        cold = solve_lp(**kw)
        assert cold.basis.dtype == np.int64
        assert np.unique(cold.basis).size == cold.basis.size
        again = solve_lp(**kw, basis0=cold.basis)
        assert again.warm_started


class TestRelaxationWarmStart:
    def test_simplex_backend_threads_basis(self):
        inst = random_covering(11, n_services=4, n_bundles=16)
        cold = solve_relaxation(inst, backend="simplex")
        assert cold.basis is not None
        assert cold.iterations > 0
        pert = _perturbed(inst, seed=1)
        warm = solve_relaxation(
            pert, backend="simplex", warm_start_basis=cold.basis
        )
        ref = solve_relaxation(pert, backend="simplex")
        assert warm.warm_started
        assert warm.lower_bound == pytest.approx(ref.lower_bound, rel=1e-9)
        assert warm.iterations <= ref.iterations

    def test_scipy_backend_ignores_basis(self):
        inst = random_covering(12)
        relax = solve_relaxation(
            inst, backend="scipy", warm_start_basis=np.arange(3, dtype=np.int64)
        )
        assert not relax.warm_started
        assert relax.feasible

    def test_warm_bound_usable_for_gap(self):
        """The warm relaxation's LB must be interchangeable with the cold
        one when computing paper Eq. 1 gaps."""
        inst = random_covering(13, n_services=4, n_bundles=16)
        cold_ref = solve_relaxation(inst, backend="simplex")
        pert = _perturbed(inst, seed=2)
        warm = solve_relaxation(
            pert, backend="simplex", warm_start_basis=cold_ref.basis
        )
        ref = solve_relaxation(pert, backend="simplex")
        some_cost = float(pert.costs.sum())
        assert warm.percent_gap(some_cost) == pytest.approx(
            ref.percent_gap(some_cost), rel=1e-9, abs=1e-9
        )


class TestRelaxationCacheWarmStart:
    def test_donor_flow_and_counters(self):
        cache = RelaxationCache(backend="simplex", warm_start=True)
        base = random_covering(20, n_services=4, n_bundles=16)
        cache.get(base)
        assert cache.warm_attempts == 0  # nothing to donate yet
        for seed in range(1, 5):
            cache.get(_perturbed(base, seed))
        assert cache.warm_attempts == 4
        assert cache.warm_accepts >= 1
        stats = cache.warm_stats
        assert stats["enabled"] is True
        assert stats["attempts"] == 4
        assert stats["accepts"] == cache.warm_accepts
        assert 0.0 <= stats["accept_rate"] <= 1.0
        assert stats["simplex_iterations"] == cache.simplex_iterations > 0

    def test_warm_results_match_cold_cache(self):
        base = random_covering(21, n_services=4, n_bundles=16)
        warm_cache = RelaxationCache(backend="simplex", warm_start=True)
        cold_cache = RelaxationCache(backend="simplex", warm_start=False)
        for seed in range(6):
            inst = _perturbed(base, seed)
            a = warm_cache.get(inst)
            b = cold_cache.get(inst)
            assert a.lower_bound == pytest.approx(b.lower_bound, rel=1e-9)
            assert a.feasible == b.feasible
        assert cold_cache.warm_attempts == 0
        assert cold_cache.warm_stats["enabled"] is False

    def test_warm_start_saves_iterations_on_a_sweep(self):
        """A price sweep (the CARBON access pattern): total simplex
        iterations with warm-starting must not exceed the cold total."""
        base = random_covering(22, n_services=4, n_bundles=18)
        warm_cache = RelaxationCache(backend="simplex", warm_start=True)
        cold_cache = RelaxationCache(backend="simplex", warm_start=False)
        for seed in range(10):
            inst = _perturbed(base, seed, scale=0.02)
            warm_cache.get(inst)
            cold_cache.get(inst)
        assert warm_cache.warm_accepts > 0
        assert warm_cache.simplex_iterations <= cold_cache.simplex_iterations

    def test_window_limits_donor_scan(self):
        cache = RelaxationCache(backend="simplex", warm_start=True, warm_window=1)
        base = random_covering(23, n_services=4, n_bundles=14)
        cache.get(base)
        cache.get(_perturbed(base, 1))
        # Window of 1 still finds the most recent donor.
        assert cache.warm_attempts == 1

    def test_counters_reset_on_clear(self):
        cache = RelaxationCache(backend="simplex", warm_start=True)
        base = random_covering(24, n_services=4, n_bundles=14)
        cache.get(base)
        cache.get(_perturbed(base, 1))
        cache.clear()
        assert cache.warm_attempts == 0
        assert cache.warm_accepts == 0
        assert cache.simplex_iterations == 0
        assert len(cache) == 0
