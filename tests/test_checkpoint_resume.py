"""Checkpoint/resume determinism: an interrupted run, resumed from its
JSON checkpoint, must be *bit-identical* to the same run left alone.

This extends PR 1's serial/parallel determinism contract
(tests/test_parallel_determinism.py) to interrupted runs, for every
engine algorithm: the checkpoint round-trips populations, archives, the
NumPy bit-generator state, the budget ledger, and the history exactly,
so the resumed half replays the same random draws against the same
state.  Also covers the pack/unpack JSON codec and file-format
validation underneath.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.bcpop.generator import generate_instance
from repro.core.carbon import Carbon, run_carbon
from repro.core.checkpoint import (
    load_checkpoint,
    pack,
    save_checkpoint,
    unpack,
)
from repro.core.cobra import Cobra, run_cobra
from repro.core.config import CarbonConfig, CobraConfig, UpperLevelConfig
from repro.core.engine import EngineLoop
from repro.core.nested import NestedSequential, run_nested
from repro.core.surrogate import SurrogateAssisted, run_surrogate
from repro.ga.population import Individual
from repro.gp.primitives import lookup_primitive, lookup_terminal
from repro.gp.tree import SyntaxTree
from repro.parallel.islands import IslandCarbon, run_island_carbon

from tests.test_parallel_determinism import assert_bit_identical


@pytest.fixture(scope="module")
def instance():
    return generate_instance(24, 3, seed=5, name="resume-24x3")


class TestPackUnpack:
    def test_scalars_roundtrip_exactly(self):
        values = [None, True, False, 0, -17, "text", 0.1, -1e300, 2**53 + 1]
        for v in values:
            assert unpack(json.loads(json.dumps(pack(v)))) == v

    def test_nonfinite_floats(self):
        out = unpack(json.loads(json.dumps(pack([np.nan, np.inf, -np.inf]))))
        assert np.isnan(out[0]) and out[1] == np.inf and out[2] == -np.inf

    def test_numpy_scalars_become_python(self):
        assert unpack(pack(np.float64(0.25))) == 0.25
        assert unpack(pack(np.int64(7))) == 7
        assert unpack(pack(np.bool_(True))) is True

    @pytest.mark.parametrize("dtype", ["float64", "int64", "bool"])
    def test_arrays_roundtrip_bitwise(self, dtype):
        rng = np.random.default_rng(0)
        arr = (rng.random((3, 5)) * 100).astype(dtype)
        out = unpack(json.loads(json.dumps(pack(arr))))
        assert out.dtype == arr.dtype
        assert out.shape == arr.shape
        assert np.array_equal(out, arr)
        out[0, 0] = 0  # unpack must hand back a writable copy

    def test_tree_roundtrip(self):
        tree = SyntaxTree(
            [
                lookup_primitive("add"),
                lookup_terminal("COST"),
                lookup_terminal("QSUM"),
            ]
        )
        out = unpack(json.loads(json.dumps(pack(tree))))
        assert isinstance(out, SyntaxTree)
        assert out == tree

    def test_individual_roundtrip(self):
        ind = Individual(
            genome=np.array([1.5, 2.5]),
            fitness=np.nan,
            aux={"gap": 0.25, "selection": np.array([True, False])},
        )
        out = unpack(json.loads(json.dumps(pack(ind))))
        assert isinstance(out, Individual)
        assert np.array_equal(out.genome, ind.genome)
        assert np.isnan(out.fitness)
        assert out.aux["gap"] == 0.25
        assert np.array_equal(out.aux["selection"], ind.aux["selection"])

    def test_nested_containers(self):
        obj = {"a": [1, (2.0, None)], "b": {"c": np.arange(3)}}
        out = unpack(json.loads(json.dumps(pack(obj))))
        assert out["a"] == [1, [2.0, None]]  # tuples come back as lists
        assert np.array_equal(out["b"]["c"], np.arange(3))

    def test_unpackable_types_rejected(self):
        with pytest.raises(TypeError, match="cannot checkpoint"):
            pack(object())
        with pytest.raises(TypeError, match="keys must be str"):
            pack({1: "x"})


class TestCheckpointFile:
    def test_save_load_roundtrip(self, tmp_path):
        algo = Carbon(
            generate_instance(16, 2, seed=1),
            CarbonConfig.quick(40, 40, population_size=6),
            np.random.default_rng(0),
        )
        path = tmp_path / "c.json"
        EngineLoop(algo, max_generations=1).run()
        save_checkpoint(path, algo)
        document = load_checkpoint(path)
        assert document["format"] == "repro-checkpoint"
        assert document["algorithm"] == "CARBON"
        assert document["state"]["generation"] == algo.generation

    def test_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "not-a-checkpoint.json"
        path.write_text('{"format": "something-else", "version": 1}')
        with pytest.raises(ValueError, match="not a repro-checkpoint"):
            load_checkpoint(path)

    def test_rejects_future_version(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text('{"format": "repro-checkpoint", "version": 99, "state": {}}')
        with pytest.raises(ValueError, match="version"):
            load_checkpoint(path)


def interrupt_and_resume(make_algo, path, seed, pause_after=2):
    """Run ``pause_after`` generations, checkpoint to ``path``, then
    resume a *fresh* algorithm (different construction RNG — the
    checkpoint must fully overwrite it) from the file."""
    partial = EngineLoop(make_algo(seed), max_generations=pause_after)
    algo = partial.algorithm
    interrupted = partial.run(seed_label=seed)
    assert interrupted.extras["engine"]["status"] == "paused"
    save_checkpoint(path, algo)
    fresh = make_algo(seed + 999)
    state = load_checkpoint(path)["state"]
    return EngineLoop(fresh, resume_state=state).run(seed_label=seed)


class TestResumeBitIdentical:
    """The satellite contract: interrupt mid-budget, resume from JSON,
    compare against the uninterrupted run."""

    def test_carbon(self, instance, tmp_path):
        cfg = CarbonConfig.quick(120, 120, population_size=8)
        baseline = run_carbon(instance, cfg, seed=3)
        resumed = interrupt_and_resume(
            lambda s: Carbon(instance, cfg, np.random.default_rng(s)),
            tmp_path / "carbon.json",
            seed=3,
        )
        assert_bit_identical(resumed, baseline)
        assert resumed.extras["engine"]["resumed"] is True

    def test_cobra(self, instance, tmp_path):
        cfg = CobraConfig.quick(120, 120, population_size=8)
        baseline = run_cobra(instance, cfg, seed=4)
        resumed = interrupt_and_resume(
            lambda s: Cobra(instance, cfg, np.random.default_rng(s)),
            tmp_path / "cobra.json",
            seed=4,
        )
        assert_bit_identical(resumed, baseline)

    def test_nested(self, instance, tmp_path):
        cfg = UpperLevelConfig(population_size=8, fitness_evaluations=96)
        baseline = run_nested(instance, cfg, seed=5)
        resumed = interrupt_and_resume(
            lambda s: NestedSequential(instance, cfg, np.random.default_rng(s)),
            tmp_path / "nested.json",
            seed=5,
        )
        assert_bit_identical(resumed, baseline)

    def test_surrogate(self, instance, tmp_path):
        cfg = UpperLevelConfig(population_size=8, fitness_evaluations=96)
        baseline = run_surrogate(instance, cfg, seed=6)
        resumed = interrupt_and_resume(
            lambda s: SurrogateAssisted(instance, cfg, np.random.default_rng(s)),
            tmp_path / "surrogate.json",
            seed=6,
        )
        assert_bit_identical(resumed, baseline)

    def test_islands(self, instance, tmp_path):
        cfg = CarbonConfig.quick(80, 80, population_size=6)
        baseline = run_island_carbon(
            instance, cfg, n_islands=2, migration_interval=2, seed=7
        )
        resumed = interrupt_and_resume(
            lambda s: IslandCarbon(
                instance, cfg, n_islands=2, migration_interval=2, seed=7
            ),
            tmp_path / "islands.json",
            seed=7,
            pause_after=3,
        )
        assert_bit_identical(resumed, baseline)
        assert resumed.extras["migrations"] == baseline.extras["migrations"]

    def test_checkpoint_after_finish_reextracts(self, instance, tmp_path):
        """Resuming a *finished* run does no more work and reproduces the
        result (how --resume skips completed grid cells)."""
        cfg = CarbonConfig.quick(60, 60, population_size=6)
        algo = Carbon(instance, cfg, np.random.default_rng(2))
        baseline = EngineLoop(algo).run(seed_label=2)
        path = tmp_path / "done.json"
        save_checkpoint(path, algo)
        fresh = Carbon(instance, cfg, np.random.default_rng(123))
        state = load_checkpoint(path)["state"]
        again = EngineLoop(fresh, resume_state=state).run(seed_label=2)
        assert_bit_identical(again, baseline)
        # No further steps happened: the generation counter and budgets
        # are exactly the restored ones.
        assert (
            again.extras["engine"]["generations"]
            == baseline.extras["engine"]["generations"]
        )
        assert again.ul_evaluations_used == baseline.ul_evaluations_used
