"""Self-healing checkpoints: checksums, retention rotation, and resume
through a damaged chain.

The corruption matrix of DESIGN.md §11: with ``keep=N`` rotation, a
newest checkpoint that is truncated mid-write, bit-flipped on disk, or
deleted outright must cost at most one save interval —
:func:`load_latest_checkpoint` falls back to the newest *valid* file,
and the resumed run is bit-identical to the uninterrupted baseline.
Foreign files (wrong format/version) still raise instead of being
silently skipped.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.bcpop.generator import generate_instance
from repro.core.carbon import Carbon, run_carbon
from repro.core.checkpoint import (
    CheckpointCorruptError,
    Checkpointer,
    checkpoint_chain,
    load_checkpoint,
    load_latest_checkpoint,
    save_checkpoint,
)
from repro.core.config import CarbonConfig
from repro.core.engine import EngineLoop

from tests.test_parallel_determinism import assert_bit_identical

SEED = 3


@pytest.fixture(scope="module")
def instance():
    return generate_instance(24, 3, seed=5, name="corrupt-24x3")


@pytest.fixture(scope="module")
def config():
    return CarbonConfig.quick(120, 120, population_size=8)


@pytest.fixture(scope="module")
def baseline(instance, config):
    return run_carbon(instance, config, seed=SEED)


def _make_algo(instance, config, seed=SEED):
    return Carbon(instance, config, np.random.default_rng(seed))


def _interrupt_with_chain(instance, config, path, pause_after=3, keep=3):
    """Run ``pause_after`` generations with a rotating Checkpointer, so
    ``path`` is the newest checkpoint and ``path.1``/``path.2`` trail it."""
    checkpointer = Checkpointer(path, every=1, keep=keep)
    loop = EngineLoop(
        _make_algo(instance, config),
        observers=[checkpointer],
        max_generations=pause_after,
    )
    interrupted = loop.run(seed_label=SEED)
    assert interrupted.extras["engine"]["status"] == "paused"
    return checkpointer


def _resume_from_latest(instance, config, path):
    document = load_latest_checkpoint(path)
    assert document is not None
    fresh = _make_algo(instance, config, seed=SEED + 999)
    return EngineLoop(fresh, resume_state=document["state"]).run(seed_label=SEED)


def _flip_payload(path):
    """Damage the file content while keeping it valid JSON: the checksum,
    not the parser, must catch this."""
    document = json.loads(path.read_text())
    document["generation"] = document["generation"] + 1
    path.write_text(json.dumps(document))


class TestRotation:
    def test_keep_rotates_newest_first(self, instance, config, tmp_path):
        path = tmp_path / "c.json"
        cp = _interrupt_with_chain(instance, config, path, pause_after=4, keep=3)
        # 4 generation saves + the paused run-end save, capped at keep=3.
        assert cp.saves == 5
        chain = checkpoint_chain(path)
        assert chain == [str(path), f"{path}.1", f"{path}.2"]
        generations = [load_checkpoint(p)["generation"] for p in chain]
        # Newest first; run-end re-saves generation 4 after the
        # generation-4 periodic save.
        assert generations == [4, 4, 3]

    def test_keep_one_keeps_single_file(self, instance, config, tmp_path):
        path = tmp_path / "c.json"
        _interrupt_with_chain(instance, config, path, pause_after=2, keep=1)
        assert checkpoint_chain(path) == [str(path)]

    def test_save_rejects_bad_keep(self, instance, config, tmp_path):
        algo = _make_algo(instance, config)
        EngineLoop(algo, max_generations=1).run(seed_label=SEED)
        with pytest.raises(ValueError, match="keep"):
            save_checkpoint(tmp_path / "c.json", algo, keep=0)
        with pytest.raises(ValueError, match="keep"):
            Checkpointer(tmp_path / "c.json", keep=0)


class TestChecksum:
    def test_bit_flip_detected(self, instance, config, tmp_path):
        path = tmp_path / "c.json"
        algo = _make_algo(instance, config)
        EngineLoop(algo, max_generations=1).run(seed_label=SEED)
        save_checkpoint(path, algo)
        _flip_payload(path)
        with pytest.raises(CheckpointCorruptError, match="checksum"):
            load_checkpoint(path)

    def test_truncation_detected(self, instance, config, tmp_path):
        path = tmp_path / "c.json"
        algo = _make_algo(instance, config)
        EngineLoop(algo, max_generations=1).run(seed_label=SEED)
        save_checkpoint(path, algo)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(CheckpointCorruptError, match="truncated"):
            load_checkpoint(path)

    def test_corrupt_error_is_a_value_error(self):
        # Callers catching the historical ValueError keep working.
        assert issubclass(CheckpointCorruptError, ValueError)

    def test_legacy_checkpoint_without_checksum_loads(self, instance, config, tmp_path):
        path = tmp_path / "c.json"
        algo = _make_algo(instance, config)
        EngineLoop(algo, max_generations=1).run(seed_label=SEED)
        save_checkpoint(path, algo)
        document = json.loads(path.read_text())
        del document["checksum"]
        path.write_text(json.dumps(document))
        assert load_checkpoint(path)["generation"] == 1


class TestLoadLatest:
    """The corruption matrix: newest damaged → newest valid wins."""

    @pytest.mark.parametrize(
        "damage",
        ["truncate", "bit_flip", "delete"],
        ids=["truncated-newest", "bit-flipped-newest", "deleted-newest"],
    )
    def test_damaged_newest_falls_back(self, instance, config, tmp_path, damage):
        path = tmp_path / "c.json"
        _interrupt_with_chain(instance, config, path, pause_after=3, keep=3)
        if damage == "truncate":
            text = path.read_text()
            path.write_text(text[: len(text) // 3])
        elif damage == "bit_flip":
            _flip_payload(path)
        else:
            os.remove(path)
        document = load_latest_checkpoint(path)
        assert document is not None
        # The fallback is path.1 — the run-end save also at generation 3.
        assert document["generation"] == 3

    def test_two_damaged_skips_two(self, instance, config, tmp_path):
        path = tmp_path / "c.json"
        _interrupt_with_chain(instance, config, path, pause_after=3, keep=3)
        os.remove(path)
        _flip_payload(tmp_path / "c.json.1")
        document = load_latest_checkpoint(path)
        assert document is not None
        assert document["generation"] == 2

    def test_all_damaged_returns_none(self, instance, config, tmp_path):
        path = tmp_path / "c.json"
        _interrupt_with_chain(instance, config, path, pause_after=2, keep=2)
        for candidate in checkpoint_chain(path):
            os.remove(candidate)
        assert load_latest_checkpoint(path) is None
        assert load_latest_checkpoint(tmp_path / "never-existed.json") is None

    def test_foreign_file_still_raises(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text('{"format": "something-else", "version": 1}')
        with pytest.raises(ValueError, match="not a repro-checkpoint"):
            load_latest_checkpoint(path)


class TestResumeThroughDamage:
    """Acceptance: corrupting the newest checkpoint mid-run and resuming
    from the rotated chain reproduces the uninterrupted run exactly."""

    @pytest.mark.parametrize(
        "damage",
        ["truncate", "bit_flip", "delete"],
        ids=["truncated-newest", "bit-flipped-newest", "deleted-newest"],
    )
    def test_resume_bit_identical(self, instance, config, tmp_path, baseline, damage):
        path = tmp_path / "c.json"
        _interrupt_with_chain(instance, config, path, pause_after=3, keep=3)
        if damage == "truncate":
            text = path.read_text()
            path.write_text(text[: len(text) // 2])
        elif damage == "bit_flip":
            _flip_payload(path)
        else:
            os.remove(path)
        resumed = _resume_from_latest(instance, config, path)
        assert_bit_identical(resumed, baseline)
        assert resumed.extras["engine"]["resumed"] is True

    def test_resume_from_older_interval_bit_identical(
        self, instance, config, tmp_path, baseline
    ):
        """Losing *two* saves still only rewinds the resume point — the
        replayed generations land on the identical result."""
        path = tmp_path / "c.json"
        _interrupt_with_chain(instance, config, path, pause_after=3, keep=3)
        os.remove(path)
        _flip_payload(tmp_path / "c.json.1")
        resumed = _resume_from_latest(instance, config, path)
        assert_bit_identical(resumed, baseline)
