"""Tests for the BCPOP container and pricing → lower-level induction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bcpop.instance import BcpopInstance


@pytest.fixture
def manual_bcpop() -> BcpopInstance:
    """2 services, 4 bundles; leader owns the first 2."""
    return BcpopInstance(
        q=[[4.0, 4.0, 0.0, 2.0], [0.0, 2.0, 4.0, 2.0]],
        demand=[4.0, 4.0],
        market_prices=[2.0, 10.0],
        n_own=2,
        price_cap=10.0,
        name="manual",
    )


class TestConstruction:
    def test_dimensions(self, manual_bcpop):
        assert manual_bcpop.n_bundles == 4
        assert manual_bcpop.n_services == 2

    def test_rejects_bad_n_own(self):
        with pytest.raises(ValueError, match="n_own"):
            BcpopInstance(
                q=[[1.0]], demand=[1.0], market_prices=[], n_own=2, price_cap=1.0
            )

    def test_rejects_market_price_shape(self):
        with pytest.raises(ValueError, match="market_prices"):
            BcpopInstance(
                q=[[1.0, 1.0]], demand=[1.0], market_prices=[1.0, 2.0],
                n_own=1, price_cap=1.0,
            )

    def test_rejects_negative_market_price(self):
        with pytest.raises(ValueError, match="non-negative"):
            BcpopInstance(
                q=[[1.0, 1.0]], demand=[1.0], market_prices=[-1.0],
                n_own=1, price_cap=1.0,
            )

    def test_rejects_nonpositive_cap(self):
        with pytest.raises(ValueError, match="price_cap"):
            BcpopInstance(
                q=[[1.0, 1.0]], demand=[1.0], market_prices=[1.0],
                n_own=1, price_cap=0.0,
            )


class TestPricingInduction:
    def test_lower_level_costs_concatenate(self, manual_bcpop):
        ll = manual_bcpop.lower_level([5.0, 7.0])
        assert ll.costs == pytest.approx([5.0, 7.0, 2.0, 10.0])

    def test_lower_level_shares_structure(self, manual_bcpop):
        ll = manual_bcpop.lower_level([1.0, 1.0])
        assert ll.q is manual_bcpop.q
        assert ll.demand is manual_bcpop.demand

    def test_prices_clipped_to_cap(self, manual_bcpop):
        ll = manual_bcpop.lower_level([99.0, 0.0])
        assert ll.costs[0] == pytest.approx(10.0)

    def test_negative_prices_rejected(self, manual_bcpop):
        with pytest.raises(ValueError, match="non-negative"):
            manual_bcpop.lower_level([-1.0, 0.0])

    def test_wrong_price_shape_rejected(self, manual_bcpop):
        with pytest.raises(ValueError, match="prices shape"):
            manual_bcpop.lower_level([1.0])

    def test_price_bounds(self, manual_bcpop):
        low, high = manual_bcpop.price_bounds
        assert low == pytest.approx([0.0, 0.0])
        assert high == pytest.approx([10.0, 10.0])


class TestRevenue:
    def test_revenue_counts_only_own_bundles(self, manual_bcpop):
        sel = np.array([True, False, True, True])
        # Own bundle 0 at price 5; market bundles contribute nothing.
        assert manual_bcpop.revenue([5.0, 7.0], sel) == pytest.approx(5.0)

    def test_zero_revenue_when_nothing_bought(self, manual_bcpop):
        sel = np.array([False, False, True, True])
        assert manual_bcpop.revenue([5.0, 7.0], sel) == 0.0

    def test_selection_shape_validated(self, manual_bcpop):
        with pytest.raises(ValueError, match="selection"):
            manual_bcpop.revenue([1.0, 1.0], np.ones(2, dtype=bool))


class TestCoverability:
    def test_manual_is_coverable(self, manual_bcpop):
        assert manual_bcpop.is_coverable()

    def test_market_only_instance_prices_at_cap(self, manual_bcpop):
        ll = manual_bcpop.market_only_instance()
        assert ll.costs[:2] == pytest.approx([10.0, 10.0])

    def test_generated_instances_coverable(self, small_bcpop):
        assert small_bcpop.is_coverable()
