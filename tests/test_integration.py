"""Cross-module integration tests: the paper's claims end to end.

These run both algorithms on a shared small instance suite and assert the
*shape* of the paper's findings (Tables III/IV, Figs. 4/5) at test scale.
Budgets are tiny, so assertions are directional with slack rather than
exact-magnitude.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bcpop.generator import generate_instance
from repro.core.carbon import run_carbon
from repro.core.cobra import run_cobra
from repro.core.config import CarbonConfig, CobraConfig
from repro.core.convergence import seesaw_index

CARBON_CFG = CarbonConfig.quick(ul_evaluations=700, ll_evaluations=700, population_size=14)
COBRA_CFG = CobraConfig.quick(ul_evaluations=700, ll_evaluations=700, population_size=14)
SEEDS = (0, 1, 2)


@pytest.fixture(scope="module")
def instance():
    return generate_instance(50, 5, seed=23, name="integration")


@pytest.fixture(scope="module")
def carbon_runs(instance):
    return [run_carbon(instance, CARBON_CFG, seed=s) for s in SEEDS]


@pytest.fixture(scope="module")
def cobra_runs(instance):
    return [run_cobra(instance, COBRA_CFG, seed=s) for s in SEEDS]


class TestTable3Shape:
    def test_carbon_gap_below_cobra(self, carbon_runs, cobra_runs):
        """Paper Table III: CARBON's %-gap is far smaller than COBRA's."""
        carbon_gap = np.mean([r.best_gap for r in carbon_runs])
        cobra_gap = np.mean([r.best_gap for r in cobra_runs])
        assert carbon_gap < cobra_gap

    def test_gaps_are_valid(self, carbon_runs, cobra_runs):
        for r in carbon_runs + cobra_runs:
            assert np.isfinite(r.best_gap)
            assert r.best_gap >= -1e-9


class TestTable4Shape:
    def test_cobra_revenue_competitive_despite_weak_follower(
        self, carbon_runs, cobra_runs
    ):
        """Paper Table IV + Eq. 2-3: looser LL solving relaxes the UL, so
        COBRA reports revenue at least rivalling CARBON's realistic
        estimate *despite* its far worse %-gap.  The full >1.4x
        overestimation needs more exploitation budget than a unit test
        affords — the strict directional claim lives in
        benchmarks/bench_table4_ulobj.py (and EXPERIMENTS.md documents the
        budget dependence)."""
        carbon_up = np.mean([r.best_upper for r in carbon_runs])
        cobra_up = np.mean([r.best_upper for r in cobra_runs])
        assert cobra_up > 0.7 * carbon_up

    def test_carbon_revenue_is_realizable(self, instance, carbon_runs):
        """CARBON's reported revenue comes from an actually simulated
        follower basket, so it is exactly reproducible."""
        for r in carbon_runs:
            sol = r.best_solution
            assert instance.revenue(sol.prices, sol.selection) == pytest.approx(
                r.best_upper
            )

    def test_cobra_revenue_inflated_relative_to_rational(self, instance, cobra_runs):
        """Re-solving COBRA's best pricing with a near-rational follower
        (exact B&B) yields no more revenue than COBRA claimed on average —
        the overestimation is real, not an artifact of our extraction."""
        from repro.covering.exact import solve_exact

        claimed, rational = [], []
        for r in cobra_runs:
            ll = instance.lower_level(r.best_solution.prices)
            exact = solve_exact(ll, method="branch_and_bound", max_nodes=4000)
            rational.append(instance.revenue(r.best_solution.prices, exact.selected))
            claimed.append(r.best_upper)
        assert np.mean(claimed) >= np.mean(rational) - 1e-6


class TestFig45Shape:
    def test_cobra_seesaw_exceeds_carbon(self, carbon_runs, cobra_runs):
        carbon_ss = np.mean(
            [seesaw_index(r.history.series("fitness")[1]) for r in carbon_runs]
        )
        cobra_ss = np.mean(
            [seesaw_index(r.history.series("fitness")[1]) for r in cobra_runs]
        )
        assert cobra_ss > carbon_ss + 0.1

    def test_carbon_gap_trend_downward(self, carbon_runs):
        """Fig. 4: steady decrease of the gap curve."""
        for r in carbon_runs:
            _, gaps = r.history.series("gap")
            finite = gaps[np.isfinite(gaps)]
            assert finite[-1] <= finite[0] + 1e-9


class TestChampionQuality:
    def test_champion_beats_plain_cost_heuristic(self, instance, carbon_runs):
        """The evolved heuristic should comfortably beat cheapest-first."""
        from repro.bcpop.evaluate import LowerLevelEvaluator
        from repro.covering.heuristics import cost_score

        ev = LowerLevelEvaluator(instance)
        gen = np.random.default_rng(0)
        prices = [
            gen.uniform(0, instance.price_cap, instance.n_own) for _ in range(5)
        ]
        cost_gaps = [ev.evaluate_heuristic(p, cost_score).gap for p in prices]
        champion_gap = np.mean([r.best_gap for r in carbon_runs])
        assert champion_gap < np.mean(cost_gaps)


class TestPublicAPI:
    def test_star_import_surface(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_docstring_flow(self):
        from repro import CarbonConfig, generate_instance, run_carbon

        inst = generate_instance(16, 2, seed=0)
        res = run_carbon(
            inst, CarbonConfig.quick(60, 60, population_size=6), seed=0
        )
        assert np.isfinite(res.best_gap)
        assert np.isfinite(res.best_upper)
