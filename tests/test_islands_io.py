"""Tests for the island model and instance serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bcpop.generator import generate_instance
from repro.bcpop.io import (
    bcpop_from_dict,
    bcpop_to_dict,
    export_mknap,
    load_bcpop,
    save_bcpop,
)
from repro.bcpop.orlib import parse_mknap
from repro.core.config import CarbonConfig
from repro.parallel.islands import IslandCarbon, run_island_carbon


@pytest.fixture(scope="module")
def instance():
    return generate_instance(24, 3, seed=9, name="island-test")


TINY = CarbonConfig.quick(120, 120, population_size=8)


class TestIslandModel:
    def test_single_island_reduces_to_carbon(self, instance):
        result = run_island_carbon(instance, TINY, n_islands=1, seed=0)
        assert result.algorithm == "CARBON-ISLANDS[1]"
        assert result.extras["migrations"] == 0
        assert np.isfinite(result.best_gap)

    def test_multi_island_budget_is_sum(self, instance):
        result = run_island_carbon(instance, TINY, n_islands=3, seed=0)
        assert result.ul_evaluations_used <= 3 * TINY.upper.fitness_evaluations
        assert result.ll_evaluations_used <= 3 * TINY.ll_fitness_evaluations
        assert len(result.extras["per_island_gap"]) == 3

    def test_migration_happens(self, instance):
        model = IslandCarbon(instance, TINY, n_islands=3, migration_interval=1, seed=1)
        result = model.run()
        assert result.extras["migrations"] >= 1

    def test_migration_spreads_champions(self, instance):
        """With frequent migration, island champions converge."""
        result = run_island_carbon(
            instance, TINY, n_islands=3, migration_interval=1, seed=2
        )
        gaps = result.extras["per_island_gap"]
        assert max(gaps) - min(gaps) <= max(gaps) * 0.5 + 1e-9

    def test_reproducible(self, instance):
        a = run_island_carbon(instance, TINY, n_islands=2, seed=7)
        b = run_island_carbon(instance, TINY, n_islands=2, seed=7)
        assert a.best_gap == pytest.approx(b.best_gap)

    def test_reported_gap_is_ring_best(self, instance):
        result = run_island_carbon(instance, TINY, n_islands=3, seed=3)
        assert result.best_gap == pytest.approx(min(result.extras["per_island_gap"]))

    def test_validation(self, instance):
        with pytest.raises(ValueError, match="n_islands"):
            IslandCarbon(instance, TINY, n_islands=0)
        with pytest.raises(ValueError, match="migration_interval"):
            IslandCarbon(instance, TINY, migration_interval=0)


class TestIslandEngineLifecycle:
    def test_owned_executors_released(self, instance):
        """Regression: the ring must close every island's owned executor
        when the engine finishes (they used to leak)."""
        model = IslandCarbon(instance, TINY, n_islands=3, seed=4)
        closed = []
        for i, isl in enumerate(model.islands):
            assert isl._owns_executor
            original = isl.executor.close

            def tracked_close(i=i, original=original):
                closed.append(i)
                original()

            isl.executor.close = tracked_close
        model.run()
        assert sorted(closed) == [0, 1, 2]

    def test_close_attempts_every_island_despite_errors(self, instance):
        model = IslandCarbon(instance, TINY, n_islands=3, seed=4)
        closed = []
        for i, isl in enumerate(model.islands):
            def tracked_close(i=i):
                closed.append(i)
                if i == 1:
                    raise RuntimeError("boom on island 1")

            isl.close = tracked_close
        with pytest.raises(RuntimeError, match="island 1"):
            model.close()
        assert closed == [0, 1, 2]

    def test_winner_island_reported_coherently(self, instance):
        """The result's gap, price vector, and history all come from the
        single island named in extras — no cross-island mixing."""
        model = IslandCarbon(instance, TINY, n_islands=3, seed=5)
        result = model.run()
        w = result.extras["winner_island"]
        winner = model.islands[w]
        assert result.extras["per_island_gap"][w] == min(
            result.extras["per_island_gap"]
        )
        assert result.best_gap == winner.ll_archive.best_score()
        assert result.best_upper == winner.ul_archive.best_score()
        assert result.history is winner.history
        assert np.array_equal(
            result.best_solution.prices, winner.ul_archive.best().item
        )
        assert result.extras["ring_history"] is model.history

    def test_migration_events_match_counter(self, instance):
        from repro.core.events import Observer

        class CountMigrations(Observer):
            def __init__(self):
                self.count = 0
                self.payloads = []

            def on_migration(self, event):
                self.count += 1
                self.payloads.append(event.data)

        obs = CountMigrations()
        model = IslandCarbon(instance, TINY, n_islands=3, migration_interval=2, seed=6)
        result = model.run(observers=[obs])
        assert obs.count == result.extras["migrations"] >= 1
        assert all(len(p["per_island_gap"]) == 3 for p in obs.payloads)
        assert obs.payloads[-1]["migrations"] == result.extras["migrations"]


class TestSerialization:
    def test_dict_roundtrip(self, instance):
        clone = bcpop_from_dict(bcpop_to_dict(instance))
        assert np.array_equal(clone.q, instance.q)
        assert np.array_equal(clone.demand, instance.demand)
        assert np.array_equal(clone.market_prices, instance.market_prices)
        assert clone.n_own == instance.n_own
        assert clone.price_cap == instance.price_cap
        assert clone.name == instance.name

    def test_file_roundtrip(self, instance, tmp_path):
        path = tmp_path / "inst.json"
        save_bcpop(instance, path)
        clone = load_bcpop(path)
        assert np.array_equal(clone.q, instance.q)

    def test_format_validation(self):
        with pytest.raises(ValueError, match="not a repro-bcpop"):
            bcpop_from_dict({"format": "something-else"})
        with pytest.raises(ValueError, match="version"):
            bcpop_from_dict({"format": "repro-bcpop", "version": 99})

    def test_roundtrip_solves_identically(self, instance, tmp_path):
        from repro.bcpop.evaluate import LowerLevelEvaluator
        from repro.covering.heuristics import chvatal_score

        path = tmp_path / "inst.json"
        save_bcpop(instance, path)
        clone = load_bcpop(path)
        prices = np.full(instance.n_own, instance.price_cap / 3)
        a = LowerLevelEvaluator(instance).evaluate_heuristic(prices, chvatal_score)
        b = LowerLevelEvaluator(clone).evaluate_heuristic(prices, chvatal_score)
        assert a.ll_cost == pytest.approx(b.ll_cost)
        assert a.gap == pytest.approx(b.gap)

    def test_mknap_export_parses_back(self, instance, tmp_path):
        text = export_mknap(instance)
        problems = parse_mknap(text)
        assert len(problems) == 1
        mkp = problems[0]
        assert mkp.n == instance.n_bundles
        assert mkp.m == instance.n_services
        assert np.array_equal(mkp.weights, instance.q)
        assert np.array_equal(mkp.capacities, instance.demand)

    def test_mknap_export_to_file(self, instance, tmp_path):
        path = tmp_path / "inst.mknap"
        export_mknap(instance, path)
        assert parse_mknap(path.read_text())[0].n == instance.n_bundles
