"""Heuristic registry: artifact round-trips, promotion, auto-publish.

The acceptance contract of the serving layer starts here: a heuristic
trained by CARBON, published through the registry, and re-loaded must
re-evaluate to a *bit-identical* %-gap — the canonical serialization is
exact (ERC constants in ``float.hex``), so the registry is a lossless
channel, cross-checked against the checkpoint codec of
:mod:`repro.core.checkpoint`.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.bcpop.evaluate import LowerLevelEvaluator
from repro.bcpop.generator import generate_instance
from repro.core.carbon import Carbon
from repro.core.checkpoint import pack, unpack
from repro.core.config import CarbonConfig
from repro.core.engine import EngineLoop
from repro.gp.generate import ramped_half_and_half
from repro.gp.primitives import paper_primitive_set
from repro.serve.registry import (
    HeuristicRegistry,
    PublishBestHeuristic,
    instance_family,
)


@pytest.fixture(scope="module")
def instance():
    return generate_instance(24, 3, seed=7)


@pytest.fixture()
def registry(tmp_path):
    return HeuristicRegistry(tmp_path / "registry")


def _some_trees(n, seed=0):
    rng = np.random.default_rng(seed)
    pset = paper_primitive_set()
    return ramped_half_and_half(pset, n, rng, min_depth=2, max_depth=4)


class TestPublishGetList:
    def test_publish_get_roundtrip_is_exact(self, registry):
        (tree,) = _some_trees(1)
        artifact = registry.publish(tree, {"family": "n24-m3", "best_gap": 1.5})
        loaded = registry.get(artifact.artifact_id)
        assert loaded.tree_serialization == tree.serialize()
        assert loaded.tree.serialize() == tree.serialize()
        assert loaded.tree_hash == tree.stable_hash()
        assert loaded.metadata["best_gap"] == 1.5

    def test_get_by_unique_prefix(self, registry):
        (tree,) = _some_trees(1)
        artifact = registry.publish(tree, {"best_gap": 2.0})
        assert registry.get(artifact.artifact_id[:12]).artifact_id == artifact.artifact_id

    def test_get_rejects_short_and_unknown_refs(self, registry):
        with pytest.raises(KeyError):
            registry.get("abc")  # below the minimum prefix length
        with pytest.raises(KeyError):
            registry.get("0" * 12)

    def test_republish_is_idempotent(self, registry):
        (tree,) = _some_trees(1)
        meta = {"family": "n24-m3", "best_gap": 3.0, "seed": 1}
        a = registry.publish(tree, dict(meta))
        b = registry.publish(tree, dict(meta))
        # created_at differs between the publishes but is excluded from
        # the content address, so the id (and artifact count) is stable.
        assert a.artifact_id == b.artifact_id
        assert len(registry) == 1

    def test_list_filters_and_sorts_by_gap(self, registry):
        trees = _some_trees(3)
        registry.publish(trees[0], {"family": "n24-m3", "best_gap": 5.0, "algorithm": "CARBON"})
        registry.publish(trees[1], {"family": "n24-m3", "best_gap": 1.0, "algorithm": "CARBON"})
        registry.publish(trees[2], {"family": "n99-m9", "best_gap": 0.5, "algorithm": "CARBON"})
        family = registry.list(family="n24-m3")
        assert [a.best_gap for a in family] == [1.0, 5.0]
        assert len(registry.list(algorithm="CARBON")) == 3
        assert registry.list(family="n77-m7") == []


class TestPromotion:
    def test_best_for_defaults_to_lowest_gap(self, registry):
        trees = _some_trees(2)
        registry.publish(trees[0], {"family": "f", "best_gap": 4.0})
        best = registry.publish(trees[1], {"family": "f", "best_gap": 2.0})
        assert registry.best_for("f").artifact_id == best.artifact_id
        assert registry.best_for("missing") is None

    def test_promote_pins_a_family(self, registry):
        trees = _some_trees(2)
        worse = registry.publish(trees[0], {"family": "f", "best_gap": 4.0})
        registry.publish(trees[1], {"family": "f", "best_gap": 2.0})
        registry.promote("f", worse.artifact_id[:12])
        assert registry.promoted("f") == worse.artifact_id
        assert registry.best_for("f").artifact_id == worse.artifact_id


class TestRoundTripEvaluation:
    def test_republished_tree_reevaluates_bit_identically(self, registry, instance):
        """publish → get → evaluate equals the original evaluation, bit
        for bit, and agrees with the checkpoint codec's round trip."""
        evaluator = LowerLevelEvaluator(instance, memo_size=0)
        rng = np.random.default_rng(3)
        low, high = instance.price_bounds
        prices = rng.uniform(low, high)
        for tree in _some_trees(5, seed=11):
            direct = evaluator.evaluate_heuristic_fresh(prices, tree)
            via_registry = registry.get(
                registry.publish(tree, {"family": instance_family(instance)}).artifact_id
            ).tree
            served = evaluator.evaluate_heuristic_fresh(prices, via_registry)
            assert served.gap == direct.gap  # exact, not approx
            assert served.revenue == direct.revenue
            assert np.array_equal(served.selection, direct.selection)
            # Cross-check: the checkpoint codec preserves the same form.
            via_checkpoint = unpack(json.loads(json.dumps(pack(tree))))
            assert via_checkpoint.serialize() == via_registry.serialize()


class TestPublishBestHeuristic:
    def test_engine_run_autopublishes_champion(self, registry, instance):
        config = CarbonConfig.quick(60, 60, 6)
        algo = Carbon(instance, config, rng=np.random.default_rng(0))
        observer = PublishBestHeuristic(registry)
        result = EngineLoop(algo, observers=[observer]).run(seed_label=0)

        artifact = observer.last_artifact
        assert artifact is not None
        assert len(registry) == 1
        assert artifact.tree_serialization == result.extras["champion_tree"].serialize()
        meta = artifact.metadata
        assert meta["algorithm"] == "CARBON"
        assert meta["instance_digest"] == instance.digest
        assert meta["family"] == f"n{instance.n_bundles}-m{instance.n_services}"
        assert meta["best_gap"] == result.best_gap
        assert meta["ul_evaluations"] == result.ul_evaluations_used
        assert artifact.lineage["run"]["status"] == "completed"
        # The published champion is immediately the family's best.
        assert registry.best_for(meta["family"]).artifact_id == artifact.artifact_id

    def test_runs_without_champion_are_skipped(self, registry, instance):
        from repro.core.cobra import Cobra
        from repro.core.config import CobraConfig

        algo = Cobra(instance, CobraConfig.quick(60, 60, 6), rng=np.random.default_rng(0))
        observer = PublishBestHeuristic(registry)
        EngineLoop(algo, observers=[observer]).run(seed_label=0)
        assert observer.last_artifact is None
        assert len(registry) == 0


class TestGenerationTaggedPromotion:
    """promote/rollback are generation-tagged and atomic (DESIGN.md §14):
    every pin change is an append-only history event, stale writers fail
    loudly, and a rollback re-pins without rewriting the log."""

    def test_promote_bumps_generation_and_records_history(self, registry):
        trees = _some_trees(2)
        a = registry.publish(trees[0], {"family": "f", "best_gap": 4.0})
        b = registry.publish(trees[1], {"family": "f", "best_gap": 2.0})
        assert registry.promotion_generation("f") == 0
        registry.promote("f", a.artifact_id)
        registry.promote("f", b.artifact_id)
        assert registry.promotion_generation("f") == 2
        history = registry.promotion_history("f")
        assert [h["generation"] for h in history] == [1, 2]
        assert history[0]["artifact_id"] == a.artifact_id
        assert registry.promoted("f") == b.artifact_id

    def test_explicit_generation_must_advance(self, registry):
        tree = _some_trees(1)[0]
        a = registry.publish(tree, {"family": "f", "best_gap": 1.0})
        registry.promote("f", a.artifact_id, generation=5)
        assert registry.promotion_generation("f") == 5
        # A stale deploy replaying an old generation must not regress the pin.
        with pytest.raises(ValueError):
            registry.promote("f", a.artifact_id, generation=5)
        with pytest.raises(ValueError):
            registry.promote("f", a.artifact_id, generation=3)

    def test_rollback_repins_and_stays_auditable(self, registry):
        trees = _some_trees(2)
        good = registry.publish(trees[0], {"family": "f", "best_gap": 2.0})
        bad = registry.publish(trees[1], {"family": "f", "best_gap": 9.0})
        registry.promote("f", good.artifact_id)   # generation 1
        registry.promote("f", bad.artifact_id)    # generation 2: the regression
        rolled = registry.rollback("f", 1)
        assert rolled.artifact_id == good.artifact_id
        assert registry.promoted("f") == good.artifact_id
        # The rollback is a new generation, not an erasure of the log.
        assert registry.promotion_generation("f") == 3
        last = registry.promotion_history("f")[-1]
        assert last["rolled_back_to"] == 1
        # Serving resolution follows immediately (read-through per request).
        assert registry.best_for("f").artifact_id == good.artifact_id

    def test_rollback_unknown_targets_fail_loudly(self, registry):
        tree = _some_trees(1)[0]
        a = registry.publish(tree, {"family": "f", "best_gap": 1.0})
        with pytest.raises(KeyError):
            registry.rollback("f", 1)  # never promoted
        registry.promote("f", a.artifact_id)
        with pytest.raises(KeyError):
            registry.rollback("f", 7)  # no such generation
        with pytest.raises(KeyError):
            registry.rollback("ghost", 1)  # no such family

    def test_legacy_flat_promoted_file_still_reads(self, registry):
        tree = _some_trees(1)[0]
        a = registry.publish(tree, {"family": "f", "best_gap": 1.0})
        # PR 3 wrote a flat {family: artifact_id} mapping.
        (registry.root / "promoted.json").write_text(
            json.dumps({"f": a.artifact_id})
        )
        assert registry.promoted("f") == a.artifact_id
        assert registry.promotion_generation("f") == 1
        # The next promotion upgrades the file to the tagged format.
        b = registry.publish(tree, {"family": "f", "best_gap": 0.5, "tag": "v2"})
        registry.promote("f", b.artifact_id)
        document = json.loads((registry.root / "promoted.json").read_text())
        assert document["format"] == "repro-promotions"
        assert registry.promotion_generation("f") == 2
        assert registry.rollback("f", 1).artifact_id == a.artifact_id
