"""Tests for the covering LP-relaxation layer and the %-gap."""

from __future__ import annotations

import numpy as np
import pytest

from repro.covering.instance import CoveringInstance
from repro.lp.relaxation import solve_relaxation
from tests.conftest import random_covering


class TestBackendsAgree:
    @pytest.mark.parametrize("seed", range(8))
    def test_scipy_and_own_simplex_agree(self, seed):
        inst = random_covering(seed)
        a = solve_relaxation(inst, backend="scipy")
        b = solve_relaxation(inst, backend="simplex")
        assert a.feasible and b.feasible
        assert a.lower_bound == pytest.approx(b.lower_bound, rel=1e-6, abs=1e-6)
        # Duals can differ at degenerate optima, but the dual objective
        # (b^T d, adjusted for x<=1) must support the same bound direction.
        assert (a.duals >= 0).all() and (b.duals >= 0).all()

    def test_auto_backend_works(self, small_covering):
        relax = solve_relaxation(small_covering, backend="auto")
        assert relax.feasible
        assert relax.lower_bound > 0

    def test_unknown_backend_raises(self, small_covering):
        with pytest.raises(ValueError, match="unknown LP backend"):
            solve_relaxation(small_covering, backend="nope")


class TestRelaxationSemantics:
    def test_bound_below_integer_optimum(self, tiny_covering):
        from repro.covering.exact import solve_exact

        relax = solve_relaxation(tiny_covering)
        exact = solve_exact(tiny_covering, method="enumeration")
        assert relax.lower_bound <= exact.cost + 1e-9

    def test_xbar_within_unit_box(self, small_covering):
        relax = solve_relaxation(small_covering)
        assert (relax.xbar >= 0).all() and (relax.xbar <= 1).all()

    def test_xbar_covers_demand(self, small_covering):
        relax = solve_relaxation(small_covering)
        coverage = small_covering.q @ relax.xbar
        assert (coverage >= small_covering.demand - 1e-6).all()

    def test_infeasible_instance_flagged(self):
        inst = CoveringInstance(
            costs=[1.0], q=[[1.0]], demand=[5.0]  # single bundle can't cover 5
        )
        relax = solve_relaxation(inst)
        assert not relax.feasible
        assert np.isinf(relax.lower_bound)

    def test_zero_demand_zero_bound(self):
        inst = CoveringInstance(costs=[3.0, 1.0], q=[[1.0, 1.0]], demand=[0.0])
        relax = solve_relaxation(inst)
        assert relax.feasible
        assert relax.lower_bound == pytest.approx(0.0, abs=1e-9)


class TestPercentGap:
    def test_gap_of_the_bound_itself_is_zero(self, small_covering):
        relax = solve_relaxation(small_covering)
        assert relax.percent_gap(relax.lower_bound) == pytest.approx(0.0, abs=1e-6)

    def test_gap_grows_linearly(self, small_covering):
        relax = solve_relaxation(small_covering)
        lb = relax.lower_bound
        assert relax.percent_gap(1.10 * lb) == pytest.approx(10.0, rel=1e-6)
        assert relax.percent_gap(2.0 * lb) == pytest.approx(100.0, rel=1e-6)

    def test_zero_bound_guard(self):
        inst = CoveringInstance(costs=[0.0, 1.0], q=[[1.0, 1.0]], demand=[1.0])
        relax = solve_relaxation(inst)
        assert relax.lower_bound == pytest.approx(0.0, abs=1e-9)
        gap = relax.percent_gap(1.0)
        assert np.isfinite(gap) and gap > 0
