"""Per-rule tests for ``repro-lint`` (repro.analysis).

Every rule has (at least) one minimal fixture that fires it and one
negative fixture that must stay quiet, so a rule can neither silently
die nor silently overreach.  The golden test at the bottom runs the
engine over ``src/`` with the repo's own pyproject configuration and
asserts zero findings — CI fails the moment a new violation lands.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (
    ALL_RULES,
    LintConfig,
    LintEngine,
    RuleConfig,
    lint_source,
    load_config,
)
from repro.analysis.cli import main as lint_main
from repro.analysis.typing_gate import count_ignores, load_baseline

REPO_ROOT = Path(__file__).resolve().parent.parent


def codes(source: str, path: str = "mod.py", config: LintConfig | None = None) -> list[str]:
    return [d.code for d in lint_source(source, path=path, config=config)]


# ---------------------------------------------------------------------------
# R001 — unseeded RNG
# ---------------------------------------------------------------------------


class TestR001UnseededRng:
    @pytest.mark.parametrize(
        "snippet",
        [
            "import random\nx = random.random()\n",
            "import random\nrandom.shuffle(pop)\n",
            "import numpy as np\nx = np.random.rand(3)\n",
            "import numpy as np\nnp.random.seed(0)\n",
            "import numpy as np\nrng = np.random.default_rng()\n",
            "import numpy as np\nrng = np.random.default_rng(None)\n",
            "import random\nr = random.Random()\n",
        ],
    )
    def test_fires(self, snippet):
        assert "R001" in codes(snippet)

    @pytest.mark.parametrize(
        "snippet",
        [
            "import numpy as np\nrng = np.random.default_rng(42)\n",
            "import random\nr = random.Random(7)\n",
            "import numpy as np\ng = np.random.Generator(np.random.PCG64(seq))\n",
            "import numpy as np\nss = np.random.SeedSequence(5)\n",
            "x = rng.random()\n",  # drawing from a passed-in generator is the idiom
        ],
    )
    def test_quiet(self, snippet):
        assert "R001" not in codes(snippet)


# ---------------------------------------------------------------------------
# R002 — wall-clock
# ---------------------------------------------------------------------------


class TestR002WallClock:
    @pytest.mark.parametrize(
        "snippet",
        [
            "import time\nt = time.time()\n",
            "import time\nt = time.perf_counter()\n",
            "from datetime import datetime\nd = datetime.now()\n",
            "import datetime\nd = datetime.datetime.utcnow()\n",
        ],
    )
    def test_fires(self, snippet):
        assert "R002" in codes(snippet)

    def test_quiet_on_sleep(self):
        assert "R002" not in codes("import time\ntime.sleep(1)\n")

    def test_path_scoping(self):
        config = LintConfig(rules={"R002": RuleConfig(paths=("repro/core/",))})
        hot = codes("import time\nt = time.time()\n", "src/repro/core/x.py", config)
        cold = codes("import time\nt = time.time()\n", "src/repro/serve/x.py", config)
        assert "R002" in hot and "R002" not in cold

    def test_allow_overrides_scope(self):
        config = LintConfig(
            rules={"R002": RuleConfig(paths=("repro/core/",), allow=("repro/core/ok.py",))}
        )
        assert codes("import time\nt = time.time()\n", "src/repro/core/ok.py", config) == []


# ---------------------------------------------------------------------------
# R003 — unordered iteration
# ---------------------------------------------------------------------------


class TestR003UnorderedIteration:
    @pytest.mark.parametrize(
        "snippet",
        [
            "for x in set(pop):\n    use(x)\n",
            "for x in {a, b}:\n    use(x)\n",
            "ys = [f(x) for x in frozenset(pop)]\n",
            "for k, v in table.items():\n    use(k, v)\n",
            "ys = [e.score for e in entries.values()]\n",
        ],
    )
    def test_fires(self, snippet):
        assert "R003" in codes(snippet)

    @pytest.mark.parametrize(
        "snippet",
        [
            "for x in sorted(set(pop)):\n    use(x)\n",
            "for k, v in sorted(table.items()):\n    use(k, v)\n",
            "for x in pop:\n    use(x)\n",
            "members = set(pop)\n",  # building a set is fine; iterating isn't
        ],
    )
    def test_quiet(self, snippet):
        assert "R003" not in codes(snippet)


# ---------------------------------------------------------------------------
# R004 — float equality on fitness values
# ---------------------------------------------------------------------------


class TestR004FloatEquality:
    @pytest.mark.parametrize(
        "snippet",
        [
            "if a.fitness == b.fitness:\n    pass\n",
            "if best_gap != prev_gap:\n    pass\n",
            "same = ind.fitness == 0\n",
            "if revenue == target_revenue:\n    pass\n",
        ],
    )
    def test_fires(self, snippet):
        assert "R004" in codes(snippet)

    @pytest.mark.parametrize(
        "snippet",
        [
            "if metric == 'gap':\n    pass\n",  # mode switch, not a float compare
            "if gap is None:\n    pass\n",
            "if a.fitness < b.fitness:\n    pass\n",  # ordering is fine
            "if count == 3:\n    pass\n",
            "import math\nif math.isclose(a.fitness, b.fitness):\n    pass\n",
        ],
    )
    def test_quiet(self, snippet):
        assert "R004" not in codes(snippet)


# ---------------------------------------------------------------------------
# R005 — mutable defaults
# ---------------------------------------------------------------------------


class TestR005MutableDefault:
    @pytest.mark.parametrize(
        "snippet",
        [
            "def f(xs=[]):\n    return xs\n",
            "def f(cfg={}):\n    return cfg\n",
            "def f(seen=set()):\n    return seen\n",
            "def f(xs=list()):\n    return xs\n",
            "def f(*, acc=dict()):\n    return acc\n",
        ],
    )
    def test_fires(self, snippet):
        assert "R005" in codes(snippet)

    @pytest.mark.parametrize(
        "snippet",
        [
            "def f(xs=None):\n    return xs or []\n",
            "def f(xs=()):\n    return xs\n",
            "def f(n=3, name='x'):\n    return n\n",
        ],
    )
    def test_quiet(self, snippet):
        assert "R005" not in codes(snippet)


# ---------------------------------------------------------------------------
# R006 — fork-context / bare multiprocessing
# ---------------------------------------------------------------------------


class TestR006UnsafeMultiprocessing:
    @pytest.mark.parametrize(
        "snippet",
        [
            "import multiprocessing\np = multiprocessing.Pool(4)\n",
            "import multiprocessing\nctx = multiprocessing.get_context('fork')\n",
            "import multiprocessing\nctx = multiprocessing.get_context()\n",
            "import os\npid = os.fork()\n",
            "from concurrent.futures import ProcessPoolExecutor\nex = ProcessPoolExecutor(4)\n",
        ],
    )
    def test_fires(self, snippet):
        assert "R006" in codes(snippet)

    @pytest.mark.parametrize(
        "snippet",
        [
            "import multiprocessing\nctx = multiprocessing.get_context('spawn')\n",
            "from repro.parallel.executor import make_executor\nex = make_executor('processes')\n",
        ],
    )
    def test_quiet(self, snippet):
        assert "R006" not in codes(snippet)

    def test_allowlist_exempts_the_helper_layer(self):
        config = LintConfig(rules={"R006": RuleConfig(allow=("repro/parallel/",))})
        snippet = "import multiprocessing\np = multiprocessing.Pool(4)\n"
        assert codes(snippet, "src/repro/parallel/executor.py", config) == []
        assert "R006" in codes(snippet, "src/repro/serve/server.py", config)


# ---------------------------------------------------------------------------
# R007 — non-canonical JSON
# ---------------------------------------------------------------------------


class TestR007NonCanonicalJson:
    @pytest.mark.parametrize(
        "snippet",
        [
            "import json\ns = json.dumps(doc)\n",
            "import json\njson.dump(doc, fh)\n",
            "import json\ns = json.dumps(doc, indent=1)\n",
            "import json as _json\ns = _json.dumps(doc)\n",
            "import json\ns = json.dumps(doc, sort_keys=False)\n",
        ],
    )
    def test_fires(self, snippet):
        assert "R007" in codes(snippet)

    @pytest.mark.parametrize(
        "snippet",
        [
            "import json\ns = json.dumps(doc, sort_keys=True)\n",
            "import json\nd = json.loads(s)\n",
            "pickle.dumps(doc)\n",  # not a json module
        ],
    )
    def test_quiet(self, snippet):
        assert "R007" not in codes(snippet)


# ---------------------------------------------------------------------------
# R008 — raising observer hooks
# ---------------------------------------------------------------------------


class TestR008ObserverRaise:
    def test_fires_on_raise_in_hook(self):
        snippet = (
            "class Stopper:\n"
            "    def on_generation_end(self, event):\n"
            "        if event.generation > 5:\n"
            "            raise RuntimeError('stop now')\n"
        )
        assert "R008" in codes(snippet)

    def test_quiet_on_request_stop(self):
        snippet = (
            "class Stopper:\n"
            "    def on_generation_end(self, event):\n"
            "        if event.generation > 5:\n"
            "            event.loop.request_stop('patience')\n"
        )
        assert "R008" not in codes(snippet)

    def test_quiet_on_cleanup_reraise(self):
        snippet = (
            "class Logger:\n"
            "    def on_run_end(self, event):\n"
            "        try:\n"
            "            self.fh.write('end')\n"
            "        except OSError:\n"
            "            self.fh = None\n"
            "            raise\n"
        )
        assert "R008" not in codes(snippet)

    def test_quiet_outside_hooks(self):
        assert "R008" not in codes("def validate(x):\n    raise ValueError(x)\n")


# ---------------------------------------------------------------------------
# R009 — pickled closures
# ---------------------------------------------------------------------------


class TestR009PickledClosure:
    @pytest.mark.parametrize(
        "snippet",
        [
            "import pickle\nblob = pickle.dumps(lambda x: x + 1)\n",
            "executor.submit(lambda: work())\n",
            "pool.apply_async(lambda x: x, (1,))\n",
            "self.executor.map(lambda b: run(b), batches)\n",
        ],
    )
    def test_fires(self, snippet):
        assert "R009" in codes(snippet)

    @pytest.mark.parametrize(
        "snippet",
        [
            "import pickle\nblob = pickle.dumps(payload)\n",
            "self.executor.map(evaluate_batch, batches)\n",
            "xs = map(lambda x: x + 1, ys)\n",  # builtin map stays in-process
        ],
    )
    def test_quiet(self, snippet):
        assert "R009" not in codes(snippet)


# ---------------------------------------------------------------------------
# R010 — swallowed interrupts
# ---------------------------------------------------------------------------


class TestR010SwallowedInterrupt:
    @pytest.mark.parametrize(
        "snippet",
        [
            "try:\n    work()\nexcept:\n    pass\n",
            "try:\n    work()\nexcept BaseException as exc:\n    log(exc)\n",
            "try:\n    work()\nexcept (ValueError, BaseException):\n    pass\n",
        ],
    )
    def test_fires(self, snippet):
        assert "R010" in codes(snippet)

    @pytest.mark.parametrize(
        "snippet",
        [
            "try:\n    work()\nexcept Exception as exc:\n    log(exc)\n",
            "try:\n    work()\nexcept BaseException:\n    cleanup()\n    raise\n",
            "try:\n    work()\nexcept KeyboardInterrupt:\n    raise\n",
        ],
    )
    def test_quiet(self, snippet):
        assert "R010" not in codes(snippet)


# ---------------------------------------------------------------------------
# R011 — event-loop hygiene
# ---------------------------------------------------------------------------


class TestR011EventLoopHygiene:
    @pytest.mark.parametrize(
        "snippet",
        [
            # Fire-and-forget: the loop only holds tasks weakly.
            "import asyncio\nasync def go():\n    asyncio.create_task(work())\n",
            "import asyncio\nasyncio.ensure_future(work())\n",
            "loop.create_task(work())\n",
            # Blocking the loop thread from inside async code.
            "import time\nasync def handle():\n    time.sleep(0.1)\n",
            "import socket\nasync def dial():\n    socket.create_connection(('h', 1))\n",
            "import socket\nasync def resolve():\n    socket.getaddrinfo('h', 80)\n",
            # Nested async def inside a sync def is still async code.
            "import time\ndef outer():\n    async def inner():\n        time.sleep(1)\n",
        ],
    )
    def test_fires(self, snippet):
        assert "R011" in codes(snippet)

    @pytest.mark.parametrize(
        "snippet",
        [
            # Retained handles are the fix, not a false positive.
            "import asyncio\nasync def go():\n    t = asyncio.create_task(work())\n    await t\n",
            "import asyncio\nasync def go():\n    self._task = asyncio.create_task(work())\n",
            "import asyncio\nasync def go():\n    tasks.add(asyncio.create_task(work()))\n",
            # Async equivalents and awaited sleeps.
            "import asyncio\nasync def handle():\n    await asyncio.sleep(0.1)\n",
            # Blocking calls in sync code are that code's own business.
            "import time\ndef poll():\n    time.sleep(0.1)\n",
            # A sync helper nested in an async def may run in an executor;
            # it is judged where it is *called*, not where it is defined.
            "import time\nasync def go():\n    def blocking():\n        time.sleep(1)\n    await loop.run_in_executor(None, blocking)\n",
        ],
    )
    def test_quiet(self, snippet):
        assert "R011" not in codes(snippet)


# ---------------------------------------------------------------------------
# pragmas
# ---------------------------------------------------------------------------


class TestPragmas:
    SNIPPET = "import time\nt = time.time()  # repro-lint: disable=R002  # telemetry\n"

    def test_line_pragma_suppresses(self):
        assert codes(self.SNIPPET) == []

    def test_line_pragma_is_code_specific(self):
        source = "import time\nt = time.time()  # repro-lint: disable=R001\n"
        assert "R002" in codes(source)

    def test_next_line_pragma(self):
        source = (
            "import time\n"
            "# repro-lint: disable-next-line=R002  # telemetry\n"
            "t = time.time()\n"
        )
        assert codes(source) == []

    def test_file_pragma(self):
        source = (
            "# repro-lint: disable-file=R002  # this module is all telemetry\n"
            "import time\n"
            "a = time.time()\n"
            "b = time.perf_counter()\n"
        )
        assert codes(source) == []

    def test_disable_all(self):
        source = "import time\nt = time.time()  # repro-lint: disable=all\n"
        assert codes(source) == []

    def test_multiple_codes(self):
        source = (
            "import time, json\n"
            "x = json.dumps(time.time())  # repro-lint: disable=R002,R007\n"
        )
        assert codes(source) == []


# ---------------------------------------------------------------------------
# engine / CLI surface
# ---------------------------------------------------------------------------


class TestEngineSurface:
    def test_diagnostic_format_is_ruff_style(self):
        (diag,) = lint_source("import time\nt = time.time()\n", path="src/x.py")
        assert diag.format() == f"src/x.py:2:5: R002 {diag.message}"

    def test_parse_error_reported_not_crash(self):
        engine = LintEngine()
        assert engine.lint_source("def broken(:\n", path="bad.py") == []
        assert engine.parse_errors and engine.parse_errors[0].path == "bad.py"

    def test_select_restricts_rules(self):
        engine = LintEngine(select=["R005"])
        source = "import time\ndef f(xs=[]):\n    return time.time()\n"
        assert [d.code for d in engine.lint_source(source)] == ["R005"]

    def test_every_rule_has_a_code_and_docstring(self):
        assert len(ALL_RULES) == 11
        assert [r.code for r in ALL_RULES] == [f"R{i:03d}" for i in range(1, 12)]
        for rule in ALL_RULES:
            assert rule.check.__doc__, f"{rule.code} has no rationale docstring"


class TestCli:
    def _write(self, tmp_path: Path, source: str) -> Path:
        target = tmp_path / "mod.py"
        target.write_text(source)
        return target

    def test_exit_zero_on_clean(self, tmp_path, capsys):
        target = self._write(tmp_path, "x = 1\n")
        assert lint_main([str(target)]) == 0
        assert capsys.readouterr().out == ""

    def test_exit_one_on_findings(self, tmp_path, capsys):
        target = self._write(tmp_path, "def f(xs=[]):\n    return xs\n")
        assert lint_main([str(target)]) == 1
        assert "R005" in capsys.readouterr().out

    def test_exit_two_on_syntax_error(self, tmp_path, capsys):
        target = self._write(tmp_path, "def broken(:\n")
        assert lint_main([str(target)]) == 2
        assert "parse error" in capsys.readouterr().err

    def test_json_format(self, tmp_path, capsys):
        target = self._write(tmp_path, "def f(xs=[]):\n    return xs\n")
        assert lint_main(["--format", "json", str(target)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["code"] == "R005"
        assert payload["findings"][0]["line"] == 1
        assert payload["parse_errors"] == []

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "R001" in out and "R010" in out

    def test_unknown_select_code_is_usage_error(self, tmp_path, capsys):
        target = self._write(tmp_path, "x = 1\n")
        assert lint_main(["--select", "R999", str(target)]) == 2

    def test_console_script_entry_point(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "--list-rules"],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0
        assert "R001" in proc.stdout


# ---------------------------------------------------------------------------
# the golden gate: src/ is clean under the repo's own configuration
# ---------------------------------------------------------------------------


class TestGoldenSrcClean:
    def test_src_tree_has_no_findings(self):
        config = load_config(REPO_ROOT / "pyproject.toml")
        engine = LintEngine(config=config)
        findings = engine.lint_paths([REPO_ROOT / "src"])
        assert engine.parse_errors == []
        assert findings == [], "\n" + "\n".join(d.format() for d in findings)

    def test_repo_config_scopes_are_loaded(self):
        config = load_config(REPO_ROOT / "pyproject.toml")
        assert config.rule("R002").paths  # wall-clock rule is scoped
        assert config.rule("R006").allow  # parallel helpers exempt
        assert config.rule("R007").paths  # serialization modules listed
        assert config.rule("R011").paths  # event-loop rule scoped to serve


# ---------------------------------------------------------------------------
# typing gate
# ---------------------------------------------------------------------------


class TestTypingGate:
    def test_baseline_parses_and_budget_holds(self):
        baseline = load_baseline(REPO_ROOT / "typing-baseline.txt")
        assert "total-ignores" in baseline
        current = count_ignores(REPO_ROOT / "src")
        assert sum(current.values()) <= baseline["total-ignores"]

    def test_gate_passes_on_current_tree(self):
        from repro.analysis.typing_gate import main as gate_main

        assert gate_main(["--check", "--repo-root", str(REPO_ROOT)]) == 0

    def test_gate_fails_when_budget_grows(self, tmp_path):
        from repro.analysis.typing_gate import main as gate_main

        strict_pkg = tmp_path / "src" / "repro" / "core"
        strict_pkg.mkdir(parents=True)
        (tmp_path / "src" / "repro" / "parallel").mkdir(parents=True)
        (tmp_path / "src" / "repro" / "serve").mkdir(parents=True)
        (tmp_path / "src" / "repro" / "analysis").mkdir(parents=True)
        (strict_pkg / "mod.py").write_text("x = f()  # type: ignore[no-any]\n")
        (tmp_path / "typing-baseline.txt").write_text("total-ignores 0\n")
        assert gate_main(["--check", "--repo-root", str(tmp_path)]) == 1
