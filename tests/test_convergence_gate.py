"""The ground-truth convergence gate (tier-1).

CARBON under ``archive`` evaluation mode, on the maximin bilinear toy
whose saddle point is known analytically, with a fixed seed, must
converge to that optimum within tolerance — and the run must stay
bit-identical across execution substrates and through a mid-run
checkpoint/resume.  The companion contrast test pins *why* the gate
exists: the historical champion-only (``current``) evaluation cycles
around the saddle on the very same setup, which is Lehre's predicted
failure mode and the behaviour the opponent archive repairs.

The gate recipe (instance, config, seed, tolerance) lives in
:mod:`repro.experiments.modes` so what CI gates is exactly what the
``repro-bench modes`` table reports.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.carbon import Carbon, run_carbon
from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.core.engine import EngineLoop
from repro.core.events import EngineEvent, Observer
from repro.experiments.modes import GATE_SEED, GATE_TOL, gate_setup
from repro.parallel.executor import ProcessExecutor, SerialExecutor

from tests.test_parallel_determinism import assert_bit_identical


@pytest.fixture(scope="module")
def gate():
    return gate_setup()


@pytest.fixture(scope="module")
def baseline(gate):
    instance, config = gate
    return run_carbon(instance, config, seed=GATE_SEED, executor=SerialExecutor())


class CountArchiveEvents(Observer):
    def __init__(self):
        self.pools: dict[str, int] = {}
        self.modes: set[str] = set()

    def on_archive(self, event: EngineEvent) -> None:
        self.pools[event.data["pool"]] = self.pools.get(event.data["pool"], 0) + 1
        self.modes.add(event.data["mode"])


class TestConvergenceGate:
    def test_converges_to_known_saddle(self, gate, baseline):
        """THE gate: final elite at ``mean(x) = a`` within tolerance,
        fitness at the maximin value 0, follower side fully rational."""
        instance, _ = gate
        final = baseline.extras["final_best_prices"]
        assert final is not None
        assert instance.saddle_distance(final) <= GATE_TOL
        assert baseline.extras["final_best_fitness"] == pytest.approx(0.0, abs=1e-2)
        assert baseline.best_gap == pytest.approx(0.0, abs=1e-6)
        assert baseline.extras["eval_mode"] == "archive"

    def test_serial_vs_process_bit_identical(self, gate, baseline):
        instance, config = gate
        with ProcessExecutor(workers=2) as ex:
            process = run_carbon(instance, config, seed=GATE_SEED, executor=ex)
        assert_bit_identical(baseline, process)
        assert np.array_equal(
            baseline.extras["final_best_prices"], process.extras["final_best_prices"]
        )
        assert baseline.extras["opponent_pools"] == process.extras["opponent_pools"]

    def test_checkpoint_resume_mid_run_bit_identical(self, gate, baseline, tmp_path):
        """Interrupt under archive mode (pools partially filled), resume a
        fresh algorithm from the JSON checkpoint: the run must finish
        exactly where the uninterrupted one does — pools included."""
        instance, config = gate

        def make_algo(seed):
            return Carbon(instance, config, np.random.default_rng(seed))

        partial = EngineLoop(make_algo(GATE_SEED), max_generations=5)
        interrupted = partial.run(seed_label=GATE_SEED)
        assert interrupted.extras["engine"]["status"] == "paused"
        path = tmp_path / "gate.json"
        save_checkpoint(path, partial.algorithm)
        fresh = make_algo(GATE_SEED + 999)  # checkpoint must overwrite all state
        state = load_checkpoint(path)["state"]
        resumed = EngineLoop(fresh, resume_state=state).run(seed_label=GATE_SEED)

        assert_bit_identical(resumed, baseline)
        assert np.array_equal(
            resumed.extras["final_best_prices"], baseline.extras["final_best_prices"]
        )
        assert resumed.extras["opponent_pools"] == baseline.extras["opponent_pools"]
        # The resumed run passes the gate in its own right.
        assert instance.saddle_distance(resumed.extras["final_best_prices"]) <= GATE_TOL

    def test_archive_events_published(self, gate):
        """Typed ``on_archive`` events flow for both pools while the gate
        scenario runs (budget truncated — the events, not the optimum,
        are under test here)."""
        import dataclasses

        instance, config = gate
        small = dataclasses.replace(config, upper=dataclasses.replace(
            config.upper, fitness_evaluations=300))
        counter = CountArchiveEvents()
        run_carbon(instance, small, seed=GATE_SEED, observers=[counter])
        assert counter.modes == {"archive"}
        assert counter.pools.get("upper", 0) > 0
        assert counter.pools.get("lower", 0) > 0

    def test_current_mode_cycles_on_the_same_setup(self, gate, baseline):
        """The contrast that justifies the gate: champion-only evaluation
        orbits the saddle instead of converging (Lehre's failure mode),
        an order of magnitude outside the gate tolerance."""
        instance, _ = gate
        current_instance, current_config = gate_setup(mode="current")
        assert current_instance.digest == instance.digest
        result = run_carbon(current_instance, current_config, seed=GATE_SEED)
        distance = instance.saddle_distance(result.best_solution.prices)
        assert distance > 10 * GATE_TOL
        # Archive mode's final answer is strictly closer to the optimum.
        archive_distance = instance.saddle_distance(
            baseline.extras["final_best_prices"]
        )
        assert archive_distance < distance
