"""Unit and property tests for the from-scratch simplex solver."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lp.simplex import LPStatus, solve_lp


class TestBasicSolves:
    def test_simple_minimization(self):
        # min x + y s.t. x + y >= 1 (as -x - y <= -1), x,y >= 0
        res = solve_lp(c=[1.0, 1.0], A_ub=[[-1.0, -1.0]], b_ub=[-1.0])
        assert res.ok
        assert res.fun == pytest.approx(1.0)
        assert res.x.sum() == pytest.approx(1.0)

    def test_unique_vertex_optimum(self):
        # min -x - 2y s.t. x + y <= 4, x <= 2, y <= 3 -> (1, 3), obj -7
        res = solve_lp(
            c=[-1.0, -2.0],
            A_ub=[[1.0, 1.0]],
            b_ub=[4.0],
            ub=[2.0, 3.0],
        )
        assert res.ok
        assert res.fun == pytest.approx(-7.0)
        assert res.x == pytest.approx([1.0, 3.0])

    def test_equality_constraints(self):
        # min x + 3y s.t. x + y = 2 -> x=2, y=0
        res = solve_lp(c=[1.0, 3.0], A_eq=[[1.0, 1.0]], b_eq=[2.0])
        assert res.ok
        assert res.fun == pytest.approx(2.0)
        assert res.x == pytest.approx([2.0, 0.0])

    def test_degenerate_zero_rhs(self):
        res = solve_lp(c=[1.0, 1.0], A_eq=[[1.0, -1.0]], b_eq=[0.0])
        assert res.ok
        assert res.fun == pytest.approx(0.0)

    def test_no_constraints_nonnegative_costs(self):
        res = solve_lp(c=[2.0, 0.0])
        assert res.ok
        assert res.fun == 0.0

    def test_no_constraints_negative_cost_unbounded(self):
        res = solve_lp(c=[-1.0])
        assert res.status is LPStatus.UNBOUNDED


class TestStatuses:
    def test_infeasible(self):
        # x <= -1 with x >= 0
        res = solve_lp(c=[1.0], A_ub=[[1.0]], b_ub=[-1.0])
        assert res.status is LPStatus.INFEASIBLE

    def test_unbounded(self):
        # min -x with only x >= 0
        res = solve_lp(c=[-1.0], A_ub=[[-1.0]], b_ub=[0.0])
        assert res.status is LPStatus.UNBOUNDED

    def test_conflicting_equalities_infeasible(self):
        res = solve_lp(
            c=[1.0], A_eq=[[1.0], [1.0]], b_eq=[1.0, 2.0]
        )
        assert res.status is LPStatus.INFEASIBLE


class TestDuals:
    def test_duals_covering_form(self):
        # min 3x + 2y s.t. x + y >= 2 -> all slack on the cheaper var,
        # dual of the covering row = 2 (the marginal cost of demand).
        res = solve_lp(c=[3.0, 2.0], A_ub=[[-1.0, -1.0]], b_ub=[-2.0])
        assert res.ok
        assert res.fun == pytest.approx(4.0)
        # Lagrangian multiplier for -x-y <= -2 is the covering dual: 2.
        assert res.duals_ub == pytest.approx([2.0])

    def test_dual_objective_matches_primal(self):
        gen = np.random.default_rng(3)
        A = gen.uniform(0.0, 5.0, (4, 8))
        b = A.sum(axis=1) * 0.3
        c = gen.uniform(1.0, 10.0, 8)
        res = solve_lp(c=c, A_ub=-A, b_ub=-b, ub=np.ones(8))
        assert res.ok
        # Strong duality: primal == b^T d - sum of upper-bound duals; at
        # minimum check weak duality holds for the covering part.
        d = res.duals_ub
        assert (d >= -1e-9).all()

    def test_equality_duals_shape(self):
        res = solve_lp(
            c=[1.0, 2.0, 0.0],
            A_eq=[[1.0, 1.0, 1.0]],
            b_eq=[3.0],
        )
        assert res.ok
        assert res.duals_eq.shape == (1,)


class TestAgainstScipy:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_covering_relaxations_match_scipy(self, seed):
        from scipy.optimize import linprog

        gen = np.random.default_rng(seed)
        m, n = int(gen.integers(2, 6)), int(gen.integers(4, 14))
        A = gen.uniform(0.0, 6.0, (m, n))
        b = A.sum(axis=1) * gen.uniform(0.1, 0.6)
        c = gen.uniform(0.5, 10.0, n)
        mine = solve_lp(c=c, A_ub=-A, b_ub=-b, ub=np.ones(n))
        ref = linprog(c=c, A_ub=-A, b_ub=-b, bounds=(0, 1), method="highs")
        assert mine.ok and ref.success
        assert mine.fun == pytest.approx(ref.fun, rel=1e-7, abs=1e-7)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_general_lp_matches_scipy(self, seed):
        from scipy.optimize import linprog

        gen = np.random.default_rng(100 + seed)
        m, n = 3, 6
        A = gen.normal(0.0, 2.0, (m, n))
        b = np.abs(gen.normal(2.0, 2.0, m)) + 1.0  # generous: keeps x=0 feasible
        c = gen.uniform(0.0, 5.0, n)
        mine = solve_lp(c=c, A_ub=A, b_ub=b, ub=np.full(n, 10.0))
        ref = linprog(c=c, A_ub=A, b_ub=b, bounds=(0, 10.0), method="highs")
        assert mine.ok and ref.success
        assert mine.fun == pytest.approx(ref.fun, rel=1e-7, abs=1e-7)


class TestValidation:
    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="incompatible"):
            solve_lp(c=[1.0, 2.0], A_ub=[[1.0]], b_ub=[1.0])

    def test_matrix_without_rhs_raises(self):
        with pytest.raises(ValueError, match="together"):
            solve_lp(c=[1.0], A_ub=[[1.0]])

    def test_negative_upper_bound_raises(self):
        with pytest.raises(ValueError, match="non-negative"):
            solve_lp(c=[1.0], A_ub=[[1.0]], b_ub=[1.0], ub=[-1.0])

    def test_wrong_ub_size_raises(self):
        with pytest.raises(ValueError, match="ub size"):
            solve_lp(c=[1.0, 1.0], A_ub=[[1.0, 1.0]], b_ub=[1.0], ub=[1.0])


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    m=st.integers(1, 4),
    n=st.integers(2, 9),
    tight=st.floats(0.05, 0.7),
)
def test_property_simplex_covering_optimum_bounds(seed, m, n, tight):
    """Property: the relaxation value is finite, non-negative, and no more
    than the all-ones cost; duals are non-negative."""
    gen = np.random.default_rng(seed)
    A = gen.uniform(0.0, 5.0, (m, n)) + 0.01
    b = A.sum(axis=1) * tight
    c = gen.uniform(0.1, 10.0, n)
    res = solve_lp(c=c, A_ub=-A, b_ub=-b, ub=np.ones(n))
    assert res.ok
    assert -1e-9 <= res.fun <= c.sum() + 1e-9
    assert (res.duals_ub >= -1e-9).all()
    assert (res.x >= -1e-9).all() and (res.x <= 1.0 + 1e-9).all()
    # Primal feasibility of the reported solution.
    assert (A @ res.x >= b - 1e-6).all()
