"""Tests for RNG streams and executors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.parallel.executor import (
    ProcessExecutor,
    SerialExecutor,
    make_executor,
    parallel_map,
)
from repro.parallel.rng import RngFactory, spawn_generators, stream_for


class TestStreams:
    def test_spawn_independent(self):
        gens = spawn_generators(0, 3)
        draws = [g.random(100) for g in gens]
        assert not np.allclose(draws[0], draws[1])
        assert not np.allclose(draws[1], draws[2])

    def test_spawn_reproducible(self):
        a = spawn_generators(42, 2)
        b = spawn_generators(42, 2)
        for ga, gb in zip(a, b):
            assert np.array_equal(ga.random(10), gb.random(10))

    def test_spawn_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_stream_for_addressable(self):
        a = stream_for(7, "table3", 500, 30, 0)
        b = stream_for(7, "table3", 500, 30, 0)
        assert np.array_equal(a.random(10), b.random(10))

    def test_stream_for_distinct_keys(self):
        a = stream_for(7, "x", 1).random(50)
        b = stream_for(7, "x", 2).random(50)
        assert not np.allclose(a, b)

    def test_stream_key_separator_prevents_collisions(self):
        a = stream_for(0, "ab", "c").random(20)
        b = stream_for(0, "a", "bc").random(20)
        assert not np.allclose(a, b)


class TestRngFactory:
    def test_successive_spawns_never_repeat(self):
        f = RngFactory(1)
        a = f.spawn_one().random(20)
        b = f.spawn_one().random(20)
        assert not np.allclose(a, b)

    def test_named_is_stateless(self):
        f = RngFactory(1)
        a = f.named("run", 3).random(10)
        b = f.named("run", 3).random(10)
        assert np.array_equal(a, b)

    def test_named_many(self):
        f = RngFactory(2)
        gens = f.named_many(("worker",), 4)
        assert len(gens) == 4
        draws = [g.random(20) for g in gens]
        assert not np.allclose(draws[0], draws[3])

    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError, match="seed"):
            RngFactory("abc")  # type: ignore[arg-type]


def _square(x: int) -> int:
    return x * x


class TestExecutors:
    def test_serial_map_order(self):
        ex = SerialExecutor()
        assert ex.map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_parallel_map_default_serial(self):
        assert parallel_map(_square, range(4)) == [0, 1, 4, 9]

    def test_make_executor_kinds(self):
        assert isinstance(make_executor("serial"), SerialExecutor)
        ex = make_executor("processes", workers=2)
        assert isinstance(ex, ProcessExecutor)
        ex.close()

    def test_make_executor_unknown(self):
        with pytest.raises(ValueError, match="unknown executor"):
            make_executor("threads")

    def test_process_executor_map(self):
        with ProcessExecutor(workers=2) as ex:
            out = ex.map(_square, list(range(10)))
        assert out == [x * x for x in range(10)]

    def test_process_executor_empty(self):
        with ProcessExecutor(workers=2) as ex:
            assert ex.map(_square, []) == []

    def test_process_executor_invalid_workers(self):
        with pytest.raises(ValueError, match="workers"):
            ProcessExecutor(workers=0)

    def test_context_manager_closes(self):
        ex = ProcessExecutor(workers=1)
        with ex:
            ex.map(_square, [1])
        assert ex._pool is None

    def test_double_close_is_noop(self):
        # A solve server and an engine run may share one executor and
        # both close it on their way out; the second close must not raise.
        ex = ProcessExecutor(workers=2)
        ex.map(_square, [1, 2, 3])
        ex.close()
        ex.close()
        assert ex.closed
        assert ex._pool is None

    def test_close_before_first_use_is_fine(self):
        ex = ProcessExecutor(workers=2)
        ex.close()
        ex.close()
        assert ex.closed

    def test_pool_sized_map_after_close_raises(self):
        # Respawning the pool after close would leak workers past the
        # owner's shutdown; only the serial small-batch path survives.
        ex = ProcessExecutor(workers=2)
        ex.map(_square, [1, 2])
        ex.close()
        with pytest.raises(RuntimeError, match="closed"):
            ex.map(_square, [1, 2, 3])
        assert ex._pool is None


class TestTinyBatchFallback:
    """Batches smaller than the worker count run serially in the calling
    process — the pool would cost more in IPC than it saves, and the lazy
    pool must not even be spawned for them."""

    def test_small_batch_runs_without_pool(self):
        ex = ProcessExecutor(workers=4)
        try:
            assert ex.map(_square, [3]) == [9]
            assert ex.map(_square, [1, 2, 3]) == [1, 4, 9]
            assert ex._pool is None  # never spawned
        finally:
            ex.close()

    def test_threshold_batch_uses_pool(self):
        ex = ProcessExecutor(workers=2)
        try:
            assert ex.map(_square, [1, 2]) == [1, 4]
            assert ex._pool is not None
        finally:
            ex.close()

    def test_fallback_matches_pool_results(self):
        with ProcessExecutor(workers=8) as small, ProcessExecutor(workers=2) as big:
            items = list(range(5))
            assert small.map(_square, items) == big.map(_square, items)

    def test_closed_executor_still_serves_small_batches(self):
        ex = ProcessExecutor(workers=4)
        ex.close()
        assert ex.map(_square, [2]) == [4]

    def test_make_executor_forwards_chunk_size(self):
        ex = make_executor("processes", workers=2, chunk_size=7)
        try:
            assert ex.chunk_size == 7
        finally:
            ex.close()
