"""Tests for the Lagrangian-relaxation bound."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.covering.exact import solve_exact
from repro.lp.lagrangian import lagrangian_bound
from repro.lp.relaxation import solve_relaxation
from tests.conftest import random_covering


class TestValidity:
    @pytest.mark.parametrize("seed", range(6))
    def test_never_exceeds_lp_bound(self, seed):
        inst = random_covering(seed, 5, 30)
        lag = lagrangian_bound(inst)
        lp = solve_relaxation(inst)
        assert lag.lower_bound <= lp.lower_bound + 1e-6

    def test_bounds_integer_optimum(self, tiny_covering):
        lag = lagrangian_bound(tiny_covering)
        exact = solve_exact(tiny_covering, method="enumeration")
        assert lag.lower_bound <= exact.cost + 1e-6

    @pytest.mark.parametrize("seed", range(6))
    def test_close_to_lp_bound(self, seed):
        """Integrality property: the dual optimum *equals* the LP bound;
        subgradient ascent should close most of the distance."""
        inst = random_covering(seed, 5, 30)
        lag = lagrangian_bound(inst, max_iterations=600)
        lp = solve_relaxation(inst)
        if lp.lower_bound > 1e-9:
            assert lag.lower_bound >= 0.9 * lp.lower_bound

    def test_multipliers_nonnegative(self, small_covering):
        lag = lagrangian_bound(small_covering)
        assert (lag.multipliers >= 0).all()


class TestMechanics:
    def test_zero_demand_gives_zero_bound(self):
        from repro.covering.instance import CoveringInstance

        inst = CoveringInstance(costs=[3.0, 1.0], q=[[1.0, 1.0]], demand=[0.0])
        lag = lagrangian_bound(inst)
        assert lag.lower_bound == pytest.approx(0.0, abs=1e-9)
        assert lag.converged

    def test_target_sharpens_steps(self, small_covering):
        from repro.covering.greedy import greedy_cover
        from repro.covering.heuristics import chvatal_score

        ub = greedy_cover(small_covering, chvatal_score).cost
        with_target = lagrangian_bound(small_covering, target=ub, max_iterations=200)
        assert np.isfinite(with_target.lower_bound)

    def test_iteration_budget_respected(self, small_covering):
        lag = lagrangian_bound(small_covering, max_iterations=7)
        assert lag.iterations <= 7

    def test_invalid_budget_raises(self, small_covering):
        with pytest.raises(ValueError, match="max_iterations"):
            lagrangian_bound(small_covering, max_iterations=0)

    def test_bound_improves_with_iterations(self, small_covering):
        short = lagrangian_bound(small_covering, max_iterations=3)
        long = lagrangian_bound(small_covering, max_iterations=300)
        assert long.lower_bound >= short.lower_bound - 1e-9


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_lagrangian_sandwich(seed):
    """Property: L(λ*) <= LP bound <= integer optimum, all finite on
    coverable instances."""
    inst = random_covering(seed, 3, 12)
    if not inst.is_coverable():
        return
    lag = lagrangian_bound(inst, max_iterations=300)
    lp = solve_relaxation(inst)
    exact = solve_exact(inst, method="enumeration")
    assert lag.lower_bound <= lp.lower_bound + 1e-6
    assert lp.lower_bound <= exact.cost + 1e-6
    assert np.isfinite(lag.lower_bound)
