"""Tests for the relaxation cache."""

from __future__ import annotations

import pytest

from repro.lp.bounds import RelaxationCache
from tests.conftest import random_covering


class TestRelaxationCache:
    def test_second_lookup_hits(self, small_covering):
        cache = RelaxationCache()
        a = cache.get(small_covering)
        b = cache.get(small_covering)
        assert a is b
        assert cache.hits == 1 and cache.misses == 1

    def test_distinct_costs_miss(self, small_covering):
        cache = RelaxationCache()
        cache.get(small_covering)
        other = small_covering.with_costs(small_covering.costs * 2.0)
        cache.get(other)
        assert cache.misses == 2

    def test_results_match_uncached(self, small_covering):
        from repro.lp.relaxation import solve_relaxation

        cache = RelaxationCache()
        cached = cache.get(small_covering)
        direct = solve_relaxation(small_covering)
        assert cached.lower_bound == pytest.approx(direct.lower_bound)

    def test_lru_eviction(self):
        cache = RelaxationCache(maxsize=2)
        instances = [random_covering(s) for s in range(3)]
        for inst in instances:
            cache.get(inst)
        assert len(cache) == 2
        # Oldest (instances[0]) was evicted: re-getting misses again.
        misses_before = cache.misses
        cache.get(instances[0])
        assert cache.misses == misses_before + 1

    def test_lru_move_to_end_on_hit(self):
        cache = RelaxationCache(maxsize=2)
        a, b, c = (random_covering(s) for s in range(3))
        cache.get(a)
        cache.get(b)
        cache.get(a)  # refresh a; b becomes LRU
        cache.get(c)  # evicts b
        misses = cache.misses
        cache.get(a)
        assert cache.misses == misses  # still cached

    def test_hit_rate(self, small_covering):
        cache = RelaxationCache()
        assert cache.hit_rate == 0.0
        cache.get(small_covering)
        cache.get(small_covering)
        assert cache.hit_rate == pytest.approx(0.5)

    def test_clear(self, small_covering):
        cache = RelaxationCache()
        cache.get(small_covering)
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0

    def test_invalid_maxsize(self):
        with pytest.raises(ValueError, match="maxsize"):
            RelaxationCache(maxsize=0)

    def test_quantization_distinguishes_real_changes(self, small_covering):
        cache = RelaxationCache()
        cache.get(small_covering)
        nudged = small_covering.with_costs(small_covering.costs + 1.0)
        cache.get(nudged)
        assert cache.misses == 2
