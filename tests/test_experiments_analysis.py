"""Tests for run-set analytics and failure-injection behaviour."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bcpop.generator import generate_instance
from repro.bcpop.instance import BcpopInstance
from repro.core.carbon import run_carbon
from repro.core.config import CarbonConfig
from repro.experiments.analysis import analyze_runs, champion_report


@pytest.fixture(scope="module")
def carbon_runs():
    instance = generate_instance(20, 3, seed=5, name="analysis-test")
    cfg = CarbonConfig.quick(150, 150, population_size=8)
    return [run_carbon(instance, cfg, seed=s) for s in range(2)]


class TestChampionReport:
    def test_decodes_champion(self, carbon_runs):
        tree = carbon_runs[0].extras["champion_tree"]
        report = champion_report(tree)
        assert report.raw == tree.to_infix()
        assert report.size == tree.size
        assert report.depth == tree.depth
        assert sum(report.primitive_usage.values()) == pytest.approx(1.0)

    def test_simplified_champion_is_valid_and_no_bigger(self, carbon_runs):
        from repro.gp.simplify import simplify_tree

        tree = carbon_runs[0].extras["champion_tree"]
        simplified = simplify_tree(tree)
        simplified.validate()
        assert simplified.size <= tree.size

    def test_lp_feature_detection(self):
        from repro.gp.primitives import lookup_primitive, lookup_terminal
        from repro.gp.tree import SyntaxTree

        with_lp = SyntaxTree(
            [lookup_primitive("sub"), lookup_terminal("COST"), lookup_terminal("DUAL")]
        )
        without = SyntaxTree(
            [lookup_primitive("add"), lookup_terminal("COST"), lookup_terminal("QSUM")]
        )
        assert champion_report(with_lp).uses_lp_features()
        assert not champion_report(without).uses_lp_features()


class TestRunSetAnalysis:
    def test_aggregates(self, carbon_runs):
        analysis = analyze_runs(carbon_runs)
        assert analysis.algorithm == "CARBON"
        assert analysis.gap.n == 2
        assert analysis.upper.n == 2
        assert len(analysis.champions) == 2
        assert 0.0 <= analysis.fitness_seesaw <= 1.0

    def test_report_is_printable(self, carbon_runs):
        text = analyze_runs(carbon_runs).report()
        assert "CARBON" in text and "gap" in text and "champion" in text

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="no runs"):
            analyze_runs([])

    def test_rejects_mixed_algorithms(self, carbon_runs):
        from repro.core.cobra import run_cobra
        from repro.core.config import CobraConfig

        instance = generate_instance(20, 3, seed=5)
        cobra = run_cobra(
            instance, CobraConfig.quick(150, 150, population_size=8), seed=0
        )
        with pytest.raises(ValueError, match="mixed algorithms"):
            analyze_runs(carbon_runs + [cobra])


class TestFailureInjection:
    """Degenerate and hostile inputs must degrade loudly or gracefully,
    never silently wrong."""

    def _uncoverable(self) -> BcpopInstance:
        # A single service whose demand exceeds total supply.
        return BcpopInstance(
            q=[[1.0, 1.0, 1.0]],
            demand=[100.0],
            market_prices=[2.0, 3.0],
            n_own=1,
            price_cap=5.0,
            name="uncoverable",
        )

    def test_uncoverable_instance_detected(self):
        assert not self._uncoverable().is_coverable()

    def test_evaluator_reports_infeasible(self):
        from repro.bcpop.evaluate import LowerLevelEvaluator
        from repro.covering.heuristics import chvatal_score

        ev = LowerLevelEvaluator(self._uncoverable())
        out = ev.evaluate_heuristic(np.array([1.0]), chvatal_score)
        assert not out.feasible
        assert np.isinf(out.gap)

    def test_carbon_survives_uncoverable(self):
        """All-infeasible fitnesses: the run completes and reports inf
        gaps instead of crashing or fabricating numbers."""
        result = run_carbon(
            self._uncoverable(),
            CarbonConfig.quick(60, 60, population_size=6),
            seed=0,
        )
        assert np.isinf(result.best_gap)

    def test_cobra_survives_uncoverable(self):
        from repro.core.cobra import run_cobra
        from repro.core.config import CobraConfig

        result = run_cobra(
            self._uncoverable(),
            CobraConfig.quick(60, 60, population_size=6),
            seed=0,
        )
        assert np.isinf(result.best_solution.gap) or np.isinf(result.best_gap)

    def test_degenerate_single_bundle_market(self):
        """Minimal viable market: one leader bundle, one market bundle."""
        inst = BcpopInstance(
            q=[[2.0, 2.0]], demand=[2.0], market_prices=[4.0],
            n_own=1, price_cap=4.0, name="minimal",
        )
        result = run_carbon(
            inst, CarbonConfig.quick(40, 40, population_size=4), seed=0
        )
        assert np.isfinite(result.best_gap)
        # The leader can always undercut the market slightly: revenue > 0.
        assert result.best_upper >= 0.0

    def test_zero_price_cap_degeneracy_rejected(self):
        with pytest.raises(ValueError, match="price_cap"):
            BcpopInstance(
                q=[[1.0, 1.0]], demand=[1.0], market_prices=[1.0],
                n_own=1, price_cap=0.0,
            )
