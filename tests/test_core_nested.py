"""Tests for the nested-sequential baseline (taxonomy NSQ/CST)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bcpop.generator import generate_instance
from repro.core.config import UpperLevelConfig
from repro.core.nested import NestedSequential, run_nested


@pytest.fixture(scope="module")
def instance():
    return generate_instance(24, 3, seed=11, name="nested-test")


@pytest.fixture
def cfg():
    return UpperLevelConfig(population_size=8, fitness_evaluations=120)


class TestBudget:
    def test_budget_respected(self, instance, cfg):
        result = run_nested(instance, cfg, seed=0)
        assert result.ul_evaluations_used <= cfg.fitness_evaluations
        # One lower-level solve per upper evaluation — the NSQ signature.
        assert result.ll_evaluations_used == result.ul_evaluations_used

    def test_ll_effort_tracked(self, instance, cfg):
        result = run_nested(instance, cfg, seed=0)
        assert result.extras["ll_effort"] >= result.ul_evaluations_used


class TestSolvers:
    def test_chvatal_solver(self, instance, cfg):
        result = run_nested(instance, cfg, seed=1, ll_solver="chvatal")
        assert result.algorithm == "NESTED[chvatal]"
        assert np.isfinite(result.best_gap) and result.best_gap >= -1e-9

    def test_exact_solver_gap_is_integrality_gap(self, instance):
        small_cfg = UpperLevelConfig(population_size=6, fitness_evaluations=24)
        heur = run_nested(instance, small_cfg, seed=1, ll_solver="chvatal")
        exact = run_nested(instance, small_cfg, seed=1, ll_solver="exact")
        # Exact LL solving can only tighten the best observed gap.
        assert exact.best_gap <= heur.best_gap + 1e-9
        # And it burns far more lower-level effort (B&B nodes).
        assert exact.extras["ll_effort"] > heur.extras["ll_effort"]

    def test_unknown_solver_rejected_eagerly(self, instance, cfg):
        with pytest.raises(ValueError, match="unknown heuristic"):
            NestedSequential(instance, cfg, np.random.default_rng(0), ll_solver="magic")


class TestResults:
    def test_reproducible(self, instance, cfg):
        a = run_nested(instance, cfg, seed=5)
        b = run_nested(instance, cfg, seed=5)
        assert a.best_gap == pytest.approx(b.best_gap)
        assert a.best_upper == pytest.approx(b.best_upper)

    def test_solution_consistent(self, instance, cfg):
        result = run_nested(instance, cfg, seed=2)
        sol = result.best_solution
        assert instance.revenue(sol.prices, sol.selection) == pytest.approx(
            result.best_upper
        )
        ll = instance.lower_level(sol.prices)
        assert ll.is_feasible(sol.selection)

    def test_gap_pinned_at_heuristic_quality(self, instance):
        """The NSQ gap cannot fall below what the fixed heuristic delivers
        — the contrast CARBON's evolving heuristics exist to break."""
        from repro.bcpop.evaluate import LowerLevelEvaluator
        from repro.covering.heuristics import chvatal_score

        cfg = UpperLevelConfig(population_size=8, fitness_evaluations=200)
        result = run_nested(instance, cfg, seed=3)
        # The best nested gap is a min over Chvátal gaps at visited prices;
        # it must itself be a valid Chvátal gap (>= 0, finite).
        ev = LowerLevelEvaluator(instance)
        replay = ev.evaluate_heuristic(result.best_solution.prices, chvatal_score)
        assert result.best_gap <= replay.gap + 1e-6


class TestAgainstCarbon:
    def test_carbon_at_least_matches_nested_gap(self, instance):
        """CARBON's evolved heuristics should reach at or below the fixed
        Chvátal heuristic's gap given a comparable budget."""
        from repro.core.carbon import run_carbon
        from repro.core.config import CarbonConfig

        nested = np.mean([
            run_nested(
                instance,
                UpperLevelConfig(population_size=10, fitness_evaluations=300),
                seed=s,
            ).best_gap
            for s in range(2)
        ])
        carbon = np.mean([
            run_carbon(
                instance, CarbonConfig.quick(300, 300, population_size=10), seed=s
            ).best_gap
            for s in range(2)
        ])
        assert carbon <= nested + 2.0
