"""Serve-layer fault tolerance: deadlines, fault injection on the wire,
and the retrying client.

The contract (DESIGN.md §11): a solve is pure and idempotent and every
request carries a client-owned correlation id, so dropped connections,
hung requests, transient ``unavailable``/``overloaded``/``timeout``
replies, and even a full server restart mid-``solve_many`` are absorbed
by reconnect + retransmit — the caller sees exactly the %-gaps an
uninterrupted client would have seen, bit for bit.
"""

from __future__ import annotations

import socket
import threading
import time

import numpy as np
import pytest

from repro.bcpop.evaluate import LowerLevelEvaluator
from repro.bcpop.generator import generate_instance
from repro.gp.generate import ramped_half_and_half
from repro.gp.primitives import paper_primitive_set
from repro.parallel import FaultInjector, FaultSpec
from repro.serve import (
    RetryingServeClient,
    ServeClient,
    SolveServer,
    start_in_thread,
)


@pytest.fixture(scope="module")
def instance():
    return generate_instance(20, 3, seed=5)


@pytest.fixture(scope="module")
def trees():
    rng = np.random.default_rng(2)
    return ramped_half_and_half(paper_primitive_set(), 4, rng, min_depth=2, max_depth=4)


@pytest.fixture(scope="module")
def price_vectors(instance):
    rng = np.random.default_rng(9)
    low, high = instance.price_bounds
    return [rng.uniform(low, high) for _ in range(6)]


@pytest.fixture(scope="module")
def expected_gaps(instance, trees, price_vectors):
    reference = LowerLevelEvaluator(instance, memo_size=0)
    return [
        reference.evaluate_heuristic_fresh(prices, trees[0]).gap
        for prices in price_vectors
    ]


def _server(instance, **kw) -> SolveServer:
    kw.setdefault("instances", [instance])
    kw.setdefault("max_wait_us", 50_000)
    return SolveServer(**kw)


def _free_dead_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class TestPlainClientFailureModes:
    def test_solve_many_eof_raises_instead_of_deadlocking(
        self, instance, trees, price_vectors
    ):
        """The satellite bugfix: a connection lost mid-pipeline must be a
        ConnectionError naming the outstanding count, not a hung read."""
        injector = FaultInjector([FaultSpec(kind="drop", task=0)])
        with start_in_thread(_server(instance, fault_injector=injector)) as handle:
            with ServeClient(*handle.address, timeout=10.0) as client:
                requests = [
                    client.solve_request(prices, trees[0])
                    for prices in price_vectors[:2]
                ]
                with pytest.raises(ConnectionError, match="outstanding"):
                    client.solve_many(requests)
        assert handle.server.metrics.faults_injected == 1

    def test_request_timeout_returns_timeout_reply(
        self, instance, trees, price_vectors
    ):
        """A request stuck behind a paused batcher gets an explicit
        ``timeout`` error reply at the deadline, not an eternal wait."""
        with start_in_thread(_server(instance, request_timeout=0.3)) as handle:
            with ServeClient(*handle.address, timeout=10.0) as client:
                client.pause()
                t0 = time.monotonic()
                response = client.solve(price_vectors[0], trees[0])
                elapsed = time.monotonic() - t0
                client.resume()
                stats = client.stats()
        assert not response["ok"]
        assert response["error"] == "timeout"
        assert "idempotent" in response["message"]
        assert elapsed < 10.0  # the deadline fired, not the socket timeout
        assert stats["timeouts"] == 1
        assert stats["errors"] >= 1
        assert stats["request_timeout"] == 0.3


class TestRetryingClient:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            RetryingServeClient("127.0.0.1", 1, max_retries=-1)
        with pytest.raises(ValueError, match="backoff"):
            RetryingServeClient("127.0.0.1", 1, backoff_base=0.0)

    def test_clean_path_no_retries(self, instance, trees, price_vectors, expected_gaps):
        with start_in_thread(_server(instance)) as handle:
            with RetryingServeClient(*handle.address, timeout=10.0) as client:
                requests = [
                    client.solve_request(prices, trees[0]) for prices in price_vectors
                ]
                responses = client.solve_many(requests)
                assert client.ping()
        assert [r["gap"] for r in responses] == expected_gaps
        assert client.reconnects == 0
        assert client.retransmits == 0

    def test_transient_unavailable_is_retried(
        self, instance, trees, price_vectors, expected_gaps
    ):
        injector = FaultInjector([FaultSpec(kind="error", task=1)])
        with start_in_thread(_server(instance, fault_injector=injector)) as handle:
            with RetryingServeClient(
                *handle.address, timeout=10.0, backoff_base=0.01
            ) as client:
                requests = [
                    client.solve_request(prices, trees[0]) for prices in price_vectors
                ]
                responses = client.solve_many(requests)
        assert all(r["ok"] for r in responses)
        assert [r["gap"] for r in responses] == expected_gaps
        assert handle.server.metrics.faults_injected == 1
        assert client.reconnects == 0  # an error reply is not a dead socket
        assert client.retransmits == 1

    def test_connection_drop_mid_stream_retransmits(
        self, instance, trees, price_vectors, expected_gaps
    ):
        injector = FaultInjector([FaultSpec(kind="drop", task=2)])
        with start_in_thread(_server(instance, fault_injector=injector)) as handle:
            with RetryingServeClient(
                *handle.address, timeout=10.0, backoff_base=0.01
            ) as client:
                requests = [
                    client.solve_request(prices, trees[0]) for prices in price_vectors
                ]
                responses = client.solve_many(requests)
        assert [r["gap"] for r in responses] == expected_gaps
        assert handle.server.metrics.faults_injected == 1
        assert client.reconnects == 1
        assert client.retransmits >= 1

    def test_hung_request_recovered_via_socket_timeout(
        self, instance, trees, price_vectors, expected_gaps
    ):
        """A request the server accepts but never answers is bounded by
        the client's socket timeout, then retransmitted."""
        injector = FaultInjector([FaultSpec(kind="hang", task=0)])
        with start_in_thread(_server(instance, fault_injector=injector)) as handle:
            with RetryingServeClient(
                *handle.address, timeout=1.0, backoff_base=0.01
            ) as client:
                response = client.solve(price_vectors[0], trees[0])
        assert response["ok"]
        assert response["gap"] == expected_gaps[0]
        assert handle.server.metrics.faults_injected == 1
        assert client.reconnects == 1
        assert client.retransmits == 1

    def test_gives_up_after_max_retries(self):
        port = _free_dead_port()
        client = RetryingServeClient(
            "127.0.0.1", port, timeout=0.5,
            max_retries=2, backoff_base=0.001, backoff_cap=0.002,
        )
        with pytest.raises(ConnectionError, match="unanswered after 2 retries"):
            client.solve_many([{"op": "solve", "prices": [1.0], "heuristic": {}}])

    def test_survives_server_restart_mid_solve_many(
        self, instance, trees, price_vectors, expected_gaps
    ):
        """The acceptance scenario: the server dies while one response is
        still outstanding and a replacement comes up on the same port —
        solve_many returns the uninterrupted %-gaps transparently."""
        injector = FaultInjector([FaultSpec(kind="hang", task=2, times=999)])
        server1 = _server(instance, fault_injector=injector)
        handle1 = start_in_thread(server1)
        port = server1.port

        replacement: list = []
        watcher_errors: list = []

        def restart_server():
            try:
                deadline = time.monotonic() + 30.0
                # All six requests arrive (the hung one included) before
                # the plug is pulled, so exactly one id is outstanding.
                while server1.metrics.requests < 6:
                    if time.monotonic() > deadline:
                        raise TimeoutError("server1 never saw all requests")
                    time.sleep(0.01)
                handle1.stop()
                server2 = _server(instance, port=port)
                replacement.append(start_in_thread(server2))
            except BaseException as exc:  # surfaced by the main thread
                watcher_errors.append(exc)

        watcher = threading.Thread(target=restart_server)
        watcher.start()
        try:
            with RetryingServeClient(
                "127.0.0.1", port, timeout=30.0, backoff_base=0.05
            ) as client:
                requests = [
                    client.solve_request(prices, trees[0]) for prices in price_vectors
                ]
                responses = client.solve_many(requests)
        finally:
            watcher.join(60)
            for handle in replacement:
                handle.stop()
        assert not watcher_errors, watcher_errors
        assert not watcher.is_alive()
        assert all(r["ok"] for r in responses)
        assert [r["gap"] for r in responses] == expected_gaps
        assert client.reconnects >= 1
        assert client.retransmits >= 1
        assert server1.metrics.faults_injected == 1
        # The replacement actually served the retransmitted remainder.
        assert replacement[0].server.metrics.solved >= 1


class TestConnectPathAndBackoff:
    """The connect-path fixes: a connect deadline separate from the read
    deadline, and backoff arithmetic that stays bounded at any attempt."""

    def test_read_timeout_applies_after_connect(self):
        # A socket that accepts but never answers: the connect deadline
        # must not govern the read — and the read deadline must fire.
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        host, port = listener.getsockname()
        try:
            client = ServeClient(host, port, timeout=0.3, connect_timeout=5.0)
            started = time.perf_counter()
            with pytest.raises((TimeoutError, OSError)):
                client.request({"op": "ping"})
            assert time.perf_counter() - started < 2.0  # read deadline, not 5s
            client.close()
        finally:
            listener.close()

    def test_backoff_exponent_is_clamped(self):
        client = RetryingServeClient(
            "127.0.0.1", 1, backoff_base=1e-9, backoff_cap=1e-6, seed=0
        )
        started = time.perf_counter()
        client._backoff(100_000)  # huge attempt: no giant-int arithmetic
        assert time.perf_counter() - started < 0.5

    def test_backoff_sleep_never_exceeds_the_cap(self):
        client = RetryingServeClient(
            "127.0.0.1", 1, backoff_base=10.0, backoff_cap=0.01, seed=3
        )
        for attempt in (1, 2, 50):
            started = time.perf_counter()
            client._backoff(attempt)
            assert time.perf_counter() - started < 0.5

    def test_priority_rides_the_solve_request(self, instance, trees):
        from repro.serve import build_solve_request

        message = build_solve_request([1.0] * instance.n_services, trees[0], priority=2)
        assert message["priority"] == 2
        assert "priority" not in build_solve_request(
            [1.0] * instance.n_services, trees[0]
        )
