"""Tests for syntax-tree structure and vectorized evaluation."""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.covering.greedy import GreedyContext
from repro.gp.generate import full_tree, grow_tree
from repro.gp.nodes import Constant
from repro.gp.primitives import (
    lookup_primitive,
    lookup_terminal,
    paper_primitive_set,
)
from repro.gp.tree import SyntaxTree


def T(name):
    return lookup_terminal(name)


def P(name):
    return lookup_primitive(name)


class TestStructure:
    def test_single_leaf(self):
        t = SyntaxTree([T("COST")])
        assert t.size == 1 and t.depth == 0
        t.validate()

    def test_depth_of_nested(self):
        # (COST + (QSUM * BSUM)) -> depth 2
        t = SyntaxTree([P("add"), T("COST"), P("mul"), T("QSUM"), T("BSUM")])
        assert t.size == 5 and t.depth == 2
        t.validate()

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            SyntaxTree([])

    def test_validate_truncated(self):
        t = SyntaxTree([P("add"), T("COST")])  # missing one operand
        with pytest.raises(ValueError, match="truncated"):
            t.validate()

    def test_validate_trailing(self):
        t = SyntaxTree([T("COST"), T("QSUM")])
        with pytest.raises(ValueError, match="trailing"):
            t.validate()

    def test_subtree_end(self):
        t = SyntaxTree([P("add"), T("COST"), P("mul"), T("QSUM"), T("BSUM")])
        assert t.subtree_end(0) == 5
        assert t.subtree_end(1) == 2
        assert t.subtree_end(2) == 5

    def test_subtree_extraction(self):
        t = SyntaxTree([P("add"), T("COST"), P("mul"), T("QSUM"), T("BSUM")])
        sub = t.subtree(2)
        assert sub.to_infix() == "(QSUM * BSUM)"

    def test_replace_subtree(self):
        t = SyntaxTree([P("add"), T("COST"), T("QSUM")])
        out = t.replace_subtree(2, SyntaxTree([T("DUAL")]))
        assert out.to_infix() == "(COST + DUAL)"
        assert t.to_infix() == "(COST + QSUM)"  # original untouched

    def test_node_depths(self):
        t = SyntaxTree([P("add"), T("COST"), P("mul"), T("QSUM"), T("BSUM")])
        assert t.node_depths() == [0, 1, 1, 2, 2]

    def test_out_of_range_subtree(self):
        t = SyntaxTree([T("COST")])
        with pytest.raises(IndexError):
            t.subtree_end(5)


class TestEquality:
    def test_structural_equality(self):
        a = SyntaxTree([P("add"), T("COST"), T("QSUM")])
        b = SyntaxTree([P("add"), T("COST"), T("QSUM")])
        assert a == b and hash(a) == hash(b)

    def test_constant_values_matter(self):
        a = SyntaxTree([P("add"), T("COST"), Constant(1.0)])
        b = SyntaxTree([P("add"), T("COST"), Constant(2.0)])
        assert a != b

    def test_pickle_roundtrip(self, rng, pset):
        t = grow_tree(pset, 4, rng)
        clone = pickle.loads(pickle.dumps(t))
        assert clone == t
        clone.validate()


class TestEvaluation:
    def test_terminal_evaluation(self, tiny_covering):
        ctx = GreedyContext.fresh(tiny_covering)
        assert SyntaxTree([T("COST")])(ctx) == pytest.approx(tiny_covering.costs)

    def test_arithmetic(self, tiny_covering):
        ctx = GreedyContext.fresh(tiny_covering)
        t = SyntaxTree([P("add"), T("COST"), T("QSUM")])
        assert t(ctx) == pytest.approx(tiny_covering.costs + ctx.q_sum)

    def test_constant_broadcast(self, tiny_covering):
        ctx = GreedyContext.fresh(tiny_covering)
        t = SyntaxTree([P("mul"), Constant(2.0), T("COST")])
        assert t(ctx) == pytest.approx(2.0 * tiny_covering.costs)

    def test_protected_division_by_zero(self, tiny_covering):
        ctx = GreedyContext.fresh(tiny_covering)
        t = SyntaxTree([P("div"), T("COST"), Constant(0.0)])
        assert t(ctx) == pytest.approx(np.ones(4))

    def test_protected_mod_by_zero(self, tiny_covering):
        ctx = GreedyContext.fresh(tiny_covering)
        t = SyntaxTree([P("mod"), T("COST"), Constant(0.0)])
        assert t(ctx) == pytest.approx(np.zeros(4))

    def test_chvatal_equivalence(self, small_covering):
        """COST % COVER reproduces the hand-written Chvátal rule."""
        from repro.covering.heuristics import chvatal_score

        ctx = GreedyContext.fresh(small_covering)
        tree = SyntaxTree([P("div"), T("COST"), T("COVER")])
        assert tree(ctx) == pytest.approx(chvatal_score(ctx))

    def test_dual_rule_equivalence(self, small_covering):
        from repro.covering.heuristics import dual_score
        from repro.lp.relaxation import solve_relaxation

        relax = solve_relaxation(small_covering)
        ctx = GreedyContext.fresh(small_covering, duals=relax.duals, xbar=relax.xbar)
        tree = SyntaxTree([P("sub"), T("COST"), T("DUAL")])
        assert tree(ctx) == pytest.approx(dual_score(ctx))

    def test_output_shape_always_n_bundles(self, small_covering, rng, pset):
        ctx = GreedyContext.fresh(small_covering)
        for _ in range(20):
            t = grow_tree(pset, 4, rng)
            out = t(ctx)
            assert out.shape == (small_covering.n_bundles,)


class TestInfix:
    def test_binary_rendering(self):
        t = SyntaxTree([P("sub"), T("COST"), T("DUAL")])
        assert t.to_infix() == "(COST - DUAL)"

    def test_mod_rendering(self):
        t = SyntaxTree([P("mod"), T("COST"), Constant(2.0)])
        assert t.to_infix() == "(COST mod 2)"


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 100_000), depth=st.integers(0, 6), full=st.booleans())
def test_property_generated_trees_valid_and_evaluable(seed, depth, full):
    """Property: every generated tree is structurally valid, respects the
    depth bound, and evaluates to the right shape on a context."""
    from tests.conftest import random_covering

    pset = paper_primitive_set()
    gen = np.random.default_rng(seed)
    t = full_tree(pset, depth, gen) if full else grow_tree(pset, depth, gen)
    t.validate()
    assert t.depth <= depth
    if full:
        assert t.depth == depth
    inst = random_covering(seed % 17)
    ctx = GreedyContext.fresh(inst)
    out = t(ctx)
    assert out.shape == (inst.n_bundles,)


class TestSerialization:
    """Canonical serialize/deserialize/stable_hash (the memo-key substrate
    for repro.bcpop.evaluate's content-addressed memoization)."""

    def test_round_trip_simple(self):
        t = SyntaxTree([P("add"), T("COST"), P("mul"), T("QSUM"), T("BSUM")])
        clone = SyntaxTree.deserialize(t.serialize())
        assert clone == t
        assert clone.serialize() == t.serialize()

    def test_constant_full_precision(self):
        """to_infix rounds ERCs for display; serialize must not."""
        a = SyntaxTree([Constant(2.0)])
        b = SyntaxTree([Constant(2.0 + 1e-7)])
        assert a.to_infix() == b.to_infix()
        assert a.serialize() != b.serialize()
        assert a.stable_hash() != b.stable_hash()
        restored = SyntaxTree.deserialize(b.serialize())
        assert restored.nodes[0].value == b.nodes[0].value

    def test_deserialize_rejects_garbage(self):
        with pytest.raises(ValueError):
            SyntaxTree.deserialize("X:bogus")
        with pytest.raises(ValueError):
            SyntaxTree.deserialize("")

    def test_deserialize_validates_structure(self):
        truncated = SyntaxTree([P("add"), T("COST"), T("QSUM")]).serialize()
        truncated = " ".join(truncated.split()[:-1])  # drop one operand
        with pytest.raises(ValueError):
            SyntaxTree.deserialize(truncated)


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 100_000), depth=st.integers(0, 6), full=st.booleans())
def test_property_serialize_round_trip_fixed_point(seed, depth, full):
    """Property: serialize -> deserialize -> serialize is a fixed point,
    the round trip preserves tree equality, and stable_hash is a pure
    function of the serialization."""
    pset = paper_primitive_set()
    gen = np.random.default_rng(seed)
    t = full_tree(pset, depth, gen) if full else grow_tree(pset, depth, gen)
    text = t.serialize()
    clone = SyntaxTree.deserialize(text)
    clone.validate()
    assert clone == t
    assert clone.serialize() == text
    assert clone.stable_hash() == t.stable_hash()
    assert len(t.stable_hash()) == 64


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 100_000), depth=st.integers(1, 5))
def test_property_round_trip_preserves_semantics(seed, depth):
    """Property: a deserialized tree evaluates bit-identically to the
    original on a shared greedy context."""
    from tests.conftest import random_covering

    pset = paper_primitive_set()
    gen = np.random.default_rng(seed)
    t = grow_tree(pset, depth, gen)
    clone = SyntaxTree.deserialize(t.serialize())
    inst = random_covering(seed % 13)
    ctx = GreedyContext.fresh(inst)
    assert np.array_equal(t(ctx), clone(ctx))


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 100_000), depth=st.integers(0, 5))
def test_property_pickle_and_serialize_agree(seed, depth):
    """Property: the pickle round trip (used to ship trees to workers)
    and the text round trip land on the same canonical form."""
    pset = paper_primitive_set()
    gen = np.random.default_rng(seed)
    t = grow_tree(pset, depth, gen)
    via_pickle = pickle.loads(pickle.dumps(t))
    assert via_pickle.serialize() == t.serialize()
    assert via_pickle.stable_hash() == t.stable_hash()
