"""End-to-end serve smoke: train → publish → serve → solve, then die clean.

This is the CI serve job (``.github/workflows/ci.yml``): a real engine
run publishes its champion, a server with a *process* executor serves it
(micro-batching observed, one deliberate overload rejection), and
shutdown leaves no worker processes behind — the acceptance criteria of
the serving layer in one scenario.
"""

from __future__ import annotations

import multiprocessing
import socket
import threading
import time

import numpy as np
import pytest

from repro.bcpop.generator import generate_instance
from repro.bcpop.io import save_bcpop
from repro.core.carbon import Carbon
from repro.core.config import CarbonConfig
from repro.core.engine import EngineLoop
from repro.parallel.executor import ProcessExecutor
from repro.serve import (
    HeuristicRegistry,
    PublishBestHeuristic,
    ServeClient,
    SolveServer,
    start_in_thread,
)


def _no_leaked_workers(timeout: float = 10.0) -> bool:
    """Spawn-pool children can take a beat to reap; poll briefly."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if not multiprocessing.active_children():
            return True
        time.sleep(0.05)
    return False


def test_train_publish_serve_solve_end_to_end(tmp_path):
    instance = generate_instance(20, 3, seed=1)
    registry = HeuristicRegistry(tmp_path / "registry")

    # -- train + publish ----------------------------------------------------
    algo = Carbon(instance, CarbonConfig.quick(60, 60, 6), rng=np.random.default_rng(0))
    publisher = PublishBestHeuristic(registry)
    result = EngineLoop(algo, observers=[publisher]).run(seed_label=0)
    artifact = publisher.last_artifact
    assert artifact is not None

    # -- serve --------------------------------------------------------------
    executor = ProcessExecutor(workers=2)
    metrics_path = tmp_path / "metrics.jsonl"
    server = SolveServer(
        registry=registry,
        instances=[instance],
        executor=executor,
        max_batch_size=8,
        max_wait_us=50_000,
        queue_depth=4,
        metrics_path=metrics_path,
    )
    handle = start_in_thread(server)
    rng = np.random.default_rng(4)
    low, high = instance.price_bounds
    try:
        with ServeClient(*handle.address) as client:
            # A handful of straight solves, resolved through the registry.
            family = artifact.metadata["family"]
            for _ in range(3):
                response = client.solve(rng.uniform(low, high), f"family:{family}")
                assert response["ok"], response

            # Served result == direct in-process evaluation, exactly:
            # the published champion solved over the wire against the
            # best archived prices must match bit for bit.
            from repro.bcpop.evaluate import LowerLevelEvaluator

            best = result.best_solution
            direct = LowerLevelEvaluator(instance, memo_size=0).evaluate_heuristic_fresh(
                best.prices, artifact.tree
            )
            served = client.solve(best.prices, artifact.artifact_id)
            assert served["ok"]
            assert served["gap"] == direct.gap
            assert served["revenue"] == direct.revenue

            # Micro-batching: hold the batcher, pipeline a burst one past
            # the queue bound -> batch size > 1 AND one overload rejection.
            client.pause()
            requests = [
                client.solve_request(rng.uniform(low, high), artifact.artifact_id)
                for _ in range(5)  # queue_depth is 4
            ]
            box = []
            writer = threading.Thread(target=lambda: box.append(client.solve_many(requests)))
            writer.start()
            with ServeClient(*handle.address) as admin:
                deadline = time.monotonic() + 30
                while time.monotonic() < deadline:
                    if admin.stats()["overloads"] >= 1:
                        break
                    time.sleep(0.01)
                admin.resume()
            writer.join(30)
            assert not writer.is_alive()
            responses = box[0]
            overloaded = [r for r in responses if not r["ok"]]
            assert len(overloaded) == 1
            assert overloaded[0]["error"] == "overloaded"
            assert all(r["ok"] for r in responses if r not in overloaded)

            stats = client.stats()
            assert stats["max_batch_size"] > 1
            assert stats["overloads"] == 1

            # -- clean shutdown from the wire -------------------------------
            assert client.shutdown()["stopping"]
    finally:
        handle.thread.join(30)
        if handle.thread.is_alive():  # pragma: no cover - diagnostics only
            handle.stop()

    assert metrics_path.exists()
    # Server closed the shared executor; a second close must be a no-op
    # (the double-close situation of a shared server/pipeline executor).
    executor.close()
    assert _no_leaked_workers(), "worker processes leaked past shutdown"


def test_cli_serve_and_solve_roundtrip(tmp_path, capsys):
    """The ``repro-bench serve`` / ``solve`` commands work end to end."""
    from repro.experiments.runner import main

    instance = generate_instance(16, 2, seed=3)
    instance_path = tmp_path / "inst.json"
    save_bcpop(instance, instance_path)

    registry = HeuristicRegistry(tmp_path / "registry")
    algo = Carbon(instance, CarbonConfig.quick(40, 40, 5), rng=np.random.default_rng(0))
    publisher = PublishBestHeuristic(registry)
    EngineLoop(algo, observers=[publisher]).run(seed_label=0)
    ref = publisher.last_artifact.artifact_id

    with socket.socket() as probe:  # find a free port for the CLI server
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]

    argv = [
        "serve", "--port", str(port), "--registry", str(tmp_path / "registry"),
        "--instances", str(instance_path), "--queue-depth", "8",
    ]
    server_thread = threading.Thread(target=main, args=(argv,), daemon=True)
    server_thread.start()

    client = None
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        try:
            client = ServeClient("127.0.0.1", port, timeout=5)
            break
        except OSError:
            time.sleep(0.05)
    assert client is not None, "CLI server did not come up"
    with client:
        assert client.ping()

        assert main([
            "solve", "--port", str(port), "--heuristic", ref[:12],
            "--instance-file", str(instance_path),
        ]) == 0
        out = capsys.readouterr().out
        assert '"ok": true' in out
        assert '"gap"' in out

        client.shutdown()
    server_thread.join(30)
    assert not server_thread.is_alive()


def test_executor_close_is_idempotent_under_shared_ownership():
    """A server given an executor closes it on stop; the owner closing it
    again (or the server stopping twice) must not raise."""
    executor = ProcessExecutor(workers=1)
    instance = generate_instance(12, 2, seed=2)
    server = SolveServer(instances=[instance], executor=executor)
    with start_in_thread(server) as handle:
        with ServeClient(*handle.address) as client:
            assert client.ping()
    executor.close()  # second close: the server already closed it
    executor.close()  # and a third, for good measure
    with pytest.raises(RuntimeError):
        executor.map(len, [[1], [2]])  # no silent pool resurrection
    assert _no_leaked_workers()
