"""Tests for the shared lower-level evaluation pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bcpop.evaluate import LowerLevelEvaluator
from repro.covering.heuristics import chvatal_score, cost_score
from repro.covering.exact import solve_exact


@pytest.fixture
def evaluator(small_bcpop) -> LowerLevelEvaluator:
    return LowerLevelEvaluator(small_bcpop)


@pytest.fixture
def mid_prices(small_bcpop) -> np.ndarray:
    return np.full(small_bcpop.n_own, small_bcpop.price_cap / 2)


class TestEvaluateHeuristic:
    def test_outcome_consistency(self, evaluator, small_bcpop, mid_prices):
        out = evaluator.evaluate_heuristic(mid_prices, chvatal_score)
        assert out.feasible
        ll = small_bcpop.lower_level(mid_prices)
        assert out.ll_cost == pytest.approx(ll.cost_of(out.selection))
        assert out.revenue == pytest.approx(
            small_bcpop.revenue(mid_prices, out.selection)
        )

    def test_gap_matches_bound(self, evaluator, mid_prices):
        out = evaluator.evaluate_heuristic(mid_prices, chvatal_score)
        expected = 100.0 * (out.ll_cost - out.lower_bound) / max(out.lower_bound, 1e-9)
        assert out.gap == pytest.approx(expected)

    def test_gap_nonnegative(self, evaluator, mid_prices):
        for fn in (chvatal_score, cost_score):
            out = evaluator.evaluate_heuristic(mid_prices, fn)
            assert out.gap >= -1e-9

    def test_gap_brackets_integer_optimum(self, small_bcpop, mid_prices):
        """LB <= exact optimum <= heuristic value (the Eq. 2-3 ordering)."""
        ev = LowerLevelEvaluator(small_bcpop)
        out = ev.evaluate_heuristic(mid_prices, chvatal_score)
        exact = solve_exact(small_bcpop.lower_level(mid_prices), method="branch_and_bound")
        assert out.lower_bound - 1e-6 <= exact.cost <= out.ll_cost + 1e-6

    def test_counts_evaluations(self, evaluator, mid_prices):
        assert evaluator.n_evaluations == 0
        evaluator.evaluate_heuristic(mid_prices, chvatal_score)
        evaluator.evaluate_heuristic(mid_prices, cost_score)
        assert evaluator.n_evaluations == 2

    def test_relaxation_cached_across_heuristics(self, evaluator, mid_prices):
        evaluator.evaluate_heuristic(mid_prices, chvatal_score)
        evaluator.evaluate_heuristic(mid_prices, cost_score)
        stats = evaluator.cache_stats
        assert stats["misses"] == 1
        assert stats["hits"] >= 1


class TestEvaluateSelection:
    def test_feasible_selection_passthrough(self, evaluator, small_bcpop, mid_prices):
        ll = small_bcpop.lower_level(mid_prices)
        from repro.covering.repair import repair_cover

        sel = repair_cover(ll, np.zeros(small_bcpop.n_bundles, dtype=bool))
        out = evaluator.evaluate_selection(mid_prices, sel, repair=False)
        assert out.feasible
        assert np.array_equal(out.selection, sel)

    def test_infeasible_selection_repaired(self, evaluator, small_bcpop, mid_prices):
        empty = np.zeros(small_bcpop.n_bundles, dtype=bool)
        out = evaluator.evaluate_selection(mid_prices, empty, repair=True)
        assert out.feasible
        assert out.selection.any()

    def test_infeasible_without_repair_gets_inf_gap(self, evaluator, small_bcpop, mid_prices):
        empty = np.zeros(small_bcpop.n_bundles, dtype=bool)
        out = evaluator.evaluate_selection(mid_prices, empty, repair=False)
        assert not out.feasible
        assert np.isinf(out.gap)


class TestPricingEffects:
    def test_zero_prices_make_own_bundles_attractive(self, evaluator, small_bcpop):
        free = np.zeros(small_bcpop.n_own)
        out = evaluator.evaluate_heuristic(free, chvatal_score)
        # Free leader bundles should appear in the basket (they cost nothing).
        assert out.selection[: small_bcpop.n_own].any()
        assert out.revenue == pytest.approx(0.0)

    def test_cap_prices_usually_excluded(self, evaluator, small_bcpop):
        expensive = np.full(small_bcpop.n_own, small_bcpop.price_cap)
        out = evaluator.evaluate_heuristic(expensive, chvatal_score)
        # At the cap the leader's bundles are never *cheaper* than any
        # market bundle; revenue can only come from forced purchases.
        assert out.feasible

    def test_lower_bound_monotone_in_prices(self, evaluator, small_bcpop):
        """Raising the leader's prices can only raise the follower's LP
        optimum (objective coefficients increase)."""
        low = evaluator.relaxation(np.zeros(small_bcpop.n_own))
        high = evaluator.relaxation(np.full(small_bcpop.n_own, small_bcpop.price_cap))
        assert high.lower_bound >= low.lower_bound - 1e-9
