"""Tests for archives, configs, and convergence bookkeeping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.archive import Archive, identity_token
from repro.core.config import CarbonConfig, CobraConfig, UpperLevelConfig
from repro.core.convergence import (
    ConvergenceHistory,
    resample_history,
    seesaw_index,
)


class TestArchive:
    def test_keeps_best(self):
        a = Archive(2, minimize=True)
        a.add("x", 3.0)
        a.add("y", 1.0)
        a.add("z", 2.0)
        assert len(a) == 2
        assert a.best().item == "y"
        assert [e.item for e in a.entries()] == ["y", "z"]

    def test_maximize_direction(self):
        a = Archive(2, minimize=False)
        for item, score in [("x", 3.0), ("y", 1.0), ("z", 2.0)]:
            a.add(item, score)
        assert a.best().item == "x"
        assert a.best_score() == 3.0

    def test_duplicate_replaced_only_if_better(self):
        a = Archive(5, minimize=True)
        a.add("x", 3.0, aux={"v": 1})
        assert not a.add("x", 4.0, aux={"v": 2})
        assert a.best().aux["v"] == 1
        assert a.add("x", 1.0, aux={"v": 3})
        assert a.best().aux["v"] == 3
        assert len(a) == 1

    def test_worse_than_full_archive_rejected(self):
        a = Archive(1, minimize=True)
        a.add("x", 1.0)
        assert not a.add("y", 2.0)
        assert a.best().item == "x"

    def test_numpy_identity_dedup(self):
        a = Archive(5, minimize=False)
        v = np.array([1.0, 2.0])
        a.add(v, 1.0)
        a.add(v.copy(), 0.5)  # same key, worse -> ignored
        assert len(a) == 1

    def test_bool_array_identity(self):
        a = Archive(5, minimize=True)
        a.add(np.array([True, False]), 1.0)
        a.add(np.array([True, False]), 2.0)
        assert len(a) == 1

    def test_nan_scores_lose(self):
        a = Archive(3, minimize=True)
        a.add("x", np.nan)
        a.add("y", 5.0)
        assert a.best().item == "y"

    def test_empty_best_raises(self):
        with pytest.raises(ValueError, match="empty"):
            Archive(1).best()

    def test_top_n(self):
        a = Archive(10, minimize=True)
        for i in range(5):
            a.add(f"i{i}", float(i))
        assert [e.item for e in a.top(2)] == ["i0", "i1"]

    def test_invalid_maxsize(self):
        with pytest.raises(ValueError, match="maxsize"):
            Archive(0)

    def test_contains(self):
        a = Archive(2)
        a.add("x", 1.0)
        assert "x" in a and "y" not in a


class TestArchiveTieBreaks:
    """Score ties resolve by the canonical identity token — never by dict
    insertion order (tests/test_eval_modes.py property-tests the general
    order-independence invariant; these pin the tie cases explicitly)."""

    def test_tied_scores_rank_by_identity_token(self):
        a = Archive(5, minimize=True)
        for item in ("zebra", "apple", "mango"):
            a.add(item, 1.0)
        assert [e.item for e in a.entries()] == ["apple", "mango", "zebra"]
        assert a.best().item == "apple"

    def test_tied_eviction_is_insertion_order_independent(self):
        first, second = Archive(2, minimize=True), Archive(2, minimize=True)
        for item in ("b", "c", "a"):
            first.add(item, 7.0)
        for item in ("c", "a", "b"):
            second.add(item, 7.0)
        assert [e.item for e in first.entries()] == [e.item for e in second.entries()]
        assert [e.item for e in first.entries()] == ["a", "b"]

    def test_mixed_key_types_order_totally(self):
        a = Archive(10, minimize=True)
        a.add(np.array([1.0, 2.0]), 3.0)
        a.add("x", 3.0)
        a.add(np.array([True, False]), 3.0)
        ranking = [e.item for e in a.entries()]
        tokens = [identity_token(a.identity(item)) for item in ranking]
        assert tokens == sorted(tokens)

    def test_identity_token_distinguishes_types(self):
        assert identity_token(b"ab") != identity_token("ab")
        assert identity_token(1) != identity_token(1.0)
        assert identity_token("1") != identity_token(1)


class TestConfigs:
    def test_paper_values_match_table2(self):
        ca = CarbonConfig.paper()
        co = CobraConfig.paper()
        for cfg in (ca.upper, co.upper):
            assert cfg.population_size == 100
            assert cfg.archive_size == 100
            assert cfg.fitness_evaluations == 50_000
            assert cfg.crossover_probability == 0.85
            assert cfg.mutation_probability == 0.01
        assert ca.ll_fitness_evaluations == 50_000
        assert ca.ll_crossover_probability == 0.85
        assert ca.ll_mutation_probability == 0.10
        assert ca.ll_reproduction_probability == 0.05
        assert co.ll_crossover_probability == 0.85
        assert co.ll_mutation_probability is None  # 1/#variables

    def test_quick_keeps_ratios(self):
        q = CarbonConfig.quick()
        p = CarbonConfig.paper()
        assert q.ll_crossover_probability == p.ll_crossover_probability
        assert q.ll_mutation_probability == p.ll_mutation_probability
        assert q.upper.crossover_probability == p.upper.crossover_probability

    def test_scaled_budgets(self):
        s = CarbonConfig.paper().scaled(0.1)
        assert s.upper.fitness_evaluations == 5_000
        assert s.ll_fitness_evaluations == 5_000
        s2 = CobraConfig.paper().scaled(0.001)
        assert s2.upper.fitness_evaluations >= s2.upper.population_size

    def test_gp_probability_sum_validated(self):
        with pytest.raises(ValueError, match="sum"):
            CarbonConfig(
                ll_crossover_probability=0.9,
                ll_mutation_probability=0.2,
                ll_reproduction_probability=0.1,
            )

    def test_upper_config_validation(self):
        with pytest.raises(ValueError, match="population"):
            UpperLevelConfig(population_size=1)
        with pytest.raises(ValueError, match="budget"):
            UpperLevelConfig(population_size=10, fitness_evaluations=5)

    def test_cobra_repair_validated(self):
        with pytest.raises(ValueError, match="ll_repair"):
            CobraConfig(ll_repair="greedy")

    def test_cobra_phase_length_validated(self):
        with pytest.raises(ValueError, match="improvement_generations"):
            CobraConfig(improvement_generations=0)


class TestConvergence:
    def _history(self, values):
        h = ConvergenceHistory()
        for i, v in enumerate(values):
            h.record(
                ul_evaluations=10 * (i + 1), ll_evaluations=10 * (i + 1),
                best_fitness=v, best_gap=100.0 - v, mean_gap=50.0,
            )
        return h

    def test_series(self):
        h = self._history([1.0, 2.0, 3.0])
        evals, vals = h.series("fitness")
        assert list(vals) == [1.0, 2.0, 3.0]
        assert list(evals) == [20.0, 40.0, 60.0]

    def test_unknown_series_raises(self):
        h = self._history([1.0])
        with pytest.raises(ValueError, match="unknown series"):
            h.series("bogus")

    def test_empty_series_raises(self):
        with pytest.raises(ValueError, match="empty"):
            ConvergenceHistory().series("fitness")

    def test_resample_single_history(self):
        h = self._history([1.0, 2.0, 3.0, 4.0])
        grid, vals = resample_history([h], "fitness", n_points=8)
        assert grid.shape == vals.shape == (8,)
        assert vals[-1] == 4.0
        assert (np.diff(vals) >= 0).all()

    def test_resample_averages_runs(self):
        h1 = self._history([0.0, 0.0, 0.0])
        h2 = self._history([2.0, 2.0, 2.0])
        _, vals = resample_history([h1, h2], "fitness", n_points=5)
        assert vals == pytest.approx(np.ones(5))

    def test_resample_no_histories_raises(self):
        with pytest.raises(ValueError, match="no histories"):
            resample_history([], "fitness")


class TestSeesawIndex:
    def test_monotone_is_zero(self):
        assert seesaw_index([1, 2, 3, 4, 5]) == pytest.approx(0.0)

    def test_pure_zigzag_near_one(self):
        assert seesaw_index([0, 1, 0, 1, 0, 1, 0]) > 0.8

    def test_constant_is_zero(self):
        assert seesaw_index([3.0, 3.0, 3.0]) == 0.0

    def test_short_series_zero(self):
        assert seesaw_index([1.0]) == 0.0

    def test_nonfinite_dropped(self):
        assert seesaw_index([1.0, np.nan, 2.0, np.inf, 3.0]) == pytest.approx(0.0)

    def test_bounded(self):
        gen = np.random.default_rng(0)
        for _ in range(20):
            v = gen.normal(size=30)
            assert 0.0 <= seesaw_index(v) <= 1.0
