"""Tests for the Table I primitive sets and protected operators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gp.nodes import Constant
from repro.gp.primitives import (
    PrimitiveSet,
    lookup_primitive,
    lookup_terminal,
    paper_operator_set,
    paper_primitive_set,
    paper_terminal_set,
)


class TestTableI:
    def test_operator_symbols(self):
        symbols = [op.symbol for op in paper_operator_set()]
        assert symbols == ["+", "-", "*", "%", "mod"]

    def test_all_operators_binary(self):
        assert all(op.arity == 2 for op in paper_operator_set())

    def test_terminal_names_cover_table1(self):
        names = {t.name for t in paper_terminal_set()}
        # c_j, q_j^k views, b^k views, d_k view, x̄_j.
        assert {"COST", "QSUM", "QMAX", "COVER", "BSUM", "BRES", "DUAL", "XLP"} == names

    def test_describe_rows(self):
        rows = paper_primitive_set().describe()
        names = [r[0] for r in rows]
        assert "+" in names and "COST" in names and "ERC" in names


class TestProtectedOps:
    def test_protected_div_normal(self):
        div = lookup_primitive("div")
        assert div.fn(np.array([6.0]), np.array([2.0])) == pytest.approx([3.0])

    def test_protected_div_by_zero_yields_one(self):
        div = lookup_primitive("div")
        out = div.fn(np.array([6.0, -2.0]), np.array([0.0, 1e-12]))
        assert out == pytest.approx([1.0, 1.0])

    def test_protected_mod_normal(self):
        mod = lookup_primitive("mod")
        assert mod.fn(np.array([7.0]), np.array([3.0])) == pytest.approx([1.0])

    def test_protected_mod_by_zero_yields_zero(self):
        mod = lookup_primitive("mod")
        assert mod.fn(np.array([7.0]), np.array([0.0])) == pytest.approx([0.0])

    def test_protected_ops_never_raise_or_nan(self):
        div, mod = lookup_primitive("div"), lookup_primitive("mod")
        a = np.array([0.0, 1.0, -1.0, 1e300, -1e300])
        b = np.array([0.0, 1e-30, -1e-30, 1e-300, 5.0])
        for fn in (div.fn, mod.fn):
            out = fn(a, b)
            assert np.isfinite(out).all()


class TestRegistry:
    def test_lookup_primitive_is_singleton(self):
        assert lookup_primitive("add") is lookup_primitive("add")

    def test_lookup_terminal_is_singleton(self):
        assert lookup_terminal("COST") is lookup_terminal("COST")

    def test_unknown_lookup_raises(self):
        with pytest.raises(KeyError):
            lookup_primitive("pow")


class TestPrimitiveSet:
    def test_requires_operators_and_terminals(self):
        with pytest.raises(ValueError, match="operator"):
            PrimitiveSet(operators=(), terminals=paper_terminal_set())
        with pytest.raises(ValueError, match="terminal"):
            PrimitiveSet(operators=paper_operator_set(), terminals=())

    def test_erc_probability_validated(self):
        with pytest.raises(ValueError, match="erc_probability"):
            paper_primitive_set(erc_probability=1.5)

    def test_random_leaf_respects_erc_probability(self, rng):
        always_erc = paper_primitive_set(erc_probability=1.0)
        never_erc = paper_primitive_set(erc_probability=0.0)
        assert all(
            isinstance(always_erc.random_leaf(rng), Constant) for _ in range(20)
        )
        assert not any(
            isinstance(never_erc.random_leaf(rng), Constant) for _ in range(20)
        )

    def test_erc_range(self, rng):
        pset = paper_primitive_set(erc_probability=1.0, erc_range=(2.0, 3.0))
        for _ in range(20):
            leaf = pset.random_leaf(rng)
            assert 2.0 <= leaf.value <= 3.0

    def test_max_arity(self):
        assert paper_primitive_set().max_arity == 2
