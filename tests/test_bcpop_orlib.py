"""Tests for the OR-library MKP parser and the §V-A transformation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bcpop.orlib import (
    MKPInstance,
    format_mknap,
    mkp_to_bcpop,
    mkp_to_covering,
    parse_mknap,
)

SAMPLE = """\
2
3 2 100
10 20 30
1 2 3
4 5 6
10 12
2 1 0
5 7
3 4
6
"""


class TestParser:
    def test_parses_two_problems(self):
        problems = parse_mknap(SAMPLE)
        assert len(problems) == 2
        p0, p1 = problems
        assert p0.n == 3 and p0.m == 2
        assert p0.optimum == 100.0
        assert p1.n == 2 and p1.m == 1
        assert p1.optimum is None  # recorded as 0 -> unknown

    def test_values(self):
        p0 = parse_mknap(SAMPLE)[0]
        assert p0.profits == pytest.approx([10, 20, 30])
        assert p0.weights[1] == pytest.approx([4, 5, 6])
        assert p0.capacities == pytest.approx([10, 12])

    def test_roundtrip(self):
        problems = parse_mknap(SAMPLE)
        again = parse_mknap(format_mknap(problems))
        for a, b in zip(problems, again):
            assert np.array_equal(a.profits, b.profits)
            assert np.array_equal(a.weights, b.weights)
            assert np.array_equal(a.capacities, b.capacities)

    def test_truncated_stream_raises(self):
        with pytest.raises(ValueError, match="truncated"):
            parse_mknap("1\n3 2 0\n1 2 3\n")

    def test_trailing_tokens_raise(self):
        with pytest.raises(ValueError, match="trailing"):
            parse_mknap(SAMPLE + " 42")

    def test_empty_stream_raises(self):
        with pytest.raises(ValueError, match="empty"):
            parse_mknap("   ")

    def test_bad_dimensions_raise(self):
        with pytest.raises(ValueError, match="bad dimensions"):
            parse_mknap("1\n0 2 0\n")

    def test_path_input(self, tmp_path):
        f = tmp_path / "mknap1.txt"
        f.write_text(SAMPLE)
        assert len(parse_mknap(f)) == 2


class TestTransformation:
    def test_flip_to_covering(self):
        mkp = parse_mknap(SAMPLE)[0]
        cov = mkp_to_covering(mkp)
        # min profits subject to weights >= capacities (clipped to supply)
        assert cov.costs == pytest.approx(mkp.profits)
        assert np.array_equal(cov.q, mkp.weights)
        assert cov.is_coverable()

    def test_demand_clipped_to_supply(self):
        mkp = MKPInstance(
            profits=[1.0, 1.0], weights=[[1.0, 1.0]], capacities=[100.0]
        )
        cov = mkp_to_covering(mkp)
        assert cov.demand[0] == pytest.approx(2.0)  # sum of the row
        assert cov.is_coverable()

    def test_demand_scale(self):
        mkp = parse_mknap(SAMPLE)[0]
        half = mkp_to_covering(mkp, demand_scale=0.5)
        full = mkp_to_covering(mkp, demand_scale=1.0)
        assert (half.demand <= full.demand + 1e-12).all()

    def test_bad_scale_raises(self):
        mkp = parse_mknap(SAMPLE)[0]
        with pytest.raises(ValueError, match="demand_scale"):
            mkp_to_covering(mkp, demand_scale=0.0)


class TestBcpopWrapping:
    def test_wraps_first_bundles_as_own(self):
        mkp = parse_mknap(SAMPLE)[0]
        bcp = mkp_to_bcpop(mkp, own_fraction=0.34)
        assert bcp.n_own == 1
        assert bcp.market_prices == pytest.approx(mkp.profits[1:])

    def test_own_fraction_too_large_raises(self):
        mkp = parse_mknap(SAMPLE)[1]  # n=2
        with pytest.raises(ValueError, match="market"):
            mkp_to_bcpop(mkp, own_fraction=0.99)

    def test_wrapped_instance_solvable_end_to_end(self):
        from repro.bcpop.evaluate import LowerLevelEvaluator
        from repro.covering.heuristics import chvatal_score

        mkp = parse_mknap(SAMPLE)[0]
        bcp = mkp_to_bcpop(mkp, own_fraction=0.34)
        ev = LowerLevelEvaluator(bcp)
        out = ev.evaluate_heuristic([5.0], chvatal_score)
        assert out.feasible
        assert np.isfinite(out.gap)


class TestMKPValidation:
    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="weights shape"):
            MKPInstance(profits=[1.0], weights=[[1.0, 2.0]], capacities=[1.0])
