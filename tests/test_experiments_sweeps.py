"""Tests for budget sweeps and crossover detection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.sweeps import BudgetPoint, budget_sweep, crossover_budget


class TestBudgetSweep:
    @pytest.fixture(scope="class")
    def points(self):
        return budget_sweep(
            n_bundles=16, n_services=2,
            budgets=[40, 80], runs=1, population_size=6,
        )

    def test_one_point_per_budget(self, points):
        assert [p.budget for p in points] == [40, 80]

    def test_values_finite(self, points):
        for p in points:
            assert np.isfinite(p.carbon_gap) and np.isfinite(p.cobra_gap)
            assert np.isfinite(p.carbon_upper) and np.isfinite(p.cobra_upper)
            assert p.runs == 1

    def test_ratios(self, points):
        p = points[0]
        assert p.gap_ratio == pytest.approx(p.cobra_gap / max(p.carbon_gap, 1e-9))
        assert p.upper_ratio == pytest.approx(p.cobra_upper / max(p.carbon_upper, 1e-9))

    def test_empty_budgets_rejected(self):
        with pytest.raises(ValueError, match="no budgets"):
            budget_sweep(16, 2, budgets=[])

    def test_budget_below_population_rejected(self):
        with pytest.raises(ValueError, match="population"):
            budget_sweep(16, 2, budgets=[4], population_size=6)


class TestCrossoverBudget:
    def _point(self, budget, carbon_up, cobra_up, carbon_gap=1.0, cobra_gap=2.0):
        return BudgetPoint(
            budget=budget, carbon_gap=carbon_gap, cobra_gap=cobra_gap,
            carbon_upper=carbon_up, cobra_upper=cobra_up, runs=1,
        )

    def test_finds_stable_crossover(self):
        points = [
            self._point(100, carbon_up=10, cobra_up=5),   # not yet
            self._point(200, carbon_up=10, cobra_up=12),  # crossover here
            self._point(400, carbon_up=10, cobra_up=15),  # holds
        ]
        assert crossover_budget(points, "upper") == 200

    def test_unstable_ordering_returns_none(self):
        points = [
            self._point(100, carbon_up=10, cobra_up=12),
            self._point(200, carbon_up=10, cobra_up=8),  # flips back
        ]
        assert crossover_budget(points, "upper") is None

    def test_gap_metric(self):
        points = [
            self._point(100, 1, 1, carbon_gap=5.0, cobra_gap=3.0),
            self._point(200, 1, 1, carbon_gap=2.0, cobra_gap=8.0),
        ]
        assert crossover_budget(points, "gap") == 200

    def test_holds_from_start(self):
        points = [self._point(100, carbon_up=1, cobra_up=2)]
        assert crossover_budget(points, "upper") == 100

    def test_unknown_metric(self):
        with pytest.raises(ValueError, match="unknown metric"):
            crossover_budget([], "speed")

    def test_unsorted_input_handled(self):
        points = [
            self._point(400, carbon_up=10, cobra_up=15),
            self._point(100, carbon_up=10, cobra_up=5),
            self._point(200, carbon_up=10, cobra_up=12),
        ]
        assert crossover_budget(points, "upper") == 200
