"""Tests for the optimistic/pessimistic cases (§II)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bilevel.linear import indifferent_follower_example, mersha_dempe_example


class TestIndifferentFollower:
    @pytest.fixture
    def ex(self):
        return indifferent_follower_example()

    def test_reaction_set_is_interval_endpoints(self, ex):
        r = ex.rational_reaction(4.0)
        assert r.feasible
        assert set(r.reactions) == {0.0, 6.0}

    def test_optimistic_picks_leader_friendly(self, ex):
        r = ex.rational_reaction(4.0)
        # F = -x - 2y: minimized by the largest y.
        assert r.optimistic(ex.upper_objective) == 6.0

    def test_pessimistic_picks_adversarial(self, ex):
        r = ex.rational_reaction(4.0)
        assert r.pessimistic(ex.upper_objective) == 0.0

    def test_two_cases_differ(self, ex):
        opt = ex.solve_optimistic(n_grid=801)
        pes = ex.solve_pessimistic(n_grid=801)
        assert opt is not None and pes is not None
        # The optimistic value is always at least as good (F minimized).
        assert opt.upper_objective <= pes.upper_objective - 1.0
        # Known optima: optimistic x=8,y=2? F = -x-2y over x<=8, y=10-x:
        # F = -x - 2(10-x) = x - 20 -> minimized at x=0, F=-20.
        assert opt.upper_objective == pytest.approx(-20.0, abs=0.1)
        # Pessimistic: y=0, F = -x -> minimized at x=8, F=-8.
        assert pes.upper_objective == pytest.approx(-8.0, abs=0.1)

    def test_empty_reaction_raises(self, ex):
        from repro.bilevel.problem import RationalReaction

        empty = RationalReaction(x=0.0, reactions=(), lower_value=np.inf, feasible=False)
        with pytest.raises(ValueError, match="no rational reaction"):
            empty.optimistic(ex.upper_objective)
        with pytest.raises(ValueError, match="no rational reaction"):
            empty.pessimistic(ex.upper_objective)


class TestSingletonCaseCoincides:
    def test_mersha_dempe_optimistic_equals_pessimistic(self):
        """With unique reactions the two cases agree (paper works in the
        optimistic case; on this instance nothing is lost)."""
        ex = mersha_dempe_example()
        opt = ex.solve_optimistic(n_grid=1601)
        pes = ex.solve_pessimistic(n_grid=1601)
        assert opt is not None and pes is not None
        assert opt.upper_objective == pytest.approx(pes.upper_objective, abs=1e-9)
        assert opt.x == pytest.approx(pes.x)
