"""Router building blocks and healthy-fleet routing.

Three layers of contract, cheapest first:

* pure units — consistent-hash stability (at most the departed node's
  keys move on leave; on join, moved keys all land on the joiner), the
  circuit-breaker open/half-open/close cycle on a fake clock, brownout
  threshold shape, shard-fault-plan validation;
* a live 2-shard fleet — the router speaks the same protocol as a single
  server, served %-gaps are bit-identical to in-process evaluation, and
  routing is deterministic cache affinity (same digest → same shard);
* error-path passthrough — shard-side error codes reach the client
  unchanged, and malformed routing requests fail fast at the router.

The fault paths (kill/hang/drop mid-stream) live in
tests/test_router_chaos.py.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bcpop.evaluate import LowerLevelEvaluator
from repro.bcpop.generator import generate_instance
from repro.gp.generate import ramped_half_and_half
from repro.gp.primitives import paper_primitive_set
from repro.parallel import ShardFaultPlan, ShardFaultSpec
from repro.serve import (
    CircuitBreaker,
    ConsistentHashRing,
    ServeClient,
    SolveRouter,
    brownout_threshold,
    start_router_in_thread,
)
from repro.serve import protocol


# ---------------------------------------------------------------------------
# consistent hashing
# ---------------------------------------------------------------------------


class TestConsistentHashRing:
    KEYS = [f"digest-{i:04d}" for i in range(400)]

    def test_placement_is_deterministic(self):
        a = ConsistentHashRing(["s0", "s1", "s2"])
        b = ConsistentHashRing(["s2", "s0", "s1"])  # insertion order irrelevant
        assert [a.primary(k) for k in self.KEYS] == [b.primary(k) for k in self.KEYS]

    def test_leave_moves_only_the_departed_nodes_keys(self):
        ring = ConsistentHashRing([f"s{i}" for i in range(4)])
        before = {k: ring.primary(k) for k in self.KEYS}
        ring.remove("s2")
        moved = [k for k in self.KEYS if ring.primary(k) != before[k]]
        assert moved, "s2 owned some keys"
        assert all(before[k] == "s2" for k in moved)
        # ~1/N of keys move; allow generous slack around 100/400.
        assert len(moved) < len(self.KEYS) / 2

    def test_join_moves_keys_only_onto_the_joiner(self):
        ring = ConsistentHashRing(["s0", "s1", "s2"])
        before = {k: ring.primary(k) for k in self.KEYS}
        ring.add("s3")
        moved = {k: ring.primary(k) for k in self.KEYS if ring.primary(k) != before[k]}
        assert moved, "the joiner takes over some keys"
        assert set(moved.values()) == {"s3"}

    def test_leave_then_rejoin_restores_the_exact_placement(self):
        ring = ConsistentHashRing([f"s{i}" for i in range(4)])
        before = {k: ring.primary(k) for k in self.KEYS}
        ring.remove("s1")
        ring.add("s1")
        assert {k: ring.primary(k) for k in self.KEYS} == before

    def test_candidates_are_distinct_and_lead_with_the_primary(self):
        ring = ConsistentHashRing([f"s{i}" for i in range(4)])
        for key in self.KEYS[:50]:
            cands = ring.candidates(key, 3)
            assert len(cands) == len(set(cands)) == 3
            assert cands[0] == ring.primary(key)

    def test_candidates_bounded_by_fleet_size(self):
        ring = ConsistentHashRing(["s0", "s1"])
        assert len(ring.candidates("k", 5)) == 2

    def test_empty_ring_and_duplicates_fail_loudly(self):
        ring = ConsistentHashRing()
        with pytest.raises(KeyError):
            ring.primary("k")
        ring.add("s0")
        with pytest.raises(ValueError):
            ring.add("s0")
        with pytest.raises(KeyError):
            ring.remove("missing")


# ---------------------------------------------------------------------------
# circuit breaker (fake clock: the full cycle without sleeping)
# ---------------------------------------------------------------------------


class TestCircuitBreaker:
    def _breaker(self, **kw):
        clock = {"now": 0.0}
        breaker = CircuitBreaker(clock=lambda: clock["now"], **kw)
        return breaker, clock

    def test_opens_after_threshold_consecutive_failures(self):
        breaker, _ = self._breaker(threshold=3, cooldown=1.0)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()
        assert breaker.opens == 1

    def test_success_resets_the_consecutive_count(self):
        breaker, _ = self._breaker(threshold=2, cooldown=1.0)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_admits_one_probe_then_closes_on_success(self):
        breaker, clock = self._breaker(threshold=1, cooldown=1.0)
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()
        clock["now"] = 1.5  # cooldown elapsed
        assert breaker.allow()  # the probe
        assert breaker.state == "half-open"
        assert not breaker.allow()  # concurrent traffic still blocked
        breaker.record_success()
        assert breaker.state == "closed" and breaker.allow()

    def test_half_open_failure_reopens_and_restarts_cooldown(self):
        breaker, clock = self._breaker(threshold=1, cooldown=1.0)
        breaker.record_failure()
        clock["now"] = 1.5
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and breaker.opens == 2
        clock["now"] = 2.0  # only 0.5 since reopen: still open
        assert not breaker.allow()
        clock["now"] = 2.6
        assert breaker.allow()

    def test_reset_force_closes(self):
        breaker, _ = self._breaker(threshold=1, cooldown=100.0)
        breaker.record_failure()
        breaker.reset()
        assert breaker.state == "closed" and breaker.allow()


# ---------------------------------------------------------------------------
# brownout + priority
# ---------------------------------------------------------------------------


class TestBrownout:
    def test_below_start_sheds_nothing(self):
        assert brownout_threshold(0, 100, start=0.85) == 0
        assert brownout_threshold(84, 100, start=0.85) == 0

    def test_ramps_with_load_and_never_sheds_top_priority(self):
        thresholds = [
            brownout_threshold(load, 100, start=0.8) for load in (80, 90, 100, 150)
        ]
        assert thresholds == sorted(thresholds)  # monotone in load
        assert thresholds[0] >= 1  # shedding begins at the start fraction
        assert max(thresholds) <= protocol.MAX_PRIORITY  # priority 9 always passes

    def test_no_capacity_means_no_shedding(self):
        # Routing answers `unavailable` when no shard is live; brownout
        # must not mask that as priority shedding.
        assert brownout_threshold(10, 0, start=0.5) == 0

    def test_request_priority_clamps_and_defaults(self):
        assert protocol.request_priority({}) == protocol.DEFAULT_PRIORITY
        assert protocol.request_priority({"priority": 7}) == 7
        assert protocol.request_priority({"priority": -3}) == 0
        assert protocol.request_priority({"priority": 99}) == protocol.MAX_PRIORITY
        assert protocol.request_priority({"priority": "high"}) == protocol.DEFAULT_PRIORITY
        assert protocol.request_priority({"priority": True}) == protocol.DEFAULT_PRIORITY


# ---------------------------------------------------------------------------
# shard fault plans
# ---------------------------------------------------------------------------


class TestShardFaultPlan:
    def test_plan_indexes_by_arrival(self):
        plan = ShardFaultPlan(
            [ShardFaultSpec("kill", "shard-1", 4), ShardFaultSpec("drop", "shard-0", 9)]
        )
        assert plan.fault_at(4).kind == "kill"
        assert plan.fault_at(9).shard == "shard-0"
        assert plan.fault_at(5) is None
        assert len(plan) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardFaultSpec("explode", "shard-0", 0)
        with pytest.raises(ValueError):
            ShardFaultSpec("kill", "shard-0", -1)
        with pytest.raises(ValueError):
            ShardFaultSpec("slow", "shard-0", 0, seconds=-0.1)
        with pytest.raises(ValueError):
            ShardFaultPlan(
                [ShardFaultSpec("kill", "a", 3), ShardFaultSpec("hang", "b", 3)]
            )


# ---------------------------------------------------------------------------
# live fleet: healthy-path routing
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def instances():
    return [generate_instance(20, 3, seed=s) for s in (5, 6)]


@pytest.fixture(scope="module")
def trees():
    rng = np.random.default_rng(2)
    return ramped_half_and_half(paper_primitive_set(), 4, rng, min_depth=2, max_depth=4)


@pytest.fixture(scope="module")
def fleet(instances):
    router = SolveRouter(instances=instances, n_shards=2, health_interval=0.1)
    with start_router_in_thread(router) as handle:
        yield router, handle.address


def _price_vectors(instance, n, seed=9):
    rng = np.random.default_rng(seed)
    low, high = instance.price_bounds
    return [rng.uniform(low, high) for _ in range(n)]


class TestLiveRouting:
    def test_ping_reports_router_and_protocol_version(self, fleet):
        _, (host, port) = fleet
        with ServeClient(host, port) as client:
            reply = client.request({"op": "ping"})
        assert reply["pong"] and reply["role"] == "router"
        assert reply["version"] == protocol.PROTOCOL_VERSION

    def test_pipelined_gaps_are_bit_identical_to_in_process(
        self, fleet, instances, trees
    ):
        _, (host, port) = fleet
        cases = [
            (inst, prices, trees[i % len(trees)])
            for i, inst in enumerate(instances * 3)
            for prices in _price_vectors(inst, 2, seed=i)
        ]
        with ServeClient(host, port) as client:
            requests = [
                client.solve_request(prices, tree, instance=inst.digest)
                for inst, prices, tree in cases
            ]
            replies = client.solve_many(requests)
        assert all(r["ok"] for r in replies)
        expected = [
            LowerLevelEvaluator(inst, memo_size=0).evaluate_heuristic_fresh(p, t).gap
            for inst, p, t in cases
        ]
        assert [r["gap"] for r in replies] == expected

    def test_routing_is_cache_affinity_on_the_digest(self, fleet, instances, trees):
        router, (host, port) = fleet
        digest = instances[0].digest
        expected_shard = router.ring.primary(digest)
        with ServeClient(host, port) as client:
            before = {
                s["name"]: s["routed"] for s in client.request({"op": "shards"})["shards"]
            }
            for prices in _price_vectors(instances[0], 3, seed=31):
                assert client.solve(prices, trees[0], instance=digest)["ok"]
            after = {
                s["name"]: s["routed"] for s in client.request({"op": "shards"})["shards"]
            }
        deltas = {name: after[name] - before[name] for name in after}
        assert deltas[expected_shard] == 3
        assert all(d == 0 for name, d in deltas.items() if name != expected_shard)

    def test_topology_op_shape(self, fleet):
        router, (host, port) = fleet
        with ServeClient(host, port) as client:
            shards = client.request({"op": "shards"})["shards"]
        assert [s["name"] for s in shards] == list(router.shard_names)
        for shard in shards:
            assert shard["alive"] and shard["connected"]
            assert shard["generation"] == 0 and shard["respawns"] == 0
            assert shard["breaker"] == "closed"

    def test_stats_include_fleet_extras(self, fleet):
        _, (host, port) = fleet
        with ServeClient(host, port) as client:
            stats = client.stats()
        assert stats["role"] == "router"
        assert stats["n_shards"] == 2 and stats["live_shards"] == 2
        assert stats["protocol_version"] == protocol.PROTOCOL_VERSION
        for counter in ("routed", "failovers", "respawns", "brownout_shed"):
            assert counter in stats

    def test_shard_error_codes_pass_through(self, fleet, instances):
        _, (host, port) = fleet
        with ServeClient(host, port) as client:
            reply = client.request(
                {
                    "op": "solve",
                    "prices": [1.0] * instances[0].n_services,
                    "heuristic": {"ref": "deadbeef00"},
                    "instance": instances[0].digest,
                }
            )
        assert not reply["ok"]
        assert reply["error"] == "unknown-heuristic"

    def test_ambiguous_instance_is_rejected_at_the_router(self, fleet):
        # Two instances registered: a solve with no instance cannot route.
        _, (host, port) = fleet
        with ServeClient(host, port) as client:
            reply = client.request(
                {"op": "solve", "prices": [1.0], "heuristic": {"ref": "deadbeef00"}}
            )
        assert not reply["ok"] and reply["error"] == "bad-request"

    def test_priority_field_is_accepted_and_served(self, fleet, instances, trees):
        _, (host, port) = fleet
        prices = _price_vectors(instances[0], 1, seed=77)[0]
        with ServeClient(host, port) as client:
            reply = client.solve(
                prices, trees[0], instance=instances[0].digest, priority=9
            )
        assert reply["ok"]
