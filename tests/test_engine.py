"""Unit tests for the unified engine: ledger, event bus, driver loop.

A tiny fake algorithm exercises the engine without any LP solves, so
these tests pin the *engine* semantics (budget accounting, event order,
pause/stop statuses, state envelope) independently of the algorithms.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.convergence import ConvergenceHistory
from repro.core.engine import (
    BudgetLedger,
    BudgetMeter,
    CoevolutionAlgorithm,
    EngineAlgorithm,
    EngineLoop,
)
from repro.core.events import (
    EngineEvent,
    EventBus,
    Observer,
    StagnationEarlyStop,
)
from repro.core.results import BilevelSolution, RunResult


class _FakeInstance:
    name = "fake-instance"
    n_bundles = 4


class FakeAlgorithm(EngineAlgorithm):
    """Counts steps; gap follows a caller-given schedule (for early-stop
    tests); one upper+lower evaluation per step."""

    def __init__(self, budget: int = 5, gaps: list[float] | None = None) -> None:
        self.instance = _FakeInstance()
        self.rng = np.random.default_rng(0)
        self._engine_init(budget, budget)
        self.gaps = gaps
        self.initialized = False
        self.closed = 0

    @property
    def name(self) -> str:
        return "FAKE"

    def generation_metrics(self) -> dict[str, float]:
        if self.gaps:
            gap = self.gaps[min(self.generation, len(self.gaps) - 1)]
        else:
            gap = 10.0 / (1 + self.generation)
        return {"best_fitness": -gap, "best_gap": gap, "mean_gap": gap}

    def initialize(self) -> None:
        self.initialized = True
        self.record_point()

    def step(self) -> bool:
        if self.ledger.upper.exhausted:
            return False
        self.ledger.charge(upper=1, lower=1)
        self.record_point()
        return True

    def close(self) -> None:
        self.closed += 1

    def extract_result(self, seed_label: int, wall_time: float) -> RunResult:
        ul, ll = self.budget_used()
        gap = self.generation_metrics()["best_gap"]
        return RunResult(
            algorithm=self.name,
            instance_name=self.instance.name,
            seed=seed_label,
            best_gap=gap,
            best_upper=-gap,
            best_solution=BilevelSolution(
                prices=np.zeros(2),
                selection=np.zeros(4, dtype=bool),
                upper_objective=-gap,
                lower_objective=gap,
                gap=gap,
                lower_bound=0.0,
            ),
            history=self.history,
            ul_evaluations_used=ul,
            ll_evaluations_used=ll,
            wall_time=wall_time,
        )

    def _state_payload(self) -> dict:
        return {"initialized": self.initialized}

    def _load_payload(self, payload: dict) -> None:
        self.initialized = bool(payload["initialized"])


class TestBudgetMeter:
    def test_charge_and_left(self):
        m = BudgetMeter(10)
        m.charge(3)
        assert (m.used, m.left, m.exhausted) == (3, 7, False)
        m.charge(7)
        assert m.exhausted

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError, match="charge"):
            BudgetMeter(10).charge(-1)

    def test_take_truncates_to_budget(self):
        m = BudgetMeter(5, used=3)
        assert m.take(10) == 2
        assert m.take(1) == 1
        m.charge(2)
        assert m.take(10) == 0


class TestBudgetLedger:
    def test_exhausted_requires_both(self):
        ledger = BudgetLedger(2, 2)
        ledger.charge(upper=2)
        assert ledger.upper.exhausted and not ledger.exhausted
        ledger.charge(lower=2)
        assert ledger.exhausted

    def test_state_roundtrip(self):
        ledger = BudgetLedger(7, 9)
        ledger.charge(upper=3, lower=4)
        clone = BudgetLedger(0, 0)
        clone.load_state_dict(ledger.state_dict())
        assert (clone.upper.budget, clone.upper.used) == (7, 3)
        assert (clone.lower.budget, clone.lower.used) == (9, 4)


class _Recorder(Observer):
    def __init__(self):
        self.calls: list[tuple[str, int]] = []

    def on_init(self, event):
        self.calls.append(("init", event.generation))

    def on_record(self, event):
        self.calls.append(("record", event.generation))

    def on_generation_end(self, event):
        self.calls.append(("generation_end", event.generation))

    def on_migration(self, event):
        self.calls.append(("migration", event.generation))

    def on_run_end(self, event):
        self.calls.append(("run_end", event.generation))


class TestEventBus:
    def test_unknown_hook_rejected(self):
        with pytest.raises(ValueError, match="unknown engine event"):
            EventBus()._emit("on_nonsense", EngineEvent(algorithm=None))

    def test_subscribe_unsubscribe(self):
        bus = EventBus()
        obs = _Recorder()
        bus.subscribe(obs)
        bus.init(EngineEvent(algorithm=None))
        bus.unsubscribe(obs)
        bus.init(EngineEvent(algorithm=None))
        assert obs.calls == [("init", 0)]

    def test_convergence_recorder_installed_at_construction(self):
        """Direct initialize()/step() driving records history — recording
        is observer-routed but does not require an EngineLoop."""
        algo = FakeAlgorithm(budget=3)
        algo.initialize()
        while algo.step():
            algo.generation += 1
        assert len(algo.history) == 4  # init + 3 steps
        assert [p.generation for p in algo.history.points] == [0, 1, 2, 3]
        assert algo.history.points[-1].ul_evaluations == 3


class TestEngineLoop:
    def test_run_to_exhaustion(self):
        algo = FakeAlgorithm(budget=4)
        obs = _Recorder()
        result = algo.run(seed_label=3, observers=[obs])
        assert result.ul_evaluations_used == 4
        assert result.seed == 3
        engine = result.extras["engine"]
        assert engine["status"] == "completed"
        assert engine["generations"] == 4
        assert engine["resumed"] is False
        assert algo.closed == 1
        hooks = [name for name, _ in obs.calls]
        # initialize() records its point first; on_init then marks the
        # evaluated starting state, before any step.
        assert hooks[:2] == ["record", "init"]
        assert hooks[-1] == "run_end"
        assert hooks.count("generation_end") == 4

    def test_observers_unsubscribed_after_run(self):
        algo = FakeAlgorithm(budget=2)
        obs = _Recorder()
        algo.run(observers=[obs])
        assert obs not in algo.events.observers
        # The construction-time convergence recorder stays.
        assert len(algo.events.observers) == 1

    def test_max_generations_pauses(self):
        algo = FakeAlgorithm(budget=10)
        result = algo.run(max_generations=3)
        assert result.extras["engine"]["status"] == "paused"
        assert result.ul_evaluations_used == 3
        assert algo.closed == 1

    def test_request_stop_status(self):
        algo = FakeAlgorithm(budget=100)

        class StopAtTwo(Observer):
            def on_generation_end(self, event):
                if event.generation >= 2:
                    event.loop.request_stop("enough")

        result = algo.run(observers=[StopAtTwo()])
        engine = result.extras["engine"]
        assert engine["status"] == "stopped"
        assert engine["stop_reason"] == "enough"
        assert result.ul_evaluations_used == 2

    def test_close_runs_even_if_step_raises(self):
        algo = FakeAlgorithm(budget=5)

        class Boom(Observer):
            def on_generation_end(self, event):
                raise RuntimeError("observer boom")

        with pytest.raises(RuntimeError, match="observer boom"):
            algo.run(observers=[Boom()])
        assert algo.closed == 1

    def test_protocol_conformance(self):
        assert isinstance(FakeAlgorithm(), CoevolutionAlgorithm)

    def test_state_envelope_roundtrip(self):
        algo = FakeAlgorithm(budget=6)
        algo.run(max_generations=2)
        state = algo.state_dict()
        clone = FakeAlgorithm(budget=6)
        clone.load_state_dict(state)
        assert clone.generation == algo.generation
        assert clone.budget_used() == algo.budget_used()
        assert clone.initialized
        assert len(clone.history) == len(algo.history)
        assert clone.rng.bit_generator.state == algo.rng.bit_generator.state

    def test_wrong_algorithm_checkpoint_rejected(self):
        algo = FakeAlgorithm()
        state = algo.state_dict()
        state["algorithm"] = "OTHER"
        with pytest.raises(ValueError, match="checkpoint is for"):
            algo.load_state_dict(state)

    def test_resume_skips_initialize(self):
        algo = FakeAlgorithm(budget=4)
        algo.run(max_generations=2)
        state = algo.state_dict()
        fresh = FakeAlgorithm(budget=4)
        fresh.initialize = None  # would raise if the loop called it
        result = EngineLoop(fresh, resume_state=state).run()
        assert result.extras["engine"]["resumed"] is True
        assert result.ul_evaluations_used == 4


class TestStagnationEarlyStop:
    def test_stops_after_patience(self):
        # Gap improves once, then flatlines.
        algo = FakeAlgorithm(budget=100, gaps=[5.0, 4.0] + [4.0] * 200)
        result = algo.run(observers=[StagnationEarlyStop(patience=10, metric="gap")])
        assert result.extras["engine"]["status"] == "stopped"
        assert "stagnation" in result.extras["engine"]["stop_reason"]
        # Stopped well before the budget ran out.
        assert result.ul_evaluations_used < 30

    def test_keeps_running_while_improving(self):
        algo = FakeAlgorithm(budget=30)  # gap = 10/(1+g): always improving
        result = algo.run(observers=[StagnationEarlyStop(patience=5)])
        assert result.extras["engine"]["status"] == "completed"
        assert result.ul_evaluations_used == 30

    def test_min_delta_counts_small_gains_as_stalls(self):
        gaps = [5.0 - 0.001 * i for i in range(300)]
        algo = FakeAlgorithm(budget=200, gaps=gaps)
        result = algo.run(
            observers=[StagnationEarlyStop(patience=8, min_delta=0.5)]
        )
        assert result.extras["engine"]["status"] == "stopped"

    def test_noop_without_loop(self):
        algo = FakeAlgorithm(budget=5, gaps=[1.0] * 50)
        algo.events.subscribe(StagnationEarlyStop(patience=1))
        algo.initialize()
        steps = 0
        while algo.step():
            algo.generation += 1
            algo.events.generation_end(EngineEvent(algorithm=algo, generation=algo.generation))
            steps += 1
        assert steps == 5  # ran to budget: nothing to stop when hand-driven

    def test_validation(self):
        with pytest.raises(ValueError, match="patience"):
            StagnationEarlyStop(patience=0)
        with pytest.raises(ValueError, match="metric"):
            StagnationEarlyStop(metric="vibes")


class TestFlatRow:
    def test_summary_row_matches_schema(self):
        from repro.core.results import SUMMARY_FIELDS

        algo = FakeAlgorithm(budget=2)
        result = algo.run()
        row = result.summary_row()
        assert tuple(row) == SUMMARY_FIELDS

    def test_flat_row_rejects_drift(self):
        with pytest.raises(ValueError, match="missing"):
            RunResult.flat_row(algorithm="X")
        kwargs = dict(
            algorithm="X", instance="i", seed=0, best_gap=0.0, best_upper=0.0,
            ul_evals=0, ll_evals=0, wall_time=0.0, bonus=1,
        )
        with pytest.raises(ValueError, match="extra"):
            RunResult.flat_row(**kwargs)


class TestHistoryStateDict:
    def test_roundtrip(self):
        h = ConvergenceHistory()
        h.record(1, 2, 3.0, 4.0, 5.0)
        h.record(6, 7, np.nan, 9.0, 10.0)
        clone = ConvergenceHistory()
        clone.load_state_dict(h.state_dict())
        assert len(clone) == 2
        assert clone.points[0] == h.points[0]
        assert np.isnan(clone.points[1].best_fitness)
        assert clone.points[1].generation == 1
