"""Chaos suite: deterministic fault injection against the supervised executor.

The contract under test (DESIGN.md §11): worker crashes, hangs, and
transient errors cost wall-time and retries, *never* results.  Every
task is a pure function of its item, so a retried/respawned/quarantined
task recomputes exactly the value the lost one would have produced —
fitness arrays stay bit-identical to the serial pipeline, and
``FaultStats`` reports exactly the injected plan (no sampled flakiness).
"""

from __future__ import annotations

import multiprocessing
import time

import numpy as np
import pytest

from repro.bcpop.evaluate import EvaluationPipeline, LowerLevelEvaluator
from repro.bcpop.generator import generate_instance
from repro.core.carbon import run_carbon
from repro.core.config import CarbonConfig, ExecutionConfig
from repro.gp.generate import ramped_half_and_half
from repro.gp.primitives import paper_primitive_set
from repro.parallel import (
    FaultInjector,
    FaultSpec,
    FaultStats,
    ProcessExecutor,
)

from tests.test_parallel_determinism import assert_bit_identical


def _square(x: int) -> int:
    return x * x


def _assert_no_leaked_workers(before: set) -> None:
    """No worker processes outlive their executor (leak check)."""
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        leaked = [p for p in multiprocessing.active_children() if p not in before]
        if not leaked:
            return
        time.sleep(0.05)
    assert not leaked, f"leaked worker processes: {leaked}"


@pytest.fixture(scope="module")
def instance():
    return generate_instance(20, 3, seed=5)


@pytest.fixture(scope="module")
def trees():
    rng = np.random.default_rng(2)
    return ramped_half_and_half(paper_primitive_set(), 4, rng, min_depth=2, max_depth=4)


class TestFaultPlan:
    def test_spec_validation(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="meteor", task=0)
        with pytest.raises(ValueError, match="task index"):
            FaultSpec(kind="crash", task=-1)
        with pytest.raises(ValueError, match="times"):
            FaultSpec(kind="crash", task=0, times=0)
        with pytest.raises(ValueError, match="seconds"):
            FaultSpec(kind="slow", task=0, seconds=-1.0)

    def test_duplicate_task_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            FaultInjector(
                [FaultSpec(kind="crash", task=3), FaultSpec(kind="hang", task=3)]
            )

    def test_fault_for_attempt_window(self):
        """``times=2`` = attempts 0 and 1 fault, attempt 2 runs clean —
        the deterministic 'two transient failures, then success'."""
        injector = FaultInjector([FaultSpec(kind="error", task=7, times=2)])
        assert injector.fault_for(7, attempt=0) is not None
        assert injector.fault_for(7, attempt=1) is not None
        assert injector.fault_for(7, attempt=2) is None
        assert injector.fault_for(6, attempt=0) is None
        assert len(injector) == 1

    def test_stats_accounting(self):
        stats = FaultStats(crashes=1, timeouts=2, transient_errors=3)
        assert stats.faults_seen == 6
        assert stats.as_dict()["timeouts"] == 2


class TestSupervisedExecutor:
    def test_supervised_clean_run_matches_serial(self):
        before = set(multiprocessing.active_children())
        with ProcessExecutor(workers=2, supervised=True) as ex:
            assert ex.supervised
            assert ex.map(_square, list(range(12))) == [i * i for i in range(12)]
            assert ex.fault_stats.faults_seen == 0
            assert ex.fault_stats.respawns == 0
        _assert_no_leaked_workers(before)

    def test_crash_hang_and_transient_errors_recovered_exactly(self):
        """The headline chaos plan: one crash, one hang, two transient
        failures then success — results intact, counts exact."""
        before = set(multiprocessing.active_children())
        injector = FaultInjector(
            [
                FaultSpec(kind="crash", task=8),
                FaultSpec(kind="hang", task=9),
                FaultSpec(kind="error", task=10, times=2),
            ]
        )
        ex = ProcessExecutor(workers=2, max_retries=3, fault_injector=injector)
        try:
            # Warm the spawn-context workers on clean tasks (global
            # indices 0..7) so the deadline below measures the injected
            # hang, not interpreter start-up.
            assert ex.map(_square, list(range(8))) == [i * i for i in range(8)]
            ex.task_timeout = 2.0
            out = ex.map(_square, list(range(8, 16)))
        finally:
            ex.close()
        assert out == [i * i for i in range(8, 16)]
        stats = ex.fault_stats
        assert stats.crashes == 1
        assert stats.timeouts == 1
        assert stats.transient_errors == 2
        assert stats.respawns == 2  # crashed worker + terminated hung worker
        assert stats.retries == 4  # crash, hang, and two error attempts
        assert stats.quarantined == 0
        assert stats.faults_seen == 4
        _assert_no_leaked_workers(before)

    def test_poison_task_quarantined_to_serial(self):
        """A task that crashes every attempt ends up evaluated in-process
        instead of burning the run."""
        before = set(multiprocessing.active_children())
        injector = FaultInjector([FaultSpec(kind="crash", task=1, times=999)])
        ex = ProcessExecutor(workers=2, max_retries=1, fault_injector=injector)
        try:
            out = ex.map(_square, [3, 4, 5])
        finally:
            ex.close()
        assert out == [9, 16, 25]
        stats = ex.fault_stats
        assert stats.crashes == 2  # initial attempt + the single retry
        assert stats.respawns == 2
        assert stats.retries == 1
        assert stats.quarantined == 1
        _assert_no_leaked_workers(before)

    def test_slow_fault_changes_time_not_values(self):
        injector = FaultInjector([FaultSpec(kind="slow", task=0, seconds=0.2)])
        with ProcessExecutor(workers=2, fault_injector=injector) as ex:
            assert ex.map(_square, list(range(4))) == [0, 1, 4, 9]
            assert ex.fault_stats.faults_seen == 0  # slow is not a failure

    def test_config_builds_supervised_executor(self):
        cfg = ExecutionConfig(
            executor="processes", workers=2, task_timeout=5.0, max_retries=1
        )
        ex = cfg.make_executor()
        try:
            assert isinstance(ex, ProcessExecutor)
            assert ex.supervised
            assert ex.task_timeout == 5.0
            assert ex.max_retries == 1
        finally:
            ex.close()
        with pytest.raises(ValueError, match="task_timeout"):
            ExecutionConfig(executor="processes", task_timeout=0.0)
        with pytest.raises(ValueError, match="max_retries"):
            ExecutionConfig(executor="processes", max_retries=-1)


class TestPipelineUnderFaults:
    def test_pipeline_bit_identical_with_faults(self, instance, trees):
        """Crash + transient errors during batched evaluation: outcomes
        equal the serial pipeline bit for bit, stats report the plan."""
        rng = np.random.default_rng(9)
        low, high = instance.price_bounds
        requests = [
            (rng.uniform(low, high), tree) for tree in trees for _ in range(4)
        ]
        serial = EvaluationPipeline(LowerLevelEvaluator(instance, memo_size=0))
        expected = serial.evaluate_heuristics(requests)

        injector = FaultInjector(
            [
                FaultSpec(kind="crash", task=0),
                FaultSpec(kind="error", task=1, times=2),
            ]
        )
        before = set(multiprocessing.active_children())
        ex = ProcessExecutor(workers=2, fault_injector=injector)
        try:
            pipeline = EvaluationPipeline(
                LowerLevelEvaluator(instance, memo_size=0), ex
            )
            outcomes = pipeline.evaluate_heuristics(requests)
            stats = pipeline.stats
        finally:
            ex.close()
        for got, want in zip(outcomes, expected):
            assert got.gap == want.gap
            assert got.revenue == want.revenue
            assert got.ll_cost == want.ll_cost
            assert np.array_equal(got.selection, want.selection)
        assert stats["faults"]["crashes"] == 1
        assert stats["faults"]["transient_errors"] == 2
        assert stats["faults"]["retries"] == 3
        assert stats["faults"]["quarantined"] == 0
        _assert_no_leaked_workers(before)


class TestCarbonUnderFaults:
    def test_full_run_bit_identical_and_stats_exact(self, instance):
        """The acceptance run: CARBON with a crash, a hang, and two
        transient errors injected completes bit-identical to the serial
        baseline, reports exactly the plan, and leaks no processes."""
        cfg = CarbonConfig.quick(120, 120, population_size=10)
        baseline = run_carbon(instance, cfg, seed=3)

        injector = FaultInjector(
            [
                FaultSpec(kind="crash", task=0),
                FaultSpec(kind="hang", task=3),
                FaultSpec(kind="error", task=5, times=2),
            ]
        )
        before = set(multiprocessing.active_children())
        ex = ProcessExecutor(
            workers=2, task_timeout=3.0, max_retries=2, fault_injector=injector
        )
        try:
            chaotic = run_carbon(instance, cfg, seed=3, executor=ex)
            stats = ex.fault_stats
        finally:
            ex.close()
        assert_bit_identical(chaotic, baseline)
        assert stats.crashes == 1
        assert stats.timeouts == 1
        assert stats.transient_errors == 2
        assert stats.respawns == 2
        assert stats.retries == 4
        assert stats.quarantined == 0
        # FaultStats surfaces through RunResult.extras for reporting.
        assert chaotic.extras["pipeline"]["faults"] == stats.as_dict()
        assert "faults" not in baseline.extras["pipeline"]
        _assert_no_leaked_workers(before)
