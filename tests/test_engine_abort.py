"""Mid-generation failure semantics of the engine loop.

An exception escaping ``initialize()``/``step()``/result extraction must
not vanish into a half-closed run: the engine fires ``on_run_end`` with
``result=None`` and ``data={"aborted": True, "error": ...}`` (so every
observer sees exactly one run end), skips the abort-time checkpoint save
(the algorithm's state is mid-step), unsubscribes per-run observers, and
re-raises the original exception.  The last good periodic checkpoint
then resumes bit-identically.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.bcpop.generator import generate_instance
from repro.core.carbon import Carbon, run_carbon
from repro.core.checkpoint import Checkpointer, load_checkpoint
from repro.core.config import CarbonConfig
from repro.core.engine import EngineLoop
from repro.core.events import JsonlRunLogger, Observer

from tests.test_parallel_determinism import assert_bit_identical

SEED = 3


@pytest.fixture(scope="module")
def instance():
    return generate_instance(24, 3, seed=5, name="abort-24x3")


@pytest.fixture(scope="module")
def config():
    return CarbonConfig.quick(120, 120, population_size=8)


class RunEndSpy(Observer):
    def __init__(self):
        self.events = []

    def on_run_end(self, event):
        self.events.append(event)


class ExplodingCarbon(Carbon):
    """Behaves exactly like Carbon until generation ``explode_after``
    completes, then raises at the top of the next step."""

    def __init__(self, *args, explode_after=2, exc=None, **kwargs):
        super().__init__(*args, **kwargs)
        self._explode_after = explode_after
        self._exc = exc if exc is not None else RuntimeError("boom")

    def step(self):
        if self.generation >= self._explode_after:
            raise self._exc
        return super().step()


class CrashOnInit(Carbon):
    def initialize(self):
        raise RuntimeError("init boom")


def _explode(instance, config, observers, explode_after=2, exc=None):
    algo = ExplodingCarbon(
        instance,
        config,
        np.random.default_rng(SEED),
        explode_after=explode_after,
        exc=exc,
    )
    loop = EngineLoop(algo, observers=observers)
    return algo, loop


class TestAbortEvent:
    def test_run_end_fires_once_with_abort_data(self, instance, config):
        spy = RunEndSpy()
        algo, loop = _explode(instance, config, [spy])
        with pytest.raises(RuntimeError, match="boom"):
            loop.run(seed_label=SEED)
        assert len(spy.events) == 1
        event = spy.events[0]
        assert event.result is None
        assert event.data["aborted"] is True
        assert event.data["error"] == "RuntimeError: boom"
        assert event.generation == 2  # last *completed* generation

    def test_observers_unsubscribed_after_abort(self, instance, config):
        spy = RunEndSpy()
        algo, loop = _explode(instance, config, [spy])
        before = len(algo.events.observers)
        with pytest.raises(RuntimeError):
            loop.run(seed_label=SEED)
        assert len(algo.events.observers) == before

    def test_initialize_failure_also_reported(self, instance, config):
        spy = RunEndSpy()
        algo = CrashOnInit(instance, config, np.random.default_rng(SEED))
        with pytest.raises(RuntimeError, match="init boom"):
            EngineLoop(algo, observers=[spy]).run(seed_label=SEED)
        assert len(spy.events) == 1
        assert spy.events[0].result is None
        assert spy.events[0].data["aborted"] is True
        assert spy.events[0].generation == 0

    def test_keyboard_interrupt_reported_and_reraised(self, instance, config):
        """BaseException too: Ctrl-C mid-generation still closes the run
        log before propagating."""
        spy = RunEndSpy()
        algo, loop = _explode(instance, config, [spy], exc=KeyboardInterrupt())
        with pytest.raises(KeyboardInterrupt):
            loop.run(seed_label=SEED)
        assert len(spy.events) == 1
        assert spy.events[0].data["aborted"] is True
        assert spy.events[0].data["error"].startswith("KeyboardInterrupt")


class TestAbortArtifacts:
    def test_checkpointer_skips_abort_save(self, instance, config, tmp_path):
        path = tmp_path / "c.json"
        checkpointer = Checkpointer(path, every=1)
        algo, loop = _explode(instance, config, [checkpointer])
        with pytest.raises(RuntimeError):
            loop.run(seed_label=SEED)
        # Generations 1 and 2 saved; no save for the aborted run end —
        # the file on disk is the clean generation-2 state.
        assert checkpointer.saves == 2
        assert load_checkpoint(path)["generation"] == 2

    def test_jsonl_logger_writes_aborted_run_end(self, instance, config, tmp_path):
        log = tmp_path / "run.jsonl"
        algo, loop = _explode(instance, config, [JsonlRunLogger(log)])
        with pytest.raises(RuntimeError):
            loop.run(seed_label=SEED)
        lines = [json.loads(line) for line in log.read_text().splitlines()]
        assert lines[-1]["event"] == "run_end"
        assert lines[-1]["aborted"] is True
        assert lines[-1]["error"] == "RuntimeError: boom"
        assert lines[-1]["generation"] == 2
        # One init line + two generation lines preceded it.
        assert [row["event"] for row in lines] == [
            "init",
            "generation",
            "generation",
            "run_end",
        ]

    def test_resume_from_pre_abort_checkpoint_bit_identical(
        self, instance, config, tmp_path
    ):
        """The recovery story end to end: crash mid-generation, resume
        from the last good checkpoint, reproduce the uninterrupted run."""
        baseline = run_carbon(instance, config, seed=SEED)
        path = tmp_path / "c.json"
        algo, loop = _explode(instance, config, [Checkpointer(path, every=1)])
        with pytest.raises(RuntimeError):
            loop.run(seed_label=SEED)
        state = load_checkpoint(path)["state"]
        fresh = Carbon(instance, config, np.random.default_rng(SEED + 999))
        resumed = EngineLoop(fresh, resume_state=state).run(seed_label=SEED)
        assert_bit_identical(resumed, baseline)
