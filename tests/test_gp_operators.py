"""Tests for GP variation operators, generation, and selection."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gp.generate import full_tree, grow_tree, ramped_half_and_half
from repro.gp.operators import (
    one_point_crossover,
    point_mutation,
    reproduce,
    uniform_mutation,
)
from repro.gp.primitives import paper_primitive_set
from repro.gp.selection import tournament, tournament_indices


class TestGeneration:
    def test_full_tree_exact_depth(self, rng, pset):
        for depth in range(0, 6):
            t = full_tree(pset, depth, rng)
            assert t.depth == depth
            t.validate()

    def test_grow_tree_bounded_depth(self, rng, pset):
        for _ in range(20):
            t = grow_tree(pset, 5, rng)
            assert t.depth <= 5
            t.validate()

    def test_negative_depth_raises(self, rng, pset):
        with pytest.raises(ValueError):
            full_tree(pset, -1, rng)
        with pytest.raises(ValueError):
            grow_tree(pset, -2, rng)

    def test_ramped_half_and_half_counts(self, rng, pset):
        pop = ramped_half_and_half(pset, 30, rng, min_depth=1, max_depth=4)
        assert len(pop) == 30
        for t in pop:
            t.validate()
            assert 0 <= t.depth <= 4

    def test_ramped_depth_diversity(self, rng, pset):
        pop = ramped_half_and_half(pset, 40, rng, min_depth=2, max_depth=5)
        depths = {t.depth for t in pop}
        assert len(depths) >= 3  # several depth levels present

    def test_ramped_bad_range_raises(self, rng, pset):
        with pytest.raises(ValueError, match="min_depth"):
            ramped_half_and_half(pset, 10, rng, min_depth=5, max_depth=2)


class TestCrossover:
    def test_children_valid(self, rng, pset):
        for _ in range(20):
            a = grow_tree(pset, 4, rng)
            b = grow_tree(pset, 4, rng)
            c1, c2 = one_point_crossover(a, b, rng)
            c1.validate()
            c2.validate()

    def test_parents_unchanged(self, rng, pset):
        a = grow_tree(pset, 4, rng)
        b = grow_tree(pset, 4, rng)
        a_before, b_before = a.to_infix(), b.to_infix()
        one_point_crossover(a, b, rng)
        assert a.to_infix() == a_before and b.to_infix() == b_before

    def test_material_conserved(self, rng, pset):
        """Total node count is preserved by a subtree swap."""
        a = grow_tree(pset, 4, rng)
        b = grow_tree(pset, 4, rng)
        c1, c2 = one_point_crossover(a, b, rng, max_depth=100, max_size=10_000)
        assert c1.size + c2.size == a.size + b.size

    def test_depth_limit_enforced(self, rng, pset):
        for _ in range(10):
            a = full_tree(pset, 5, rng)
            b = full_tree(pset, 5, rng)
            c1, c2 = one_point_crossover(a, b, rng, max_depth=6)
            assert c1.depth <= 6 and c2.depth <= 6


class TestMutation:
    def test_uniform_mutation_valid(self, rng, pset):
        for _ in range(20):
            t = grow_tree(pset, 4, rng)
            m = uniform_mutation(t, pset, rng)
            m.validate()
            assert m.depth <= 17

    def test_uniform_mutation_respects_limits(self, rng, pset):
        t = full_tree(pset, 6, rng)
        for _ in range(10):
            m = uniform_mutation(t, pset, rng, max_depth=7)
            assert m.depth <= 7

    def test_point_mutation_preserves_shape(self, rng, pset):
        t = grow_tree(pset, 4, rng)
        m = point_mutation(t, pset, rng, per_node_probability=1.0)
        m.validate()
        assert m.size == t.size
        assert m.node_depths() == t.node_depths()

    def test_point_mutation_zero_rate_is_identity(self, rng, pset):
        t = grow_tree(pset, 4, rng)
        m = point_mutation(t, pset, rng, per_node_probability=0.0)
        assert m == t

    def test_reproduce_copies(self, rng, pset):
        t = grow_tree(pset, 3, rng)
        c = reproduce(t)
        assert c == t and c is not t and c.nodes is not t.nodes


class TestSelection:
    def test_tournament_prefers_better(self, rng):
        # Entrants are drawn WITH replacement (standard tournament), so the
        # best individual wins whenever it enters: with k=64 over 3
        # individuals that is a near-certainty per draw.
        fits = [10.0, 1.0, 5.0]
        picks = tournament_indices(fits, 100, rng, k=64, minimize=True)
        assert (picks == 1).all()

    def test_maximize_direction(self, rng):
        fits = [10.0, 1.0, 5.0]
        picks = tournament_indices(fits, 100, rng, k=64, minimize=False)
        assert (picks == 0).all()

    def test_selection_pressure_statistical(self, rng):
        fits = [10.0, 1.0, 5.0]
        picks = tournament_indices(fits, 3000, rng, k=2, minimize=True)
        counts = np.bincount(picks, minlength=3)
        # Binary tournament win probabilities: best > middle > worst.
        assert counts[1] > counts[2] > counts[0]

    def test_nan_always_loses(self, rng):
        fits = [np.nan, 2.0]
        picks = tournament_indices(fits, 200, rng, k=2, minimize=True)
        # Index 0 can only win a tournament containing no finite entrant,
        # i.e. when both entrants are index 0 itself.
        finite_possible = picks == 1
        nan_only = picks == 0
        assert finite_possible.sum() + nan_only.sum() == 200
        # Whenever index 1 entered (75% of draws on average), it won.
        assert finite_possible.sum() > 100

    def test_empty_population_raises(self, rng):
        with pytest.raises(ValueError, match="empty"):
            tournament_indices([], 1, rng)

    def test_bad_tournament_size_raises(self, rng):
        with pytest.raises(ValueError, match="tournament size"):
            tournament_indices([1.0], 1, rng, k=0)

    def test_tournament_with_key(self, rng):
        pop = ["aaa", "a", "aa"]
        out = tournament(pop, None, 100, rng, k=64, minimize=True, key=len)
        assert all(x == "a" for x in out)

    def test_mismatched_lengths_raise(self, rng):
        with pytest.raises(ValueError, match="population size"):
            tournament([1, 2], [0.0], 1, rng)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_property_variation_closure(seed):
    """Property: arbitrary chains of crossover/mutation keep trees valid
    and within limits (the evolutionary loop's structural invariant)."""
    pset = paper_primitive_set()
    gen = np.random.default_rng(seed)
    a = grow_tree(pset, 4, gen)
    b = grow_tree(pset, 4, gen)
    for _ in range(5):
        a, b = one_point_crossover(a, b, gen, max_depth=10, max_size=128)
        a = uniform_mutation(a, pset, gen, max_depth=10, max_size=128)
        b = point_mutation(b, pset, gen)
    for t in (a, b):
        t.validate()
        assert t.depth <= 10
        assert t.size <= 128
