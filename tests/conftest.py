"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bcpop.generator import generate_instance
from repro.covering.instance import CoveringInstance
from repro.gp.primitives import paper_primitive_set


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_covering() -> CoveringInstance:
    """A 4-service x 12-bundle coverable instance (enumeration-solvable)."""
    gen = np.random.default_rng(0)
    q = gen.integers(0, 10, (4, 12)).astype(float)
    demand = q.sum(axis=1) * 0.3
    costs = gen.uniform(1.0, 20.0, 12)
    return CoveringInstance(costs=costs, q=q, demand=demand, name="small")


@pytest.fixture
def tiny_covering() -> CoveringInstance:
    """A hand-built 2x4 instance with a known optimum.

    demand = (4, 4); optimal cover = bundles {1, 2} at cost 5:
      bundle 0: q=(4,0) cost 4
      bundle 1: q=(4,2) cost 3
      bundle 2: q=(0,4) cost 2   -> {1,2} covers (4,6) for 5
      bundle 3: q=(2,2) cost 10
    """
    return CoveringInstance(
        costs=[4.0, 3.0, 2.0, 10.0],
        q=[[4.0, 4.0, 0.0, 2.0], [0.0, 2.0, 4.0, 2.0]],
        demand=[4.0, 4.0],
        name="tiny",
    )


@pytest.fixture
def small_bcpop():
    """A laptop-sized BCPOP instance (30 bundles, 4 services)."""
    return generate_instance(30, 4, seed=7, name="bcpop-test")


@pytest.fixture
def pset():
    return paper_primitive_set()


def random_covering(seed: int, n_services: int = 3, n_bundles: int = 10) -> CoveringInstance:
    """Helper used by parametrized/property tests (importable, not a fixture)."""
    gen = np.random.default_rng(seed)
    q = gen.integers(0, 8, (n_services, n_bundles)).astype(float)
    demand = q.sum(axis=1) * gen.uniform(0.2, 0.5)
    costs = gen.uniform(0.5, 15.0, n_bundles)
    return CoveringInstance(costs=costs, q=q, demand=demand)
