"""Smoke tests for the remaining ``repro-bench`` commands (tiny budgets)."""

from __future__ import annotations

import pytest

from repro.experiments.runner import build_parser, main


class TestParser:
    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["warp-drive"])

    def test_scale_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--scale", "galactic"])

    def test_classes_parsing(self):
        args = build_parser().parse_args(["table3", "--classes", "100x5", "250x10"])
        assert args.classes == ["100x5", "250x10"]


class TestCommands:
    def test_extended_tiny(self, capsys):
        assert main([
            "extended", "--runs", "1", "--fig-n", "16", "--fig-m", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "CARBON" in out and "NESTED[chvatal]" in out and "SURROGATE" in out

    def test_trilevel_tiny(self, capsys):
        assert main([
            "trilevel", "--runs", "1", "--fig-n", "16", "--fig-m", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "nesting multiplier" in out

    def test_instances_export(self, tmp_path, capsys):
        out_dir = tmp_path / "suite"
        assert main(["instances", "--out", str(out_dir)]) == 0
        files = sorted(p.name for p in out_dir.iterdir())
        assert "bcpop-n100-m5-s0.json" in files
        assert "bcpop-n100-m5-s0.mknap" in files
        assert len(files) == 18  # 9 classes x 2 formats

    def test_profile_flag(self, capsys):
        assert main(["fig1", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "cProfile" in out

    def test_table4_with_classes(self, capsys):
        assert main([
            "table4", "--runs", "1", "--classes", "16x2",
        ]) == 0
        out = capsys.readouterr().out
        assert "TABLE IV" in out
