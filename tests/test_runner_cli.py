"""Smoke tests for the remaining ``repro-bench`` commands (tiny budgets)."""

from __future__ import annotations

import json

import pytest

from repro.experiments.runner import build_parser, main


class TestParser:
    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["warp-drive"])

    def test_scale_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--scale", "galactic"])

    def test_classes_parsing(self):
        args = build_parser().parse_args(["table3", "--classes", "100x5", "250x10"])
        assert args.classes == ["100x5", "250x10"]

    def test_eval_mode_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table3", "--eval-mode", "tournament"])
        args = build_parser().parse_args(["modes", "--eval-mode", "archive"])
        assert args.eval_mode == "archive"
        assert build_parser().parse_args(["table3"]).eval_mode is None

    def test_modes_is_a_report_command(self):
        from repro.experiments.runner import _COMMANDS, _NON_REPORT

        assert "modes" in _COMMANDS
        assert "modes" not in _NON_REPORT


class TestCommands:
    def test_extended_tiny(self, capsys):
        assert main([
            "extended", "--runs", "1", "--fig-n", "16", "--fig-m", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "CARBON" in out and "NESTED[chvatal]" in out and "SURROGATE" in out

    def test_trilevel_tiny(self, capsys):
        assert main([
            "trilevel", "--runs", "1", "--fig-n", "16", "--fig-m", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "nesting multiplier" in out

    def test_instances_export(self, tmp_path, capsys):
        out_dir = tmp_path / "suite"
        assert main(["instances", "--out", str(out_dir)]) == 0
        files = sorted(p.name for p in out_dir.iterdir())
        assert "bcpop-n100-m5-s0.json" in files
        assert "bcpop-n100-m5-s0.mknap" in files
        assert len(files) == 18  # 9 classes x 2 formats

    def test_profile_flag(self, capsys):
        assert main(["fig1", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "cProfile" in out

    def test_table3_checkpoint_log_resume_end_to_end(self, tmp_path, capsys):
        """The observability flags work through the full CLI: first run
        writes checkpoints + a JSONL log; the --resume re-run restores
        the finished checkpoints and reproduces the same table."""
        ckpt_dir = tmp_path / "ckpts"
        log = tmp_path / "runs.jsonl"
        argv = [
            "table3", "--runs", "1", "--classes", "16x2",
            "--checkpoint-dir", str(ckpt_dir),
            "--log-jsonl", str(log),
            "--checkpoint-every", "5",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "TABLE III" in first
        files = sorted(p.name for p in ckpt_dir.iterdir())
        assert files == ["carbon-n16-m2-seed0.json", "cobra-n16-m2-seed0.json"]
        lines = [json.loads(l) for l in log.read_text().splitlines()]
        assert {l["event"] for l in lines} >= {"init", "generation", "run_end"}
        finals = [l for l in lines if l["event"] == "run_end"]
        assert sorted(l["algorithm"] for l in finals) == ["CARBON", "COBRA"]

        assert main(argv + ["--resume"]) == 0
        second = capsys.readouterr().out
        # Resumed-from-finished runs re-extract the identical table.
        assert second.splitlines()[-5:] == first.splitlines()[-5:]

    def test_table4_with_classes(self, capsys):
        assert main([
            "table4", "--runs", "1", "--classes", "16x2",
        ]) == 0
        out = capsys.readouterr().out
        assert "TABLE IV" in out

    def test_table3_accepts_eval_mode(self, capsys):
        assert main([
            "table3", "--runs", "1", "--classes", "16x2",
            "--eval-mode", "archive",
        ]) == 0
        assert "TABLE III" in capsys.readouterr().out
