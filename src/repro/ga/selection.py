"""Binary tournament selection (Table II, upper level of both algorithms).

A thin wrapper over :func:`repro.gp.selection.tournament` with ``k=2`` —
one selection implementation serves both engines.
"""

from __future__ import annotations

from typing import Sequence, TypeVar

import numpy as np

from repro.gp.selection import tournament

__all__ = ["binary_tournament"]

T = TypeVar("T")


def binary_tournament(
    population: Sequence[T],
    fitnesses: Sequence[float],
    n: int,
    rng: np.random.Generator,
    minimize: bool = False,
) -> list[T]:
    """Select ``n`` individuals via binary tournaments.

    Defaults to maximization because the BCPOP upper level maximizes
    revenue; pass ``minimize=True`` for cost-like fitnesses.
    """
    return tournament(population, fitnesses, n, rng, k=2, minimize=minimize)
