"""Variation operators for real and binary genomes (Table II).

Real-coded (upper level, both algorithms):

* :func:`sbx_crossover` — Deb & Agrawal's simulated binary crossover,
  vectorized over genes, bounds-aware,
* :func:`polynomial_mutation` — Deb's bounded polynomial mutation.

Binary (COBRA lower level):

* :func:`two_point_crossover`,
* :func:`swap_mutation` — per-gene bit swap with the paper's default rate
  ``1/#variables``.
"""

from __future__ import annotations

import numpy as np

from repro.ga.encoding import Bounds

__all__ = [
    "sbx_crossover",
    "polynomial_mutation",
    "two_point_crossover",
    "swap_mutation",
]


def sbx_crossover(
    p1: np.ndarray,
    p2: np.ndarray,
    bounds: Bounds,
    rng: np.random.Generator,
    eta: float = 15.0,
    per_gene_probability: float = 0.5,
) -> tuple[np.ndarray, np.ndarray]:
    """Simulated binary crossover (SBX) with bounds handling.

    ``eta`` is the distribution index: large values keep children near the
    parents.  Each gene independently crosses with
    ``per_gene_probability``; genes whose parents coincide pass through
    unchanged.  Implementation follows Deb & Agrawal (1995) with the
    boundary-normalized spread factors used by NSGA-II reference code.
    """
    x1 = np.asarray(p1, dtype=np.float64).copy()
    x2 = np.asarray(p2, dtype=np.float64).copy()
    if x1.shape != x2.shape or x1.shape != (bounds.size,):
        raise ValueError(
            f"parent shapes {x1.shape}/{x2.shape} incompatible with bounds {bounds.size}"
        )
    if eta <= 0:
        raise ValueError(f"eta must be positive, got {eta}")

    cross = rng.random(bounds.size) < per_gene_probability
    distinct = np.abs(x1 - x2) > 1e-14
    act = cross & distinct
    if not act.any():
        return x1, x2

    lo = bounds.low[act]
    hi = bounds.high[act]
    y1 = np.minimum(x1[act], x2[act])
    y2 = np.maximum(x1[act], x2[act])
    span = np.maximum(y2 - y1, 1e-14)
    u = rng.random(act.sum())

    def _child(beta_bound: np.ndarray) -> np.ndarray:
        alpha = 2.0 - np.power(beta_bound, -(eta + 1.0))
        below = u <= 1.0 / alpha
        with np.errstate(over="ignore"):
            beta_q = np.where(
                below,
                np.power(u * alpha, 1.0 / (eta + 1.0)),
                np.power(1.0 / np.maximum(2.0 - u * alpha, 1e-300), 1.0 / (eta + 1.0)),
            )
        return beta_q

    beta1 = 1.0 + 2.0 * (y1 - lo) / span
    beta2 = 1.0 + 2.0 * (hi - y2) / span
    bq1 = _child(beta1)
    bq2 = _child(beta2)
    c1 = 0.5 * ((y1 + y2) - bq1 * span)
    c2 = 0.5 * ((y1 + y2) + bq2 * span)
    c1 = np.clip(c1, lo, hi)
    c2 = np.clip(c2, lo, hi)

    # Randomly swap which child gets which value (standard symmetrization).
    flip = rng.random(act.sum()) < 0.5
    out1 = np.where(flip, c2, c1)
    out2 = np.where(flip, c1, c2)
    x1[act] = out1
    x2[act] = out2
    return x1, x2


def polynomial_mutation(
    x: np.ndarray,
    bounds: Bounds,
    rng: np.random.Generator,
    eta: float = 20.0,
    per_gene_probability: float | None = None,
) -> np.ndarray:
    """Deb's bounded polynomial mutation.

    ``per_gene_probability`` defaults to ``1/n``.  Returns a new vector
    inside the box.
    """
    x = np.asarray(x, dtype=np.float64).copy()
    n = bounds.size
    if x.shape != (n,):
        raise ValueError(f"x shape {x.shape} != ({n},)")
    if eta <= 0:
        raise ValueError(f"eta must be positive, got {eta}")
    p = 1.0 / n if per_gene_probability is None else per_gene_probability
    mutate = rng.random(n) < p
    if not mutate.any():
        return x

    lo = bounds.low[mutate]
    hi = bounds.high[mutate]
    span = np.maximum(hi - lo, 1e-14)
    y = x[mutate]
    delta1 = (y - lo) / span
    delta2 = (hi - y) / span
    u = rng.random(mutate.sum())
    mut_pow = 1.0 / (eta + 1.0)
    lower_half = u < 0.5
    xy = np.where(lower_half, 1.0 - delta1, 1.0 - delta2)
    val = np.where(
        lower_half,
        2.0 * u + (1.0 - 2.0 * u) * np.power(xy, eta + 1.0),
        2.0 * (1.0 - u) + 2.0 * (u - 0.5) * np.power(xy, eta + 1.0),
    )
    delta_q = np.where(
        lower_half,
        np.power(val, mut_pow) - 1.0,
        1.0 - np.power(val, mut_pow),
    )
    x[mutate] = np.clip(y + delta_q * span, lo, hi)
    return x


def two_point_crossover(
    p1: np.ndarray, p2: np.ndarray, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Classical two-point crossover on equal-length genomes (any dtype)."""
    a = np.asarray(p1).copy()
    b = np.asarray(p2).copy()
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError(f"incompatible parent shapes {a.shape} / {b.shape}")
    n = a.size
    if n < 2:
        return a, b
    i, j = sorted(rng.integers(0, n, size=2))
    if i == j:
        j = min(j + 1, n - 1)
    segment = a[i:j].copy()
    a[i:j] = b[i:j]
    b[i:j] = segment
    return a, b


def swap_mutation(
    x: np.ndarray,
    rng: np.random.Generator,
    per_gene_probability: float | None = None,
) -> np.ndarray:
    """Bit-flip ("swap") mutation on a binary genome; default rate 1/n
    (Table II's COBRA lower-level mutation)."""
    x = np.asarray(x, dtype=bool).copy()
    p = 1.0 / x.size if per_gene_probability is None else per_gene_probability
    flips = rng.random(x.size) < p
    x[flips] = ~x[flips]
    return x
