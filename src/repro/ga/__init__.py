"""Real-coded genetic-algorithm engine.

The upper level of both CARBON and COBRA evolves continuous pricing
vectors with the operators of Table II: simulated binary crossover (SBX),
polynomial mutation, and binary tournament selection.  COBRA's lower level
additionally uses a binary encoding with two-point crossover and swap
mutation, also provided here.
"""

from repro.ga.encoding import Bounds
from repro.ga.operators import (
    sbx_crossover,
    polynomial_mutation,
    two_point_crossover,
    swap_mutation,
)
from repro.ga.selection import binary_tournament
from repro.ga.population import Individual, evaluate_population, random_real_population

__all__ = [
    "Bounds",
    "sbx_crossover",
    "polynomial_mutation",
    "two_point_crossover",
    "swap_mutation",
    "binary_tournament",
    "Individual",
    "evaluate_population",
    "random_real_population",
]
