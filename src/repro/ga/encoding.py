"""Box-constrained real vector encoding."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Bounds"]


@dataclass(frozen=True)
class Bounds:
    """Per-gene box constraints for a real-coded genome.

    Both SBX and polynomial mutation are bounds-aware (they shape their
    distributions by the distance to the box), so the bounds are part of
    the encoding rather than the operator calls.
    """

    low: np.ndarray
    high: np.ndarray

    def __post_init__(self) -> None:
        low = np.asarray(self.low, dtype=np.float64).ravel()
        high = np.asarray(self.high, dtype=np.float64).ravel()
        if low.shape != high.shape:
            raise ValueError(f"bounds shape mismatch: {low.shape} vs {high.shape}")
        if np.any(high < low):
            raise ValueError("high < low in bounds")
        object.__setattr__(self, "low", low)
        object.__setattr__(self, "high", high)

    @classmethod
    def uniform(cls, n: int, low: float, high: float) -> "Bounds":
        return cls(np.full(n, low), np.full(n, high))

    @property
    def size(self) -> int:
        return self.low.size

    @property
    def span(self) -> np.ndarray:
        return self.high - self.low

    def clip(self, x: np.ndarray) -> np.ndarray:
        """Project onto the box (returns a new array)."""
        return np.clip(x, self.low, self.high)

    def contains(self, x: np.ndarray, tol: float = 1e-12) -> bool:
        x = np.asarray(x, dtype=np.float64)
        return bool(np.all(x >= self.low - tol) and np.all(x <= self.high + tol))

    def sample(self, rng: np.random.Generator, n: int | None = None) -> np.ndarray:
        """Uniform sample(s) inside the box: shape (size,) or (n, size)."""
        if n is None:
            return rng.uniform(self.low, self.high)
        return rng.uniform(self.low, self.high, size=(n, self.size))
