"""Population bookkeeping shared by the evolutionary loops."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.ga.encoding import Bounds

__all__ = ["Individual", "random_real_population", "evaluate_population"]


@dataclass
class Individual:
    """A genome plus its cached evaluation.

    ``genome`` may be a real vector (upper level), a boolean vector
    (COBRA lower level), or a :class:`repro.gp.tree.SyntaxTree` (CARBON
    lower level) — the loops only rely on ``fitness``/``aux``.

    ``aux`` carries side information from evaluation (for BCPOP: the
    follower basket, gap, lower bound) used by archives and reports.
    """

    genome: Any
    fitness: float = np.nan
    aux: dict = field(default_factory=dict)

    @property
    def evaluated(self) -> bool:
        return not np.isnan(self.fitness)

    def copy(self) -> "Individual":
        genome = self.genome
        if isinstance(genome, np.ndarray):
            genome = genome.copy()
        elif hasattr(genome, "copy"):
            genome = genome.copy()
        return Individual(genome=genome, fitness=self.fitness, aux=dict(self.aux))


def random_real_population(
    bounds: Bounds, n: int, rng: np.random.Generator
) -> list[Individual]:
    """Uniform random real-coded population inside ``bounds``."""
    if n < 0:
        raise ValueError(f"population size must be >= 0, got {n}")
    genomes = bounds.sample(rng, n)
    return [Individual(genome=genomes[i]) for i in range(n)]


def evaluate_population(
    population: Sequence[Individual],
    evaluate: Callable[[Any], tuple[float, dict]],
    only_unevaluated: bool = True,
) -> int:
    """Fill in fitness/aux for a population; returns the evaluation count.

    ``evaluate`` maps a genome to ``(fitness, aux)``.
    """
    count = 0
    for ind in population:
        if only_unevaluated and ind.evaluated:
            continue
        fitness, aux = evaluate(ind.genome)
        ind.fitness = float(fitness)
        ind.aux = aux
        count += 1
    return count
