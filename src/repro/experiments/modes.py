"""Evaluation-mode comparison harness (Nolfi-style mode table).

Runs the engine algorithms under every competitive evaluation mode
(:data:`repro.core.config.EVAL_MODES`) and tabulates convergence and
cycling per (algorithm x mode) cell — the reproduction-side analogue of
the archive / hall-of-fame / maxsolve / generalist comparisons of Nolfi &
Pagliuca (SNIPPETS.md Snippet 2):

* a **ground-truth section**: CARBON on the maximin bilinear toy
  (:func:`repro.bilevel.bilinear_instance`), whose saddle point is known
  analytically — the table reports the final population's distance to it
  (``|mean(x) - a|``) and the cycling (see-saw) index of the best-fitness
  trajectory, so "archive beats current" is a measurable claim, not a
  story;
* a **BCPOP section**: all four two-level algorithms (CARBON, COBRA,
  nested, surrogate) on one small pricing instance, reporting the paper's
  %-gap and upper objective per mode.

``repro-bench modes`` renders both tables (the nightly CI job uploads the
output as an artifact); :func:`gate_setup` is the single source of the
convergence-gate configuration shared with
``tests/test_convergence_gate.py``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.bilevel.bilinear import BilinearInstance, bilinear_instance
from repro.core.config import (
    EVAL_MODES,
    CarbonConfig,
    CobraConfig,
    EvalModeConfig,
    UpperLevelConfig,
)
from repro.core.convergence import seesaw_index

__all__ = [
    "ModeCell",
    "gate_setup",
    "run_bilinear_modes",
    "run_bcpop_modes",
    "format_mode_table",
    "run_mode_report",
]

#: Fixed seed of the tier-1 convergence gate (chosen for decisive
#: convergence under ``archive`` mode; determinism makes it stable).
GATE_SEED = 0

#: Gate tolerance on ``|mean(x) - a|`` for the final population's best.
GATE_TOL = 5e-3


def gate_setup(
    mode: str = "archive",
    ul_budget: int = 2_000,
    ll_budget: int = 2_000,
) -> tuple[BilinearInstance, CarbonConfig]:
    """The convergence-gate scenario: the standard bilinear instance and
    a quick-scale CARBON config under ``mode`` with a wide opponent
    panel.  One definition, used by the tier-1 gate test, the
    determinism tests, and the mode table — so what CI gates is exactly
    what the table reports."""
    instance = bilinear_instance()
    config = dataclasses.replace(
        CarbonConfig.quick(ul_budget, ll_budget, 24),
        eval_mode=EvalModeConfig(mode=mode, pool_size=32, panel_size=6),
    )
    return instance, config


@dataclass(frozen=True)
class ModeCell:
    """One (algorithm x mode) cell of the comparison table."""

    algorithm: str
    mode: str
    best_gap: float
    best_upper: float
    final_fitness: float
    saddle_distance: float  # NaN for problems without a known optimum
    seesaw: float
    generations: int

    def row(self) -> dict:
        return dataclasses.asdict(self)


def _cell(result, mode: str, instance=None) -> ModeCell:
    """Fold one RunResult into a table cell."""
    series = [p.best_fitness for p in result.history.points]
    final_prices = result.extras.get("final_best_prices")
    if final_prices is None:
        final_prices = result.best_solution.prices
    distance = float("nan")
    if instance is not None and hasattr(instance, "saddle_distance"):
        distance = instance.saddle_distance(final_prices)
    final_fitness = result.extras.get("final_best_fitness")
    if final_fitness is None or not np.isfinite(final_fitness):
        final_fitness = float(series[-1]) if series else float("nan")
    return ModeCell(
        algorithm=result.algorithm,
        mode=mode,
        best_gap=float(result.best_gap),
        best_upper=float(result.best_upper),
        final_fitness=float(final_fitness),
        saddle_distance=distance,
        seesaw=seesaw_index(series),
        generations=len(series),
    )


def run_bilinear_modes(
    modes: tuple[str, ...] = EVAL_MODES,
    seed: int = GATE_SEED,
    executor=None,
) -> list[ModeCell]:
    """CARBON x mode on the ground-truth bilinear toy."""
    from repro.core.carbon import run_carbon

    cells = []
    for mode in modes:
        instance, config = gate_setup(mode=mode)
        result = run_carbon(instance, config=config, seed=seed, executor=executor)
        cells.append(_cell(result, mode, instance=instance))
    return cells


def run_bcpop_modes(
    modes: tuple[str, ...] = EVAL_MODES,
    seed: int = 0,
    budget: int = 600,
    executor=None,
) -> list[ModeCell]:
    """All two-level algorithms x mode on one small BCPOP instance."""
    from repro.bcpop.generator import generate_instance
    from repro.core.carbon import run_carbon
    from repro.core.cobra import run_cobra
    from repro.core.nested import run_nested
    from repro.core.surrogate import run_surrogate

    instance = generate_instance(30, 4, seed=7)
    cells = []
    for mode in modes:
        mode_cfg = EvalModeConfig(mode=mode)
        carbon = dataclasses.replace(
            CarbonConfig.quick(budget, budget, 16), eval_mode=mode_cfg
        )
        cobra = dataclasses.replace(
            CobraConfig.quick(budget, budget, 16), eval_mode=mode_cfg
        )
        upper = UpperLevelConfig(fitness_evaluations=budget, population_size=16)
        runs = (
            run_carbon(instance, config=carbon, seed=seed, executor=executor),
            run_cobra(instance, config=cobra, seed=seed, executor=executor),
            run_nested(
                instance, config=upper, seed=seed,
                executor=executor, eval_mode=mode_cfg,
            ),
            run_surrogate(instance, config=upper, seed=seed, eval_mode=mode_cfg),
        )
        cells.extend(_cell(result, mode) for result in runs)
    return cells


def format_mode_table(cells: list[ModeCell], title: str) -> str:
    """Fixed-width text rendering (the artifact the nightly job uploads)."""
    header = (
        f"{'algorithm':<20} {'mode':<14} {'best_gap':>10} {'best_upper':>11} "
        f"{'final_fit':>10} {'saddle_dist':>11} {'seesaw':>7} {'gens':>5}"
    )
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for c in cells:
        dist = f"{c.saddle_distance:11.4f}" if np.isfinite(c.saddle_distance) else f"{'-':>11}"
        lines.append(
            f"{c.algorithm:<20} {c.mode:<14} {c.best_gap:10.4f} {c.best_upper:11.4f} "
            f"{c.final_fitness:10.4f} {dist} {c.seesaw:7.3f} {c.generations:5d}"
        )
    return "\n".join(lines)


def run_mode_report(
    seed: int = GATE_SEED,
    bcpop_budget: int = 600,
    executor=None,
    modes: tuple[str, ...] = EVAL_MODES,
) -> str:
    """The full two-section report behind ``repro-bench modes``."""
    bilinear_cells = run_bilinear_modes(modes=modes, seed=seed, executor=executor)
    bcpop_cells = run_bcpop_modes(
        modes=modes, seed=seed, budget=bcpop_budget, executor=executor
    )
    sections = [
        format_mode_table(
            bilinear_cells,
            "evaluation modes — CARBON on the maximin bilinear toy "
            "(known optimum: saddle_dist -> 0, final_fit -> 0)",
        ),
        "",
        format_mode_table(
            bcpop_cells,
            "evaluation modes — two-level algorithms on BCPOP 30x4 (paper %-gap)",
        ),
    ]
    return "\n".join(sections)
