"""Experiment harness: regenerates every table and figure of the paper.

* :mod:`repro.experiments.stats`     — summary statistics and rank tests,
* :mod:`repro.experiments.tables`    — Tables I-IV (primitive sets,
  parameters, %-gap comparison, UL objective comparison),
* :mod:`repro.experiments.figures`   — Fig. 1 (inducible region), Fig. 2
  (taxonomy), Fig. 4/5 (convergence curves),
* :mod:`repro.experiments.modes`     — evaluation-mode comparison table
  (archive / hall-of-fame / maxsolve / generalist vs. the historical
  ``current`` behaviour, with a ground-truth bilinear section),
* :mod:`repro.experiments.reporting` — paper-layout ASCII rendering,
* :mod:`repro.experiments.runner`    — the ``repro-bench`` CLI.

Every experiment takes a ``scale`` knob: ``quick`` (seconds, test-suite),
``bench`` (minutes, default for pytest-benchmark), ``paper`` (Table II
budgets — hours, the HPC setting).  EXPERIMENTS.md records the scale used
for every reported number.
"""

from repro.experiments.stats import summarize, rank_test, Summary
from repro.experiments.analysis import (
    ChampionReport,
    RunSetAnalysis,
    analyze_runs,
    champion_report,
)
from repro.experiments.sweeps import BudgetPoint, budget_sweep, crossover_budget
from repro.experiments.tables import (
    ComparisonResult,
    ClassComparison,
    run_comparison,
    table1_rows,
    table2_rows,
)
from repro.experiments.figures import (
    fig1_series,
    fig2_structure,
    convergence_experiment,
)
from repro.experiments.modes import (
    ModeCell,
    format_mode_table,
    gate_setup,
    run_bcpop_modes,
    run_bilinear_modes,
    run_mode_report,
)
from repro.experiments.reporting import (
    format_table1,
    format_table2,
    format_table3,
    format_table4,
    format_convergence,
)

__all__ = [
    "summarize",
    "rank_test",
    "Summary",
    "ChampionReport",
    "RunSetAnalysis",
    "analyze_runs",
    "champion_report",
    "BudgetPoint",
    "budget_sweep",
    "crossover_budget",
    "ComparisonResult",
    "ClassComparison",
    "run_comparison",
    "table1_rows",
    "table2_rows",
    "fig1_series",
    "fig2_structure",
    "convergence_experiment",
    "ModeCell",
    "format_mode_table",
    "gate_setup",
    "run_bcpop_modes",
    "run_bilinear_modes",
    "run_mode_report",
    "format_table1",
    "format_table2",
    "format_table3",
    "format_table4",
    "format_convergence",
]
