"""Budget sweeps: how the paper's claims depend on evaluation budget.

EXPERIMENTS.md documents two budget-dependent effects:

* CARBON's %-gap keeps falling with budget while COBRA's stays inflated —
  so the Table III *ratio* grows toward the paper's ~22x,
* COBRA's revenue overestimation (Table IV) needs exploitation budget to
  build up; below a crossover budget the two algorithms' revenues overlap.

This module measures both as functions of the budget, on one instance
class, with shared instance seeding — the data behind the
"budget note" paragraphs, and a reusable harness for anyone re-running at
paper scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import CarbonConfig, CobraConfig
from repro.experiments.tables import RunTask, execute_task
from repro.parallel.executor import Executor, SerialExecutor

__all__ = ["BudgetPoint", "budget_sweep", "crossover_budget"]


@dataclass(frozen=True)
class BudgetPoint:
    """Both algorithms' aggregates at one budget level."""

    budget: int
    carbon_gap: float
    cobra_gap: float
    carbon_upper: float
    cobra_upper: float
    runs: int

    @property
    def gap_ratio(self) -> float:
        """COBRA gap / CARBON gap (the Table III contrast)."""
        return self.cobra_gap / max(self.carbon_gap, 1e-9)

    @property
    def upper_ratio(self) -> float:
        """COBRA revenue / CARBON revenue (the Table IV overestimation)."""
        return self.cobra_upper / max(self.carbon_upper, 1e-9)


def budget_sweep(
    n_bundles: int,
    n_services: int,
    budgets: list[int],
    runs: int = 2,
    population_size: int = 20,
    instance_seed: int = 0,
    executor: Executor | None = None,
    lp_backend: str = "scipy",
) -> list[BudgetPoint]:
    """Run CARBON and COBRA at each budget level on one instance class.

    ``budgets`` are per-level evaluation counts (UL = LL, as in Table II).
    All runs across all budgets are flattened into one task list, so a
    process-pool executor parallelizes the whole sweep.
    """
    if not budgets:
        raise ValueError("no budgets to sweep")
    if any(b < population_size for b in budgets):
        raise ValueError(
            f"every budget must cover one population ({population_size})"
        )
    executor = executor or SerialExecutor()
    tasks: list[RunTask] = []
    for budget in budgets:
        carbon_cfg = CarbonConfig.quick(budget, budget, population_size)
        cobra_cfg = CobraConfig.quick(budget, budget, population_size)
        for alg in ("CARBON", "COBRA"):
            for r in range(runs):
                tasks.append(
                    RunTask(
                        algorithm=alg,
                        n_bundles=n_bundles,
                        n_services=n_services,
                        instance_seed=instance_seed,
                        run_seed=r,
                        carbon_config=carbon_cfg,
                        cobra_config=cobra_cfg,
                        lp_backend=lp_backend,
                        record_history=False,
                    )
                )
    results = executor.map(execute_task, tasks)

    points: list[BudgetPoint] = []
    idx = 0
    for budget in budgets:
        chunk = results[idx: idx + 2 * runs]
        idx += 2 * runs
        carbon = [r for r in chunk if r.algorithm == "CARBON"]
        cobra = [r for r in chunk if r.algorithm == "COBRA"]
        points.append(
            BudgetPoint(
                budget=budget,
                carbon_gap=float(np.mean([r.best_gap for r in carbon])),
                cobra_gap=float(np.mean([r.best_gap for r in cobra])),
                carbon_upper=float(np.mean([r.best_upper for r in carbon])),
                cobra_upper=float(np.mean([r.best_upper for r in cobra])),
                runs=runs,
            )
        )
    return points


def crossover_budget(
    points: list[BudgetPoint], metric: str = "upper"
) -> int | None:
    """Smallest budget from which the paper's ordering holds *for all
    larger swept budgets*.

    ``metric="upper"``: COBRA revenue > CARBON revenue (Table IV);
    ``metric="gap"``: CARBON gap < COBRA gap (Table III).
    Returns ``None`` when the ordering never stabilizes within the sweep.
    """
    if metric == "upper":
        holds = [p.cobra_upper > p.carbon_upper for p in points]
    elif metric == "gap":
        holds = [p.carbon_gap < p.cobra_gap for p in points]
    else:
        raise ValueError(f"unknown metric {metric!r}")
    ordered = sorted(zip(points, holds), key=lambda t: t[0].budget)
    crossover: int | None = None
    for point, ok in ordered:
        if ok and crossover is None:
            crossover = point.budget
        elif not ok:
            crossover = None
    return crossover
