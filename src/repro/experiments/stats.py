"""Summary statistics for experiment aggregation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["Summary", "summarize", "rank_test"]


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of one metric over independent runs."""

    mean: float
    std: float
    best: float
    worst: float
    n: int

    def __str__(self) -> str:
        return f"{self.mean:.2f} ± {self.std:.2f} (n={self.n})"


def summarize(values: Sequence[float], minimize: bool = True) -> Summary:
    """Aggregate run-level values; non-finite entries are dropped (they mark
    budget-starved runs) but reduce ``n``."""
    arr = np.asarray(list(values), dtype=np.float64)
    finite = arr[np.isfinite(arr)]
    if finite.size == 0:
        return Summary(mean=np.nan, std=np.nan, best=np.nan, worst=np.nan, n=0)
    best = finite.min() if minimize else finite.max()
    worst = finite.max() if minimize else finite.min()
    return Summary(
        mean=float(finite.mean()),
        std=float(finite.std(ddof=1)) if finite.size > 1 else 0.0,
        best=float(best),
        worst=float(worst),
        n=int(finite.size),
    )


def rank_test(a: Sequence[float], b: Sequence[float]) -> tuple[float, float]:
    """Two-sided Wilcoxon rank-sum test; returns ``(statistic, p_value)``.

    Used to state that the CARBON-vs-COBRA differences in Tables III/IV
    are significant at the run level (the paper reports means only; we add
    the test).  Falls back to ``(nan, nan)`` for degenerate inputs.
    """
    from scipy.stats import ranksums

    a = np.asarray(list(a), dtype=np.float64)
    b = np.asarray(list(b), dtype=np.float64)
    a = a[np.isfinite(a)]
    b = b[np.isfinite(b)]
    if a.size < 2 or b.size < 2:
        return float("nan"), float("nan")
    res = ranksums(a, b)
    return float(res.statistic), float(res.pvalue)
