"""Figures 1, 2, 4 and 5 of the paper.

Figures are regenerated as *data series* (plus ASCII sparkline rendering in
:mod:`repro.experiments.reporting`) — the claims the paper draws from them
are numeric and are asserted in the benches:

* **Fig. 1** — the Mersha-Dempe linear example: rational reaction over an
  x grid with the UL-feasibility classification, exposing the inducible
  region's discontinuity at x=6.
* **Fig. 2** — the bi-level metaheuristics taxonomy (networkx DAG).
* **Fig. 4 / Fig. 5** — average convergence curves (UL fitness + %-gap vs
  consumed evaluations) for CARBON / COBRA on one class (paper: n=500,
  m=30, averaged over 30 runs).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bilevel.linear import LinearBilevelExample, mersha_dempe_example
from repro.bilevel.taxonomy import bilevel_taxonomy
from repro.core.config import CarbonConfig, CobraConfig
from repro.core.convergence import resample_history, seesaw_index
from repro.experiments.tables import RunTask, execute_task
from repro.parallel.executor import Executor, SerialExecutor

__all__ = [
    "Fig1Series",
    "fig1_series",
    "fig2_structure",
    "ConvergenceCurves",
    "convergence_experiment",
]


@dataclass
class Fig1Series:
    """Fig. 1's data: reaction curve + feasibility classification."""

    x: np.ndarray
    y_rational: np.ndarray
    upper_feasible: np.ndarray  # bool: rational pair satisfies UL constraints
    upper_objective: np.ndarray

    @property
    def infeasible_xs(self) -> np.ndarray:
        """x values where the rational reaction violates UL constraints —
        the discontinuity band of the inducible region."""
        return self.x[~self.upper_feasible]


def fig1_series(
    example: LinearBilevelExample | None = None,
    n_grid: int = 181,
) -> Fig1Series:
    """Rational-reaction sweep of the Program-3 example."""
    ex = example or mersha_dempe_example()
    xs = np.linspace(ex.x_range[0], ex.x_range[1], n_grid)
    points = ex.inducible_region(xs)
    return Fig1Series(
        x=np.array([p.x for p in points]),
        y_rational=np.array([p.y for p in points]),
        upper_feasible=np.array([p.upper_feasible for p in points], dtype=bool),
        upper_objective=np.array([p.upper_objective for p in points]),
    )


def fig2_structure() -> dict:
    """Fig. 2 as checkable structure: strategy list and per-strategy
    algorithm membership."""
    g = bilevel_taxonomy()
    strategies = sorted(
        n for n, d in g.nodes(data=True) if d.get("kind") == "strategy"
    )
    algorithms = {
        n: d["reference"]
        for n, d in g.nodes(data=True)
        if d.get("kind") == "algorithm"
    }
    return {"graph": g, "strategies": strategies, "algorithms": algorithms}


@dataclass
class ConvergenceCurves:
    """Averaged convergence curves for one algorithm (Fig. 4 or Fig. 5)."""

    algorithm: str
    evaluations: np.ndarray
    fitness: np.ndarray
    gap: np.ndarray
    fitness_seesaw: float
    gap_seesaw: float
    n_runs: int


def convergence_experiment(
    algorithm: str,
    n_bundles: int = 500,
    n_services: int = 30,
    runs: int = 3,
    carbon_config: CarbonConfig | None = None,
    cobra_config: CobraConfig | None = None,
    instance_seed: int = 0,
    executor: Executor | None = None,
    n_points: int = 60,
    lp_backend: str = "scipy",
) -> ConvergenceCurves:
    """Fig. 4 (``algorithm="CARBON"``) / Fig. 5 (``"COBRA"``) experiment.

    Returns run-averaged fitness and gap curves on a common evaluation
    grid, plus per-run-averaged see-saw indices quantifying the smooth-vs-
    see-saw contrast the paper describes.
    """
    if algorithm not in ("CARBON", "COBRA"):
        raise ValueError(f"unknown algorithm {algorithm!r}")
    executor = executor or SerialExecutor()
    carbon_config = carbon_config or CarbonConfig.quick()
    cobra_config = cobra_config or CobraConfig.quick()
    tasks = [
        RunTask(
            algorithm=algorithm,
            n_bundles=n_bundles,
            n_services=n_services,
            instance_seed=instance_seed,
            run_seed=r,
            carbon_config=carbon_config,
            cobra_config=cobra_config,
            lp_backend=lp_backend,
            record_history=True,
        )
        for r in range(runs)
    ]
    results = executor.map(execute_task, tasks)
    histories = [r.history for r in results]
    grid, fitness = resample_history(histories, "fitness", n_points=n_points)
    _, gap = resample_history(histories, "gap", n_points=n_points)
    fit_ss = float(np.mean([seesaw_index(h.series("fitness")[1]) for h in histories]))
    gap_ss = float(np.mean([seesaw_index(h.series("gap")[1]) for h in histories]))
    return ConvergenceCurves(
        algorithm=algorithm,
        evaluations=grid,
        fitness=fitness,
        gap=gap,
        fitness_seesaw=fit_ss,
        gap_seesaw=gap_ss,
        n_runs=runs,
    )
