"""Run-set analytics: what did the evolution actually learn?

Beyond Tables III/IV's two numbers, a reproduction should be able to say
*what the champions look like*.  This module aggregates
:class:`repro.core.results.RunResult` sets into:

* per-algorithm metric summaries (gap/revenue, mean ± std, best),
* champion reports — the evolved heuristics as raw and simplified
  formulas, with size/depth and Table-I primitive usage,
* convergence diagnostics (see-saw indices, end-vs-start deltas).

``repro-bench`` does not expose this directly; it is the library surface
the examples and EXPERIMENTS.md use for qualitative reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.convergence import seesaw_index
from repro.core.results import RunResult
from repro.experiments.stats import Summary, summarize

__all__ = ["ChampionReport", "RunSetAnalysis", "analyze_runs", "champion_report"]


@dataclass(frozen=True)
class ChampionReport:
    """One evolved heuristic, decoded."""

    raw: str
    simplified: str
    size: int
    depth: int
    primitive_usage: dict[str, float]

    def uses_lp_features(self) -> bool:
        """Does the champion consult the relaxation (DUAL/XLP terminals)?"""
        return any(
            name in self.primitive_usage for name in ("DUAL", "XLP")
        )


def champion_report(tree) -> ChampionReport:
    """Decode a champion :class:`repro.gp.tree.SyntaxTree`."""
    from repro.gp.diversity import primitive_usage
    from repro.gp.simplify import simplify_tree

    simplified = simplify_tree(tree)
    return ChampionReport(
        raw=tree.to_infix(),
        simplified=simplified.to_infix(),
        size=tree.size,
        depth=tree.depth,
        primitive_usage=primitive_usage([tree]),
    )


@dataclass
class RunSetAnalysis:
    """Aggregates over one algorithm's independent runs."""

    algorithm: str
    gap: Summary
    upper: Summary
    wall_time: Summary
    fitness_seesaw: float
    gap_seesaw: float
    champions: list[ChampionReport] = field(default_factory=list)

    def report(self) -> str:
        lines = [
            f"{self.algorithm}: gap {self.gap}  revenue {self.upper}",
            f"  wall time {self.wall_time.mean:.1f}s/run; "
            f"see-saw fitness={self.fitness_seesaw:.2f} gap={self.gap_seesaw:.2f}",
        ]
        if self.champions:
            best = min(self.champions, key=lambda c: c.size)
            lines.append(
                f"  smallest champion (size {best.size}, depth {best.depth}, "
                f"LP features: {best.uses_lp_features()}):"
            )
            lines.append(f"    {best.simplified}")
        return "\n".join(lines)


def analyze_runs(results: list[RunResult]) -> RunSetAnalysis:
    """Analyze one algorithm's run set (all results must share the
    ``algorithm`` tag)."""
    if not results:
        raise ValueError("no runs to analyze")
    algorithms = {r.algorithm for r in results}
    if len(algorithms) != 1:
        raise ValueError(f"mixed algorithms in run set: {sorted(algorithms)}")
    seesaws_f, seesaws_g = [], []
    for r in results:
        if len(r.history) >= 2:
            seesaws_f.append(seesaw_index(r.history.series("fitness")[1]))
            seesaws_g.append(seesaw_index(r.history.series("gap")[1]))
    champions = []
    for r in results:
        tree = r.extras.get("champion_tree")
        if tree is not None:
            champions.append(champion_report(tree))
    return RunSetAnalysis(
        algorithm=results[0].algorithm,
        gap=summarize([r.best_gap for r in results], minimize=True),
        upper=summarize([r.best_upper for r in results], minimize=False),
        wall_time=summarize([r.wall_time for r in results], minimize=True),
        fitness_seesaw=float(np.mean(seesaws_f)) if seesaws_f else 0.0,
        gap_seesaw=float(np.mean(seesaws_g)) if seesaws_g else 0.0,
        champions=champions,
    )
