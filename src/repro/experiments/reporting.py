"""Paper-layout ASCII rendering of tables and figures.

Each ``format_*`` function takes the data produced by
:mod:`repro.experiments.tables` / ``figures`` and prints rows in the same
shape as the paper's tables, so paper-vs-measured comparison (recorded in
EXPERIMENTS.md) is a visual diff.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.figures import ConvergenceCurves, Fig1Series
from repro.experiments.tables import ComparisonResult

__all__ = [
    "format_table1",
    "format_table2",
    "format_table3",
    "format_table4",
    "format_fig1",
    "format_convergence",
    "ascii_curve",
]


def _grid(rows: list[tuple], headers: tuple[str, ...]) -> str:
    """Minimal fixed-width table renderer."""
    cells = [tuple(str(v) for v in row) for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    def fmt(row: tuple[str, ...]) -> str:
        return " | ".join(v.ljust(widths[i]) for i, v in enumerate(row))
    sep = "-+-".join("-" * w for w in widths)
    return "\n".join([fmt(headers), sep] + [fmt(r) for r in cells])


def format_table1(rows: list[tuple[str, str]]) -> str:
    """TABLE I: functions and terminal sets."""
    return "TABLE I: Functions and terminal sets\n" + _grid(
        rows, ("Name", "Description")
    )


def format_table2(rows: list[tuple[str, str, str]]) -> str:
    """TABLE II: parameters of both algorithms."""
    return "TABLE II: Parameters\n" + _grid(rows, ("Parameter", "CARBON", "COBRA"))


def _comparison_table(
    title: str,
    rows: list[tuple[int, int, float, float]],
    value_fmt: str,
) -> str:
    body = [
        (n, m, format(c, value_fmt), format(o, value_fmt)) for n, m, c, o in rows
    ]
    avg_c = float(np.mean([r[2] for r in rows]))
    avg_o = float(np.mean([r[3] for r in rows]))
    body.append(("Average", "", format(avg_c, value_fmt), format(avg_o, value_fmt)))
    return title + "\n" + _grid(
        body, ("# Variables", "# Constraints", "CARBON", "COBRA")
    )


def format_table3(result: ComparisonResult) -> str:
    """TABLE III: %-gap to LL optimality."""
    return _comparison_table(
        "TABLE III: %-gap to LL optimality", result.table3_rows(), ".2f"
    )


def format_table4(result: ComparisonResult) -> str:
    """TABLE IV: UL objective values."""
    return _comparison_table(
        "TABLE IV: UL objective values", result.table4_rows(), ".2f"
    )


def ascii_curve(
    xs: np.ndarray, ys: np.ndarray, height: int = 12, width: int = 60, label: str = ""
) -> str:
    """Sparkline-style plot for terminal output."""
    ys = np.asarray(ys, dtype=np.float64)
    xs = np.asarray(xs, dtype=np.float64)
    finite = np.isfinite(ys)
    if finite.sum() < 2:
        return f"{label}: <insufficient data>"
    # Resample onto the character grid.
    cols = np.linspace(xs[finite].min(), xs[finite].max(), width)
    vals = np.interp(cols, xs[finite], ys[finite])
    lo, hi = vals.min(), vals.max()
    span = hi - lo if hi > lo else 1.0
    rows = np.clip(((vals - lo) / span * (height - 1)).round().astype(int), 0, height - 1)
    canvas = [[" "] * width for _ in range(height)]
    for c, r in enumerate(rows):
        canvas[height - 1 - r][c] = "*"
    lines = ["".join(row) for row in canvas]
    header = f"{label}  [{lo:.2f} .. {hi:.2f}]"
    return "\n".join([header] + lines)


def format_fig1(series: Fig1Series) -> str:
    """Fig. 1: rational reaction with the UL-infeasible band marked."""
    lines = [
        "Fig. 1: inducible region of the Mersha-Dempe example",
        ascii_curve(series.x, series.y_rational, label="rational reaction y(x)"),
    ]
    if series.infeasible_xs.size:
        lines.append(
            "UL-infeasible rational reactions for x in "
            f"[{series.infeasible_xs.min():.2f}, {series.infeasible_xs.max():.2f}] "
            f"({series.infeasible_xs.size} grid points) -> discontinuous IR"
        )
    else:
        lines.append("no UL-infeasible band found (unexpected for this example)")
    return "\n".join(lines)


def format_convergence(curves: ConvergenceCurves) -> str:
    """Figs. 4/5: UL-fitness and gap curves plus the see-saw indices."""
    fig = "Fig. 4" if curves.algorithm == "CARBON" else "Fig. 5"
    return "\n".join(
        [
            f"{fig}: convergence curves for {curves.algorithm} "
            f"(avg of {curves.n_runs} runs)",
            ascii_curve(curves.evaluations, curves.fitness, label="UL fitness"),
            ascii_curve(curves.evaluations, curves.gap, label="%-gap"),
            f"see-saw index: fitness={curves.fitness_seesaw:.3f} "
            f"gap={curves.gap_seesaw:.3f} (0 = steady, 1 = pure oscillation)",
        ]
    )
