"""Tables I-IV of the paper.

Tables I and II are configuration tables — regenerated directly from the
primitive sets and config dataclasses so the reported values can never
drift from the implementation.

Tables III (%-gap) and IV (UL objective) come from the same experiment:
``runs`` independent seeded executions of CARBON and COBRA per instance
class, extraction per §V-B (best gap from the lower archive, best UL
fitness from the upper archive), averaged over runs.  The experiment is
embarrassingly parallel over (class × algorithm × seed) and is routed
through the :mod:`repro.parallel` executor.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bcpop.generator import PAPER_CLASSES, generate_instance
from repro.core.config import CarbonConfig, CobraConfig
from repro.core.results import RunResult
from repro.experiments.stats import Summary, rank_test, summarize
from repro.parallel.executor import Executor, SerialExecutor

__all__ = [
    "table1_rows",
    "table2_rows",
    "RunTask",
    "checkpoint_path",
    "ClassComparison",
    "ComparisonResult",
    "run_comparison",
]


def table1_rows() -> list[tuple[str, str]]:
    """Table I: the GP operator and terminal sets actually in use."""
    from repro.gp.primitives import paper_primitive_set

    return paper_primitive_set().describe()


def table2_rows(
    carbon: CarbonConfig | None = None, cobra: CobraConfig | None = None
) -> list[tuple[str, str, str]]:
    """Table II: (parameter, CARBON value, COBRA value) rows."""
    ca = carbon or CarbonConfig.paper()
    co = cobra or CobraConfig.paper()
    mut_cobra = (
        "1/#variables" if co.ll_mutation_probability is None
        else f"{co.ll_mutation_probability}"
    )
    return [
        ("UL encoding", "continuous values", "continuous values"),
        ("UL population size", str(ca.upper.population_size), str(co.upper.population_size)),
        ("UL archive size", str(ca.upper.archive_size), str(co.upper.archive_size)),
        ("UL fitness evaluations", str(ca.upper.fitness_evaluations), str(co.upper.fitness_evaluations)),
        ("UL selection", "binary tournament", "binary tournament"),
        ("UL crossover operator", "simulated binary", "simulated binary"),
        ("UL crossover probability", str(ca.upper.crossover_probability), str(co.upper.crossover_probability)),
        ("UL mutation operator", "polynomial", "polynomial"),
        ("UL mutation probability", str(ca.upper.mutation_probability), str(co.upper.mutation_probability)),
        ("LL encoding", "syntax trees", "binary values"),
        ("LL fitness evaluations", str(ca.ll_fitness_evaluations), str(co.ll_fitness_evaluations)),
        ("LL archive size", str(ca.ll_archive_size), str(co.ll_archive_size)),
        ("LL selection", f"tournament (k={ca.ll_tournament_size})", "binary tournament"),
        ("LL crossover operator", "(GP) one-point", "(GA) two-point"),
        ("LL crossover probability", str(ca.ll_crossover_probability), str(co.ll_crossover_probability)),
        ("LL mutation operator", "(GP) uniform", "(GA) swap"),
        ("LL mutation probability", str(ca.ll_mutation_probability), mut_cobra),
        ("LL reproduction probability", str(ca.ll_reproduction_probability), "-"),
    ]


@dataclass(frozen=True)
class RunTask:
    """Picklable descriptor of one run — workers regenerate the instance
    from the addressed seed instead of shipping matrices over IPC.

    Engine observability rides along as plain strings/ints so tasks stay
    picklable: ``log_jsonl`` appends one flat record per generation to a
    shared JSONL file (atomic appends, safe across worker processes),
    ``checkpoint_dir`` saves a per-run checkpoint every
    ``checkpoint_every`` generations (retaining the last
    ``checkpoint_keep`` rotated copies), and ``resume`` restarts each
    run from the newest *valid* checkpoint when one exists — corrupt or
    truncated files in the retention chain are skipped.
    """

    algorithm: str  # "CARBON" | "COBRA"
    n_bundles: int
    n_services: int
    instance_seed: int
    run_seed: int
    carbon_config: CarbonConfig
    cobra_config: CobraConfig
    lp_backend: str = "scipy"
    record_history: bool = True
    log_jsonl: str | None = None
    checkpoint_dir: str | None = None
    checkpoint_every: int = 10
    checkpoint_keep: int = 1
    resume: bool = False


def checkpoint_path(checkpoint_dir: str, task: RunTask) -> str:
    """Stable per-run checkpoint filename inside ``checkpoint_dir``."""
    import os

    name = (
        f"{task.algorithm.lower()}-n{task.n_bundles}-m{task.n_services}"
        f"-seed{task.run_seed}.json"
    )
    return os.path.join(checkpoint_dir, name)


def _task_observers(task: RunTask) -> tuple[list, dict | None]:
    """(observers, resume_state) for one task's engine run."""
    from repro.core.checkpoint import Checkpointer, load_latest_checkpoint
    from repro.core.events import JsonlRunLogger

    observers: list = []
    resume_state: dict | None = None
    if task.log_jsonl:
        observers.append(JsonlRunLogger(task.log_jsonl))
    if task.checkpoint_dir:
        path = checkpoint_path(task.checkpoint_dir, task)
        observers.append(
            Checkpointer(path, every=task.checkpoint_every, keep=task.checkpoint_keep)
        )
        if task.resume:
            # Newest valid checkpoint in the retention chain; a damaged
            # newest file falls back instead of refusing to resume.
            document = load_latest_checkpoint(path)
            if document is not None:
                resume_state = document["state"]
    return observers, resume_state


def execute_task(task: RunTask) -> RunResult:
    """Top-level worker entry point (picklable)."""
    from repro.core.carbon import run_carbon
    from repro.core.cobra import run_cobra
    from repro.parallel.rng import stream_for

    instance = generate_instance(
        task.n_bundles,
        task.n_services,
        seed=stream_for(task.instance_seed, "bcpop", task.n_bundles, task.n_services, 0),
        name=f"bcpop-n{task.n_bundles}-m{task.n_services}-s0",
    )
    observers, resume_state = _task_observers(task)
    if task.algorithm == "CARBON":
        result = run_carbon(
            instance, config=task.carbon_config,
            seed=task.run_seed, lp_backend=task.lp_backend,
            observers=observers, resume_state=resume_state,
        )
    elif task.algorithm == "COBRA":
        result = run_cobra(
            instance, config=task.cobra_config,
            seed=task.run_seed, lp_backend=task.lp_backend,
            observers=observers, resume_state=resume_state,
        )
    else:
        raise ValueError(f"unknown algorithm {task.algorithm!r}")
    if not task.record_history:
        result.history.points.clear()
    return result


@dataclass
class ClassComparison:
    """Both algorithms' aggregates on one instance class."""

    n_bundles: int
    n_services: int
    carbon_gap: Summary
    cobra_gap: Summary
    carbon_upper: Summary
    cobra_upper: Summary
    gap_pvalue: float
    upper_pvalue: float
    carbon_runs: list[RunResult] = field(default_factory=list)
    cobra_runs: list[RunResult] = field(default_factory=list)


@dataclass
class ComparisonResult:
    """The full Table III + IV experiment."""

    classes: list[ClassComparison]
    runs: int
    carbon_config: CarbonConfig
    cobra_config: CobraConfig

    def table3_rows(self) -> list[tuple[int, int, float, float]]:
        """(n, m, CARBON mean %-gap, COBRA mean %-gap) + average row."""
        rows = [
            (c.n_bundles, c.n_services, c.carbon_gap.mean, c.cobra_gap.mean)
            for c in self.classes
        ]
        return rows

    def table4_rows(self) -> list[tuple[int, int, float, float]]:
        """(n, m, CARBON mean UL objective, COBRA mean UL objective)."""
        return [
            (c.n_bundles, c.n_services, c.carbon_upper.mean, c.cobra_upper.mean)
            for c in self.classes
        ]

    def averages(self) -> dict[str, float]:
        t3 = self.table3_rows()
        t4 = self.table4_rows()
        return {
            "carbon_gap": float(np.mean([r[2] for r in t3])),
            "cobra_gap": float(np.mean([r[3] for r in t3])),
            "carbon_upper": float(np.mean([r[2] for r in t4])),
            "cobra_upper": float(np.mean([r[3] for r in t4])),
        }

    def shape_claims(self) -> dict[str, bool]:
        """The DESIGN.md §4 shape claims this experiment can check."""
        t3 = self.table3_rows()
        t4 = self.table4_rows()
        avg = self.averages()
        return {
            "carbon_gap_below_cobra_everywhere": all(r[2] < r[3] for r in t3),
            "carbon_gap_below_cobra_on_average": avg["carbon_gap"] < avg["cobra_gap"],
            "cobra_upper_exceeds_carbon_everywhere": all(r[3] > r[2] for r in t4),
            "cobra_upper_exceeds_carbon_on_average": avg["cobra_upper"] > avg["carbon_upper"],
        }


def run_comparison(
    classes: list[tuple[int, int]] | None = None,
    runs: int = 3,
    carbon_config: CarbonConfig | None = None,
    cobra_config: CobraConfig | None = None,
    instance_seed: int = 0,
    executor: Executor | None = None,
    lp_backend: str = "scipy",
    keep_histories: bool = False,
    log_jsonl: str | None = None,
    checkpoint_dir: str | None = None,
    checkpoint_every: int = 10,
    checkpoint_keep: int = 1,
    resume: bool = False,
) -> ComparisonResult:
    """Run the Table III/IV experiment.

    Parameters
    ----------
    classes:
        Instance classes ``(n, m)``; defaults to the paper's nine.
    runs:
        Independent runs per algorithm per class (paper: 30).
    carbon_config / cobra_config:
        Budgets; default to quick scale (use ``.paper()`` for Table II).
    instance_seed:
        Seed addressing the generated instances.
    executor:
        Parallel executor; serial by default.
    keep_histories:
        Retain convergence histories (memory-heavy at paper scale).
    log_jsonl:
        Append per-generation/run JSONL records here (all runs share the
        file; appends are atomic).
    checkpoint_dir:
        Save per-run checkpoints here (created if missing) every
        ``checkpoint_every`` generations, keeping the last
        ``checkpoint_keep`` rotated copies per run.
    resume:
        Resume each run from its newest valid checkpoint when one
        exists (damaged files in the retention chain are skipped) — a
        resumed experiment's numbers are bit-identical to an
        uninterrupted one.
    """
    import os

    classes = list(classes) if classes is not None else list(PAPER_CLASSES)
    carbon_config = carbon_config or CarbonConfig.quick()
    cobra_config = cobra_config or CobraConfig.quick()
    executor = executor or SerialExecutor()
    if checkpoint_dir:
        os.makedirs(checkpoint_dir, exist_ok=True)

    tasks: list[RunTask] = []
    for n, m in classes:
        for alg in ("CARBON", "COBRA"):
            for r in range(runs):
                tasks.append(
                    RunTask(
                        algorithm=alg,
                        n_bundles=n,
                        n_services=m,
                        instance_seed=instance_seed,
                        run_seed=r,
                        carbon_config=carbon_config,
                        cobra_config=cobra_config,
                        lp_backend=lp_backend,
                        record_history=keep_histories,
                        log_jsonl=log_jsonl,
                        checkpoint_dir=checkpoint_dir,
                        checkpoint_every=checkpoint_every,
                        checkpoint_keep=checkpoint_keep,
                        resume=resume,
                    )
                )
    results = executor.map(execute_task, tasks)

    by_class: dict[tuple[int, int], dict[str, list[RunResult]]] = {
        (n, m): {"CARBON": [], "COBRA": []} for n, m in classes
    }
    for task, result in zip(tasks, results):
        by_class[(task.n_bundles, task.n_services)][task.algorithm].append(result)

    out: list[ClassComparison] = []
    for n, m in classes:
        carbon_runs = by_class[(n, m)]["CARBON"]
        cobra_runs = by_class[(n, m)]["COBRA"]
        c_gaps = [r.best_gap for r in carbon_runs]
        o_gaps = [r.best_gap for r in cobra_runs]
        c_up = [r.best_upper for r in carbon_runs]
        o_up = [r.best_upper for r in cobra_runs]
        out.append(
            ClassComparison(
                n_bundles=n,
                n_services=m,
                carbon_gap=summarize(c_gaps, minimize=True),
                cobra_gap=summarize(o_gaps, minimize=True),
                carbon_upper=summarize(c_up, minimize=False),
                cobra_upper=summarize(o_up, minimize=False),
                gap_pvalue=rank_test(c_gaps, o_gaps)[1],
                upper_pvalue=rank_test(c_up, o_up)[1],
                carbon_runs=carbon_runs if keep_histories else [],
                cobra_runs=cobra_runs if keep_histories else [],
            )
        )
    return ComparisonResult(
        classes=out, runs=runs,
        carbon_config=carbon_config, cobra_config=cobra_config,
    )
