"""``repro-bench`` — the experiment CLI.

Examples
--------
::

    repro-bench table3 --scale quick --runs 3 --workers 4
    repro-bench fig4 --scale bench
    repro-bench fig1
    repro-bench all --scale quick --out results.txt
    repro-bench table3 --scale paper          # Table II budgets (hours)

``--profile`` wraps the experiment in cProfile and appends the top hot
spots to the report (the HPC guides' measure-first rule).
"""

from __future__ import annotations

import argparse
import cProfile
import io
import pstats
import sys

from repro.core.config import CarbonConfig, CobraConfig
from repro.parallel.executor import make_executor

__all__ = ["main", "build_parser", "configs_for_scale"]

#: (carbon, cobra) budget presets.
SCALES = ("quick", "bench", "paper")


def configs_for_scale(scale: str) -> tuple[CarbonConfig, CobraConfig]:
    """Map a scale name to algorithm configs (EXPERIMENTS.md documents
    which scale produced each recorded number)."""
    if scale == "quick":
        return CarbonConfig.quick(1_000, 1_000, 20), CobraConfig.quick(1_000, 1_000, 20)
    if scale == "bench":
        return CarbonConfig.quick(4_000, 4_000, 40), CobraConfig.quick(4_000, 4_000, 40)
    if scale == "paper":
        return CarbonConfig.paper(), CobraConfig.paper()
    raise ValueError(f"unknown scale {scale!r}; expected one of {SCALES}")


def _cmd_table1(args: argparse.Namespace) -> str:
    from repro.experiments.reporting import format_table1
    from repro.experiments.tables import table1_rows

    return format_table1(table1_rows())


def _cmd_table2(args: argparse.Namespace) -> str:
    from repro.experiments.reporting import format_table2
    from repro.experiments.tables import table2_rows

    carbon, cobra = configs_for_scale(args.scale)
    return format_table2(table2_rows(carbon, cobra))


def _comparison(args: argparse.Namespace):
    from repro.experiments.tables import run_comparison

    carbon, cobra = configs_for_scale(args.scale)
    if getattr(args, "rng_audit", False):
        from dataclasses import replace

        from repro.core.config import ExecutionConfig

        audited = ExecutionConfig(rng_audit=True)
        carbon = replace(carbon, execution=audited)
        cobra = replace(cobra, execution=audited)
    if getattr(args, "eval_mode", None):
        from dataclasses import replace

        from repro.core.config import EvalModeConfig

        mode = EvalModeConfig(mode=args.eval_mode)
        carbon = replace(carbon, eval_mode=mode)
        cobra = replace(cobra, eval_mode=mode)
    classes = None
    if args.classes:
        classes = [tuple(int(v) for v in c.split("x")) for c in args.classes]
    with make_executor(
        "processes" if args.workers > 1 else "serial",
        workers=args.workers,
        task_timeout=args.task_timeout,
    ) as executor:
        return run_comparison(
            classes=classes,
            runs=args.runs,
            carbon_config=carbon,
            cobra_config=cobra,
            instance_seed=args.seed,
            executor=executor,
            log_jsonl=args.log_jsonl,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
            checkpoint_keep=args.checkpoint_keep,
            resume=args.resume,
        )


def _cmd_table3(args: argparse.Namespace) -> str:
    from repro.experiments.reporting import format_table3

    result = _comparison(args)
    claims = "\n".join(
        f"  {name}: {'PASS' if ok else 'FAIL'}"
        for name, ok in result.shape_claims().items()
    )
    return format_table3(result) + "\nshape claims:\n" + claims


def _cmd_table4(args: argparse.Namespace) -> str:
    from repro.experiments.reporting import format_table4

    result = _comparison(args)
    claims = "\n".join(
        f"  {name}: {'PASS' if ok else 'FAIL'}"
        for name, ok in result.shape_claims().items()
    )
    return format_table4(result) + "\nshape claims:\n" + claims


def _cmd_fig1(args: argparse.Namespace) -> str:
    from repro.experiments.figures import fig1_series
    from repro.experiments.reporting import format_fig1

    return format_fig1(fig1_series())


def _cmd_fig2(args: argparse.Namespace) -> str:
    from repro.bilevel.taxonomy import render_taxonomy

    return "Fig. 2: extended bi-level metaheuristics taxonomy\n" + render_taxonomy()


def _convergence(args: argparse.Namespace, algorithm: str) -> str:
    from repro.experiments.figures import convergence_experiment
    from repro.experiments.reporting import format_convergence

    carbon, cobra = configs_for_scale(args.scale)
    n, m = (500, 30) if args.scale == "paper" else (args.fig_n, args.fig_m)
    with make_executor(
        "processes" if args.workers > 1 else "serial", workers=args.workers
    ) as executor:
        curves = convergence_experiment(
            algorithm,
            n_bundles=n,
            n_services=m,
            runs=args.runs,
            carbon_config=carbon,
            cobra_config=cobra,
            instance_seed=args.seed,
            executor=executor,
        )
    return format_convergence(curves)


def _cmd_fig4(args: argparse.Namespace) -> str:
    return _convergence(args, "CARBON")


def _cmd_fig5(args: argparse.Namespace) -> str:
    return _convergence(args, "COBRA")


def _cmd_extended(args: argparse.Namespace) -> str:
    """CARBON vs COBRA vs nested-sequential on one class (taxonomy study)."""
    import numpy as np

    from repro.bcpop.generator import generate_instance
    from repro.core.carbon import run_carbon
    from repro.core.cobra import run_cobra
    from repro.core.config import UpperLevelConfig
    from repro.core.nested import run_nested
    from repro.parallel.rng import stream_for

    carbon_cfg, cobra_cfg = configs_for_scale(args.scale)
    n, m = args.fig_n, args.fig_m
    instance = generate_instance(
        n, m, seed=stream_for(args.seed, "bcpop", n, m, 0), name=f"ext-n{n}-m{m}"
    )
    nested_cfg = UpperLevelConfig(
        population_size=carbon_cfg.upper.population_size,
        archive_size=carbon_cfg.upper.archive_size,
        fitness_evaluations=carbon_cfg.upper.fitness_evaluations,
    )
    from repro.core.surrogate import run_surrogate

    lines = [f"Extended comparison on n={n}, m={m} ({args.runs} runs):",
             f"  {'algorithm':<20} {'best %-gap':>11} {'best revenue':>13}"]
    for name, runner in (
        ("CARBON", lambda s: run_carbon(instance, carbon_cfg, seed=s)),
        ("COBRA", lambda s: run_cobra(instance, cobra_cfg, seed=s)),
        ("NESTED[chvatal]", lambda s: run_nested(instance, nested_cfg, seed=s)),
        ("SURROGATE[chvatal]", lambda s: run_surrogate(instance, nested_cfg, seed=s)),
    ):
        results = [runner(s) for s in range(args.runs)]
        lines.append(
            f"  {name:<20} {np.mean([r.best_gap for r in results]):>11.2f}"
            f" {np.mean([r.best_upper for r in results]):>13.2f}"
        )
    return "\n".join(lines)


def _cmd_trilevel(args: argparse.Namespace) -> str:
    """Future-work study (§VI): CARBON one nesting level deeper."""
    from repro.bcpop.generator import generate_instance
    from repro.parallel.rng import stream_for
    from repro.trilevel import TriLevelInstance, run_trilevel_carbon

    carbon_cfg, _ = configs_for_scale(args.scale)
    n, m = args.fig_n, args.fig_m
    tri = TriLevelInstance.from_bcpop(
        generate_instance(n, m, seed=stream_for(args.seed, "bcpop", n, m, 0))
    )
    lines = [f"Tri-level CARBON on n={n}, m={m} (wholesale cap "
             f"{tri.wholesale_cap:.1f}, retail cap {tri.retail_cap:.1f}):"]
    for run_seed in range(args.runs):
        result = run_trilevel_carbon(tri, carbon_cfg, seed=run_seed)
        lines.append(
            f"  seed {run_seed}: provider revenue {result.best_upper:9.2f}  "
            f"gap {result.best_gap:6.2f}%  "
            f"nesting multiplier {result.extras['nesting_multiplier']:5.1f} "
            f"(L1 {result.ul_evaluations_used}, L3 {result.ll_evaluations_used})"
        )
    lines.append(
        "  -> every extra level multiplies the evaluation bill; see "
        "benchmarks/bench_trilevel.py for the sweep."
    )
    return "\n".join(lines)


def _cmd_kernel(args: argparse.Namespace) -> str:
    """Run the compiled-kernel benchmark and write ``BENCH_kernel.json``.

    Compares interpreted vs compiled GP evaluation (bit-identity is
    asserted inside the sweeps) and cold vs warm-started LP relaxation
    sweeps; see ``benchmarks/bench_kernel.py`` for the workload.
    """
    import os
    import pathlib

    os.environ["REPRO_BENCH_SCALE"] = args.scale
    root = pathlib.Path(__file__).resolve().parents[3]
    if str(root) not in sys.path:
        sys.path.insert(0, str(root))
    from benchmarks.bench_kernel import _SETTINGS, _write_record, run_kernel_benchmark

    record = run_kernel_benchmark(*_SETTINGS[args.scale], seed=args.seed)
    path = _write_record(record)
    score = record["score_sweep"]
    e2e = record["end_to_end"]
    warm = record["lp_warm_start"]
    lines = [
        f"kernel benchmark ({args.scale}, {record['instance']}, "
        f"population {record['population']}):",
        f"  score sweep : {score['speedup']:.2f}x "
        f"({score['interpreted_s']:.3f}s -> {score['compiled_s']:.3f}s, "
        f"{score['scores_evaluated']} scores)",
        f"  end to end  : {e2e['speedup']:.2f}x "
        f"({e2e['interpreted_s']:.3f}s -> {e2e['compiled_s']:.3f}s, "
        f"{e2e['evaluations']} evaluations)",
        f"  LP warm-start: {warm['iterations_saved']} simplex iterations "
        f"saved ({warm['iterations_saved_pct']:.1f}%), "
        f"accept rate {warm['warm_stats']['accept_rate']:.2f}",
        f"  wrote {path}",
    ]
    return "\n".join(lines)


def _cmd_serve(args: argparse.Namespace) -> str:
    """Run the heuristic solve service until a ``shutdown`` op arrives.

    ``train → publish → serve``: point ``--registry`` at the directory a
    :class:`~repro.serve.registry.PublishBestHeuristic` observer filled,
    register instance files, and clients can solve against any published
    heuristic (see DESIGN.md §10 for the wire protocol).

    ``--shards N`` (N >= 1) serves through the fault-tolerant
    :class:`~repro.serve.router.SolveRouter` instead of a single
    in-process server: N supervised shard processes, consistent-hash
    routing, health-checked respawn, circuit breakers and brownout
    (DESIGN.md §14).  The wire protocol is identical either way.
    """
    import asyncio
    import contextlib
    import signal

    from repro.bcpop.io import load_bcpop
    from repro.serve import HeuristicRegistry, SolveRouter, SolveServer

    registry = HeuristicRegistry(args.registry) if args.registry else None
    instances = [load_bcpop(path) for path in (args.instances or [])]
    service: SolveServer | SolveRouter
    if args.shards > 0:
        service = SolveRouter(
            instances=instances,
            n_shards=args.shards,
            registry_root=args.registry,
            host=args.host,
            port=args.port,
            max_batch_size=args.max_batch,
            max_wait_us=args.max_wait_us,
            queue_depth=args.queue_depth,
            metrics_path=args.metrics_jsonl,
            shard_request_timeout=args.request_timeout,
        )
    else:
        executor = make_executor(
            "processes" if args.workers > 1 else "serial",
            workers=args.workers,
            task_timeout=args.task_timeout,
        )
        service = SolveServer(
            registry=registry,
            instances=instances,
            host=args.host,
            port=args.port,
            executor=executor,
            max_batch_size=args.max_batch,
            max_wait_us=args.max_wait_us,
            queue_depth=args.queue_depth,
            metrics_path=args.metrics_jsonl,
            request_timeout=args.request_timeout,
        )

    async def _run() -> None:
        await service.start()
        # SIGTERM (systemd/k8s stop) drains cleanly: stop accepting,
        # answer everything queued, dump metrics, close the executor —
        # same path as the shutdown op, not an abrupt exit.
        loop = asyncio.get_running_loop()
        # RuntimeError: add_signal_handler only works on the main thread
        # (asyncio wraps the ValueError) — embedded runs (tests driving
        # the CLI from a thread) fall back to KeyboardInterrupt handling.
        with contextlib.suppress(NotImplementedError, ValueError, RuntimeError):
            loop.add_signal_handler(signal.SIGTERM, service.request_stop)
            loop.add_signal_handler(signal.SIGINT, service.request_stop)
        shape = (
            f"{args.shards}-shard router" if args.shards > 0 else "single server"
        )
        print(
            f"serving on {service.host}:{service.port} ({shape}, "
            f"{len(instances)} instances, "
            f"registry={'yes' if registry else 'no'}, "
            f"batch<= {args.max_batch}, wait {args.max_wait_us}us, "
            f"queue {args.queue_depth})",
            flush=True,
        )
        await service.serve_until_stopped()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    snapshot = service.metrics.snapshot()
    summary = (
        f"stopped: {snapshot['requests']} requests, "
        f"{snapshot['solved']} solved, {snapshot['overloads']} overloads"
    )
    if args.shards > 0:
        return (
            f"router {summary}, {snapshot['failovers']} failovers, "
            f"{snapshot['respawns']} respawns"
        )
    return (
        f"server {summary}, "
        f"{snapshot['batches']} batches (max size {snapshot['max_batch_size']})"
    )


def _cmd_solve(args: argparse.Namespace) -> str:
    """One client solve round trip against a running server."""
    import json as _json

    from repro.bcpop.io import load_bcpop
    from repro.parallel.rng import stream_for
    from repro.serve import ServeClient

    if not args.heuristic:
        raise SystemExit("solve requires --heuristic (ref, or family:<family>)")
    instance = load_bcpop(args.instance_file) if args.instance_file else None
    with ServeClient(args.host, args.port) as client:
        if args.prices:
            prices = [float(v) for v in args.prices.split(",")]
        elif instance is not None:
            import numpy as np

            rng = stream_for(args.seed, "serve-solve")
            low, high = instance.price_bounds
            prices = rng.uniform(low, high).tolist()
        else:
            raise SystemExit("solve requires --prices when no --instance-file is given")
        response = client.solve(prices, args.heuristic, instance=instance)
    return _json.dumps(response, indent=1)


def _cmd_modes(args: argparse.Namespace) -> str:
    """Evaluation-mode comparison (Nolfi-style algorithm x mode table).

    Section one runs CARBON on the maximin bilinear toy, where the
    optimum is known analytically; section two runs all four two-level
    algorithms on a small BCPOP instance.  ``--eval-mode`` restricts the
    sweep to one mode; the nightly CI job uploads ``--out`` as an
    artifact.
    """
    from repro.experiments.modes import run_mode_report

    modes = None
    if getattr(args, "eval_mode", None):
        modes = (args.eval_mode,)
    with make_executor(
        "processes" if args.workers > 1 else "serial",
        workers=args.workers,
        task_timeout=args.task_timeout,
    ) as executor:
        kwargs = {} if modes is None else {"modes": modes}
        return run_mode_report(seed=args.seed, executor=executor, **kwargs)


def _cmd_instances(args: argparse.Namespace) -> str:
    """Export the paper's 9 instance classes to disk (JSON + mknap)."""
    import pathlib

    from repro.bcpop.generator import paper_instance_classes
    from repro.bcpop.io import export_mknap, save_bcpop

    out_dir = pathlib.Path(args.out or "instances")
    out_dir.mkdir(parents=True, exist_ok=True)
    suite = paper_instance_classes(seed=args.seed, instances_per_class=1)
    lines = [f"exported instance suite (seed {args.seed}) to {out_dir}/:"]
    for (n, m), instances in sorted(suite.items()):
        for inst in instances:
            save_bcpop(inst, out_dir / f"{inst.name}.json")
            export_mknap(inst, out_dir / f"{inst.name}.mknap")
            lines.append(
                f"  {inst.name}: n={n} m={m} L={inst.n_own} "
                f"cap={inst.price_cap:.1f}"
            )
    return "\n".join(lines)


_COMMANDS = {
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "table3": _cmd_table3,
    "table4": _cmd_table4,
    "fig1": _cmd_fig1,
    "fig2": _cmd_fig2,
    "fig4": _cmd_fig4,
    "fig5": _cmd_fig5,
    "extended": _cmd_extended,
    "modes": _cmd_modes,
    "trilevel": _cmd_trilevel,
    "kernel": _cmd_kernel,
    "instances": _cmd_instances,
    "serve": _cmd_serve,
    "solve": _cmd_solve,
}

#: Commands that are not report generators (blocking server / file
#: exporters / one-shot client calls) — excluded from ``all``.
_NON_REPORT = {"instances", "serve", "solve", "kernel"}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the tables and figures of the CARBON paper.",
    )
    parser.add_argument(
        "experiment", choices=sorted(_COMMANDS) + ["all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument("--scale", choices=SCALES, default="quick")
    parser.add_argument("--runs", type=int, default=3, help="independent runs (paper: 30)")
    parser.add_argument("--seed", type=int, default=0, help="instance seed")
    parser.add_argument("--workers", type=int, default=1, help=">1 enables a process pool")
    parser.add_argument("--task-timeout", dest="task_timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-task deadline for worker processes; enables the "
                             "supervised executor (crash/hang recovery, bounded "
                             "retries, poison-task quarantine)")
    parser.add_argument(
        "--classes", nargs="*", metavar="NxM",
        help="restrict to instance classes, e.g. 100x5 250x10",
    )
    parser.add_argument("--fig-n", type=int, default=100, dest="fig_n",
                        help="bundle count for fig4/fig5 at non-paper scale")
    parser.add_argument("--fig-m", type=int, default=10, dest="fig_m",
                        help="service count for fig4/fig5 at non-paper scale")
    parser.add_argument("--out", help="also write the report to this file")
    parser.add_argument("--profile", action="store_true",
                        help="cProfile the experiment and append hot spots")
    from repro.core.config import EVAL_MODES

    parser.add_argument(
        "--eval-mode", dest="eval_mode", choices=EVAL_MODES, default=None,
        help="competitive evaluation mode for table3/table4/modes "
             "(default: each config's own; 'current' is the historical "
             "behaviour, 'archive' grades against an opponent archive)",
    )
    engine = parser.add_argument_group(
        "engine observability (table3/table4 experiments)"
    )
    engine.add_argument("--rng-audit", dest="rng_audit", action="store_true",
                        help="wrap each algorithm's RNG in the draw-trace "
                             "sanitizer; draw counts per component/generation "
                             "land in extras.rng_audit (results unchanged)")
    engine.add_argument("--log-jsonl", dest="log_jsonl", metavar="FILE",
                        help="append per-generation JSONL run records to FILE")
    engine.add_argument("--checkpoint-dir", dest="checkpoint_dir", metavar="DIR",
                        help="save per-run checkpoints under DIR")
    engine.add_argument("--checkpoint-every", dest="checkpoint_every", type=int,
                        default=10, metavar="N",
                        help="checkpoint every N generations (default 10)")
    engine.add_argument("--checkpoint-keep", dest="checkpoint_keep", type=int,
                        default=1, metavar="N",
                        help="retain the last N rotated checkpoints per run; "
                             "resume skips corrupt files and uses the newest "
                             "valid one (default 1)")
    engine.add_argument("--resume", action="store_true",
                        help="resume runs from their checkpoints in "
                             "--checkpoint-dir (bit-identical to an "
                             "uninterrupted run)")
    serve = parser.add_argument_group("heuristic serving (serve/solve commands)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="solve-server bind/connect host")
    serve.add_argument("--port", type=int, default=8737,
                       help="solve-server port (serve: 0 picks a free port)")
    serve.add_argument("--registry", metavar="DIR",
                       help="heuristic registry directory (serve)")
    serve.add_argument("--instances", nargs="*", metavar="FILE",
                       help="BCPOP instance JSON files to pre-register (serve)")
    serve.add_argument("--max-batch", type=int, default=32, dest="max_batch",
                       help="micro-batch size cap (serve)")
    serve.add_argument("--max-wait-us", type=int, default=2_000, dest="max_wait_us",
                       help="micro-batch wait window in microseconds (serve)")
    serve.add_argument("--queue-depth", type=int, default=128, dest="queue_depth",
                       help="bounded request queue depth; overflow is "
                            "rejected with an overload response (serve)")
    serve.add_argument("--metrics-jsonl", dest="metrics_jsonl", metavar="FILE",
                       help="append a metrics snapshot to FILE on shutdown (serve)")
    serve.add_argument("--request-timeout", dest="request_timeout", type=float,
                       default=None, metavar="SECONDS",
                       help="per-request solve deadline; expiry answers with a "
                            "retryable 'timeout' error instead of stalling the "
                            "client (serve)")
    serve.add_argument("--shards", type=int, default=0, metavar="N",
                       help="serve through the fault-tolerant router with N "
                            "supervised shard processes (consistent-hash "
                            "routing, health-checked respawn, circuit "
                            "breakers, brownout); 0 = single in-process "
                            "server (serve)")
    serve.add_argument("--heuristic", metavar="REF",
                       help="artifact ref/prefix, or family:<family> (solve)")
    serve.add_argument("--instance-file", dest="instance_file", metavar="FILE",
                       help="BCPOP instance JSON to solve against (solve)")
    serve.add_argument("--prices", metavar="P1,P2,...",
                       help="comma-separated UL price vector (solve; default: "
                            "a seeded uniform sample from the instance box)")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "all":
        # "all" regenerates reports; the instances exporter writes files
        # (and interprets --out as a directory), serve blocks on a
        # socket, solve needs a live server — those stay explicit.
        names = sorted(set(_COMMANDS) - _NON_REPORT)
    else:
        names = [args.experiment]

    sections: list[str] = []

    def run_all() -> None:
        for name in names:
            sections.append(_COMMANDS[name](args))

    if args.profile:
        profiler = cProfile.Profile()
        profiler.enable()
        run_all()
        profiler.disable()
        buf = io.StringIO()
        pstats.Stats(profiler, stream=buf).sort_stats("cumulative").print_stats(15)
        sections.append("cProfile (top 15 by cumulative time):\n" + buf.getvalue())
    else:
        run_all()

    report = ("\n\n" + "=" * 72 + "\n\n").join(sections)
    print(report)
    # ``instances`` interprets --out as its target *directory*; writing the
    # textual report there would clobber it.
    if args.out and args.experiment != "instances":
        with open(args.out, "w") as fh:
            fh.write(report + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
