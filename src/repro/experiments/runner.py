"""``repro-bench`` — the experiment CLI.

Examples
--------
::

    repro-bench table3 --scale quick --runs 3 --workers 4
    repro-bench fig4 --scale bench
    repro-bench fig1
    repro-bench all --scale quick --out results.txt
    repro-bench table3 --scale paper          # Table II budgets (hours)

``--profile`` wraps the experiment in cProfile and appends the top hot
spots to the report (the HPC guides' measure-first rule).
"""

from __future__ import annotations

import argparse
import cProfile
import io
import pstats
import sys

from repro.core.config import CarbonConfig, CobraConfig
from repro.parallel.executor import make_executor

__all__ = ["main", "build_parser", "configs_for_scale"]

#: (carbon, cobra) budget presets.
SCALES = ("quick", "bench", "paper")


def configs_for_scale(scale: str) -> tuple[CarbonConfig, CobraConfig]:
    """Map a scale name to algorithm configs (EXPERIMENTS.md documents
    which scale produced each recorded number)."""
    if scale == "quick":
        return CarbonConfig.quick(1_000, 1_000, 20), CobraConfig.quick(1_000, 1_000, 20)
    if scale == "bench":
        return CarbonConfig.quick(4_000, 4_000, 40), CobraConfig.quick(4_000, 4_000, 40)
    if scale == "paper":
        return CarbonConfig.paper(), CobraConfig.paper()
    raise ValueError(f"unknown scale {scale!r}; expected one of {SCALES}")


def _cmd_table1(args: argparse.Namespace) -> str:
    from repro.experiments.reporting import format_table1
    from repro.experiments.tables import table1_rows

    return format_table1(table1_rows())


def _cmd_table2(args: argparse.Namespace) -> str:
    from repro.experiments.reporting import format_table2
    from repro.experiments.tables import table2_rows

    carbon, cobra = configs_for_scale(args.scale)
    return format_table2(table2_rows(carbon, cobra))


def _comparison(args: argparse.Namespace):
    from repro.experiments.tables import run_comparison

    carbon, cobra = configs_for_scale(args.scale)
    classes = None
    if args.classes:
        classes = [tuple(int(v) for v in c.split("x")) for c in args.classes]
    with make_executor(
        "processes" if args.workers > 1 else "serial", workers=args.workers
    ) as executor:
        return run_comparison(
            classes=classes,
            runs=args.runs,
            carbon_config=carbon,
            cobra_config=cobra,
            instance_seed=args.seed,
            executor=executor,
            log_jsonl=args.log_jsonl,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
            resume=args.resume,
        )


def _cmd_table3(args: argparse.Namespace) -> str:
    from repro.experiments.reporting import format_table3

    result = _comparison(args)
    claims = "\n".join(
        f"  {name}: {'PASS' if ok else 'FAIL'}"
        for name, ok in result.shape_claims().items()
    )
    return format_table3(result) + "\nshape claims:\n" + claims


def _cmd_table4(args: argparse.Namespace) -> str:
    from repro.experiments.reporting import format_table4

    result = _comparison(args)
    claims = "\n".join(
        f"  {name}: {'PASS' if ok else 'FAIL'}"
        for name, ok in result.shape_claims().items()
    )
    return format_table4(result) + "\nshape claims:\n" + claims


def _cmd_fig1(args: argparse.Namespace) -> str:
    from repro.experiments.figures import fig1_series
    from repro.experiments.reporting import format_fig1

    return format_fig1(fig1_series())


def _cmd_fig2(args: argparse.Namespace) -> str:
    from repro.bilevel.taxonomy import render_taxonomy

    return "Fig. 2: extended bi-level metaheuristics taxonomy\n" + render_taxonomy()


def _convergence(args: argparse.Namespace, algorithm: str) -> str:
    from repro.experiments.figures import convergence_experiment
    from repro.experiments.reporting import format_convergence

    carbon, cobra = configs_for_scale(args.scale)
    n, m = (500, 30) if args.scale == "paper" else (args.fig_n, args.fig_m)
    with make_executor(
        "processes" if args.workers > 1 else "serial", workers=args.workers
    ) as executor:
        curves = convergence_experiment(
            algorithm,
            n_bundles=n,
            n_services=m,
            runs=args.runs,
            carbon_config=carbon,
            cobra_config=cobra,
            instance_seed=args.seed,
            executor=executor,
        )
    return format_convergence(curves)


def _cmd_fig4(args: argparse.Namespace) -> str:
    return _convergence(args, "CARBON")


def _cmd_fig5(args: argparse.Namespace) -> str:
    return _convergence(args, "COBRA")


def _cmd_extended(args: argparse.Namespace) -> str:
    """CARBON vs COBRA vs nested-sequential on one class (taxonomy study)."""
    import numpy as np

    from repro.bcpop.generator import generate_instance
    from repro.core.carbon import run_carbon
    from repro.core.cobra import run_cobra
    from repro.core.config import UpperLevelConfig
    from repro.core.nested import run_nested
    from repro.parallel.rng import stream_for

    carbon_cfg, cobra_cfg = configs_for_scale(args.scale)
    n, m = args.fig_n, args.fig_m
    instance = generate_instance(
        n, m, seed=stream_for(args.seed, "bcpop", n, m, 0), name=f"ext-n{n}-m{m}"
    )
    nested_cfg = UpperLevelConfig(
        population_size=carbon_cfg.upper.population_size,
        archive_size=carbon_cfg.upper.archive_size,
        fitness_evaluations=carbon_cfg.upper.fitness_evaluations,
    )
    from repro.core.surrogate import run_surrogate

    lines = [f"Extended comparison on n={n}, m={m} ({args.runs} runs):",
             f"  {'algorithm':<20} {'best %-gap':>11} {'best revenue':>13}"]
    for name, runner in (
        ("CARBON", lambda s: run_carbon(instance, carbon_cfg, seed=s)),
        ("COBRA", lambda s: run_cobra(instance, cobra_cfg, seed=s)),
        ("NESTED[chvatal]", lambda s: run_nested(instance, nested_cfg, seed=s)),
        ("SURROGATE[chvatal]", lambda s: run_surrogate(instance, nested_cfg, seed=s)),
    ):
        results = [runner(s) for s in range(args.runs)]
        lines.append(
            f"  {name:<20} {np.mean([r.best_gap for r in results]):>11.2f}"
            f" {np.mean([r.best_upper for r in results]):>13.2f}"
        )
    return "\n".join(lines)


def _cmd_trilevel(args: argparse.Namespace) -> str:
    """Future-work study (§VI): CARBON one nesting level deeper."""
    from repro.bcpop.generator import generate_instance
    from repro.parallel.rng import stream_for
    from repro.trilevel import TriLevelInstance, run_trilevel_carbon

    carbon_cfg, _ = configs_for_scale(args.scale)
    n, m = args.fig_n, args.fig_m
    tri = TriLevelInstance.from_bcpop(
        generate_instance(n, m, seed=stream_for(args.seed, "bcpop", n, m, 0))
    )
    lines = [f"Tri-level CARBON on n={n}, m={m} (wholesale cap "
             f"{tri.wholesale_cap:.1f}, retail cap {tri.retail_cap:.1f}):"]
    for run_seed in range(args.runs):
        result = run_trilevel_carbon(tri, carbon_cfg, seed=run_seed)
        lines.append(
            f"  seed {run_seed}: provider revenue {result.best_upper:9.2f}  "
            f"gap {result.best_gap:6.2f}%  "
            f"nesting multiplier {result.extras['nesting_multiplier']:5.1f} "
            f"(L1 {result.ul_evaluations_used}, L3 {result.ll_evaluations_used})"
        )
    lines.append(
        "  -> every extra level multiplies the evaluation bill; see "
        "benchmarks/bench_trilevel.py for the sweep."
    )
    return "\n".join(lines)


def _cmd_instances(args: argparse.Namespace) -> str:
    """Export the paper's 9 instance classes to disk (JSON + mknap)."""
    import pathlib

    from repro.bcpop.generator import paper_instance_classes
    from repro.bcpop.io import export_mknap, save_bcpop

    out_dir = pathlib.Path(args.out or "instances")
    out_dir.mkdir(parents=True, exist_ok=True)
    suite = paper_instance_classes(seed=args.seed, instances_per_class=1)
    lines = [f"exported instance suite (seed {args.seed}) to {out_dir}/:"]
    for (n, m), instances in sorted(suite.items()):
        for inst in instances:
            save_bcpop(inst, out_dir / f"{inst.name}.json")
            export_mknap(inst, out_dir / f"{inst.name}.mknap")
            lines.append(
                f"  {inst.name}: n={n} m={m} L={inst.n_own} "
                f"cap={inst.price_cap:.1f}"
            )
    return "\n".join(lines)


_COMMANDS = {
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "table3": _cmd_table3,
    "table4": _cmd_table4,
    "fig1": _cmd_fig1,
    "fig2": _cmd_fig2,
    "fig4": _cmd_fig4,
    "fig5": _cmd_fig5,
    "extended": _cmd_extended,
    "trilevel": _cmd_trilevel,
    "instances": _cmd_instances,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the tables and figures of the CARBON paper.",
    )
    parser.add_argument(
        "experiment", choices=sorted(_COMMANDS) + ["all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument("--scale", choices=SCALES, default="quick")
    parser.add_argument("--runs", type=int, default=3, help="independent runs (paper: 30)")
    parser.add_argument("--seed", type=int, default=0, help="instance seed")
    parser.add_argument("--workers", type=int, default=1, help=">1 enables a process pool")
    parser.add_argument(
        "--classes", nargs="*", metavar="NxM",
        help="restrict to instance classes, e.g. 100x5 250x10",
    )
    parser.add_argument("--fig-n", type=int, default=100, dest="fig_n",
                        help="bundle count for fig4/fig5 at non-paper scale")
    parser.add_argument("--fig-m", type=int, default=10, dest="fig_m",
                        help="service count for fig4/fig5 at non-paper scale")
    parser.add_argument("--out", help="also write the report to this file")
    parser.add_argument("--profile", action="store_true",
                        help="cProfile the experiment and append hot spots")
    engine = parser.add_argument_group(
        "engine observability (table3/table4 experiments)"
    )
    engine.add_argument("--log-jsonl", dest="log_jsonl", metavar="FILE",
                        help="append per-generation JSONL run records to FILE")
    engine.add_argument("--checkpoint-dir", dest="checkpoint_dir", metavar="DIR",
                        help="save per-run checkpoints under DIR")
    engine.add_argument("--checkpoint-every", dest="checkpoint_every", type=int,
                        default=10, metavar="N",
                        help="checkpoint every N generations (default 10)")
    engine.add_argument("--resume", action="store_true",
                        help="resume runs from their checkpoints in "
                             "--checkpoint-dir (bit-identical to an "
                             "uninterrupted run)")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "all":
        # "all" regenerates reports; the instances exporter writes files
        # and interprets --out as a directory, so it stays explicit.
        names = sorted(set(_COMMANDS) - {"instances"})
    else:
        names = [args.experiment]

    sections: list[str] = []

    def run_all() -> None:
        for name in names:
            sections.append(_COMMANDS[name](args))

    if args.profile:
        profiler = cProfile.Profile()
        profiler.enable()
        run_all()
        profiler.disable()
        buf = io.StringIO()
        pstats.Stats(profiler, stream=buf).sort_stats("cumulative").print_stats(15)
        sections.append("cProfile (top 15 by cumulative time):\n" + buf.getvalue())
    else:
        run_all()

    report = ("\n\n" + "=" * 72 + "\n\n").join(sections)
    print(report)
    # ``instances`` interprets --out as its target *directory*; writing the
    # textual report there would clobber it.
    if args.out and args.experiment != "instances":
        with open(args.out, "w") as fh:
            fh.write(report + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
