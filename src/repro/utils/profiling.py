"""Profiling helpers.

The HPC guides' first rule is *measure before optimizing*.  These context
managers make that a one-liner inside experiments and notebooks; the
``repro-bench --profile`` flag uses the same machinery at CLI level.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["profiled", "time_block", "TimeBlock", "ProfileReport"]


@dataclass
class ProfileReport:
    """Filled in when the ``profiled`` block exits."""

    text: str = ""
    total_seconds: float = 0.0

    def top(self, n: int = 10) -> str:
        """First ``n`` data lines of the stats table."""
        lines = [l for l in self.text.splitlines() if l.strip()]
        return "\n".join(lines[: n + 6])  # header block + n rows


@contextmanager
def profiled(sort: str = "cumulative", limit: int = 25) -> Iterator[ProfileReport]:
    """cProfile a block::

        with profiled() as report:
            run_carbon(instance, config)
        print(report.top(10))
    """
    report = ProfileReport()
    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    try:
        yield report
    finally:
        profiler.disable()
        report.total_seconds = time.perf_counter() - start
        buf = io.StringIO()
        pstats.Stats(profiler, stream=buf).sort_stats(sort).print_stats(limit)
        report.text = buf.getvalue()


@dataclass
class TimeBlock:
    """Filled in when the ``time_block`` block exits."""

    label: str = ""
    seconds: float = 0.0
    _start: float = field(default=0.0, repr=False)

    def __str__(self) -> str:
        return f"{self.label or 'block'}: {self.seconds:.3f}s"


@contextmanager
def time_block(label: str = "") -> Iterator[TimeBlock]:
    """Wall-clock a block::

        with time_block("relaxation") as t:
            solve_relaxation(instance)
        print(t)   # relaxation: 0.012s
    """
    block = TimeBlock(label=label, _start=time.perf_counter())
    try:
        yield block
    finally:
        block.seconds = time.perf_counter() - block._start
