"""Profiling helpers.

The HPC guides' first rule is *measure before optimizing*.  These context
managers make that a one-liner inside experiments and notebooks; the
``repro-bench --profile`` flag uses the same machinery at CLI level.

Hot-path rules (repro-lint R002): the deterministic algorithm packages
must never read a wall clock — results are a function of (instance,
config, seed) only, and a time read that leaks into compared artifacts
breaks serial/parallel and resume bit-identity.  :class:`HotPathTimers`
is therefore the *only* sanctioned way to time the evaluation kernel:
the clock reads live here (``repro/utils`` is outside the R002 scope by
design), they happen **only when explicitly enabled**
(``ExecutionConfig(profile_hot_path=True)``), and the aggregate seconds
are reported under ``RunResult.extras["pipeline"]["timers"]`` — a key
that only exists when the timers are on, so default-configuration runs
(everything the determinism suite compares) carry no wall-clock data at
all.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["profiled", "time_block", "HotPathTimers", "TimeBlock", "ProfileReport"]


@dataclass
class HotPathTimers:
    """Aggregate-only timers safe to wrap deterministic hot paths.

    Disabled (the default) the ``section`` context manager is a no-op
    that never touches a clock; enabled, it accumulates ``(calls,
    seconds)`` per named section.  Only aggregates are kept — no
    per-call samples, no timestamps — so the memory cost is O(#section
    names) no matter how hot the path.

    Usage (the evaluator wraps its kernel sections)::

        timers = HotPathTimers(enabled=True)
        with timers.section("greedy"):
            greedy_cover(...)
        timers.snapshot()   # {"greedy": {"calls": 1, "seconds": ...}}
    """

    enabled: bool = False
    _calls: dict[str, int] = field(default_factory=dict, repr=False)
    _seconds: dict[str, float] = field(default_factory=dict, repr=False)

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        """Time one named section (free no-op while disabled)."""
        if not self.enabled:
            yield
            return
        start = time.perf_counter()
        try:
            yield
        finally:
            self._seconds[name] = (
                self._seconds.get(name, 0.0) + time.perf_counter() - start
            )
            self._calls[name] = self._calls.get(name, 0) + 1

    def snapshot(self) -> dict[str, dict[str, float]]:
        """``{section: {"calls": n, "seconds": s}}`` in section-name order."""
        return {
            name: {"calls": self._calls[name], "seconds": self._seconds[name]}
            for name in sorted(self._calls)
        }

    def clear(self) -> None:
        self._calls.clear()
        self._seconds.clear()


@dataclass
class ProfileReport:
    """Filled in when the ``profiled`` block exits."""

    text: str = ""
    total_seconds: float = 0.0

    def top(self, n: int = 10) -> str:
        """First ``n`` data lines of the stats table."""
        lines = [l for l in self.text.splitlines() if l.strip()]
        return "\n".join(lines[: n + 6])  # header block + n rows


@contextmanager
def profiled(sort: str = "cumulative", limit: int = 25) -> Iterator[ProfileReport]:
    """cProfile a block::

        with profiled() as report:
            run_carbon(instance, config)
        print(report.top(10))
    """
    report = ProfileReport()
    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    try:
        yield report
    finally:
        profiler.disable()
        report.total_seconds = time.perf_counter() - start
        buf = io.StringIO()
        pstats.Stats(profiler, stream=buf).sort_stats(sort).print_stats(limit)
        report.text = buf.getvalue()


@dataclass
class TimeBlock:
    """Filled in when the ``time_block`` block exits."""

    label: str = ""
    seconds: float = 0.0
    _start: float = field(default=0.0, repr=False)

    def __str__(self) -> str:
        return f"{self.label or 'block'}: {self.seconds:.3f}s"


@contextmanager
def time_block(label: str = "") -> Iterator[TimeBlock]:
    """Wall-clock a block::

        with time_block("relaxation") as t:
            solve_relaxation(instance)
        print(t)   # relaxation: 0.012s
    """
    block = TimeBlock(label=label, _start=time.perf_counter())
    try:
        yield block
    finally:
        block.seconds = time.perf_counter() - block._start
