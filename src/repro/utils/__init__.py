"""Shared utilities: measurement-first helpers (the HPC guides' rule:
"no optimization without measuring")."""

from repro.utils.profiling import profiled, time_block

__all__ = ["profiled", "time_block"]
