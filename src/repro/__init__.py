"""repro — reproduction of "A Competitive Approach for Bi-level
Co-evolution" (Kieffer, Danoy, Bouvry, Nagih — IPPS 2018).

The package implements CARBON, a competitive co-evolutionary algorithm
that pairs an upper-level population of pricing decisions with a
lower-level population of GP-evolved greedy heuristics, the COBRA baseline
it is compared against, and every substrate both need: the Bi-level Cloud
Pricing Optimization Problem (BCPOP), a covering-problem solver suite
(greedy framework, classical heuristics, repair, exact solvers), an LP
relaxation layer (own simplex + scipy backends), real-coded GA and GP
engines, and the experiment harness regenerating every table and figure of
the paper.

Quickstart
----------
>>> from repro import generate_instance, run_carbon, CarbonConfig
>>> instance = generate_instance(100, 5, seed=0)
>>> result = run_carbon(instance, CarbonConfig.quick(), seed=0)
>>> result.best_gap          # lower-level %-gap (paper Table III)
>>> result.best_upper        # leader revenue (paper Table IV)
"""

from repro.bcpop import (
    BcpopInstance,
    LowerLevelEvaluator,
    generate_instance,
    paper_instance_classes,
)
from repro.bilevel import mersha_dempe_example, percent_gap
from repro.core import (
    Carbon,
    CarbonConfig,
    Cobra,
    CobraConfig,
    NestedSequential,
    RunResult,
    run_carbon,
    run_cobra,
    run_nested,
)
from repro.parallel import run_island_carbon
from repro.serve import (
    HeuristicRegistry,
    PublishBestHeuristic,
    ServeClient,
    SolveServer,
)
from repro.trilevel import TriLevelInstance, run_trilevel_carbon
from repro.covering import CoveringInstance, greedy_cover, solve_exact
from repro.gp import SyntaxTree, paper_primitive_set
from repro.lp import solve_relaxation

__version__ = "1.0.0"

__all__ = [
    "BcpopInstance",
    "LowerLevelEvaluator",
    "generate_instance",
    "paper_instance_classes",
    "mersha_dempe_example",
    "percent_gap",
    "Carbon",
    "CarbonConfig",
    "Cobra",
    "CobraConfig",
    "NestedSequential",
    "RunResult",
    "run_carbon",
    "run_cobra",
    "run_nested",
    "run_island_carbon",
    "HeuristicRegistry",
    "PublishBestHeuristic",
    "ServeClient",
    "SolveServer",
    "TriLevelInstance",
    "run_trilevel_carbon",
    "CoveringInstance",
    "greedy_cover",
    "solve_exact",
    "SyntaxTree",
    "paper_primitive_set",
    "solve_relaxation",
    "__version__",
]
