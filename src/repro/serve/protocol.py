"""Wire format of the solve service: newline-delimited JSON messages.

Every message is one JSON object on one line (UTF-8, ``\\n`` terminated).
Requests carry an ``op`` and an optional correlation ``id`` (echoed back
verbatim, so clients may pipeline requests and match responses out of
order).  Responses carry ``ok`` plus either the payload or an ``error``
code and human-readable ``message``.

Ops
---
``solve``
    ``{"op": "solve", "id": ..., "prices": [...],
    "heuristic": {"ref": ...} | {"family": ...} | {"tree": ...},
    "instance": "<digest>" | {<repro-bcpop document>},
    "include_selection": false}``.
    ``instance`` may be omitted when the server has exactly one instance
    registered.  An inline instance document is registered by digest on
    first use, so subsequent requests can refer to it by digest alone.
``stats``
    Metrics snapshot (counters, batch-size histogram, latency
    percentiles, memo/LP-cache hit rates, queue state).
``ping``
    Liveness probe.
``pause`` / ``resume``
    Suspend / resume the micro-batcher (drain control; also what gives
    tests and benches a deterministic window to build batches and
    overload the bounded queue).
``shutdown``
    Acknowledge, then stop the server cleanly (drain queue, dump
    metrics, close the executor).

Version 2 (the sharded-serving release) added, all backward-compatible:

* ``ping`` replies carry ``version`` (:data:`PROTOCOL_VERSION`), so a
  router can refuse to enroll a shard speaking a different protocol;
* ``solve`` requests may carry an integer ``priority`` (0 low … 9 high,
  default :data:`DEFAULT_PRIORITY`).  Single servers ignore it; the
  router's brownout mode sheds lowest-priority traffic first;
* overload rejections may carry ``brownout: true`` when the reject came
  from router-level load shedding rather than a full shard queue (same
  ``overloaded`` code — retry semantics are identical);
* the ``shards`` op (router only): fleet topology — per shard the name,
  port, pid, generation, liveness, circuit-breaker state and in-flight
  count.

Error codes: ``bad-request``, ``unknown-op``, ``unknown-instance``,
``unknown-heuristic``, ``overloaded``, ``timeout``, ``unavailable``,
``internal``.  Three of them are *transient* — the request was not
served but is safe to retry verbatim, because solves are pure and
idempotent:

* ``overloaded`` — backpressure; the bounded request queue was full at
  enqueue time, back off and retry,
* ``timeout`` — the solve ran past the server's per-request deadline
  (``request_timeout``); the result was discarded,
* ``unavailable`` — a transient server-side failure (in chaos tests,
  an injected one).

:class:`repro.serve.client.RetryingServeClient` retries exactly these
three codes (plus connection loss) and nothing else.
"""

from __future__ import annotations

import json
from typing import Any

__all__ = [
    "MAX_LINE_BYTES",
    "PROTOCOL_VERSION",
    "DEFAULT_PRIORITY",
    "MAX_PRIORITY",
    "encode",
    "decode",
    "ok_response",
    "error_response",
    "solve_response",
    "request_priority",
]

#: Hard cap on one message line — an inline 500-bundle instance document
#: is ~1 MB; anything past this bound is a protocol violation, not data.
MAX_LINE_BYTES = 16 * 1024 * 1024

#: Wire protocol version.  v1: single-server ops (PR 3/4).  v2: sharded
#: serving — ``priority`` on solves, ``brownout`` on overload rejects,
#: the ``shards`` topology op, ``version`` in ping replies.
PROTOCOL_VERSION = 2

#: Solve priority range: 0 (shed first) … MAX_PRIORITY (shed last).
MAX_PRIORITY = 9
DEFAULT_PRIORITY = 4


def request_priority(request: dict) -> int:
    """The clamped priority of a solve request (``DEFAULT_PRIORITY`` when
    absent or malformed — a bad priority must degrade service for that
    request, never error a whole connection)."""
    value = request.get("priority", DEFAULT_PRIORITY)
    if isinstance(value, bool) or not isinstance(value, int):
        return DEFAULT_PRIORITY
    return max(0, min(MAX_PRIORITY, value))


def encode(message: dict) -> bytes:
    """One message → one ``\\n``-terminated JSON line.

    Non-finite floats are emitted as the JSON extensions ``NaN`` /
    ``Infinity`` (the convention of the run logger; ``json.loads`` reads
    them back), so infeasible solves (``gap = inf``) survive the wire.
    """
    return (json.dumps(message, sort_keys=True) + "\n").encode("utf-8")


def decode(line: bytes | str) -> dict:
    """One line → message dict; raises ``ValueError`` on malformed input."""
    if isinstance(line, bytes):
        line = line.decode("utf-8")
    message = json.loads(line)
    if not isinstance(message, dict):
        raise ValueError(f"message must be a JSON object, got {type(message).__name__}")
    return message


def ok_response(request: dict, **payload: Any) -> dict:
    response = {"ok": True}
    if "id" in request:
        response["id"] = request["id"]
    response.update(payload)
    return response


def error_response(request: dict, code: str, message: str) -> dict:
    response = {"ok": False, "error": code, "message": message}
    if isinstance(request, dict) and "id" in request:
        response["id"] = request["id"]
    return response


def solve_response(request: dict, outcome, include_selection: bool = False) -> dict:
    """Serialize a :class:`~repro.bcpop.evaluate.LowerLevelOutcome`.

    Scalars are converted to plain Python floats — JSON renders them with
    ``float.__repr__`` (shortest-exact for float64), so the %-gap a client
    reads back is bit-identical to the in-process evaluation.
    """
    payload = {
        "gap": float(outcome.gap),
        "revenue": float(outcome.revenue),
        "ll_cost": float(outcome.ll_cost),
        "lower_bound": float(outcome.lower_bound),
        "feasible": bool(outcome.feasible),
        "n_selected": int(outcome.selection.sum()),
    }
    if include_selection:
        payload["selection"] = [int(v) for v in outcome.selection]
    return ok_response(request, **payload)
