"""Content-addressed artifact store for trained GP heuristics.

A run's champion heuristic used to die with the process: it only existed
inside ``RunResult.extras``.  The registry gives it a durable, serveable
form.  Each **artifact** is one JSON document bundling

* the canonical tree serialization (:meth:`repro.gp.tree.SyntaxTree.serialize`
  — exact, ERC values in ``float.hex``) and its ``stable_hash``,
* training metadata: algorithm, instance name/digest/family, seed, final
  %-gap, generations, evaluations consumed, wall time,
* lineage: provenance of the run that produced it (and, for future
  cross-run breeding, parent artifact ids).

The **artifact id** is the SHA-256 of the canonical JSON of the content
*minus* the ``created_at`` timestamp, so re-publishing the identical
result of a reproducible run is idempotent (same id, file overwritten in
place) while any change to tree, metadata or lineage yields a new id.

On disk a registry is a directory::

    <root>/artifacts/<id>.json     one file per artifact
    <root>/promoted.json           per-family promotion records

``promote``/``best_for`` implement "best-for-instance-family" serving:
an explicit promotion pins a family to an artifact; otherwise the
lowest-final-%-gap artifact for the family wins.

Promotions are **generation-tagged**: every ``promote`` bumps the
family's promotion generation and appends to its history, and
``rollback(family, generation)`` atomically re-pins the family to what
generation N promoted (itself recorded as a new generation — a rollback
is an auditable event, not an erasure).  All promotion writes go through
one tmp-file-plus-``replace`` so a reader never sees a half-written pin;
because serving resolution (:meth:`HeuristicRegistry.best_for`) re-reads
``promoted.json`` per request, a rollback takes effect fleet-wide — every
shard sharing the registry root — without restarting anything.  The
legacy flat ``{family: artifact_id}`` file (PR 3) is still read
transparently and upgraded on the next promotion.

:class:`PublishBestHeuristic` hooks ``on_run_end`` of the engine event
bus (:mod:`repro.core.events`), so any engine-driven run auto-publishes
its champion — ``train → publish`` becomes a single observer attachment.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.events import EngineEvent, Observer
from repro.gp.tree import SyntaxTree

__all__ = ["HeuristicArtifact", "HeuristicRegistry", "PublishBestHeuristic"]

ARTIFACT_FORMAT = "repro-heuristic"
ARTIFACT_VERSION = 1

PROMOTIONS_FORMAT = "repro-promotions"
PROMOTIONS_VERSION = 2

#: Shortest accepted ref prefix (same spirit as git's abbreviated SHAs).
MIN_REF_LENGTH = 6


def instance_family(instance) -> str:
    """The instance *family* label used for promotions: the size class
    ``n<bundles>-m<services>`` (the paper's Table III/IV row key), not the
    concrete instance — a heuristic is a solver for the class."""
    n = getattr(instance, "n_bundles", None)
    m = getattr(instance, "n_services", None)
    if n is None or m is None:
        return getattr(instance, "name", "") or "unknown"
    return f"n{n}-m{m}"


@dataclass(frozen=True)
class HeuristicArtifact:
    """One published heuristic: exact tree + training provenance."""

    artifact_id: str
    tree_serialization: str
    tree_hash: str
    metadata: dict
    lineage: dict = field(default_factory=dict)

    @property
    def tree(self) -> SyntaxTree:
        """The heuristic itself (deserialized on demand, validated)."""
        return SyntaxTree.deserialize(self.tree_serialization)

    @property
    def family(self) -> str | None:
        return self.metadata.get("family")

    @property
    def best_gap(self) -> float:
        return float(self.metadata.get("best_gap", float("inf")))

    def to_document(self) -> dict:
        return {
            "format": ARTIFACT_FORMAT,
            "version": ARTIFACT_VERSION,
            "artifact_id": self.artifact_id,
            "tree": self.tree_serialization,
            "tree_hash": self.tree_hash,
            "metadata": self.metadata,
            "lineage": self.lineage,
        }

    @classmethod
    def from_document(cls, document: dict) -> "HeuristicArtifact":
        if document.get("format") != ARTIFACT_FORMAT:
            raise ValueError(
                f"not a {ARTIFACT_FORMAT} document: format={document.get('format')!r}"
            )
        if document.get("version") != ARTIFACT_VERSION:
            raise ValueError(f"unsupported artifact version {document.get('version')!r}")
        return cls(
            artifact_id=document["artifact_id"],
            tree_serialization=document["tree"],
            tree_hash=document["tree_hash"],
            metadata=dict(document.get("metadata", {})),
            lineage=dict(document.get("lineage", {})),
        )


def _artifact_id(tree_serialization: str, metadata: dict, lineage: dict) -> str:
    """Content address over everything except the publish timestamp."""
    hashed_metadata = {k: v for k, v in metadata.items() if k != "created_at"}
    canonical = json.dumps(
        {"tree": tree_serialization, "metadata": hashed_metadata, "lineage": lineage},
        sort_keys=True,
        default=str,
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class HeuristicRegistry:
    """On-disk, content-addressed store of :class:`HeuristicArtifact`.

    All operations are plain-file, write-through and idempotent: the
    registry is safe to share between a training process (publishing) and
    a serving process (reading) on the same filesystem.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.artifacts_dir = self.root / "artifacts"
        self.artifacts_dir.mkdir(parents=True, exist_ok=True)
        self._promoted_path = self.root / "promoted.json"

    # -- publishing ---------------------------------------------------------

    def publish(
        self,
        tree: SyntaxTree,
        metadata: dict | None = None,
        lineage: dict | None = None,
    ) -> HeuristicArtifact:
        """Store a heuristic; returns the artifact (existing or new)."""
        serialization = tree.serialize()
        metadata = dict(metadata or {})
        metadata.setdefault("created_at", time.time())
        lineage = dict(lineage or {})
        artifact = HeuristicArtifact(
            artifact_id=_artifact_id(serialization, metadata, lineage),
            tree_serialization=serialization,
            tree_hash=tree.stable_hash(),
            metadata=metadata,
            lineage=lineage,
        )
        path = self.artifacts_dir / f"{artifact.artifact_id}.json"
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(artifact.to_document(), indent=1, sort_keys=True))
        tmp.replace(path)
        return artifact

    # -- queries ------------------------------------------------------------

    def refs(self) -> list[str]:
        """All artifact ids, sorted."""
        return sorted(p.stem for p in self.artifacts_dir.glob("*.json"))

    def __len__(self) -> int:
        return len(self.refs())

    def _load(self, full_ref: str) -> HeuristicArtifact:
        document = json.loads((self.artifacts_dir / f"{full_ref}.json").read_text())
        return HeuristicArtifact.from_document(document)

    def get(self, ref: str) -> HeuristicArtifact:
        """Load an artifact by id or unique id prefix (>= 6 chars)."""
        if not isinstance(ref, str) or len(ref) < MIN_REF_LENGTH:
            raise KeyError(f"ref must be >= {MIN_REF_LENGTH} hex chars, got {ref!r}")
        matches = [r for r in self.refs() if r.startswith(ref)]
        if not matches:
            raise KeyError(f"no artifact matching {ref!r}")
        if len(matches) > 1:
            raise KeyError(f"ambiguous ref {ref!r}: {len(matches)} matches")
        return self._load(matches[0])

    def list(
        self,
        family: str | None = None,
        instance_digest: str | None = None,
        algorithm: str | None = None,
    ) -> list[HeuristicArtifact]:
        """All artifacts matching the filters, best %-gap first."""
        found = []
        for ref in self.refs():
            artifact = self._load(ref)
            meta = artifact.metadata
            if family is not None and meta.get("family") != family:
                continue
            if instance_digest is not None and meta.get("instance_digest") != instance_digest:
                continue
            if algorithm is not None and meta.get("algorithm") != algorithm:
                continue
            found.append(artifact)
        found.sort(key=lambda a: (a.best_gap, a.artifact_id))
        return found

    # -- promotion ----------------------------------------------------------

    def _read_promotions(self) -> dict:
        """The per-family promotion records, upgrading the legacy flat
        ``{family: artifact_id}`` layout to generation-1 entries in
        memory (the file itself is rewritten on the next promotion)."""
        if not self._promoted_path.exists():
            return {}
        document = json.loads(self._promoted_path.read_text())
        if document.get("format") == PROMOTIONS_FORMAT:
            return dict(document.get("families", {}))
        # Legacy v1: a flat mapping with no generations recorded.
        return {
            family: {
                "artifact_id": artifact_id,
                "generation": 1,
                "history": [{"artifact_id": artifact_id, "generation": 1}],
            }
            for family, artifact_id in document.items()
        }

    def _write_promotions(self, families: dict) -> None:
        """Atomic write: a concurrent reader (a serving shard resolving
        ``family:`` per request) sees either the old file or the new one,
        never a torn pin."""
        document = {
            "format": PROMOTIONS_FORMAT,
            "version": PROMOTIONS_VERSION,
            "families": families,
        }
        tmp = self._promoted_path.with_suffix(".tmp")
        tmp.write_text(json.dumps(document, indent=1, sort_keys=True))
        tmp.replace(self._promoted_path)

    def promote(
        self, family: str, ref: str, generation: int | None = None
    ) -> HeuristicArtifact:
        """Pin ``family`` to an artifact (resolves and validates ``ref``).

        Each promotion gets a monotonically increasing *generation* and
        is appended to the family's history (the rollback target list).
        An explicit ``generation`` must advance past the current one —
        a stale writer (an old deploy script replaying an earlier
        promotion) fails loudly instead of silently regressing the pin.
        """
        artifact = self.get(ref)
        families = self._read_promotions()
        entry = families.get(family, {"generation": 0, "history": []})
        current = int(entry.get("generation", 0))
        if generation is None:
            generation = current + 1
        elif generation <= current:
            raise ValueError(
                f"promotion generation {generation} does not advance past "
                f"{family!r}'s current generation {current}"
            )
        record = {
            "artifact_id": artifact.artifact_id,
            "generation": generation,
            "promoted_at": time.time(),
        }
        families[family] = {
            "artifact_id": artifact.artifact_id,
            "generation": generation,
            "history": [*entry.get("history", []), record],
        }
        self._write_promotions(families)
        return artifact

    def rollback(self, family: str, generation: int) -> HeuristicArtifact:
        """Atomically re-pin ``family`` to what ``generation`` promoted.

        The rollback is recorded as a *new* generation (with a
        ``rolled_back_to`` marker) rather than rewriting history: the
        promotion log stays append-only and auditable, and a subsequent
        ``promote`` cannot collide with a reused generation number.
        Fleet-wide effect is immediate because every ``family:`` solve
        re-resolves through ``promoted.json``.
        """
        families = self._read_promotions()
        entry = families.get(family)
        if entry is None:
            raise KeyError(f"family {family!r} has no promotions to roll back")
        targets = [
            h for h in entry.get("history", [])
            if int(h.get("generation", -1)) == generation
        ]
        if not targets:
            raise KeyError(
                f"family {family!r} has no promotion generation {generation}"
            )
        target = targets[0]
        artifact = self.get(target["artifact_id"])
        new_generation = int(entry.get("generation", 0)) + 1
        record = {
            "artifact_id": artifact.artifact_id,
            "generation": new_generation,
            "rolled_back_to": generation,
            "promoted_at": time.time(),
        }
        families[family] = {
            "artifact_id": artifact.artifact_id,
            "generation": new_generation,
            "history": [*entry.get("history", []), record],
        }
        self._write_promotions(families)
        return artifact

    def promoted(self, family: str) -> str | None:
        """The pinned artifact id for ``family``, if any."""
        entry = self._read_promotions().get(family)
        return entry.get("artifact_id") if entry is not None else None

    def promotion_generation(self, family: str) -> int:
        """The family's current promotion generation (0 = never promoted)."""
        entry = self._read_promotions().get(family)
        return int(entry.get("generation", 0)) if entry is not None else 0

    def promotion_history(self, family: str) -> list[dict]:
        """The append-only promotion log for ``family`` (oldest first)."""
        entry = self._read_promotions().get(family)
        return list(entry.get("history", [])) if entry is not None else []

    def best_for(self, family: str) -> HeuristicArtifact | None:
        """Serving resolution: the promoted artifact for ``family``, else
        the lowest-final-%-gap artifact trained on that family."""
        pinned = self.promoted(family)
        if pinned is not None:
            return self.get(pinned)
        candidates = self.list(family=family)
        return candidates[0] if candidates else None


class PublishBestHeuristic(Observer):
    """Engine observer: publish the run's champion heuristic on run end.

    Attach per run (``EngineLoop(algo, observers=[...])``) or directly on
    an algorithm's bus.  Runs whose results carry no ``champion_tree``
    (COBRA and the baselines evolve decision vectors, not solvers) are
    skipped silently, so the observer is safe to attach to any algorithm.
    """

    def __init__(self, registry: HeuristicRegistry) -> None:
        self.registry = registry
        self.published: list[HeuristicArtifact] = []

    @property
    def last_artifact(self) -> HeuristicArtifact | None:
        return self.published[-1] if self.published else None

    def on_run_end(self, event: EngineEvent) -> None:
        result = event.result
        if result is None:
            return
        tree = result.extras.get("champion_tree")
        if not isinstance(tree, SyntaxTree):
            return
        instance = event.algorithm.instance
        engine_extras = result.extras.get("engine", {})
        metadata = {
            "algorithm": result.algorithm,
            "instance_name": result.instance_name,
            "instance_digest": getattr(instance, "digest", None),
            "family": instance_family(instance),
            "seed": result.seed,
            "best_gap": float(result.best_gap),
            "best_upper": float(result.best_upper),
            "generations": int(event.generation),
            "ul_evaluations": int(result.ul_evaluations_used),
            "ll_evaluations": int(result.ll_evaluations_used),
            "wall_time": float(result.wall_time),
        }
        lineage = {
            "parents": [],
            "run": {
                "status": engine_extras.get("status"),
                "resumed": engine_extras.get("resumed"),
                "champion_size": tree.size,
            },
        }
        self.published.append(self.registry.publish(tree, metadata, lineage))
