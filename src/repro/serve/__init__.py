"""Serving layer: persist trained GP heuristics and serve them as solvers.

CARBON's product is not the one pricing decision it optimized — it is the
evolved *heuristic*, a portable solver for any lower-level instance of the
family it was trained on.  This package turns that observation into an
inference-shaped system:

* :mod:`repro.serve.registry` — content-addressed on-disk artifact store
  for trained heuristics (generation-tagged promotions with atomic
  rollback) plus the :class:`PublishBestHeuristic` engine observer that
  auto-publishes every run's champion,
* :mod:`repro.serve.server`   — asyncio TCP/JSON-lines solve server with
  micro-batching and bounded-queue backpressure, executing through the
  batched :class:`repro.bcpop.evaluate.EvaluationPipeline`,
* :mod:`repro.serve.shard`    — that server as a supervised worker
  process: spawned, liveness-probed, respawned with a generation bump,
* :mod:`repro.serve.router`   — fault-tolerant coordinator for a fleet of
  shards: consistent-hash routing (cache affinity), bounded-jump
  failover, per-shard circuit breakers, health-checked respawn, and
  brownout load-shedding by request priority,
* :mod:`repro.serve.client`   — blocking JSON-lines client (single and
  pipelined requests) plus :class:`RetryingServeClient`, which absorbs
  restarts and transient faults via reconnect + idempotent retransmit —
  against a single server or a router, indistinguishably,
* :mod:`repro.serve.metrics`  — request/batch/latency counters exposed on
  the ``stats`` op and dumped to JSONL on shutdown,
* :mod:`repro.serve.protocol` — the wire format shared by all of the
  above.

See DESIGN.md §10 for the registry format and the batching/backpressure
semantics, §14 for the router architecture and its failure matrix.
"""

from repro.serve.client import RetryingServeClient, ServeClient, build_solve_request
from repro.serve.metrics import RouterMetrics, ServerMetrics
from repro.serve.registry import (
    HeuristicArtifact,
    HeuristicRegistry,
    PublishBestHeuristic,
)
from repro.serve.router import (
    CircuitBreaker,
    ConsistentHashRing,
    RouterHandle,
    SolveRouter,
    brownout_threshold,
    start_router_in_thread,
)
from repro.serve.server import ServerHandle, SolveServer, start_in_thread
from repro.serve.shard import ShardProcess, ShardSpec

__all__ = [
    "HeuristicArtifact",
    "HeuristicRegistry",
    "PublishBestHeuristic",
    "SolveServer",
    "ServerHandle",
    "start_in_thread",
    "SolveRouter",
    "RouterHandle",
    "start_router_in_thread",
    "ConsistentHashRing",
    "CircuitBreaker",
    "brownout_threshold",
    "ShardSpec",
    "ShardProcess",
    "ServeClient",
    "RetryingServeClient",
    "build_solve_request",
    "ServerMetrics",
    "RouterMetrics",
]
