"""Fault-tolerant router fronting a fleet of :class:`SolveServer` shards.

The router is the serving layer's answer to the ROADMAP's "millions of
users" north star: one asyncio coordinator speaking the same JSON-lines
protocol as a single server (clients do not change), fanning solve
requests out to N shard processes (:mod:`repro.serve.shard`) and owning
every failure mode between them::

    client ──► router ──► consistent-hash ring ──► shard link ──► SolveServer
                  │             (affinity)             │          (process N)
                  │                                    └─ demux by id,
                  ├─ per-request deadline → "timeout"     generation-tagged
                  ├─ circuit breaker per shard (open / half-open / closed)
                  ├─ bounded-jump failover to ring successors
                  ├─ brownout: shed lowest-priority traffic under load
                  └─ health loop: ping probes → respawn crashed/hung shards

Design rules, in order of importance:

1. **Routing is affinity, not partitioning.**  Every shard registers
   every instance; consistent hashing on ``BcpopInstance.digest`` only
   decides which shard's ``EvaluationMemo`` / ``RelaxationCache`` stays
   hot for a digest.  Any shard can serve any request bit-identically
   (a solve is a pure function), so failover never risks correctness.
2. **Reject explicitly, never collapse.**  A full shard queue is an
   ``overloaded`` fast-reject; fleet-wide pressure enters *brownout*,
   shedding lowest-priority requests first (highest priority always
   passes).  Both are retryable codes the
   :class:`~repro.serve.client.RetryingServeClient` already understands.
3. **Replace, don't trust.**  A shard that misses a liveness deadline is
   SIGKILLed and respawned with a bumped generation; replies from a
   retired generation are dropped, exactly like the supervised
   executor's attempt-tagged results (DESIGN.md §11).
4. **Chaos is a plan, not entropy.**  A deterministic
   :class:`~repro.parallel.faults.ShardFaultPlan` can kill/hang/slow/
   drop a *named shard at a named arrival index*, so the chaos suite
   asserts exact fault counts and bit-identical served %-gaps across a
   mid-stream shard crash.
"""

from __future__ import annotations

import asyncio
import bisect
import contextlib
import hashlib
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.bcpop.instance import BcpopInstance
from repro.bcpop.io import bcpop_from_dict, bcpop_to_dict
from repro.parallel.faults import ShardFaultPlan
from repro.serve import protocol
from repro.serve.metrics import RouterMetrics
from repro.serve.server import _RequestError
from repro.serve.shard import SHARD_START_TIMEOUT, ShardProcess, ShardSpec

__all__ = [
    "ConsistentHashRing",
    "CircuitBreaker",
    "SolveRouter",
    "RouterHandle",
    "start_router_in_thread",
    "brownout_threshold",
]


# ---------------------------------------------------------------------------
# consistent hashing
# ---------------------------------------------------------------------------


def _ring_hash(key: str) -> int:
    """Stable 64-bit ring position (sha256 prefix — never ``hash()``,
    which is salted per process and would re-deal the ring every run)."""
    return int.from_bytes(hashlib.sha256(key.encode("utf-8")).digest()[:8], "big")


class ConsistentHashRing:
    """Consistent hashing with virtual nodes.

    Each node is placed at ``replicas`` pseudo-random ring positions; a
    key routes to the first node clockwise from its own position.  The
    property the router leans on: when a node joins or leaves, only the
    keys adjacent to its virtual points move (≈ ``1/N`` of them), so a
    membership change never re-deals the whole fleet's cache affinity —
    pinned by the stability tests in tests/test_router.py.
    """

    def __init__(self, nodes: Iterable[str] = (), replicas: int = 64) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self._nodes: set[str] = set()
        self._points: list[tuple[int, str]] = []  # sorted (position, node)
        for node in nodes:
            self.add(node)

    @property
    def nodes(self) -> tuple[str, ...]:
        return tuple(sorted(self._nodes))

    def __len__(self) -> int:
        return len(self._nodes)

    def add(self, node: str) -> None:
        if node in self._nodes:
            raise ValueError(f"node {node!r} already on the ring")
        self._nodes.add(node)
        for replica in range(self.replicas):
            bisect.insort(self._points, (_ring_hash(f"{node}#{replica}"), node))

    def remove(self, node: str) -> None:
        if node not in self._nodes:
            raise KeyError(f"node {node!r} not on the ring")
        self._nodes.discard(node)
        self._points = [(h, n) for h, n in self._points if n != node]

    def primary(self, key: str) -> str:
        """The owning node for ``key``."""
        return self.candidates(key, 1)[0]

    def candidates(self, key: str, k: int) -> list[str]:
        """Up to ``k`` distinct nodes, clockwise from ``key``'s position.

        ``candidates(key, 1+jumps)`` is the router's bounded-jump
        failover order: the primary first, then the shards whose caches
        are the *next most likely* to warm up for this digest range.
        """
        if not self._points:
            raise KeyError("ring is empty")
        start = bisect.bisect(self._points, (_ring_hash(key), ""))
        ordered: list[str] = []
        for offset in range(len(self._points)):
            node = self._points[(start + offset) % len(self._points)][1]
            if node not in ordered:
                ordered.append(node)
                if len(ordered) >= k:
                    break
        return ordered


# ---------------------------------------------------------------------------
# circuit breaker
# ---------------------------------------------------------------------------


class CircuitBreaker:
    """Per-shard circuit breaker: closed → open → half-open → closed.

    * **closed** — requests flow; ``threshold`` *consecutive* failures
      open the breaker (one success resets the count).
    * **open** — requests are skipped without touching the shard; after
      ``cooldown`` seconds the next :meth:`allow` admits exactly one
      probe (→ half-open).
    * **half-open** — the probe's outcome decides: success closes the
      breaker, failure re-opens it (cooldown restarts).

    The clock is injectable so the open/half-open/close cycle is
    unit-tested without sleeping.
    """

    def __init__(
        self,
        threshold: int = 3,
        cooldown: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
        on_open: Callable[[], None] | None = None,
    ) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {cooldown}")
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self._on_open = on_open
        self.state = "closed"
        self.consecutive_failures = 0
        self.opens = 0  # lifetime closed/half-open -> open transitions
        self._opened_at = 0.0
        self._probe_outstanding = False

    def allow(self) -> bool:
        """May a request be sent now?  (Half-open admits one probe.)"""
        if self.state == "closed":
            return True
        if self.state == "open":
            if self._clock() - self._opened_at < self.cooldown:
                return False
            self.state = "half-open"
            self._probe_outstanding = True
            return True
        # half-open: one probe at a time
        if self._probe_outstanding:
            return False
        self._probe_outstanding = True
        return True

    def record_success(self) -> None:
        self.state = "closed"
        self.consecutive_failures = 0
        self._probe_outstanding = False

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if self.state == "half-open" or (
            self.state == "closed" and self.consecutive_failures >= self.threshold
        ):
            self._open()
        self._probe_outstanding = False

    def reset(self) -> None:
        """Force-close (a freshly respawned shard starts trusted)."""
        self.record_success()

    def _open(self) -> None:
        self.state = "open"
        self.opens += 1
        self._opened_at = self._clock()
        if self._on_open is not None:
            self._on_open()


# ---------------------------------------------------------------------------
# brownout
# ---------------------------------------------------------------------------


def brownout_threshold(
    inflight: int,
    capacity: int,
    start: float,
    max_priority: int = protocol.MAX_PRIORITY,
) -> int:
    """Priority below which requests are shed at the current load.

    Returns 0 (shed nothing) below the ``start`` load fraction, then
    ramps linearly to ``max_priority`` at full capacity — progressively
    shedding *lowest-priority traffic first* while priority
    ``max_priority`` always passes: brownout degrades, never collapses.
    Pure so it is property-testable without a fleet.
    """
    if capacity <= 0:
        return 0  # no live shards: routing will answer `unavailable`
    load = inflight / capacity
    if load < start:
        return 0
    span = max(1e-9, 1.0 - start)
    frac = min(1.0, (load - start) / span)
    return min(max_priority, 1 + int(frac * (max_priority - 1)))


# ---------------------------------------------------------------------------
# shard links
# ---------------------------------------------------------------------------


class _ShardDown(Exception):
    """The shard connection is unusable (dead process, lost link, or a
    retired generation) — the request should fail over."""


class _ShardLink:
    """One demultiplexed connection to a shard, generation-tagged.

    All forwarded requests share this connection (which is what lets the
    shard's micro-batcher see them as one batch); replies are matched
    back by link-owned correlation id.  When the connection dies, every
    pending future fails with :class:`_ShardDown` so the owning request
    tasks immediately fail over; replies that arrive with no pending
    future (late, or raced out of a retired generation) are counted and
    dropped, never delivered.
    """

    def __init__(
        self,
        name: str,
        generation: int,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        metrics: RouterMetrics,
    ) -> None:
        self.name = name
        self.generation = generation
        self.alive = True
        self._reader = reader
        self._writer = writer
        self._metrics = metrics
        self._pending: dict[int, asyncio.Future[dict]] = {}
        self._next_id = 0
        # Retained on the instance: the demux task lives exactly as long
        # as the link (R011 — no fire-and-forget tasks in repro.serve).
        self._reader_task = asyncio.get_running_loop().create_task(self._read_loop())

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    message = protocol.decode(line)
                except ValueError:
                    continue  # a torn line during teardown, not data
                future = self._pending.pop(message.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(message)
                else:
                    self._metrics.stale_drops += 1
        except (ConnectionResetError, OSError, ValueError):
            pass
        finally:
            self._fail_pending()

    def _fail_pending(self) -> None:
        self.alive = False
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(
                    _ShardDown(f"shard {self.name!r} (gen {self.generation}) link lost")
                )

    async def request(self, message: dict, timeout: float | None) -> dict:
        if not self.alive:
            raise _ShardDown(f"shard {self.name!r} (gen {self.generation}) is down")
        self._next_id += 1
        rid = self._next_id
        message = dict(message)
        message["id"] = rid
        future: asyncio.Future[dict] = asyncio.get_running_loop().create_future()
        self._pending[rid] = future
        try:
            self._writer.write(protocol.encode(message))
            await self._writer.drain()
            if timeout is None:
                return await future
            return await asyncio.wait_for(future, timeout)
        except (ConnectionResetError, BrokenPipeError, OSError) as exc:
            raise _ShardDown(f"shard {self.name!r} write failed: {exc}") from exc
        finally:
            self._pending.pop(rid, None)

    async def close(self) -> None:
        self._fail_pending()
        self._reader_task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await self._reader_task
        self._writer.close()
        with contextlib.suppress(Exception):
            await self._writer.wait_closed()


@dataclass
class _ShardState:
    """Router-side view of one shard: process, link, breaker, load."""

    process: ShardProcess
    breaker: CircuitBreaker
    link: _ShardLink | None = None
    inflight: int = 0
    routed: int = 0
    respawning: bool = False

    @property
    def name(self) -> str:
        return self.process.name

    def usable_link(self) -> _ShardLink | None:
        """The live, current-generation link (``None`` = not routable)."""
        link = self.link
        if link is None or not link.alive:
            return None
        if link.generation != self.process.generation:
            return None  # retired generation: never route into it
        return link


# ---------------------------------------------------------------------------
# the router
# ---------------------------------------------------------------------------


class SolveRouter:
    """Coordinator for ``n_shards`` supervised :class:`SolveServer` shards.

    Speaks the same wire protocol as a single server (``solve`` /
    ``ping`` / ``stats`` / ``pause`` / ``resume`` / ``shutdown``) plus
    the ``shards`` topology op, so every existing client — including
    :class:`~repro.serve.client.RetryingServeClient` — works unchanged.

    Parameters
    ----------
    instances:
        Instances every shard registers (routing needs their digests).
    n_shards:
        Fleet size.
    registry_root:
        Optional :class:`~repro.serve.registry.HeuristicRegistry` root
        shared by all shards (ref/family resolution is read-through, so
        a generation-tagged ``promote``/``rollback`` rolls the whole
        fleet without restarting anything).
    failover_jumps:
        Bounded-jump rerouting: how many ring successors may be tried
        after the primary before the request is answered ``unavailable``.
    breaker_threshold / breaker_cooldown:
        Per-shard circuit breaker: consecutive failures to open, and
        seconds before a half-open probe.
    health_interval / health_timeout:
        Liveness probing cadence and the ping deadline past which a
        shard counts as hung (→ SIGKILL + respawn, generation bump).
    request_timeout:
        Router-edge deadline per solve (covers queueing, forwarding and
        failover); expiry answers the retryable ``timeout`` code.
    shard_inflight_limit:
        Bounded per-shard outstanding-request queue; a full fleet
        answers ``overloaded`` instead of buffering without limit.
    brownout_start:
        Fleet load fraction at which brownout begins shedding
        lowest-priority requests (see :func:`brownout_threshold`).
    shard_fault_plan:
        Deterministic chaos plan (kill/hang/slow/drop a named shard at a
        named arrival index).
    """

    def __init__(
        self,
        instances: Sequence[BcpopInstance] = (),
        n_shards: int = 2,
        registry_root: str | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        replicas: int = 64,
        failover_jumps: int = 2,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 1.0,
        health_interval: float = 0.2,
        health_timeout: float = 2.0,
        request_timeout: float | None = None,
        shard_inflight_limit: int = 64,
        brownout_start: float = 0.85,
        shard_fault_plan: ShardFaultPlan | None = None,
        metrics_path: Any = None,
        shard_start_timeout: float = SHARD_START_TIMEOUT,
        lp_backend: str = "scipy",
        memo_size: int | None = None,
        max_batch_size: int = 32,
        max_wait_us: int = 2_000,
        queue_depth: int = 128,
        shard_request_timeout: float | None = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if failover_jumps < 0:
            raise ValueError(f"failover_jumps must be >= 0, got {failover_jumps}")
        if shard_inflight_limit < 1:
            raise ValueError(f"shard_inflight_limit must be >= 1, got {shard_inflight_limit}")
        if not 0.0 <= brownout_start <= 1.0:
            raise ValueError(f"brownout_start must be in [0, 1], got {brownout_start}")
        if request_timeout is not None and request_timeout <= 0:
            raise ValueError(f"request_timeout must be > 0, got {request_timeout}")
        self.host = host
        self.port = port
        self.failover_jumps = failover_jumps
        self.health_interval = health_interval
        self.health_timeout = health_timeout
        self.request_timeout = request_timeout
        self.shard_inflight_limit = shard_inflight_limit
        self.brownout_start = brownout_start
        self.shard_fault_plan = shard_fault_plan
        self.metrics_path = metrics_path
        self.metrics = RouterMetrics()
        self._breaker_threshold = breaker_threshold
        self._breaker_cooldown = breaker_cooldown
        instance_docs = tuple(bcpop_to_dict(inst) for inst in instances)
        self._digests: tuple[str, ...] = tuple(inst.digest for inst in instances)
        self._shards: dict[str, _ShardState] = {}
        for index in range(n_shards):
            spec = ShardSpec(
                name=f"shard-{index}",
                instance_docs=instance_docs,
                registry_root=registry_root,
                lp_backend=lp_backend,
                memo_size=memo_size,
                max_batch_size=max_batch_size,
                max_wait_us=max_wait_us,
                queue_depth=queue_depth,
                request_timeout=shard_request_timeout,
            )
            self._shards[spec.name] = _ShardState(
                process=ShardProcess(spec, start_timeout=shard_start_timeout),
                breaker=CircuitBreaker(
                    threshold=breaker_threshold,
                    cooldown=breaker_cooldown,
                    on_open=self._note_breaker_open,
                ),
            )
        self.ring = ConsistentHashRing(self._shards, replicas=replicas)
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stopping: asyncio.Event | None = None
        self._stopped = False
        self._health_task: asyncio.Task | None = None
        self._respawn_tasks: set[asyncio.Task] = set()

    def _note_breaker_open(self) -> None:
        self.metrics.breaker_opens += 1

    # -- lifecycle -----------------------------------------------------------

    @property
    def shard_names(self) -> tuple[str, ...]:
        return tuple(self._shards)

    async def start(self) -> None:
        """Spawn the fleet, connect the links, bind the client socket."""
        if self._server is not None:
            raise RuntimeError("router already started")
        self._loop = asyncio.get_running_loop()
        self._stopping = asyncio.Event()
        try:
            # Launch every process first (spawns overlap), then collect
            # ports — fleet start-up costs one shard's spawn, not N.
            for state in self._shards.values():
                state.process.launch()
            for state in self._shards.values():
                await self._loop.run_in_executor(None, state.process.wait_ready)
            for state in self._shards.values():
                await self._connect_shard(state)
        except BaseException:
            await self._teardown_shards()
            raise
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port, limit=protocol.MAX_LINE_BYTES
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._health_task = self._loop.create_task(self._health_loop())

    async def stop(self) -> None:
        """Stop accepting, cancel supervision, tear the fleet down."""
        if self._stopped:
            return
        self._stopped = True
        if self._stopping is not None:
            self._stopping.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in (self._health_task, *self._respawn_tasks):
            if task is not None:
                task.cancel()
        for task in (self._health_task, *self._respawn_tasks):
            if task is not None:
                with contextlib.suppress(asyncio.CancelledError):
                    await task
        await self._teardown_shards()
        if self.metrics_path is not None:
            self.metrics.dump_jsonl(self.metrics_path, **self._stats_extra())

    async def _teardown_shards(self) -> None:
        for state in self._shards.values():
            if state.link is not None:
                await state.link.close()
                state.link = None
        loop = self._loop if self._loop is not None else asyncio.get_running_loop()
        for state in self._shards.values():
            await loop.run_in_executor(None, state.process.stop)

    async def serve_until_stopped(self) -> None:
        """``start`` + run until a ``shutdown`` op (or :meth:`request_stop`)."""
        if self._server is None:
            await self.start()
        assert self._stopping is not None
        try:
            await self._stopping.wait()
        finally:
            await self.stop()

    def request_stop(self) -> None:
        if self._stopping is not None:
            self._stopping.set()

    # -- shard supervision -----------------------------------------------------

    async def _connect_shard(self, state: _ShardState) -> None:
        """Open + verify a link to a (running) shard process."""
        assert state.process.port is not None
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", state.process.port, limit=protocol.MAX_LINE_BYTES
        )
        link = _ShardLink(
            state.name, state.process.generation, reader, writer, self.metrics
        )
        try:
            reply = await link.request({"op": "ping"}, timeout=self.health_timeout)
        except (_ShardDown, asyncio.TimeoutError):
            await link.close()
            raise
        version = reply.get("version")
        if version != protocol.PROTOCOL_VERSION:
            await link.close()
            raise RuntimeError(
                f"shard {state.name!r} speaks protocol {version!r}, "
                f"router needs {protocol.PROTOCOL_VERSION}"
            )
        state.link = link
        state.breaker.reset()

    async def _health_loop(self) -> None:
        """Liveness sweep: ping every shard; replace the dead and the hung.

        The supervised-executor discipline one layer up: detection is a
        missed deadline (never a guess), the remedy is a replacement
        process with a fresh generation, and the sweep itself must stay
        cheap enough to run forever.
        """
        while True:
            await asyncio.sleep(self.health_interval)
            for name in self.shard_names:  # fixed order: deterministic sweeps
                state = self._shards[name]
                if state.respawning:
                    continue
                if not state.process.is_alive():
                    self._begin_respawn(state)
                    continue
                if state.usable_link() is None:
                    # Alive process, lost/stale link (drop fault, torn
                    # connection): reconnect without paying a respawn.
                    if state.link is not None:
                        await state.link.close()
                        state.link = None
                    try:
                        await self._connect_shard(state)
                    except (OSError, _ShardDown, asyncio.TimeoutError, RuntimeError):
                        self.metrics.health_failures += 1
                        self._begin_respawn(state)
                    continue
                try:
                    await state.link.request(
                        {"op": "ping"}, timeout=self.health_timeout
                    )
                except (_ShardDown, asyncio.TimeoutError):
                    # Hung (SIGSTOP, stuck loop) or just died: replace.
                    self.metrics.health_failures += 1
                    self._begin_respawn(state)

    def _begin_respawn(self, state: _ShardState) -> None:
        state.respawning = True
        assert self._loop is not None
        task = self._loop.create_task(self._respawn_shard(state))
        # Retained until done (R011): a lost respawn task is a lost shard.
        self._respawn_tasks.add(task)
        task.add_done_callback(self._respawn_tasks.discard)

    async def _respawn_shard(self, state: _ShardState) -> None:
        """Replace one shard: kill, respawn (new generation), reconnect.

        Runs off the event loop's thread pool for the blocking parts so
        routing (and failover *around* this shard) continues while the
        replacement boots.  Failure leaves the shard down; the next
        health sweep simply tries again.
        """
        try:
            if state.link is not None:
                await state.link.close()  # fail pending -> requests fail over now
                state.link = None
            assert self._loop is not None
            await self._loop.run_in_executor(None, state.process.respawn)
            self.metrics.respawns += 1
            await self._connect_shard(state)  # breaker resets: automatic failback
        except asyncio.CancelledError:
            raise
        except (OSError, RuntimeError, TimeoutError, _ShardDown):
            pass  # still down; the health loop owns the retry cadence
        finally:
            state.respawning = False

    # -- connection handling ---------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionResetError, asyncio.LimitOverrunError, ValueError):
                    break
                if not line:
                    break
                # One task per request (retained in `tasks`): solves fail
                # over / await shards without blocking subsequent lines.
                task = asyncio.ensure_future(self._process(line, writer, write_lock))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        finally:
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            writer.close()
            with contextlib.suppress(ConnectionResetError, BrokenPipeError):
                await writer.wait_closed()

    async def _write(
        self, writer: asyncio.StreamWriter, lock: asyncio.Lock, response: dict
    ) -> None:
        async with lock:
            writer.write(protocol.encode(response))
            with contextlib.suppress(ConnectionResetError, BrokenPipeError):
                await writer.drain()

    async def _process(
        self, line: bytes, writer: asyncio.StreamWriter, lock: asyncio.Lock
    ) -> None:
        try:
            request = protocol.decode(line)
        except ValueError as exc:
            self.metrics.errors += 1
            await self._write(
                writer, lock, protocol.error_response({}, "bad-request", str(exc))
            )
            return
        op = request.get("op")
        if op == "solve":
            await self._process_solve(request, writer, lock)
        elif op == "ping":
            await self._write(
                writer, lock,
                protocol.ok_response(
                    request, pong=True, version=protocol.PROTOCOL_VERSION, role="router"
                ),
            )
        elif op == "stats":
            await self._write(
                writer, lock,
                protocol.ok_response(
                    request, stats=self.metrics.snapshot(**self._stats_extra())
                ),
            )
        elif op == "shards":
            await self._write(
                writer, lock,
                protocol.ok_response(request, shards=self._topology()),
            )
        elif op in ("pause", "resume"):
            await self._broadcast(op)
            await self._write(
                writer, lock, protocol.ok_response(request, paused=op == "pause")
            )
        elif op == "shutdown":
            await self._write(writer, lock, protocol.ok_response(request, stopping=True))
            self.request_stop()
        else:
            self.metrics.errors += 1
            await self._write(
                writer, lock,
                protocol.error_response(request, "unknown-op", f"unknown op {op!r}"),
            )

    async def _broadcast(self, op: str) -> None:
        """Best-effort fan-out of a control op to every reachable shard."""
        for name in self.shard_names:
            link = self._shards[name].usable_link()
            if link is None:
                continue
            with contextlib.suppress(_ShardDown, asyncio.TimeoutError):
                await link.request({"op": op}, timeout=self.health_timeout)

    # -- solve routing ---------------------------------------------------------

    async def _process_solve(
        self, request: dict, writer: asyncio.StreamWriter, lock: asyncio.Lock
    ) -> None:
        # Arrival index before any await (request tasks start in line
        # order and run synchronously to their first suspension), so
        # shard fault plans keyed on this index replay deterministically.
        arrival = self.metrics.requests
        self.metrics.requests += 1
        started = time.perf_counter()
        if self.shard_fault_plan is not None:
            spec = self.shard_fault_plan.fault_at(arrival)
            if spec is not None:
                await self._apply_shard_fault(spec)
        try:
            digest = self._routing_digest(request)
        except _RequestError as exc:
            self.metrics.errors += 1
            await self._write(
                writer, lock, protocol.error_response(request, exc.code, str(exc))
            )
            return
        # Brownout: shed lowest-priority traffic before it consumes a
        # shard slot.  The reject is immediate and retryable.
        threshold = brownout_threshold(
            sum(s.inflight for s in self._shards.values()),
            sum(
                self.shard_inflight_limit
                for s in self._shards.values()
                if s.usable_link() is not None
            ),
            self.brownout_start,
        )
        if protocol.request_priority(request) < threshold:
            self.metrics.brownout_shed += 1
            self.metrics.overloads += 1
            response = protocol.error_response(
                request, "overloaded",
                f"brownout: shedding priority < {threshold}; retry later",
            )
            response["brownout"] = True
            await self._write(writer, lock, response)
            return
        try:
            reply = await self._route(request, digest)
        except _RequestError as exc:
            self.metrics.errors += 1
            if exc.code == "timeout":
                self.metrics.timeouts += 1
            elif exc.code == "overloaded":
                self.metrics.overloads += 1
            await self._write(
                writer, lock, protocol.error_response(request, exc.code, str(exc))
            )
            return
        if reply.get("ok", False):
            self.metrics.observe_latency(time.perf_counter() - started)
        else:
            self.metrics.errors += 1
        await self._write(writer, lock, reply)

    def _routing_digest(self, request: dict) -> str:
        """The consistent-hash key for a solve (instance digest)."""
        spec = request.get("instance")
        if spec is None:
            if len(self._digests) == 1:
                return self._digests[0]
            raise _RequestError(
                "bad-request",
                f"no instance given and {len(self._digests)} registered",
            )
        if isinstance(spec, str):
            return spec  # shards validate unknown digests
        if isinstance(spec, dict):
            try:
                return bcpop_from_dict(spec).digest
            except (ValueError, KeyError, TypeError) as exc:
                raise _RequestError("bad-request", f"bad inline instance: {exc}") from exc
        raise _RequestError("bad-request", "instance must be a digest or a document")

    async def _route(self, request: dict, digest: str) -> dict:
        """Forward with bounded-jump failover; returns the shard's reply
        (re-correlated to the client's id)."""
        assert self._loop is not None
        deadline = (
            None
            if self.request_timeout is None
            else self._loop.time() + self.request_timeout
        )
        forward = {k: v for k, v in request.items() if k != "id"}
        candidates = self.ring.candidates(digest, 1 + self.failover_jumps)
        saw_full_queue = False
        for jump, name in enumerate(candidates):
            state = self._shards[name]
            link = state.usable_link()
            if link is None:
                continue  # down or respawning: jump to the next successor
            if state.inflight >= self.shard_inflight_limit:
                saw_full_queue = True
                continue
            if not state.breaker.allow():
                continue
            if jump > 0:
                self.metrics.failovers += 1
            state.inflight += 1
            state.routed += 1
            self.metrics.routed += 1
            try:
                timeout = (
                    None if deadline is None
                    else max(0.001, deadline - self._loop.time())
                )
                reply = await link.request(forward, timeout=timeout)
            except asyncio.TimeoutError:
                # The *router's* deadline expired — it is global across
                # jumps, so there is no budget left to fail over with.
                state.breaker.record_failure()
                raise _RequestError(
                    "timeout",
                    f"solve exceeded the {self.request_timeout}s router deadline; "
                    "safe to retry (solves are idempotent)",
                ) from None
            except _ShardDown:
                state.breaker.record_failure()
                continue  # bounded jump to the next ring successor
            finally:
                state.inflight -= 1
            state.breaker.record_success()
            if not reply.get("ok", False) and reply.get("error") == "overloaded":
                saw_full_queue = True
                continue  # that shard's queue is full; try a successor
            reply = dict(reply)
            if "id" in request:
                reply["id"] = request["id"]
            else:
                reply.pop("id", None)
            return reply
        if saw_full_queue:
            raise _RequestError(
                "overloaded",
                f"all reachable shards for digest {digest[:12]} are at their "
                f"in-flight limit ({self.shard_inflight_limit}); retry later",
            )
        raise _RequestError(
            "unavailable",
            f"no live shard for digest {digest[:12]} within "
            f"{1 + self.failover_jumps} ring jumps; respawn in progress, retry",
        )

    # -- chaos ----------------------------------------------------------------

    async def _apply_shard_fault(self, spec: Any) -> None:
        """Realize one planned shard fault, before routing the arrival."""
        state = self._shards.get(spec.shard)
        if state is None:
            return
        self.metrics.shard_faults_injected += 1
        if spec.kind == "kill":
            assert self._loop is not None
            await self._loop.run_in_executor(None, state.process.kill)
            if state.link is not None:
                await state.link.close()  # deterministic: pending fail over now
                state.link = None
        elif spec.kind == "hang":
            state.process.suspend()  # alive but silent: the probe deadline decides
        elif spec.kind == "drop":
            if state.link is not None:
                await state.link.close()  # connection loss; process unharmed
                state.link = None
        elif spec.kind == "slow":
            await asyncio.sleep(spec.seconds)

    # -- stats ----------------------------------------------------------------

    def _topology(self) -> list[dict]:
        return [
            {
                "name": state.name,
                "port": state.process.port,
                "pid": state.process.pid,
                "generation": state.process.generation,
                "alive": state.process.is_alive(),
                "connected": state.usable_link() is not None,
                "breaker": state.breaker.state,
                "breaker_opens": state.breaker.opens,
                "inflight": state.inflight,
                "routed": state.routed,
                "respawns": state.process.respawns,
            }
            for state in (self._shards[name] for name in self.shard_names)
        ]

    def _stats_extra(self) -> dict:
        live = sum(1 for s in self._shards.values() if s.usable_link() is not None)
        return {
            "role": "router",
            "protocol_version": protocol.PROTOCOL_VERSION,
            "n_shards": len(self._shards),
            "live_shards": live,
            "ring_replicas": self.ring.replicas,
            "failover_jumps": self.failover_jumps,
            "shard_inflight_limit": self.shard_inflight_limit,
            "brownout_start": self.brownout_start,
            "inflight": sum(s.inflight for s in self._shards.values()),
            "shards": self._topology(),
        }


# -- thread embedding ---------------------------------------------------------


class RouterHandle:
    """A :class:`SolveRouter` running on its own thread + event loop
    (the synchronous-host embedding, mirroring
    :class:`~repro.serve.server.ServerHandle`)."""

    def __init__(self, router: SolveRouter, thread: threading.Thread) -> None:
        self.router = router
        self.thread = thread

    @property
    def address(self) -> tuple[str, int]:
        return (self.router.host, self.router.port)

    def stop(self, timeout: float = 60.0) -> None:
        loop = self.router._loop
        if loop is not None and self.thread.is_alive():
            loop.call_soon_threadsafe(self.router.request_stop)
        self.thread.join(timeout)
        if self.thread.is_alive():
            raise RuntimeError("router thread did not stop in time")

    def __enter__(self) -> "RouterHandle":
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()


def start_router_in_thread(
    router: SolveRouter, timeout: float = 120.0
) -> RouterHandle:
    """Start ``router`` (and its whole shard fleet) on a daemon thread;
    returns once the client socket is bound.  The generous default
    timeout covers N process spawns on a loaded machine."""
    started = threading.Event()
    startup_error: list[BaseException] = []

    async def _main() -> None:
        try:
            await router.start()
        except BaseException as exc:
            startup_error.append(exc)
            started.set()
            raise
        started.set()
        await router.serve_until_stopped()

    def _runner() -> None:
        try:
            asyncio.run(_main())
        except BaseException:
            if not startup_error:
                raise

    thread = threading.Thread(target=_runner, name="repro-solve-router", daemon=True)
    thread.start()
    if not started.wait(timeout):
        raise RuntimeError("router failed to start in time")
    if startup_error:
        thread.join(timeout)
        raise startup_error[0]
    return RouterHandle(router, thread)
