"""Micro-batched asyncio solve server for trained GP heuristics.

The server turns the batched evaluation machinery of PR 1 into an
online service.  Request flow::

    client line ──► connection handler ──► bounded asyncio.Queue ──► batcher
                        (parse/resolve)        (backpressure)          │
                                                                      ▼
    client line ◄── response writer ◄── futures ◄── EvaluationPipeline batch

* **Micro-batching** — the batcher takes the first queued request, then
  keeps collecting until ``max_batch_size`` requests are in hand or
  ``max_wait_us`` has elapsed, whichever first.  The batch is grouped by
  instance digest and pushed through each instance's
  :class:`~repro.bcpop.evaluate.EvaluationPipeline`, so concurrent
  clients asking for the same (prices, heuristic) pair share one solve
  via the memo and in-batch dedup — the serving-time analogue of the
  population-evaluation path, with identical (bit-exact) outcomes.
* **Backpressure** — the queue is bounded (``queue_depth``); when full,
  the request is rejected *immediately* with an ``overloaded`` error
  response instead of buffering without limit.  Rejection is explicit
  and cheap; the client decides whether to back off or shed.
* **Blocking work off the loop** — pipeline execution runs in a worker
  thread (``run_in_executor``), so the event loop keeps accepting
  connections and rejecting overload while a batch solves.  Exactly one
  batch executes at a time, which keeps the shared memo/pipeline
  single-writer (no locking) and makes batch boundaries deterministic
  under ``pause``/``resume``.

Serial vs batched dispatch never changes results: every solve is a pure
function of (instance, prices, tree), memo hits return the original
outcome object, and JSON float round-trips are exact — the acceptance
contract pinned by tests/test_serve_server.py.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.bcpop.evaluate import EvaluationPipeline, LowerLevelEvaluator
from repro.bcpop.instance import BcpopInstance
from repro.bcpop.io import bcpop_from_dict
from repro.gp.tree import SyntaxTree
from repro.parallel.executor import Executor, SerialExecutor
from repro.parallel.faults import FaultInjector
from repro.serve import protocol
from repro.serve.metrics import ServerMetrics
from repro.serve.registry import HeuristicRegistry

__all__ = ["SolveServer", "ServerHandle", "start_in_thread"]


class _RequestError(Exception):
    """A request that cannot be served (carries the protocol error code)."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


@dataclass
class _PendingSolve:
    """One accepted solve request waiting for its micro-batch."""

    request: dict
    digest: str
    prices: np.ndarray
    tree: SyntaxTree
    future: asyncio.Future
    enqueued_at: float = field(default_factory=time.perf_counter)


class SolveServer:
    """TCP/JSON-lines solve service over registered BCPOP instances.

    Parameters
    ----------
    registry:
        Optional :class:`HeuristicRegistry` for resolving ``{"ref": ...}``
        / ``{"family": ...}`` heuristics; inline ``{"tree": ...}``
        requests work without one.
    instances:
        Instances to pre-register (requests may also inline instances).
    executor:
        Evaluation substrate shared by all per-instance pipelines;
        ``None`` builds a private :class:`SerialExecutor`.  The server
        closes the executor on stop in either case — safe even when the
        caller also closes it, since executor shutdown is idempotent.
    max_batch_size / max_wait_us:
        The micro-batching window: a batch closes at ``max_batch_size``
        requests or after ``max_wait_us`` microseconds, whichever first.
    queue_depth:
        Bound of the request queue; enqueue on a full queue returns the
        ``overloaded`` backpressure response.
    memo_size:
        Per-instance outcome-memo capacity (``None`` keeps the evaluator
        default).
    metrics_path:
        When set, a metrics snapshot is appended (JSONL) on shutdown.
    request_timeout:
        Per-request deadline in seconds, measured from acceptance to
        batch completion.  A solve past it gets an explicit ``timeout``
        error reply instead of waiting forever behind a stuck batch —
        the retrying client treats that code as safe to retransmit
        (solve is pure/idempotent).
    fault_injector:
        Optional :class:`~repro.parallel.faults.FaultInjector` consulted
        once per solve request by arrival index (the chaos-test hook):
        ``drop``/``crash`` abort the connection mid-stream, ``error``
        replies ``unavailable``, ``hang`` never replies (the client's
        timeout fires), ``slow`` delays acceptance.
    """

    def __init__(
        self,
        registry: HeuristicRegistry | None = None,
        instances: tuple[BcpopInstance, ...] | list[BcpopInstance] = (),
        host: str = "127.0.0.1",
        port: int = 0,
        executor: Executor | None = None,
        lp_backend: str = "scipy",
        memo_size: int | None = None,
        max_batch_size: int = 32,
        max_wait_us: int = 2_000,
        queue_depth: int = 128,
        metrics_path=None,
        request_timeout: float | None = None,
        fault_injector: FaultInjector | None = None,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_wait_us < 0:
            raise ValueError(f"max_wait_us must be >= 0, got {max_wait_us}")
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
        if request_timeout is not None and request_timeout <= 0:
            raise ValueError(f"request_timeout must be > 0, got {request_timeout}")
        self.registry = registry
        self.host = host
        self.port = port
        self.executor = executor if executor is not None else SerialExecutor()
        self.lp_backend = lp_backend
        self.memo_size = memo_size
        self.max_batch_size = max_batch_size
        self.max_wait_us = max_wait_us
        self.queue_depth = queue_depth
        self.metrics_path = metrics_path
        self.request_timeout = request_timeout
        self.fault_injector = fault_injector
        self.metrics = ServerMetrics()
        self._pipelines: dict[str, EvaluationPipeline] = {}
        for instance in instances:
            self.register_instance(instance)
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._queue: asyncio.Queue | None = None
        self._batcher: asyncio.Task | None = None
        self._unpaused: asyncio.Event | None = None
        self._stopping: asyncio.Event | None = None
        self._stopped = False

    # -- instance / heuristic resolution ------------------------------------

    def register_instance(self, instance: BcpopInstance) -> str:
        """Make an instance solvable; returns its digest (idempotent)."""
        digest = instance.digest
        if digest not in self._pipelines:
            evaluator = LowerLevelEvaluator(
                instance,
                lp_backend=self.lp_backend,
                **({} if self.memo_size is None else {"memo_size": self.memo_size}),
            )
            self._pipelines[digest] = EvaluationPipeline(evaluator, self.executor)
        return digest

    @property
    def instance_digests(self) -> tuple[str, ...]:
        return tuple(self._pipelines)

    def _resolve_instance(self, request: dict) -> str:
        spec = request.get("instance")
        if spec is None:
            if len(self._pipelines) == 1:
                return next(iter(self._pipelines))
            raise _RequestError(
                "bad-request",
                f"no instance given and {len(self._pipelines)} registered",
            )
        if isinstance(spec, str):
            if spec not in self._pipelines:
                raise _RequestError("unknown-instance", f"no instance with digest {spec!r}")
            return spec
        if isinstance(spec, dict):
            try:
                return self.register_instance(bcpop_from_dict(spec))
            except (ValueError, KeyError, TypeError) as exc:
                raise _RequestError("bad-request", f"bad inline instance: {exc}") from exc
        raise _RequestError("bad-request", "instance must be a digest or a document")

    def _resolve_heuristic(self, request: dict) -> SyntaxTree:
        spec = request.get("heuristic")
        if isinstance(spec, str):
            spec = {"ref": spec}
        if not isinstance(spec, dict):
            raise _RequestError("bad-request", "heuristic must be a ref or an object")
        if "tree" in spec:
            try:
                return SyntaxTree.deserialize(spec["tree"])
            except (ValueError, KeyError) as exc:
                raise _RequestError("bad-request", f"bad inline tree: {exc}") from exc
        if self.registry is None:
            raise _RequestError("unknown-heuristic", "server has no registry attached")
        try:
            if "ref" in spec:
                return self.registry.get(spec["ref"]).tree
            if "family" in spec:
                artifact = self.registry.best_for(spec["family"])
                if artifact is None:
                    raise _RequestError(
                        "unknown-heuristic", f"no artifact for family {spec['family']!r}"
                    )
                return artifact.tree
        except KeyError as exc:
            raise _RequestError("unknown-heuristic", str(exc)) from exc
        raise _RequestError("bad-request", "heuristic needs one of ref/family/tree")

    def _parse_solve(self, request: dict) -> _PendingSolve:
        digest = self._resolve_instance(request)
        tree = self._resolve_heuristic(request)
        instance = self._pipelines[digest].evaluator.instance
        try:
            prices = instance.validate_prices(
                np.asarray(request.get("prices"), dtype=np.float64)
            )
        except (ValueError, TypeError) as exc:
            raise _RequestError("bad-request", f"bad prices: {exc}") from exc
        assert self._loop is not None
        return _PendingSolve(
            request=request,
            digest=digest,
            prices=prices,
            tree=tree,
            future=self._loop.create_future(),
        )

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket and start the batcher."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue(maxsize=self.queue_depth)
        self._unpaused = asyncio.Event()
        self._unpaused.set()
        self._stopping = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port, limit=protocol.MAX_LINE_BYTES
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._batcher = self._loop.create_task(self._batch_loop())

    async def stop(self) -> None:
        """Drain the queue, stop accepting, dump metrics, close executor."""
        if self._stopped or self._server is None:
            return
        self._stopped = True
        self._stopping.set()
        self._server.close()
        await self._server.wait_closed()
        self._unpaused.set()  # a paused batcher must still drain
        await self._queue.join()
        self._batcher.cancel()
        try:
            await self._batcher
        except asyncio.CancelledError:
            pass
        if self.metrics_path is not None:
            self.metrics.dump_jsonl(self.metrics_path, **self._stats_extra())
        self.executor.close()

    async def serve_until_stopped(self) -> None:
        """``start`` + run until a ``shutdown`` op (or :meth:`request_stop`)."""
        if self._server is None:
            await self.start()
        try:
            await self._stopping.wait()
        finally:
            await self.stop()

    def request_stop(self) -> None:
        if self._stopping is not None:
            self._stopping.set()

    # -- connection handling --------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionResetError, asyncio.LimitOverrunError, ValueError):
                    break  # ValueError: line over the stream limit
                if not line:
                    break
                if len(line) > protocol.MAX_LINE_BYTES:
                    await self._write(
                        writer, write_lock,
                        protocol.error_response({}, "bad-request", "message too large"),
                    )
                    continue
                # One task per request: solves await their batch without
                # blocking subsequent lines, which is what lets a single
                # pipelining client fill a micro-batch.
                task = asyncio.ensure_future(self._process(line, writer, write_lock))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        finally:
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _write(self, writer, lock: asyncio.Lock, response: dict) -> None:
        async with lock:
            writer.write(protocol.encode(response))
            try:
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _process(self, line: bytes, writer, lock: asyncio.Lock) -> None:
        try:
            request = protocol.decode(line)
        except ValueError as exc:
            self.metrics.errors += 1
            await self._write(
                writer, lock, protocol.error_response({}, "bad-request", str(exc))
            )
            return
        op = request.get("op")
        if op == "solve":
            await self._process_solve(request, writer, lock)
        elif op == "stats":
            await self._write(
                writer, lock,
                protocol.ok_response(request, stats=self.metrics.snapshot(**self._stats_extra())),
            )
        elif op == "ping":
            await self._write(
                writer, lock,
                protocol.ok_response(
                    request, pong=True, version=protocol.PROTOCOL_VERSION
                ),
            )
        elif op == "pause":
            self._unpaused.clear()
            await self._write(writer, lock, protocol.ok_response(request, paused=True))
        elif op == "resume":
            self._unpaused.set()
            await self._write(writer, lock, protocol.ok_response(request, paused=False))
        elif op == "shutdown":
            await self._write(writer, lock, protocol.ok_response(request, stopping=True))
            self.request_stop()
        else:
            self.metrics.errors += 1
            await self._write(
                writer, lock,
                protocol.error_response(request, "unknown-op", f"unknown op {op!r}"),
            )

    async def _process_solve(self, request: dict, writer, lock: asyncio.Lock) -> None:
        # Arrival index *before* any await: per-connection request tasks
        # start in line order and run synchronously up to their first
        # suspension point, so fault plans keyed on this index replay
        # deterministically for a pipelining client.
        arrival = self.metrics.requests
        self.metrics.requests += 1
        if self.fault_injector is not None:
            fault = self.fault_injector.fault_for(arrival)
            if fault is not None:
                self.metrics.faults_injected += 1
                if fault.kind in ("drop", "crash"):
                    writer.transport.abort()  # mid-stream connection loss
                    return
                if fault.kind == "hang":
                    return  # accepted, never answered: client deadline's job
                if fault.kind == "error":
                    self.metrics.errors += 1
                    await self._write(
                        writer, lock,
                        protocol.error_response(
                            request, "unavailable",
                            "injected transient unavailability; retry",
                        ),
                    )
                    return
                if fault.kind == "slow":
                    await asyncio.sleep(fault.seconds)
        try:
            pending = self._parse_solve(request)
        except _RequestError as exc:
            self.metrics.errors += 1
            await self._write(
                writer, lock, protocol.error_response(request, exc.code, str(exc))
            )
            return
        try:
            self._queue.put_nowait(pending)
        except asyncio.QueueFull:
            self.metrics.overloads += 1
            await self._write(
                writer, lock,
                protocol.error_response(
                    request, "overloaded",
                    f"request queue full (depth {self.queue_depth}); retry later",
                ),
            )
            return
        try:
            if self.request_timeout is not None:
                # wait_for cancels the future on expiry; _execute_batch
                # skips done (incl. cancelled) futures, so the eventual
                # batch result is discarded rather than crashing it.
                outcome = await asyncio.wait_for(pending.future, self.request_timeout)
            else:
                outcome = await pending.future
        except asyncio.TimeoutError:
            self.metrics.timeouts += 1
            self.metrics.errors += 1
            await self._write(
                writer, lock,
                protocol.error_response(
                    request, "timeout",
                    f"solve exceeded the {self.request_timeout}s deadline; "
                    "safe to retry (solves are idempotent)",
                ),
            )
            return
        except _RequestError as exc:
            self.metrics.errors += 1
            await self._write(
                writer, lock, protocol.error_response(request, exc.code, str(exc))
            )
            return
        self.metrics.observe_latency(time.perf_counter() - pending.enqueued_at)
        await self._write(
            writer, lock,
            protocol.solve_response(
                request, outcome, bool(request.get("include_selection", False))
            ),
        )

    # -- micro-batching --------------------------------------------------------

    async def _get_within(self, timeout: float) -> _PendingSolve | None:
        """``queue.get`` with a deadline that can never lose an item: if
        the getter wins the race against its own cancellation, the item
        is still returned (``asyncio.wait_for`` on 3.10/3.11 can drop
        it, which here would strand a client future forever)."""
        getter = asyncio.ensure_future(self._queue.get())
        done, _ = await asyncio.wait({getter}, timeout=timeout)
        if getter in done:
            return getter.result()
        getter.cancel()
        try:
            return await getter
        except asyncio.CancelledError:
            return None

    async def _batch_loop(self) -> None:
        while True:
            await self._unpaused.wait()
            first = await self._queue.get()
            batch = [first]
            deadline = self._loop.time() + self.max_wait_us / 1e6
            while len(batch) < self.max_batch_size:
                remaining = deadline - self._loop.time()
                if remaining <= 0:
                    break
                item = await self._get_within(remaining)
                if item is None:
                    break
                batch.append(item)
            # A pause that landed after this batch started collecting
            # (the getter parks in queue.get before the op arrives) must
            # still hold it: pause means no batch *executes*, which is
            # what lets tests pin deadline behaviour deterministically.
            await self._unpaused.wait()
            await self._execute_batch(batch)

    async def _execute_batch(self, batch: list[_PendingSolve]) -> None:
        self.metrics.observe_batch(len(batch))
        by_instance: dict[str, list[_PendingSolve]] = {}
        for pending in batch:
            by_instance.setdefault(pending.digest, []).append(pending)
        for digest, group in by_instance.items():
            pipeline = self._pipelines[digest]
            requests = [(p.prices, p.tree) for p in group]
            try:
                outcomes = await self._loop.run_in_executor(
                    None, pipeline.evaluate_heuristics, requests
                )
            except Exception as exc:  # solver failure: answer, don't die
                error = _RequestError("internal", f"evaluation failed: {exc}")
                for pending in group:
                    if not pending.future.done():
                        pending.future.set_exception(error)
                continue
            for pending, outcome in zip(group, outcomes):
                if not pending.future.done():
                    pending.future.set_result(outcome)
        for _ in batch:
            self._queue.task_done()

    # -- stats ----------------------------------------------------------------

    def _stats_extra(self) -> dict:
        memo_hits = memo_misses = 0
        lp_hits = lp_misses = 0
        kernel_hits = kernel_misses = 0
        pipeline_requests = deduplicated = 0
        for pipeline in self._pipelines.values():
            memo = pipeline.evaluator.memo_stats
            if memo.get("enabled"):
                memo_hits += memo["hits"]
                memo_misses += memo["misses"]
            cache = pipeline.evaluator.cache_stats
            lp_hits += cache["hits"]
            lp_misses += cache["misses"]
            kernel = getattr(pipeline.evaluator, "kernel_stats", {"enabled": False})
            if kernel.get("enabled"):
                # Each registry heuristic compiles once per evaluator; a
                # high hit rate means served solves run cached bytecode.
                kernel_hits += kernel["hits"]
                kernel_misses += kernel["misses"]
            pipeline_requests += pipeline.n_requests
            deduplicated += pipeline.n_deduplicated
        memo_total = memo_hits + memo_misses
        lp_total = lp_hits + lp_misses
        kernel_total = kernel_hits + kernel_misses
        extra = {
            "instances": len(self._pipelines),
            "queue_depth": self.queue_depth,
            "queued": self._queue.qsize() if self._queue is not None else 0,
            "paused": bool(self._unpaused is not None and not self._unpaused.is_set()),
            "max_batch_size_config": self.max_batch_size,
            "max_wait_us": self.max_wait_us,
            "memo_hit_rate": memo_hits / memo_total if memo_total else 0.0,
            "lp_cache_hit_rate": lp_hits / lp_total if lp_total else 0.0,
            "kernel_compilations": kernel_misses,
            "kernel_hit_rate": kernel_hits / kernel_total if kernel_total else 0.0,
            "pipeline_requests": pipeline_requests,
            "pipeline_deduplicated": deduplicated,
            "executor": repr(self.executor),
        }
        if self.request_timeout is not None:
            extra["request_timeout"] = self.request_timeout
        if getattr(self.executor, "supervised", False):
            extra["faults"] = self.executor.fault_stats.as_dict()
        return extra


# -- thread embedding ---------------------------------------------------------


class ServerHandle:
    """A :class:`SolveServer` running on its own thread + event loop.

    The handle is how synchronous code (tests, benches, a training
    process that also serves) hosts a server: ``stop()`` is thread-safe
    and joins the server thread after a clean drain.
    """

    def __init__(self, server: SolveServer, thread: threading.Thread) -> None:
        self.server = server
        self.thread = thread

    @property
    def address(self) -> tuple[str, int]:
        return (self.server.host, self.server.port)

    def stop(self, timeout: float = 30.0) -> None:
        loop = self.server._loop
        if loop is not None and self.thread.is_alive():
            loop.call_soon_threadsafe(self.server.request_stop)
        self.thread.join(timeout)
        if self.thread.is_alive():
            raise RuntimeError("server thread did not stop in time")

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()


def start_in_thread(server: SolveServer, timeout: float = 30.0) -> ServerHandle:
    """Start ``server`` on a dedicated daemon thread; returns once the
    socket is bound (``server.port`` is then the real port)."""
    started = threading.Event()
    startup_error: list[BaseException] = []

    async def _main() -> None:
        try:
            await server.start()
        except BaseException as exc:
            startup_error.append(exc)
            started.set()
            raise
        started.set()
        await server.serve_until_stopped()

    def _runner() -> None:
        try:
            asyncio.run(_main())
        except BaseException:
            if not startup_error:
                raise

    thread = threading.Thread(target=_runner, name="repro-solve-server", daemon=True)
    thread.start()
    if not started.wait(timeout):
        raise RuntimeError("server failed to start in time")
    if startup_error:
        thread.join(timeout)
        raise startup_error[0]
    return ServerHandle(server, thread)
