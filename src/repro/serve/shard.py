"""Shard processes: supervised :class:`SolveServer` workers for the router.

One shard is one :class:`~repro.serve.server.SolveServer` in its own
spawn-context process, bound to an ephemeral port it reports back over a
pipe.  The router (:mod:`repro.serve.router`) supervises a fleet of them
the way PR 4's :class:`~repro.parallel.executor.ProcessExecutor`
supervises workers: liveness-probed (a ``ping`` op with a deadline),
respawned on crash or hang, and **generation-tagged** — every respawn
increments the shard's generation, so a reply that raced out of a
replaced process can never be mistaken for a live one.

Every shard registers *all* instances and shares the registry root:
consistent-hash routing is a cache-affinity optimization (each shard's
``EvaluationMemo`` / ``RelaxationCache`` stays hot for its digest range),
never a data-partitioning constraint.  That is what makes failover
trivially safe — any shard can serve any request, bit-identically,
because a solve is a pure function of (instance, prices, tree).
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from dataclasses import dataclass, field
from typing import Any

__all__ = ["ShardSpec", "ShardProcess", "SHARD_START_TIMEOUT"]

#: Default deadline for a freshly spawned shard to report its port —
#: interpreter start-up plus numpy/scipy import on a loaded machine.
SHARD_START_TIMEOUT = 60.0


@dataclass(frozen=True)
class ShardSpec:
    """Everything needed to (re)build one shard process, picklable.

    ``instance_docs`` are the JSON documents of
    :func:`repro.bcpop.io.bcpop_to_dict` — the process boundary ships
    plain data, never live objects (the spawn-safe payload rule of
    DESIGN.md §8).
    """

    name: str
    instance_docs: tuple[dict, ...] = ()
    registry_root: str | None = None
    lp_backend: str = "scipy"
    memo_size: int | None = None
    max_batch_size: int = 32
    max_wait_us: int = 2_000
    queue_depth: int = 128
    request_timeout: float | None = None

    def server_kwargs(self) -> dict[str, Any]:
        return {
            "lp_backend": self.lp_backend,
            "memo_size": self.memo_size,
            "max_batch_size": self.max_batch_size,
            "max_wait_us": self.max_wait_us,
            "queue_depth": self.queue_depth,
            "request_timeout": self.request_timeout,
        }


def _shard_main(spec: ShardSpec, conn: Any) -> None:
    """Child entry point: build the server, report the port, serve.

    Module-level on purpose (spawn-context processes pickle the target).
    The process ends when the parent terminates it — the router owns the
    lifecycle; there is no in-band shutdown dance to get wrong while the
    parent is replacing a faulty shard.
    """
    import asyncio

    from repro.bcpop.io import bcpop_from_dict
    from repro.serve.registry import HeuristicRegistry
    from repro.serve.server import SolveServer

    registry = (
        HeuristicRegistry(spec.registry_root) if spec.registry_root is not None else None
    )
    server = SolveServer(
        registry=registry,
        instances=[bcpop_from_dict(doc) for doc in spec.instance_docs],
        port=0,
        **spec.server_kwargs(),
    )

    async def _run() -> None:
        await server.start()
        conn.send(server.port)
        conn.close()
        await server.serve_until_stopped()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:  # pragma: no cover - parent-driven teardown
        pass


@dataclass
class ShardProcess:
    """Supervisor-side handle on one shard process.

    The handle's methods are synchronous and may block for seconds
    (process spawn, join) — the router calls the slow ones through
    ``run_in_executor`` so its event loop keeps serving while a shard is
    being replaced.
    """

    spec: ShardSpec
    start_timeout: float = SHARD_START_TIMEOUT
    generation: int = 0  # bumped on every (re)spawn after the first
    port: int | None = None
    process: Any = field(default=None, repr=False)
    respawns: int = 0
    _port_conn: Any = field(default=None, repr=False)

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def pid(self) -> int | None:
        return self.process.pid if self.process is not None else None

    def is_alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    # -- lifecycle -----------------------------------------------------------

    def launch(self) -> None:
        """Spawn the process (non-blocking; pair with :meth:`wait_ready`)."""
        if self.process is not None and self.process.is_alive():
            raise RuntimeError(f"shard {self.name!r} is already running")
        ctx = multiprocessing.get_context("spawn")
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        self.process = ctx.Process(
            target=_shard_main,
            args=(self.spec, child_conn),
            name=f"repro-{self.name}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        self._port_conn = parent_conn
        self.port = None

    def wait_ready(self, timeout: float | None = None) -> int:
        """Block until the shard reports its bound port; returns it."""
        if self.process is None:
            raise RuntimeError(f"shard {self.name!r} was never launched")
        deadline = timeout if timeout is not None else self.start_timeout
        if not self._port_conn.poll(deadline):
            self.kill()
            raise TimeoutError(
                f"shard {self.name!r} did not report a port within {deadline}s"
            )
        try:
            self.port = int(self._port_conn.recv())
        except EOFError as exc:
            self.kill()
            raise RuntimeError(f"shard {self.name!r} died during startup") from exc
        finally:
            self._port_conn.close()
        return self.port

    def start(self, timeout: float | None = None) -> int:
        """``launch`` + ``wait_ready`` in one blocking call."""
        self.launch()
        return self.wait_ready(timeout)

    def respawn(self, timeout: float | None = None) -> int:
        """Replace the process with a fresh one; bumps the generation.

        The old process (alive, hung, or already dead) is SIGKILLed
        first — a respawn happens precisely because the shard can no
        longer be trusted to honor a polite shutdown.
        """
        self.kill()
        self.generation += 1
        self.respawns += 1
        return self.start(timeout)

    def kill(self) -> None:
        """SIGKILL + reap.  Idempotent; works on SIGSTOPped processes."""
        if self.process is None:
            return
        if self.process.is_alive():
            self.process.kill()
        self.process.join(timeout=10.0)
        self.port = None

    def stop(self) -> None:
        """Terminate politely, escalate to SIGKILL, reap."""
        if self.process is None:
            return
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=5.0)
        if self.process.is_alive():  # pragma: no cover - escalation path
            self.process.kill()
            self.process.join(timeout=10.0)
        self.port = None

    # -- fault hooks (chaos plans) -------------------------------------------

    def suspend(self) -> None:
        """SIGSTOP: the process stays alive but stops answering — the
        deterministic realization of a *hung* shard (only the health
        probe's deadline can tell it apart from a slow one)."""
        if self.is_alive() and hasattr(signal, "SIGSTOP"):
            os.kill(self.process.pid, signal.SIGSTOP)

    def resume(self) -> None:
        """SIGCONT a suspended shard (tests only; the router's recovery
        path never resumes — it replaces)."""
        if self.is_alive() and hasattr(signal, "SIGCONT"):
            os.kill(self.process.pid, signal.SIGCONT)

    def join_exit(self, timeout: float = 10.0) -> int | None:
        """Wait for the process to exit; returns its exit code."""
        if self.process is None:
            return None
        deadline = time.monotonic() + timeout
        while self.process.is_alive() and time.monotonic() < deadline:
            self.process.join(timeout=0.05)
        return self.process.exitcode
