"""Solve-server metrics: counters, batch histogram, latency percentiles.

All numbers are cheap to maintain on the request path (increments plus a
bounded deque of latencies); the expensive part — sorting for
percentiles — happens only when a snapshot is requested (the ``stats``
op or the shutdown JSONL dump).
"""

from __future__ import annotations

import json
import time
from collections import Counter, deque
from pathlib import Path

__all__ = ["ServerMetrics", "RouterMetrics"]

#: Latency reservoir size: enough for stable p99 at bench scale without
#: unbounded growth on a long-lived server.
_LATENCY_WINDOW = 65_536


def _percentile(sorted_values: list[float], p: float) -> float:
    """Nearest-rank percentile on an already-sorted list."""
    if not sorted_values:
        return float("nan")
    rank = max(1, -(-len(sorted_values) * p // 100))  # ceil(n * p / 100)
    return sorted_values[int(rank) - 1]


class ServerMetrics:
    """Counters for one :class:`~repro.serve.server.SolveServer`."""

    def __init__(self, latency_window: int = _LATENCY_WINDOW) -> None:
        self.started_at = time.time()
        self.requests = 0  # solve requests received (accepted + rejected)
        self.solved = 0  # solve responses produced
        self.overloads = 0  # backpressure rejections (queue full)
        self.errors = 0  # bad requests / resolution failures / internal
        self.timeouts = 0  # solves past the per-request deadline
        self.faults_injected = 0  # chaos-test faults realized by the server
        self.batches = 0  # micro-batches executed
        self.batch_sizes: Counter = Counter()
        self._latencies: deque = deque(maxlen=latency_window)

    # -- recording ----------------------------------------------------------

    def observe_batch(self, size: int) -> None:
        self.batches += 1
        self.batch_sizes[size] += 1

    def observe_latency(self, seconds: float) -> None:
        self.solved += 1
        self._latencies.append(seconds)

    # -- reporting ----------------------------------------------------------

    @property
    def max_batch_size(self) -> int:
        return max(self.batch_sizes) if self.batch_sizes else 0

    def latency_percentiles_ms(self) -> dict:
        ordered = sorted(self._latencies)
        return {
            f"p{p}": _percentile(ordered, p) * 1e3
            for p in (50, 95, 99)
        }

    def snapshot(self, **extra) -> dict:
        """Flat JSON-safe view of every counter (plus caller extras such
        as memo/cache stats and queue state)."""
        mean_batch = (
            sum(size * count for size, count in self.batch_sizes.items()) / self.batches
            if self.batches
            else 0.0
        )
        return {
            "uptime_s": time.time() - self.started_at,
            "requests": self.requests,
            "solved": self.solved,
            "overloads": self.overloads,
            "errors": self.errors,
            "timeouts": self.timeouts,
            "faults_injected": self.faults_injected,
            "batches": self.batches,
            "mean_batch_size": mean_batch,
            "max_batch_size": self.max_batch_size,
            "batch_size_histogram": {
                str(size): count for size, count in sorted(self.batch_sizes.items())
            },
            "latency_ms": self.latency_percentiles_ms(),
            **extra,
        }

    def dump_jsonl(self, path, **extra) -> None:
        """Append one snapshot line (the shutdown dump; append mode so a
        restarted server extends its own trajectory)."""
        record = {"event": "server_stats", **self.snapshot(**extra)}
        with open(Path(path), "a") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")


class RouterMetrics(ServerMetrics):
    """Counters for one :class:`~repro.serve.router.SolveRouter`.

    On top of the server counters (``requests``/``solved``/``overloads``/
    ``timeouts``/``errors``, latency percentiles — here measured
    router-edge to router-edge, so they include forwarding), the router
    tracks what its *fault-tolerance* machinery did: every one of these
    is asserted exactly by the chaos suite against an injected plan.
    """

    def __init__(self, latency_window: int = _LATENCY_WINDOW) -> None:
        super().__init__(latency_window)
        self.routed = 0  # requests forwarded to a shard (incl. re-routes)
        self.failovers = 0  # requests moved off their primary shard
        self.respawns = 0  # shard processes replaced by the health loop
        self.health_failures = 0  # liveness probes that missed their deadline
        self.breaker_opens = 0  # circuit-breaker closed/half-open -> open
        self.brownout_shed = 0  # requests shed by priority under brownout
        self.stale_drops = 0  # replies from a retired shard generation
        self.shard_faults_injected = 0  # chaos-plan shard faults realized

    def snapshot(self, **extra) -> dict:
        return super().snapshot(
            routed=self.routed,
            failovers=self.failovers,
            respawns=self.respawns,
            health_failures=self.health_failures,
            breaker_opens=self.breaker_opens,
            brownout_shed=self.brownout_shed,
            stale_drops=self.stale_drops,
            shard_faults_injected=self.shard_faults_injected,
            **extra,
        )
