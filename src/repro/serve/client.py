"""Blocking JSON-lines client for :class:`repro.serve.server.SolveServer`.

Two request styles:

* :meth:`ServeClient.solve` — one request, one response (the simple
  path; each call is a full round trip, so the server's micro-batcher
  only sees batches of one unless other clients are active),
* :meth:`ServeClient.solve_many` — pipelined: all requests are written
  before any response is read, so a single client can fill a server-side
  micro-batch.  Responses are correlated by ``id`` and returned in
  request order.

The client is deliberately synchronous (plain sockets): it is what
benches, tests and the CLI drive the server with, and a blocking API
composes with thread pools for concurrent-load generation.

For unreliable networks and restarting servers there is
:class:`RetryingServeClient`: same solve API, but connection loss,
read timeouts, and transient error replies (``overloaded`` /
``unavailable`` / ``timeout``) are absorbed by reconnecting and
retransmitting the still-unanswered requests — safe because solves are
pure/idempotent and correlation ids make retransmission exact.
"""

from __future__ import annotations

import random
import socket
import time
from typing import Any, Sequence

import numpy as np

from repro.bcpop.instance import BcpopInstance
from repro.bcpop.io import bcpop_to_dict
from repro.gp.tree import SyntaxTree
from repro.serve import protocol

__all__ = ["ServeClient", "RetryingServeClient", "build_solve_request"]


def _heuristic_spec(heuristic) -> dict:
    """Normalize the accepted heuristic forms to the wire object."""
    if isinstance(heuristic, SyntaxTree):
        return {"tree": heuristic.serialize()}
    if isinstance(heuristic, str):
        if heuristic.startswith("family:"):
            return {"family": heuristic[len("family:"):]}
        return {"ref": heuristic}
    if isinstance(heuristic, dict):
        return heuristic
    raise TypeError(f"cannot use {type(heuristic).__name__} as a heuristic spec")


def _instance_spec(instance):
    if instance is None:
        return None
    if isinstance(instance, BcpopInstance):
        return bcpop_to_dict(instance)
    if isinstance(instance, (str, dict)):
        return instance
    raise TypeError(f"cannot use {type(instance).__name__} as an instance spec")


def build_solve_request(
    prices,
    heuristic,
    instance=None,
    include_selection: bool = False,
    request_id=None,
    priority: int | None = None,
) -> dict:
    """Build a solve message (shared by both clients; ``request_id`` is
    the correlation id — callers that pipeline must make it unique).

    ``priority`` (0 low … 9 high, protocol v2) is what the router's
    brownout mode sheds by; single servers ignore it.  Omitted means
    :data:`repro.serve.protocol.DEFAULT_PRIORITY`.
    """
    message: dict[str, Any] = {
        "op": "solve",
        "prices": np.asarray(prices, dtype=np.float64).tolist(),
        "heuristic": _heuristic_spec(heuristic),
    }
    if request_id is not None:
        message["id"] = request_id
    spec = _instance_spec(instance)
    if spec is not None:
        message["instance"] = spec
    if include_selection:
        message["include_selection"] = True
    if priority is not None:
        message["priority"] = int(priority)
    return message


class ServeClient:
    """One TCP connection to a solve server.

    ``timeout`` bounds each read on the established connection;
    ``connect_timeout`` bounds the connection *attempt* separately —
    before this split, a down-but-routable server could stall a client
    for the full read timeout (60 s) before the first byte ever moved.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 60.0,
        connect_timeout: float = 10.0,
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=connect_timeout)
        self._sock.settimeout(timeout)
        self._reader = self._sock.makefile("rb")
        self._next_id = 0

    # -- plumbing -----------------------------------------------------------

    def _fresh_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def send(self, message: dict) -> None:
        """Write one message (no read; pairs with :meth:`recv`)."""
        self._sock.sendall(protocol.encode(message))

    def recv(self) -> dict:
        """Read one response; ``ConnectionError`` on EOF."""
        line = self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return protocol.decode(line)

    def request(self, message: dict) -> dict:
        """One round trip; assigns a correlation id when missing."""
        message = dict(message)
        message.setdefault("id", self._fresh_id())
        self.send(message)
        return self.recv()

    # -- ops ----------------------------------------------------------------

    def solve_request(
        self,
        prices,
        heuristic,
        instance=None,
        include_selection: bool = False,
        priority: int | None = None,
    ) -> dict:
        """Build (but do not send) a solve request message."""
        return build_solve_request(
            prices, heuristic, instance, include_selection,
            request_id=self._fresh_id(), priority=priority,
        )

    def solve(
        self, prices, heuristic, instance=None, include_selection=False,
        priority: int | None = None,
    ) -> dict:
        """One solve round trip; returns the response dict."""
        return self.request(
            self.solve_request(prices, heuristic, instance, include_selection, priority)
        )

    def solve_many(self, requests: Sequence[dict]) -> list[dict]:
        """Pipelined solves: write everything, then read everything.

        ``requests`` are message dicts from :meth:`solve_request`.
        Responses arrive in completion order (micro-batches may reorder
        across instances); each read is matched back by ``id`` — the
        loop runs until every *expected* id has answered, so an
        out-of-order or stray reply can never mis-pair the results, and
        a connection lost mid-stream raises ``ConnectionError`` naming
        the outstanding count instead of blocking on a read that will
        never complete.
        """
        requests = [dict(m) for m in requests]
        for message in requests:
            message.setdefault("id", self._fresh_id())
        expected = {m["id"] for m in requests}
        if len(expected) != len(requests):
            raise ValueError("pipelined requests must have unique ids")
        self._sock.sendall(b"".join(protocol.encode(m) for m in requests))
        by_id: dict = {}
        while len(by_id) < len(expected):
            try:
                response = self.recv()
            except ConnectionError as exc:
                outstanding = len(expected) - len(by_id)
                raise ConnectionError(
                    f"connection lost with {outstanding} of {len(expected)} "
                    "pipelined responses outstanding"
                ) from exc
            rid = response.get("id")
            if rid in expected:
                by_id[rid] = response  # strays/duplicates are ignored
        return [by_id[m["id"]] for m in requests]

    def stats(self) -> dict:
        return self.request({"op": "stats"})["stats"]

    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("pong"))

    def shards(self) -> list:
        """Topology of a :class:`~repro.serve.router.SolveRouter`.

        Per-shard status rows (name, generation, health, breaker state).
        Only routers dispatch this op — a plain single-process
        ``SolveServer`` answers ``unknown-op`` (no ``shards`` field), so
        this raises ``KeyError`` against one, like ``stats()`` would on
        a malformed reply.
        """
        return self.request({"op": "shards"})["shards"]

    def pause(self) -> dict:
        """Suspend the server's micro-batcher (requests queue up)."""
        return self.request({"op": "pause"})

    def resume(self) -> dict:
        return self.request({"op": "resume"})

    def shutdown(self) -> dict:
        """Ask the server to stop cleanly (drain, dump metrics, close)."""
        return self.request({"op": "shutdown"})

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class RetryingServeClient:
    """A :class:`ServeClient` that survives restarts and transient faults.

    Retransmission is safe because a solve is a pure function of its
    request (same prices + heuristic + instance → bit-identical reply,
    server-side memo included) and every request carries a correlation
    id owned by *this* object: after a reconnect the still-unanswered
    ids are re-sent verbatim, replies are matched by id, and duplicate
    or stale replies are dropped — a restart mid-``solve_many`` yields
    exactly the responses an uninterrupted client would have seen.

    What is retried: connection refused/reset/EOF, read timeouts, and
    the transient error codes in :data:`RETRYABLE_CODES` (``overloaded``
    backpressure, injected/real ``unavailable``, server-side
    ``timeout``).  Non-retryable error replies (``bad-request`` etc.)
    are returned to the caller untouched.  Backoff is exponential with
    deterministic jitter (``seed``) so chaos tests replay exactly.
    """

    #: Error codes that mean "try the same request again later".
    RETRYABLE_CODES = frozenset({"overloaded", "unavailable", "timeout"})

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 60.0,
        *,
        connect_timeout: float = 10.0,
        max_retries: int = 8,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        seed: int = 0,
    ) -> None:
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if backoff_base <= 0 or backoff_cap <= 0:
            raise ValueError("backoff_base and backoff_cap must be > 0")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._rng = random.Random(seed)
        self._client: ServeClient | None = None
        self._connected_once = False
        self._next_id = 0
        self.reconnects = 0  # connections established after the first
        self.retransmits = 0  # requests re-sent after a failed round

    # -- connection management ----------------------------------------------

    def _fresh_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def _backoff(self, attempt: int) -> None:
        """Exponential backoff with deterministic full jitter.

        The exponent is clamped so a long outage never computes a
        gigantic power (``backoff_cap`` already bounds the *sleep*; the
        clamp bounds the arithmetic feeding it), and the drawn sleep is
        re-capped as a final guard.
        """
        exponent = min(attempt - 1, 32)
        cap = min(self.backoff_cap, self.backoff_base * (2.0 ** exponent))
        time.sleep(min(self.backoff_cap, self._rng.uniform(0.0, cap)))

    def _drop_connection(self) -> None:
        if self._client is not None:
            try:
                self._client.close()
            except OSError:  # pragma: no cover - already torn down
                pass
            self._client = None

    def _ensure_client(self) -> ServeClient:
        """Connect if needed; raises ``OSError`` when the server is down
        (the caller's retry loop owns backoff)."""
        if self._client is None:
            self._client = ServeClient(
                self.host, self.port,
                timeout=self.timeout, connect_timeout=self.connect_timeout,
            )
            if self._connected_once:
                self.reconnects += 1
            self._connected_once = True
        return self._client

    # -- ops ------------------------------------------------------------------

    def solve_request(
        self, prices, heuristic, instance=None, include_selection: bool = False,
        priority: int | None = None,
    ) -> dict:
        """Build (but do not send) a solve message with an owned id."""
        return build_solve_request(
            prices, heuristic, instance, include_selection,
            request_id=self._fresh_id(), priority=priority,
        )

    def solve(
        self, prices, heuristic, instance=None, include_selection=False,
        priority: int | None = None,
    ) -> dict:
        return self.solve_many(
            [self.solve_request(prices, heuristic, instance, include_selection, priority)]
        )[0]

    def solve_many(self, requests: Sequence[dict]) -> list[dict]:
        """Pipelined solves that survive reconnects mid-stream.

        Requests answered before a connection loss keep their replies;
        only the still-outstanding ids are retransmitted.  Raises
        ``ConnectionError`` once a full round of retries is exhausted.
        """
        requests = [dict(m) for m in requests]
        for message in requests:
            message.setdefault("id", self._fresh_id())
        if len({m["id"] for m in requests}) != len(requests):
            raise ValueError("pipelined requests must have unique ids")
        outstanding: dict[Any, dict] = {m["id"]: m for m in requests}
        results: dict[Any, dict] = {}
        attempt = 0
        while outstanding:
            if attempt > 0:
                self.retransmits += len(outstanding)
            try:
                client = self._ensure_client()
                for message in outstanding.values():
                    client.send(message)
                awaiting = set(outstanding)
                while awaiting:
                    response = client.recv()
                    rid = response.get("id")
                    if rid not in awaiting:
                        continue  # stale reply from a retired transmission
                    awaiting.discard(rid)
                    if (
                        not response.get("ok", False)
                        and response.get("error") in self.RETRYABLE_CODES
                    ):
                        continue  # stays outstanding; next round re-sends
                    results[rid] = response
                    del outstanding[rid]
            except (ConnectionError, OSError):
                self._drop_connection()
            if outstanding:
                attempt += 1
                if attempt > self.max_retries:
                    raise ConnectionError(
                        f"{len(outstanding)} of {len(requests)} requests still "
                        f"unanswered after {self.max_retries} retries"
                    )
                self._backoff(attempt)
        return [results[m["id"]] for m in requests]

    def request(self, message: dict) -> dict:
        """One idempotent round trip with reconnect/backoff (every op the
        server exposes is idempotent, shutdown and pause included)."""
        message = dict(message)
        message.setdefault("id", self._fresh_id())
        attempt = 0
        while True:
            try:
                return self._ensure_client().request(message)
            except (ConnectionError, OSError):
                self._drop_connection()
                attempt += 1
                if attempt > self.max_retries:
                    raise
                self._backoff(attempt)

    def stats(self) -> dict:
        return self.request({"op": "stats"})["stats"]

    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("pong"))

    def shutdown(self) -> dict:
        return self.request({"op": "shutdown"})

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        self._drop_connection()

    def __enter__(self) -> "RetryingServeClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
