"""Blocking JSON-lines client for :class:`repro.serve.server.SolveServer`.

Two request styles:

* :meth:`ServeClient.solve` — one request, one response (the simple
  path; each call is a full round trip, so the server's micro-batcher
  only sees batches of one unless other clients are active),
* :meth:`ServeClient.solve_many` — pipelined: all requests are written
  before any response is read, so a single client can fill a server-side
  micro-batch.  Responses are correlated by ``id`` and returned in
  request order.

The client is deliberately synchronous (plain sockets): it is what
benches, tests and the CLI drive the server with, and a blocking API
composes with thread pools for concurrent-load generation.
"""

from __future__ import annotations

import socket
from typing import Sequence

import numpy as np

from repro.bcpop.instance import BcpopInstance
from repro.bcpop.io import bcpop_to_dict
from repro.gp.tree import SyntaxTree
from repro.serve import protocol

__all__ = ["ServeClient"]


def _heuristic_spec(heuristic) -> dict:
    """Normalize the accepted heuristic forms to the wire object."""
    if isinstance(heuristic, SyntaxTree):
        return {"tree": heuristic.serialize()}
    if isinstance(heuristic, str):
        if heuristic.startswith("family:"):
            return {"family": heuristic[len("family:"):]}
        return {"ref": heuristic}
    if isinstance(heuristic, dict):
        return heuristic
    raise TypeError(f"cannot use {type(heuristic).__name__} as a heuristic spec")


def _instance_spec(instance):
    if instance is None:
        return None
    if isinstance(instance, BcpopInstance):
        return bcpop_to_dict(instance)
    if isinstance(instance, (str, dict)):
        return instance
    raise TypeError(f"cannot use {type(instance).__name__} as an instance spec")


class ServeClient:
    """One TCP connection to a solve server."""

    def __init__(self, host: str, port: int, timeout: float = 60.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._sock.makefile("rb")
        self._next_id = 0

    # -- plumbing -----------------------------------------------------------

    def _fresh_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def _send(self, message: dict) -> None:
        self._sock.sendall(protocol.encode(message))

    def _recv(self) -> dict:
        line = self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return protocol.decode(line)

    def request(self, message: dict) -> dict:
        """One round trip; assigns a correlation id when missing."""
        message = dict(message)
        message.setdefault("id", self._fresh_id())
        self._send(message)
        return self._recv()

    # -- ops ----------------------------------------------------------------

    def solve_request(
        self,
        prices,
        heuristic,
        instance=None,
        include_selection: bool = False,
    ) -> dict:
        """Build (but do not send) a solve request message."""
        message = {
            "op": "solve",
            "id": self._fresh_id(),
            "prices": np.asarray(prices, dtype=np.float64).tolist(),
            "heuristic": _heuristic_spec(heuristic),
        }
        spec = _instance_spec(instance)
        if spec is not None:
            message["instance"] = spec
        if include_selection:
            message["include_selection"] = True
        return message

    def solve(self, prices, heuristic, instance=None, include_selection=False) -> dict:
        """One solve round trip; returns the response dict."""
        return self.request(
            self.solve_request(prices, heuristic, instance, include_selection)
        )

    def solve_many(self, requests: Sequence[dict]) -> list[dict]:
        """Pipelined solves: write everything, then read everything.

        ``requests`` are message dicts from :meth:`solve_request`.
        Responses arrive in completion order (micro-batches may reorder
        across instances); they are matched back by ``id``.
        """
        requests = list(requests)
        payload = b"".join(protocol.encode(m) for m in requests)
        self._sock.sendall(payload)
        by_id = {}
        for _ in requests:
            response = self._recv()
            by_id[response.get("id")] = response
        return [by_id[m["id"]] for m in requests]

    def stats(self) -> dict:
        return self.request({"op": "stats"})["stats"]

    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("pong"))

    def pause(self) -> dict:
        """Suspend the server's micro-batcher (requests queue up)."""
        return self.request({"op": "pause"})

    def resume(self) -> dict:
        return self.request({"op": "resume"})

    def shutdown(self) -> dict:
        """Ask the server to stop cleanly (drain, dump metrics, close)."""
        return self.request({"op": "shutdown"})

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
