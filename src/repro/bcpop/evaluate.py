"""Shared lower-level evaluation pipeline.

Both algorithms funnel every lower-level evaluation through
:class:`LowerLevelEvaluator`, which (a) induces the covering instance for a
pricing decision, (b) obtains the LP relaxation (cached — CARBON re-solves
the same induced instance once per heuristic candidate), (c) runs the
requested solver, and (d) computes the paper's %-gap and the leader revenue.
Centralizing this also gives exact evaluation-budget accounting: the
counter ``n_evaluations`` is the paper's "LL fitness evaluations" (Table II
caps it at 50 000).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bcpop.instance import BcpopInstance
from repro.covering.greedy import ScoreFunction, greedy_cover
from repro.covering.repair import repair_cover
from repro.lp.bounds import RelaxationCache
from repro.lp.relaxation import Relaxation

__all__ = ["LowerLevelOutcome", "LowerLevelEvaluator"]


@dataclass(frozen=True)
class LowerLevelOutcome:
    """Everything the upper level needs to know about one LL evaluation.

    Attributes
    ----------
    prices:
        The UL decision that induced the instance.
    selection:
        Follower basket (boolean, all ``M`` bundles).
    ll_cost:
        Follower objective ``f = sum_j c_j x_j``.
    revenue:
        Leader payoff ``F = sum_{j<=L} c_j x_j``.
    gap:
        Paper Eq. 1: ``100 (ll_cost - LB) / LB`` — the bi-level
        feasibility measure.
    lower_bound:
        ``LB(x)`` from the LP relaxation.
    feasible:
        Whether the basket covers the demand (false only for uncoverable
        instances).
    """

    prices: np.ndarray
    selection: np.ndarray
    ll_cost: float
    revenue: float
    gap: float
    lower_bound: float
    feasible: bool


class LowerLevelEvaluator:
    """Evaluation service for one BCPOP instance.

    Parameters
    ----------
    instance:
        The bi-level problem.
    lp_backend:
        Forwarded to :class:`repro.lp.bounds.RelaxationCache`.
    cache_size:
        LRU capacity for relaxations.
    gap_eps:
        Guard for the gap denominator (DESIGN.md §5).
    """

    def __init__(
        self,
        instance: BcpopInstance,
        lp_backend: str = "scipy",
        cache_size: int = 4096,
        gap_eps: float = 1e-9,
    ) -> None:
        self.instance = instance
        self._cache = RelaxationCache(backend=lp_backend, maxsize=cache_size)
        self.gap_eps = gap_eps
        self.n_evaluations = 0
        self.n_lp_solves_saved = 0

    def relaxation(self, prices: np.ndarray) -> Relaxation:
        """LP relaxation of the instance induced by ``prices`` (cached)."""
        ll = self.instance.lower_level(prices)
        before = self._cache.hits
        relax = self._cache.get(ll)
        self.n_lp_solves_saved += self._cache.hits - before
        return relax

    def _outcome(
        self,
        prices: np.ndarray,
        selection: np.ndarray,
        relax: Relaxation,
        feasible: bool,
    ) -> LowerLevelOutcome:
        ll = self.instance.lower_level(prices)
        cost = ll.cost_of(selection)
        gap = relax.percent_gap(cost, eps=self.gap_eps) if feasible else np.inf
        self.n_evaluations += 1
        return LowerLevelOutcome(
            prices=np.asarray(prices, dtype=np.float64).copy(),
            selection=np.asarray(selection, dtype=bool).copy(),
            ll_cost=cost,
            revenue=self.instance.revenue(prices, selection),
            gap=gap,
            lower_bound=relax.lower_bound,
            feasible=feasible,
        )

    def evaluate_heuristic(
        self, prices: np.ndarray, score_fn: ScoreFunction
    ) -> LowerLevelOutcome:
        """CARBON path: solve the induced instance with a scoring heuristic.

        The relaxation's duals and x̄ are passed into the greedy context, so
        GP trees can use the ``DUAL``/``XLP`` terminals of Table I.
        """
        prices = self.instance.validate_prices(prices)
        ll = self.instance.lower_level(prices)
        relax = self.relaxation(prices)
        sol = greedy_cover(ll, score_fn, duals=relax.duals, xbar=relax.xbar)
        return self._outcome(prices, sol.selected, relax, sol.feasible)

    def evaluate_selection(
        self, prices: np.ndarray, selection: np.ndarray, repair: bool = True
    ) -> LowerLevelOutcome:
        """COBRA path: evaluate an explicit binary basket (repairing
        under-covering offspring first, the standard treatment)."""
        prices = self.instance.validate_prices(prices)
        ll = self.instance.lower_level(prices)
        sel = np.asarray(selection, dtype=bool)
        if repair and not ll.is_feasible(sel):
            sel = repair_cover(ll, sel)
        relax = self.relaxation(prices)
        return self._outcome(prices, sel, relax, ll.is_feasible(sel))

    @property
    def cache_stats(self) -> dict:
        return {
            "entries": len(self._cache),
            "hits": self._cache.hits,
            "misses": self._cache.misses,
            "hit_rate": self._cache.hit_rate,
        }
