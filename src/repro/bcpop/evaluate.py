"""Shared lower-level evaluation pipeline.

Both algorithms funnel every lower-level evaluation through
:class:`LowerLevelEvaluator`, which (a) induces the covering instance for a
pricing decision, (b) obtains the LP relaxation (cached — CARBON re-solves
the same induced instance once per heuristic candidate), (c) runs the
requested solver, and (d) computes the paper's %-gap and the leader revenue.
Centralizing this also gives exact evaluation-budget accounting: the
counter ``n_evaluations`` counts *solver work actually performed* — memo
hits (below) are served without touching it, so it is the exact number of
greedy solves, while the algorithms' own ``ul_used``/``ll_used`` counters
remain the paper's logical "fitness evaluations" (Table II caps them at
50 000).

Two layers sit in front of the raw solve:

* :class:`EvaluationMemo` — a content-addressed LRU memo of full
  :class:`LowerLevelOutcome` objects keyed on ``(instance digest, rounded
  price vector, canonical GP-tree serialization)``.  A co-evolutionary run
  re-evaluates identical (prices, heuristic) pairs constantly (elites,
  reproduced trees, champion pairing), and every such re-solve is pure, so
  memoization is exact, not approximate.
* :class:`EvaluationPipeline` — batches whole populations of evaluation
  requests, dedupes them against the memo, and fans the residual fresh
  work out over a :class:`repro.parallel.executor.Executor`.  Workers keep
  a per-instance evaluator (warm LP-relaxation cache) alive across
  generations; the parent applies results in request order, so serial and
  process execution are bit-identical.
"""

from __future__ import annotations

import pickle
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.bcpop.instance import BcpopInstance
from repro.covering.greedy import ContextStatics, ScoreFunction, greedy_cover
from repro.covering.repair import repair_cover
from repro.gp.compile import CompileCache
from repro.gp.tree import SyntaxTree
from repro.lp.bounds import RelaxationCache
from repro.lp.relaxation import Relaxation
from repro.parallel.executor import Executor, ProcessExecutor
from repro.utils.profiling import HotPathTimers

__all__ = [
    "DEFAULT_MEMO_SIZE",
    "LowerLevelOutcome",
    "LowerLevelEvaluator",
    "EvaluationMemo",
    "EvaluationPipeline",
]

#: Default outcome-memo capacity.  The single source of truth — the
#: :class:`repro.core.config.ExecutionConfig` default defers to it, so
#: tuning memo pressure is one edit (or one config field) everywhere.
DEFAULT_MEMO_SIZE = 8192


@dataclass(frozen=True)
class LowerLevelOutcome:
    """Everything the upper level needs to know about one LL evaluation.

    Attributes
    ----------
    prices:
        The UL decision that induced the instance.
    selection:
        Follower basket (boolean, all ``M`` bundles).
    ll_cost:
        Follower objective ``f = sum_j c_j x_j``.
    revenue:
        Leader payoff ``F = sum_{j<=L} c_j x_j``.
    gap:
        Paper Eq. 1: ``100 (ll_cost - LB) / LB`` — the bi-level
        feasibility measure.
    lower_bound:
        ``LB(x)`` from the LP relaxation.
    feasible:
        Whether the basket covers the demand (false only for uncoverable
        instances).
    """

    prices: np.ndarray
    selection: np.ndarray
    ll_cost: float
    revenue: float
    gap: float
    lower_bound: float
    feasible: bool


class EvaluationMemo:
    """Content-addressed LRU memo of :class:`LowerLevelOutcome` objects.

    Keys are opaque byte strings built by
    :meth:`LowerLevelEvaluator.heuristic_key`; a hit returns the exact
    outcome object of the original evaluation (greedy solves are pure, so
    the memoized value *is* a fresh evaluation).  ``hits``/``misses``
    count lookups only — the budget-relevant "work performed" counter
    lives on the evaluator and is advanced once per fresh solve.
    """

    def __init__(self, maxsize: int = DEFAULT_MEMO_SIZE) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._store: OrderedDict[bytes, LowerLevelOutcome] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: bytes) -> LowerLevelOutcome | None:
        found = self._store.get(key)
        if found is not None:
            self.hits += 1
            self._store.move_to_end(key)
            return found
        self.misses += 1
        return None

    def put(self, key: bytes, outcome: LowerLevelOutcome) -> None:
        self._store[key] = outcome
        self._store.move_to_end(key)
        if len(self._store) > self.maxsize:
            self._store.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._store.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._store)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


#: Price-vector quantization step for memo keys — same quantum/rationale as
#: :class:`repro.lp.bounds.RelaxationCache` (prices live in [0, ~1e3]).
_PRICE_QUANTUM = 1e-9


class LowerLevelEvaluator:
    """Evaluation service for one BCPOP instance.

    Parameters
    ----------
    instance:
        The bi-level problem.
    lp_backend:
        Forwarded to :class:`repro.lp.bounds.RelaxationCache`.
    cache_size:
        LRU capacity for relaxations.
    gap_eps:
        Guard for the gap denominator (DESIGN.md §5).
    memo_size:
        Capacity of the outcome memo (0 disables memoization entirely).
        Only heuristic evaluations with a content-addressable solver — GP
        syntax trees — are memoized; opaque callables (hand-written or
        stochastic heuristics) always evaluate fresh.
    compile:
        Lower GP trees to :class:`repro.gp.compile.CompiledProgram`
        bytecode before solving (bit-identical to the interpreter, just
        faster) and share the precomputed static feature matrices across
        all solves of the instance family.  ``False`` restores the exact
        original interpreter path — the differential-testing oracle.
    lp_warm_start:
        Warm-start the own-simplex relaxations from the nearest cached
        basis (forwarded to :class:`repro.lp.bounds.RelaxationCache`).
        Off by default: at degenerate optima a warm solve may settle on
        an alternate optimal vertex (same bound, different duals/x̄), so
        this is an opt-in speed/strictness trade — never enabled on the
        determinism-gated default paths.
    timers:
        Optional :class:`repro.utils.profiling.HotPathTimers` wrapping
        the kernel sections; a disabled instance (default) never reads a
        clock.
    """

    def __init__(
        self,
        instance: BcpopInstance,
        lp_backend: str = "scipy",
        cache_size: int = 4096,
        gap_eps: float = 1e-9,
        memo_size: int = DEFAULT_MEMO_SIZE,
        compile: bool = True,
        lp_warm_start: bool = False,
        timers: HotPathTimers | None = None,
    ) -> None:
        self.instance = instance
        self.lp_backend = lp_backend
        self.lp_warm_start = lp_warm_start
        self._cache = RelaxationCache(
            backend=lp_backend, maxsize=cache_size, warm_start=lp_warm_start
        )
        self.gap_eps = gap_eps
        self.memo = EvaluationMemo(memo_size) if memo_size > 0 else None
        self.compile = compile
        self.kernel = CompileCache() if compile else None
        self._statics: ContextStatics | None = None
        self.timers = timers if timers is not None else HotPathTimers()
        self.n_evaluations = 0
        self.n_lp_solves_saved = 0

    def relaxation(self, prices: np.ndarray) -> Relaxation:
        """LP relaxation of the instance induced by ``prices`` (cached)."""
        ll = self.instance.lower_level(prices)
        before = self._cache.hits
        relax = self._cache.get(ll)
        self.n_lp_solves_saved += self._cache.hits - before
        return relax

    def _outcome(
        self,
        prices: np.ndarray,
        selection: np.ndarray,
        relax: Relaxation,
        feasible: bool,
    ) -> LowerLevelOutcome:
        ll = self.instance.lower_level(prices)
        cost = ll.cost_of(selection)
        gap = relax.percent_gap(cost, eps=self.gap_eps) if feasible else np.inf
        self.n_evaluations += 1
        return LowerLevelOutcome(
            prices=np.asarray(prices, dtype=np.float64).copy(),
            selection=np.asarray(selection, dtype=bool).copy(),
            ll_cost=cost,
            revenue=self.instance.revenue(prices, selection),
            gap=gap,
            lower_bound=relax.lower_bound,
            feasible=feasible,
        )

    def heuristic_key(
        self, prices: np.ndarray, score_fn: ScoreFunction
    ) -> bytes | None:
        """Memo key for a heuristic evaluation, or ``None`` when the solver
        is not content-addressable (an opaque/stochastic callable).

        The key is the triple (instance digest, quantized price vector,
        canonical tree serialization) — *not* the display form, so trees
        that merely print alike (ERC rounding in ``to_infix``) never
        collide.
        """
        if not isinstance(score_fn, SyntaxTree):
            return None
        prices = self.instance.validate_prices(prices)
        quantized = np.round(prices / _PRICE_QUANTUM).tobytes()
        return b"|".join(
            (
                self.instance.digest.encode("ascii"),
                quantized,
                score_fn.serialize().encode("ascii"),
            )
        )

    def _solver_for(self, score_fn: ScoreFunction) -> ScoreFunction:
        """The executable form of ``score_fn``: its compiled program when
        the kernel is enabled and the solver is a syntax tree (compiled
        once per structurally distinct tree), otherwise the callable
        itself."""
        if self.kernel is not None and isinstance(score_fn, SyntaxTree):
            with self.timers.section("compile"):
                return self.kernel.get(score_fn)
        return score_fn

    def evaluate_heuristic_fresh(
        self, prices: np.ndarray, score_fn: ScoreFunction
    ) -> LowerLevelOutcome:
        """One uncached heuristic evaluation (always counts as work)."""
        prices = self.instance.validate_prices(prices)
        ll = self.instance.lower_level(prices)
        with self.timers.section("lp"):
            relax = self.relaxation(prices)
        solver = self._solver_for(score_fn)
        statics: ContextStatics | None = None
        if self.compile:
            # The induced instances of one bi-level problem share
            # (q, demand); the static feature matrices are built once and
            # reused across the whole population's solves (bit-identical
            # to rebuilding them — same expressions, same inputs).
            if self._statics is None:
                self._statics = ContextStatics.for_instance(ll)
            statics = self._statics
        with self.timers.section("greedy"):
            sol = greedy_cover(
                ll, solver, duals=relax.duals, xbar=relax.xbar, statics=statics
            )
        return self._outcome(prices, sol.selected, relax, sol.feasible)

    def evaluate_heuristic(
        self, prices: np.ndarray, score_fn: ScoreFunction
    ) -> LowerLevelOutcome:
        """CARBON path: solve the induced instance with a scoring heuristic.

        The relaxation's duals and x̄ are passed into the greedy context, so
        GP trees can use the ``DUAL``/``XLP`` terminals of Table I.

        When ``score_fn`` is a syntax tree and the memo is enabled, an
        identical earlier evaluation is returned directly (bit-equal, the
        solve being pure) without advancing ``n_evaluations``.
        """
        key = self.heuristic_key(prices, score_fn) if self.memo is not None else None
        if key is not None:
            found = self.memo.get(key)
            if found is not None:
                return found
        outcome = self.evaluate_heuristic_fresh(prices, score_fn)
        if key is not None:
            self.memo.put(key, outcome)
        return outcome


    def evaluate_selection(
        self, prices: np.ndarray, selection: np.ndarray, repair: bool = True
    ) -> LowerLevelOutcome:
        """COBRA path: evaluate an explicit binary basket (repairing
        under-covering offspring first, the standard treatment)."""
        prices = self.instance.validate_prices(prices)
        ll = self.instance.lower_level(prices)
        sel = np.asarray(selection, dtype=bool)
        if repair and not ll.is_feasible(sel):
            sel = repair_cover(ll, sel)
        relax = self.relaxation(prices)
        return self._outcome(prices, sel, relax, ll.is_feasible(sel))

    @property
    def cache_stats(self) -> dict:
        out = {
            "entries": len(self._cache),
            "hits": self._cache.hits,
            "misses": self._cache.misses,
            "hit_rate": self._cache.hit_rate,
        }
        if self.lp_warm_start:
            out["warm_start"] = self._cache.warm_stats
        return out

    @property
    def kernel_stats(self) -> dict:
        """Compile-cache counters (``{"enabled": False}`` when off)."""
        if self.kernel is None:
            return {"enabled": False}
        return {"enabled": True, **self.kernel.stats}

    @property
    def memo_stats(self) -> dict:
        if self.memo is None:
            return {"enabled": False}
        return {
            "enabled": True,
            "entries": len(self.memo),
            "capacity": self.memo.maxsize,
            "hits": self.memo.hits,
            "misses": self.memo.misses,
            "evictions": self.memo.evictions,
            "hit_rate": self.memo.hit_rate,
        }


# -- worker-side machinery ---------------------------------------------------
#
# Tasks shipped to a ProcessExecutor must be picklable top-level callables
# over picklable descriptors.  A batch descriptor carries the instance as a
# pre-pickled blob (serialized once per map call, not once per task) plus its
# digest; each worker keeps one evaluator per (digest, backend) alive for the
# life of the pool, so the instance is unpickled and the LP-relaxation cache
# warmed once per worker rather than once per generation.

_WORKER_EVALUATORS: dict[tuple[str, str, bool, bool], Any] = {}


def _worker_evaluator(
    blob: bytes,
    digest: str,
    lp_backend: str,
    gap_eps: float,
    compile: bool,
    lp_warm_start: bool,
):
    key = (digest, lp_backend, compile, lp_warm_start)
    found = _WORKER_EVALUATORS.get(key)
    if found is None:
        instance = pickle.loads(blob)
        # Workers never memoize: the parent owns the memo and dedupes
        # before dispatch, so a worker memo would only hide work counts.
        # The instance picks its own evaluator class, so non-BCPOP
        # families (e.g. the bilinear toy) ride the same pool.  The
        # compile/warm-start flags ship with the header so workers run
        # the same kernel configuration as the parent.
        found = instance.make_evaluator(
            lp_backend=lp_backend,
            gap_eps=gap_eps,
            memo_size=0,
            compile=compile,
            lp_warm_start=lp_warm_start,
        )
        _WORKER_EVALUATORS[key] = found
    return found


def evaluate_heuristic_batch(batch: tuple) -> list[LowerLevelOutcome]:
    """Worker entry point: evaluate a batch of (prices, score_fn) requests
    against one instance.  Pure — results depend only on the descriptor."""
    blob, digest, lp_backend, gap_eps, compile, lp_warm_start, requests = batch
    evaluator = _worker_evaluator(
        blob, digest, lp_backend, gap_eps, compile, lp_warm_start
    )
    return [
        evaluator.evaluate_heuristic_fresh(prices, score_fn)
        for prices, score_fn in requests
    ]


def solve_relaxation_batch(batch: tuple) -> list[Relaxation]:
    """Worker entry point: LP relaxations for a batch of price vectors."""
    blob, digest, lp_backend, gap_eps, compile, lp_warm_start, price_list = batch
    evaluator = _worker_evaluator(
        blob, digest, lp_backend, gap_eps, compile, lp_warm_start
    )
    return [evaluator.relaxation(prices) for prices in price_list]


def _is_process_safe(score_fn: ScoreFunction) -> bool:
    """Whether a solver can cross a process boundary: syntax trees pickle
    by node name; other callables must survive ``pickle`` (closures — e.g.
    the stochastic "random" heuristic — do not, and must stay in-process
    to preserve the parent RNG sequence anyway)."""
    if isinstance(score_fn, SyntaxTree):
        return True
    try:
        pickle.dumps(score_fn)
    except Exception:
        return False
    return True


class EvaluationPipeline:
    """Batched population evaluation: memo → dedup → executor fan-out.

    The pipeline is the single entry point the algorithms use to evaluate
    whole populations.  For each request it (1) consults the parent memo,
    (2) groups the remaining requests by content key so each distinct
    (prices, heuristic) pair is solved once, and (3) evaluates the unique
    residue either in-process (serial executors, tiny batches, unpicklable
    solvers) or on the worker pool.  Results are re-expanded in request
    order, so the caller observes identical outcomes — bit-for-bit — no
    matter which executor ran the work.

    Parameters
    ----------
    evaluator:
        The parent evaluator (owns memo, LP cache, and work counters).
    executor:
        ``None`` or :class:`SerialExecutor` for in-process evaluation; a
        :class:`ProcessExecutor` for fan-out.
    batches_per_worker:
        Load-balancing factor: a map call is split into at most
        ``workers * batches_per_worker`` batches.
    """

    def __init__(
        self,
        evaluator: LowerLevelEvaluator,
        executor: Executor | None = None,
        batches_per_worker: int = 4,
    ) -> None:
        if batches_per_worker < 1:
            raise ValueError("batches_per_worker must be >= 1")
        self.evaluator = evaluator
        self.executor = executor
        self.batches_per_worker = batches_per_worker
        self.n_requests = 0
        self.n_deduplicated = 0
        self.n_parent_evaluations = 0
        self.n_worker_evaluations = 0
        self.n_worker_batches = 0

    # -- internals ---------------------------------------------------------

    def _instance_header(self) -> tuple:
        instance = self.evaluator.instance
        return (
            pickle.dumps(instance, protocol=pickle.HIGHEST_PROTOCOL),
            instance.digest,
            self.evaluator.lp_backend,
            self.evaluator.gap_eps,
            self.evaluator.kernel is not None,
            getattr(self.evaluator, "lp_warm_start", False),
        )

    def _split(self, items: list) -> list[list]:
        """Contiguous near-even batches (order-preserving when re-joined)."""
        workers = self.executor.workers  # type: ignore[union-attr]
        n_batches = min(len(items), workers * self.batches_per_worker)
        bounds = np.linspace(0, len(items), n_batches + 1).astype(int)
        return [
            items[bounds[i]: bounds[i + 1]]
            for i in range(n_batches)
            if bounds[i] < bounds[i + 1]
        ]

    def _dispatch(
        self, entries: list[tuple[np.ndarray, ScoreFunction]]
    ) -> list[LowerLevelOutcome]:
        """Compute fresh outcomes for ``entries``, preserving order."""
        use_pool = (
            isinstance(self.executor, ProcessExecutor)
            and len(entries) >= 2
            and all(_is_process_safe(fn) for _, fn in entries)
        )
        if not use_pool:
            self.n_parent_evaluations += len(entries)
            return [
                self.evaluator.evaluate_heuristic_fresh(prices, fn)
                for prices, fn in entries
            ]
        header = self._instance_header()
        batches = [header + (chunk,) for chunk in self._split(entries)]
        self.n_worker_batches += len(batches)
        self.n_worker_evaluations += len(entries)
        results = self.executor.map(evaluate_heuristic_batch, batches)
        # Work performed remotely still counts as work performed.
        self.evaluator.n_evaluations += len(entries)
        return [outcome for chunk in results for outcome in chunk]

    # -- public API --------------------------------------------------------

    def evaluate_heuristics(
        self, requests: list[tuple[np.ndarray, ScoreFunction]]
    ) -> list[LowerLevelOutcome]:
        """Evaluate ``(prices, score_fn)`` requests; returns outcomes in
        request order.  Memo hits and in-batch duplicates are served from
        one solve; only unique fresh work reaches the executor."""
        self.n_requests += len(requests)
        results: list[LowerLevelOutcome | None] = [None] * len(requests)
        pending: "OrderedDict[bytes, list[int]]" = OrderedDict()
        opaque: list[int] = []
        memo = self.evaluator.memo
        for i, (prices, fn) in enumerate(requests):
            # NB: ``memo is not None`` — EvaluationMemo has __len__, so an
            # *empty* memo is falsy and a plain truthiness test would
            # disable memoization before the first entry ever lands.
            key = self.evaluator.heuristic_key(prices, fn) if memo is not None else None
            if key is None:
                opaque.append(i)
                continue
            # repro-lint: disable-next-line=F003  # keys iterate via `pending` below in insertion order = deterministic first-occurrence request order
            found = memo.get(key)
            if found is not None:
                results[i] = found
            else:
                pending.setdefault(key, []).append(i)

        # Unique fresh work, in first-occurrence order interleaved with the
        # opaque (non-memoizable) requests so the computation order is a
        # deterministic function of the request order alone.
        order: list[tuple[bytes | None, int]] = [
            # repro-lint: disable-next-line=R003  # insertion order = first-occurrence request order, exactly the determinism contract stated above
            (key, idxs[0]) for key, idxs in pending.items()
        ]
        order += [(None, i) for i in opaque]
        order.sort(key=lambda pair: pair[1])
        entries = [requests[i] for _, i in order]
        outcomes = self._dispatch(entries)
        for (key, i), outcome in zip(order, outcomes):
            if key is None:
                results[i] = outcome
                continue
            # repro-lint: disable-next-line=F003  # key order comes from `pending` (OrderedDict, insertion order) — the determinism contract documented above
            memo.put(key, outcome)
            for j in pending[key]:
                results[j] = outcome
            self.n_deduplicated += len(pending[key]) - 1
        return results  # type: ignore[return-value]

    def prefetch_relaxations(self, price_vectors: list[np.ndarray]) -> None:
        """Solve uncached LP relaxations for ``price_vectors`` on the pool
        and seed the parent relaxation cache.  A no-op for serial
        executors (the cache then fills lazily, with identical values);
        purely a latency optimization either way."""
        if not isinstance(self.executor, ProcessExecutor):
            return
        evaluator = self.evaluator
        todo: "OrderedDict[bytes, np.ndarray]" = OrderedDict()
        for prices in price_vectors:
            prices = evaluator.instance.validate_prices(prices)
            costs = evaluator.instance.lower_level(prices).costs
            if evaluator._cache.contains(costs):
                continue
            todo.setdefault(costs.tobytes(), prices)
        if len(todo) < 2:
            return
        header = self._instance_header()
        unique = list(todo.values())
        batches = [header + (chunk,) for chunk in self._split(unique)]
        self.n_worker_batches += len(batches)
        results = self.executor.map(solve_relaxation_batch, batches)
        flat = [relax for chunk in results for relax in chunk]
        for prices, relax in zip(unique, flat):
            evaluator._cache.put(
                evaluator.instance.lower_level(prices).costs, relax
            )

    @property
    def stats(self) -> dict:
        """Counters for run-result reporting (memo hit rate included)."""
        out = {
            "requests": self.n_requests,
            "deduplicated": self.n_deduplicated,
            "parent_evaluations": self.n_parent_evaluations,
            "worker_evaluations": self.n_worker_evaluations,
            "worker_batches": self.n_worker_batches,
            "executor": repr(self.executor) if self.executor else "SerialExecutor()",
            "memo": self.evaluator.memo_stats,
            "kernel": self.evaluator.kernel_stats,
        }
        timers = getattr(self.evaluator, "timers", None)
        if timers is not None and timers.enabled:
            # Wall-clock aggregates — present only when explicitly
            # enabled, so compared extras stay deterministic by default.
            out["timers"] = timers.snapshot()
        if getattr(self.executor, "supervised", False):
            # Crash/retry/quarantine accounting rides into RunResult.extras
            # (and the solve server's stats op) alongside the cache stats.
            out["faults"] = self.executor.fault_stats.as_dict()
        return out
