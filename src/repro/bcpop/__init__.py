"""Bi-level Cloud Pricing Optimization Problem (BCPOP, paper Program 2).

A Cloud Service Provider (the leader) owns the first ``L`` of ``M`` market
bundles and sets their prices; a rational Cloud Service Customer (the
follower) then buys a minimum-cost set of bundles covering all its service
requirements.  The leader's payoff is the revenue from its own bundles in
the customer's basket.

Modules
-------
* :mod:`repro.bcpop.instance`  — the problem container and the pricing →
  lower-level induction,
* :mod:`repro.bcpop.generator` — OR-library-style synthetic instances for
  the paper's 9 classes (n ∈ {100, 250, 500} × m ∈ {5, 10, 30}),
* :mod:`repro.bcpop.orlib`     — OR-library MKP text-format parser and the
  §V-A ≤→≥ transformation,
* :mod:`repro.bcpop.evaluate`  — the shared lower-level evaluation pipeline
  (greedy solve + LP relaxation + %-gap) both CARBON and COBRA use.
"""

from repro.bcpop.instance import BcpopInstance
from repro.bcpop.generator import generate_instance, paper_instance_classes, PAPER_CLASSES
from repro.bcpop.orlib import parse_mknap, mkp_to_covering, MKPInstance
from repro.bcpop.evaluate import LowerLevelOutcome, LowerLevelEvaluator
from repro.bcpop.io import (
    bcpop_from_dict,
    bcpop_to_dict,
    export_mknap,
    load_bcpop,
    save_bcpop,
)

__all__ = [
    "bcpop_from_dict",
    "bcpop_to_dict",
    "export_mknap",
    "load_bcpop",
    "save_bcpop",
    "BcpopInstance",
    "generate_instance",
    "paper_instance_classes",
    "PAPER_CLASSES",
    "parse_mknap",
    "mkp_to_covering",
    "MKPInstance",
    "LowerLevelOutcome",
    "LowerLevelEvaluator",
]
