"""OR-library multidimensional-knapsack format support.

The paper sources its lower-level instances from the OR-library MKP files
(``mknap1``, ``mknapcb*``) and transforms every ``<=`` constraint into a
``>=`` constraint (§V-A).  This module provides:

* :func:`parse_mknap` — a parser for the OR-library ``mknap1`` text format
  (whitespace-separated stream: problem count, then per problem
  ``n m optimum``, ``n`` profits, ``m x n`` coefficients, ``m`` capacities),
* :func:`mkp_to_covering` — the ≤→≥ transformation with the paper's
  non-empty-search-space guarantee,
* :func:`mkp_to_bcpop` — wrap the transformed instance into a BCPOP by
  designating the first bundles as leader-owned.

When actual OR-library files are available they can be dropped in verbatim;
the test-suite round-trips the parser on a synthetic file written in the
same format.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.bcpop.instance import BcpopInstance
from repro.covering.instance import CoveringInstance

__all__ = ["MKPInstance", "parse_mknap", "format_mknap", "mkp_to_covering", "mkp_to_bcpop"]


@dataclass(frozen=True)
class MKPInstance:
    """A multidimensional knapsack problem:
    ``max p^T x  s.t.  W x <= capacity, x in {0,1}^n``."""

    profits: np.ndarray
    weights: np.ndarray  # (m, n)
    capacities: np.ndarray
    optimum: float | None = None
    name: str = ""

    def __post_init__(self) -> None:
        profits = np.asarray(self.profits, dtype=np.float64)
        weights = np.atleast_2d(np.asarray(self.weights, dtype=np.float64))
        capacities = np.asarray(self.capacities, dtype=np.float64)
        if weights.shape != (capacities.size, profits.size):
            raise ValueError(
                f"weights shape {weights.shape} != ({capacities.size}, {profits.size})"
            )
        object.__setattr__(self, "profits", profits)
        object.__setattr__(self, "weights", weights)
        object.__setattr__(self, "capacities", capacities)

    @property
    def n(self) -> int:
        return self.profits.size

    @property
    def m(self) -> int:
        return self.capacities.size


def parse_mknap(text: str | Path, name_prefix: str = "mknap") -> list[MKPInstance]:
    """Parse an OR-library ``mknap1``-format stream into MKP instances.

    Accepts either the file contents or a path.  The format is a single
    whitespace-separated token stream:

        K
        n m optimum      (optimum 0 when unknown)
        p_1 ... p_n
        w_11 ... w_1n    (row per constraint)
        ...
        w_m1 ... w_mn
        C_1 ... C_m
    """
    if isinstance(text, Path):
        text = text.read_text()
    tokens = text.split()
    if not tokens:
        raise ValueError("empty mknap stream")
    pos = 0

    def take(count: int) -> np.ndarray:
        nonlocal pos
        if pos + count > len(tokens):
            raise ValueError(
                f"truncated mknap stream: wanted {count} tokens at offset {pos}, "
                f"have {len(tokens) - pos}"
            )
        chunk = np.array([float(t) for t in tokens[pos: pos + count]])
        pos += count
        return chunk

    n_problems = int(take(1)[0])
    if n_problems <= 0:
        raise ValueError(f"mknap stream declares {n_problems} problems")
    problems: list[MKPInstance] = []
    for idx in range(n_problems):
        header = take(3)
        n, m, opt = int(header[0]), int(header[1]), float(header[2])
        if n <= 0 or m <= 0:
            raise ValueError(f"problem {idx}: bad dimensions n={n}, m={m}")
        profits = take(n)
        weights = take(m * n).reshape(m, n)
        capacities = take(m)
        problems.append(
            MKPInstance(
                profits=profits, weights=weights, capacities=capacities,
                optimum=opt if opt > 0 else None,
                name=f"{name_prefix}-{idx}",
            )
        )
    if pos != len(tokens):
        raise ValueError(f"{len(tokens) - pos} trailing tokens in mknap stream")
    return problems


def format_mknap(problems: list[MKPInstance]) -> str:
    """Inverse of :func:`parse_mknap` (used for round-trip tests and to
    export generated instances in a standard format)."""
    chunks: list[str] = [str(len(problems))]
    for p in problems:
        chunks.append(f"{p.n} {p.m} {p.optimum or 0}")
        chunks.append(" ".join(f"{v:g}" for v in p.profits))
        for row in p.weights:
            chunks.append(" ".join(f"{v:g}" for v in row))
        chunks.append(" ".join(f"{v:g}" for v in p.capacities))
    return "\n".join(chunks) + "\n"


def mkp_to_covering(mkp: MKPInstance, demand_scale: float = 1.0) -> CoveringInstance:
    """Paper §V-A transformation: flip every ``<=`` into ``>=``.

    ``max p x s.t. W x <= C`` becomes ``min p x s.t. W x >= b`` with
    ``b = demand_scale * C`` clipped so the all-ones vector still covers —
    the "non-empty search space" guarantee.
    """
    if demand_scale <= 0:
        raise ValueError(f"demand_scale must be positive, got {demand_scale}")
    supply = mkp.weights.sum(axis=1)
    demand = np.minimum(demand_scale * mkp.capacities, supply)
    return CoveringInstance(
        costs=mkp.profits, q=mkp.weights, demand=demand,
        name=f"{mkp.name}-covering",
    )


def mkp_to_bcpop(
    mkp: MKPInstance,
    own_fraction: float = 0.2,
    demand_scale: float = 1.0,
    price_cap: float | None = None,
) -> BcpopInstance:
    """Wrap a transformed MKP instance into a BCPOP (first bundles = leader's)."""
    covering = mkp_to_covering(mkp, demand_scale=demand_scale)
    n_own = max(1, int(round(own_fraction * covering.n_bundles)))
    if n_own >= covering.n_bundles:
        raise ValueError("own_fraction leaves no market bundles")
    market = covering.costs[n_own:]
    cap = float(price_cap) if price_cap is not None else float(market.max())
    return BcpopInstance(
        q=covering.q,
        demand=covering.demand,
        market_prices=market,
        n_own=n_own,
        price_cap=cap,
        name=f"{mkp.name}-bcpop",
    )
