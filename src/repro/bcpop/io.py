"""Instance serialization.

Two formats:

* **JSON** — lossless round-trip of :class:`BcpopInstance` (and the
  tri-level extension) including the bi-level metadata the OR-library
  format cannot carry,
* **mknap** — export of the underlying covering structure in the
  OR-library text format (via :mod:`repro.bcpop.orlib`) so instances can
  be fed to external MKP/covering codes.

Keeping generated experiment instances on disk makes paper-scale runs
resumable and lets third parties re-run against the *exact* instances a
report used.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.bcpop.instance import BcpopInstance
from repro.bcpop.orlib import MKPInstance, format_mknap

__all__ = [
    "bcpop_to_dict",
    "bcpop_from_dict",
    "save_bcpop",
    "load_bcpop",
    "export_mknap",
]

_FORMAT_VERSION = 1


def bcpop_to_dict(instance: BcpopInstance) -> dict:
    """Lossless plain-dict representation (JSON-serializable)."""
    return {
        "format": "repro-bcpop",
        "version": _FORMAT_VERSION,
        "name": instance.name,
        "n_own": instance.n_own,
        "price_cap": instance.price_cap,
        "q": instance.q.tolist(),
        "demand": instance.demand.tolist(),
        "market_prices": instance.market_prices.tolist(),
    }


def bcpop_from_dict(data: dict) -> BcpopInstance:
    """Inverse of :func:`bcpop_to_dict` with format validation."""
    if data.get("format") != "repro-bcpop":
        raise ValueError(f"not a repro-bcpop document: format={data.get('format')!r}")
    if data.get("version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported version {data.get('version')!r}")
    return BcpopInstance(
        q=np.asarray(data["q"], dtype=np.float64),
        demand=np.asarray(data["demand"], dtype=np.float64),
        market_prices=np.asarray(data["market_prices"], dtype=np.float64),
        n_own=int(data["n_own"]),
        price_cap=float(data["price_cap"]),
        name=str(data.get("name", "")),
    )


def save_bcpop(instance: BcpopInstance, path: str | Path) -> None:
    """Write an instance as JSON."""
    Path(path).write_text(json.dumps(bcpop_to_dict(instance), indent=1, sort_keys=True))


def load_bcpop(path: str | Path) -> BcpopInstance:
    """Read an instance written by :func:`save_bcpop`."""
    return bcpop_from_dict(json.loads(Path(path).read_text()))


def export_mknap(
    instance: BcpopInstance,
    path: str | Path | None = None,
    reference_prices: np.ndarray | None = None,
) -> str:
    """Export the covering structure in OR-library mknap format.

    The bi-level metadata (ownership split, price cap) does not fit the
    format; the leader's bundles get ``reference_prices`` (default: the
    price cap) as profits.  Returns the text; writes it when ``path`` is
    given.
    """
    if reference_prices is None:
        reference_prices = np.full(instance.n_own, instance.price_cap)
    prices = instance.validate_prices(reference_prices)
    profits = np.concatenate([prices, instance.market_prices])
    mkp = MKPInstance(
        profits=profits,
        weights=instance.q,
        capacities=instance.demand,
        optimum=None,
        name=instance.name or "bcpop",
    )
    text = format_mknap([mkp])
    if path is not None:
        Path(path).write_text(text)
    return text
