"""BCPOP instance container.

Implements the data of Program 2:

    max_c   F = sum_{j<=L} c_j x_j              (leader revenue)
    s.t.    min_x f = sum_{j<=M} c_j x_j        (customer cost)
            s.t. sum_j q_j^k x_j >= b^k  ∀k
                 x_j in {0, 1}
            c_j >= 0  for the leader's bundles j <= L

The first ``n_own`` (= paper ``L``) bundles belong to the leader; their
prices are the upper-level decision vector.  The remaining bundles carry
fixed market prices.  A pricing decision *induces* a lower-level covering
instance via :meth:`BcpopInstance.lower_level` — feasibility structure
(``q``, ``demand``) never changes, only the objective, which is exactly the
epistatic coupling the paper discusses.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.covering.instance import CoveringInstance

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.bcpop.evaluate import LowerLevelEvaluator

__all__ = ["BcpopInstance"]


@dataclass(frozen=True)
class BcpopInstance:
    """One Bi-level Cloud Pricing problem.

    Parameters
    ----------
    q:
        ``(n_services, n_bundles)`` service distribution matrix ``q_j^k``.
    demand:
        ``(n_services,)`` requirements ``b^k``.
    market_prices:
        ``(n_bundles - n_own,)`` fixed prices of competitor bundles.
    n_own:
        Number of leader-owned bundles ``L`` (always the first columns).
    price_cap:
        Upper bound for each leader price (the UL box constraint; the
        paper's UL encoding is "continuous values" — we bound them by the
        instance's price scale so SBX/polynomial mutation have a box).
    name:
        Label, e.g. ``"bcpop-n500-m30-s0"``.
    """

    q: np.ndarray
    demand: np.ndarray
    market_prices: np.ndarray
    n_own: int
    price_cap: float
    name: str = ""

    def __post_init__(self) -> None:
        q = np.ascontiguousarray(np.asarray(self.q, dtype=np.float64))
        demand = np.ascontiguousarray(np.asarray(self.demand, dtype=np.float64))
        market = np.ascontiguousarray(np.asarray(self.market_prices, dtype=np.float64))
        if q.ndim != 2:
            raise ValueError(f"q must be 2-D, got {q.shape}")
        n_bundles = q.shape[1]
        if not (0 < self.n_own <= n_bundles):
            raise ValueError(f"n_own={self.n_own} out of range for {n_bundles} bundles")
        if market.shape != (n_bundles - self.n_own,):
            raise ValueError(
                f"market_prices shape {market.shape} != ({n_bundles - self.n_own},)"
            )
        if demand.shape != (q.shape[0],):
            raise ValueError(f"demand shape {demand.shape} != ({q.shape[0]},)")
        if np.any(market < 0):
            raise ValueError("market prices must be non-negative")
        if self.price_cap <= 0:
            raise ValueError(f"price_cap must be positive, got {self.price_cap}")
        if np.any(q < 0) or np.any(demand < 0):
            raise ValueError("q and demand must be non-negative")
        object.__setattr__(self, "q", q)
        object.__setattr__(self, "demand", demand)
        object.__setattr__(self, "market_prices", market)

    @property
    def n_bundles(self) -> int:
        return self.q.shape[1]

    @property
    def n_services(self) -> int:
        return self.q.shape[0]

    @property
    def digest(self) -> str:
        """Content digest of the problem data (name excluded).

        Used as the instance component of memo-cache keys and as the
        worker-side registry key of the parallel evaluation pipeline, so
        two structurally identical instances share cached evaluations and
        two different instances can never collide.
        """
        cached = self.__dict__.get("_digest")
        if cached is None:
            h = hashlib.sha256()
            h.update(np.asarray([self.n_own], dtype=np.int64).tobytes())
            h.update(np.float64(self.price_cap).tobytes())
            h.update(np.asarray(self.q.shape, dtype=np.int64).tobytes())
            h.update(self.q.tobytes())
            h.update(self.demand.tobytes())
            h.update(self.market_prices.tobytes())
            cached = h.hexdigest()
            object.__setattr__(self, "_digest", cached)
        return cached

    @property
    def price_bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """Box constraints ``(low, high)`` for the UL decision vector."""
        return (
            np.zeros(self.n_own),
            np.full(self.n_own, self.price_cap),
        )

    def validate_prices(self, prices: np.ndarray) -> np.ndarray:
        """Check and canonicalize an upper-level decision vector."""
        prices = np.asarray(prices, dtype=np.float64).ravel()
        if prices.shape != (self.n_own,):
            raise ValueError(f"prices shape {prices.shape} != ({self.n_own},)")
        if np.any(prices < -1e-9):
            raise ValueError("prices must be non-negative")
        return np.clip(prices, 0.0, self.price_cap)

    def lower_level(self, prices: np.ndarray) -> CoveringInstance:
        """Induce the lower-level covering instance for a pricing decision."""
        prices = self.validate_prices(prices)
        costs = np.concatenate([prices, self.market_prices])
        return CoveringInstance(costs=costs, q=self.q, demand=self.demand, name=self.name)

    def revenue(self, prices: np.ndarray, selection: np.ndarray) -> float:
        """Leader payoff ``F = sum_{j<=L} c_j x_j`` for a follower basket."""
        prices = self.validate_prices(prices)
        sel = np.asarray(selection, dtype=bool)
        if sel.shape != (self.n_bundles,):
            raise ValueError(f"selection shape {sel.shape} != ({self.n_bundles},)")
        return float(prices @ sel[: self.n_own])

    def make_evaluator(
        self,
        lp_backend: str = "scipy",
        cache_size: int = 4096,
        gap_eps: float = 1e-9,
        memo_size: int | None = None,
        compile: bool = True,
        lp_warm_start: bool = False,
    ) -> "LowerLevelEvaluator":
        """Polymorphic evaluator factory — the pipeline's worker side
        calls this instead of hard-coding one evaluator class, so other
        instance families (e.g. :mod:`repro.bilevel.bilinear`) ride the
        same process pool."""
        from repro.bcpop.evaluate import DEFAULT_MEMO_SIZE, LowerLevelEvaluator

        return LowerLevelEvaluator(
            self,
            lp_backend=lp_backend,
            cache_size=cache_size,
            gap_eps=gap_eps,
            memo_size=DEFAULT_MEMO_SIZE if memo_size is None else memo_size,
            compile=compile,
            lp_warm_start=lp_warm_start,
        )

    def market_only_instance(self) -> CoveringInstance:
        """The covering instance where the leader's bundles are priced at
        the cap (worst case for the customer) — used to check that the
        market alone can cover demand, i.e. the follower always has an
        outside option."""
        return self.lower_level(np.full(self.n_own, self.price_cap))

    def is_coverable(self) -> bool:
        """Non-empty lower-level search space (paper §V-A requirement)."""
        return self.lower_level(np.zeros(self.n_own)).is_coverable()
