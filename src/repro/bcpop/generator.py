"""Synthetic OR-library-style BCPOP instance generation.

The paper (§V-A) takes multidimensional-knapsack (MKP) instances from the
OR-library, flips the ``<=`` constraints to ``>=`` (turning packing into
covering), checks non-emptiness of the search space, and uses 9 classes:
``n ∈ {100, 250, 500}`` decision variables × ``m ∈ {5, 10, 30}``
constraints.

This module synthesizes instances with the statistical recipe of the
classic OR-library ``mknap`` generators (Chu & Beasley):

* coefficients ``q[k, j] ~ U{0, ..., 1000}`` integers,
* requirements ``b^k = tightness * sum_j q[k, j]`` (tightness < 1 keeps the
  search space non-empty: selecting everything always covers),
* value-correlated costs ``c_j = sum_k q[k, j] / m * corr + U(0, 500)`` —
  cost correlates with usefulness, which is what makes MKP-family
  instances non-trivial.

For the bi-level wrapping, the first ``own_fraction`` of bundles belong to
the leader.  Their generated costs are *discarded* (they become UL decision
variables); the cap on leader prices defaults to the maximum market price,
so the leader can always price itself out of the market but not above it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bcpop.instance import BcpopInstance
from repro.covering.instance import CoveringInstance

__all__ = [
    "GeneratorSpec",
    "generate_covering_instance",
    "generate_instance",
    "paper_instance_classes",
    "PAPER_CLASSES",
]

#: The paper's 9 instance classes as (n_bundles, n_services).
PAPER_CLASSES: tuple[tuple[int, int], ...] = (
    (100, 5), (100, 10), (100, 30),
    (250, 5), (250, 10), (250, 30),
    (500, 5), (500, 10), (500, 30),
)


@dataclass(frozen=True)
class GeneratorSpec:
    """Knobs of the OR-library-style generator."""

    n_bundles: int
    n_services: int
    tightness: float = 0.25
    coeff_max: int = 1000
    cost_noise: float = 500.0
    cost_correlation: float = 0.5
    own_fraction: float = 0.2

    def __post_init__(self) -> None:
        if self.n_bundles < 2 or self.n_services < 1:
            raise ValueError(f"degenerate size {self.n_bundles}x{self.n_services}")
        if not (0.0 < self.tightness < 1.0):
            raise ValueError(f"tightness must be in (0, 1), got {self.tightness}")
        if not (0.0 < self.own_fraction < 1.0):
            raise ValueError(f"own_fraction must be in (0, 1), got {self.own_fraction}")


def generate_covering_instance(
    spec: GeneratorSpec, rng: np.random.Generator, name: str = ""
) -> CoveringInstance:
    """Generate a single-level covering instance (the §V-A transformed MKP)."""
    q = rng.integers(0, spec.coeff_max + 1, size=(spec.n_services, spec.n_bundles))
    q = q.astype(np.float64)
    demand = spec.tightness * q.sum(axis=1)
    costs = (
        spec.cost_correlation * q.sum(axis=0) / spec.n_services
        + rng.uniform(0.0, spec.cost_noise, spec.n_bundles)
    )
    inst = CoveringInstance(costs=costs, q=q, demand=demand, name=name)
    if not inst.is_coverable():  # pragma: no cover - tightness < 1 guarantees this
        raise RuntimeError("generated instance is uncoverable")
    return inst


def generate_instance(
    n_bundles: int,
    n_services: int,
    seed: int | np.random.Generator = 0,
    tightness: float = 0.25,
    own_fraction: float = 0.2,
    price_cap: float | None = None,
    name: str | None = None,
) -> BcpopInstance:
    """Generate one BCPOP instance of a paper class.

    Parameters
    ----------
    n_bundles, n_services:
        Class parameters (paper's ``n`` / ``m``).
    seed:
        Int seed or a live generator.
    tightness:
        Demand as a fraction of total per-service supply.
    own_fraction:
        Fraction of bundles owned by the leader (``L = round(f * n)``,
        at least 1).
    price_cap:
        Leader price upper bound; default = max market price.
    """
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    spec = GeneratorSpec(
        n_bundles=n_bundles, n_services=n_services,
        tightness=tightness, own_fraction=own_fraction,
    )
    label = name or f"bcpop-n{n_bundles}-m{n_services}"
    base = generate_covering_instance(spec, rng, name=label)
    n_own = max(1, int(round(own_fraction * n_bundles)))
    market = base.costs[n_own:]
    cap = float(price_cap) if price_cap is not None else float(market.max())
    inst = BcpopInstance(
        q=base.q,
        demand=base.demand,
        market_prices=market,
        n_own=n_own,
        price_cap=cap,
        name=label,
    )
    # Paper §V-A: ensure the (bi-level) search space is non-empty, i.e. the
    # follower can cover its demand no matter how the leader prices.
    if not inst.is_coverable():  # pragma: no cover
        raise RuntimeError("generated BCPOP instance is uncoverable")
    return inst


def paper_instance_classes(
    seed: int = 0,
    instances_per_class: int = 1,
    tightness: float = 0.25,
    own_fraction: float = 0.2,
) -> dict[tuple[int, int], list[BcpopInstance]]:
    """Generate the 9 paper classes, ``instances_per_class`` each.

    Instance ``i`` of class ``(n, m)`` is derived from an addressable
    seed so the suite is reproducible regardless of generation order.
    """
    from repro.parallel.rng import stream_for

    out: dict[tuple[int, int], list[BcpopInstance]] = {}
    for n, m in PAPER_CLASSES:
        out[(n, m)] = [
            generate_instance(
                n, m,
                seed=stream_for(seed, "bcpop", n, m, i),
                tightness=tightness,
                own_fraction=own_fraction,
                name=f"bcpop-n{n}-m{m}-s{i}",
            )
            for i in range(instances_per_class)
        ]
    return out
