"""Tri-level extension (the paper's future work, §VI).

The conclusion announces: "Future works will be devoted to multiple-level
problems with deeper nested structure in order to analyze the limitations
of CARBON in terms of co-evolution."  This package builds that study on a
three-tier cloud market:

* **Level 1 — provider** sets wholesale prices ``w`` for its bundles,
* **Level 2 — reseller** sets retail markups ``r - w >= 0`` on those
  bundles to maximize its own margin, knowing the customer reacts,
* **Level 3 — customer** solves the familiar covering problem over retail
  prices (leader bundles) and fixed market prices.

The provider earns ``Σ w_j y_j`` — wholesale revenue on every one of its
bundles the customer ends up buying — so its payoff depends on *two*
nested rational reactions.

Modules
-------
* :mod:`repro.trilevel.instance` — the tri-level market model and the
  reduction of level 2+3 (for fixed ``w``) to an ordinary BCPOP,
* :mod:`repro.trilevel.evaluate` — the nested reaction pipeline:
  reseller optimization (GA over markups) on top of customer solves
  (greedy heuristic), with tri-level budget accounting,
* :mod:`repro.trilevel.carbon3` — CARBON with one extra nesting level,
  plus the fully-nested baseline; the benches quantify exactly the cost
  the paper anticipated: every extra level multiplies the evaluation bill.
"""

from repro.trilevel.instance import TriLevelInstance
from repro.trilevel.evaluate import ResellerReaction, TriLevelEvaluator
from repro.trilevel.carbon3 import TriLevelCarbon, run_trilevel_carbon

__all__ = [
    "TriLevelInstance",
    "ResellerReaction",
    "TriLevelEvaluator",
    "TriLevelCarbon",
    "run_trilevel_carbon",
]
