"""CARBON with one extra nesting level (the future-work study).

``TriLevelCarbon`` keeps the paper's competitive structure — a prey
population of provider wholesale vectors and a predator population of GP
scoring heuristics — but every prey evaluation now runs the *nested*
reseller reaction of :class:`repro.trilevel.evaluate.TriLevelEvaluator`.
The heuristic population is still graded on plain covering instances
(induced by sampled retail vectors), because a greedy heuristic is
level-agnostic: it solves the customer problem no matter how many pricing
tiers sit above it.  That is the part of CARBON that survives deeper
nesting unchanged.

What does *not* survive is the evaluation bill: each level-1 evaluation
costs ``reseller_population x (reseller_generations + 1)`` level-3
solves, so for the same level-3 budget the provider sees its effective
upper-level budget divided by that multiplier.  ``RunResult.extras``
reports the observed multiplier; ``benchmarks/bench_trilevel.py`` sweeps
it — the quantitative answer to the paper's closing question about
CARBON's co-evolution limits.
"""

from __future__ import annotations

import numpy as np

from repro.core.archive import Archive
from repro.core.config import CarbonConfig
from repro.core.engine import EngineAlgorithm, EngineLoop
from repro.core.evalmode import stable_identity
from repro.core.results import RunResult, solution_from_entry
from repro.covering.greedy import greedy_cover
from repro.ga.encoding import Bounds
from repro.ga.operators import polynomial_mutation, sbx_crossover
from repro.ga.population import Individual, random_real_population
from repro.ga.selection import binary_tournament
from repro.gp.generate import ramped_half_and_half
from repro.gp.operators import one_point_crossover, reproduce, uniform_mutation
from repro.gp.primitives import paper_primitive_set
from repro.gp.selection import tournament
from repro.lp.bounds import RelaxationCache
from repro.trilevel.evaluate import TriLevelEvaluator
from repro.trilevel.instance import TriLevelInstance

__all__ = ["TriLevelCarbon", "run_trilevel_carbon"]


class TriLevelCarbon(EngineAlgorithm):
    """Competitive co-evolution over the tri-level market.

    Parameters
    ----------
    instance:
        The tri-level market model.
    config:
        Reuses :class:`CarbonConfig`; the UL budget counts level-1
        evaluations and the LL budget counts level-3 solves (heuristic
        grading *and* nested reactions both draw from it).
    reseller_population / reseller_generations:
        Budget of the embedded level-2 GA.
    """

    def __init__(
        self,
        instance: TriLevelInstance,
        config: CarbonConfig | None = None,
        rng: np.random.Generator | None = None,
        reseller_population: int = 8,
        reseller_generations: int = 3,
        lp_backend: str = "scipy",
    ) -> None:
        self.instance = instance
        self.config = config or CarbonConfig.quick()
        self.rng = self._init_rng(rng, self.config.execution, component="carbon3")
        self.pset = paper_primitive_set(erc_probability=self.config.gp_erc_probability)
        self.bounds = Bounds(*instance.wholesale_bounds)
        self.reseller_population = reseller_population
        self.reseller_generations = reseller_generations
        self.lp_backend = lp_backend

        self._relax_cache = RelaxationCache(backend=lp_backend)
        # The ledger's upper meter counts level-1 evaluations, its lower
        # meter level-3 solves (the tri-level reading of the two budgets).
        self._engine_init(
            self.config.upper.fitness_evaluations, self.config.ll_fitness_evaluations
        )
        self._init_eval_mode(self.config.eval_mode)
        self.ul_archive = Archive(self.config.upper.archive_size, minimize=False)
        # Content-digest identity (not ``hash()``, which PYTHONHASHSEED
        # randomizes for trees) — same rationale as Carbon's ll_archive.
        self.ll_archive = Archive(
            self.config.ll_archive_size, minimize=True, identity=stable_identity
        )
        self.ul_pop: list[Individual] = []
        self.ll_pop: list[Individual] = []
        self.champion = None

    @property
    def name(self) -> str:
        return "CARBON3"

    @property
    def l1_used(self) -> int:
        return self.ledger.upper.used

    @property
    def l3_used(self) -> int:
        return self.ledger.lower.used

    @property
    def l1_budget_left(self) -> int:
        return self.ledger.upper.left

    @property
    def l3_budget_left(self) -> int:
        return self.ledger.lower.left

    # -- heuristic grading (level 3, same as two-level CARBON) -------------

    def _retail_sample(self, k: int) -> list[np.ndarray]:
        """Retail vectors the heuristics are graded on: wholesale samples
        from the prey population (plus archived wholesale vectors under
        non-``current`` evaluation modes), marked up by random feasible
        margins.  Under ``current`` the archived tail is empty and RNG
        consumption is identical to the historical behaviour."""
        archived = self.eval_mode.upper_panel(k // 2, self.rng)
        k_live = k - len(archived)
        out = []
        for i in range(k):
            if i < k_live:
                if self.ul_pop:
                    w = self.ul_pop[self.rng.integers(len(self.ul_pop))].genome
                else:
                    w = self.bounds.sample(self.rng)
            else:
                w = archived[i - k_live]
            span = np.maximum(self.instance.retail_cap - w, 0.0)
            out.append(np.clip(w + self.rng.uniform(0.0, 1.0, w.size) * span,
                               0.0, self.instance.retail_cap))
        return out

    def _grade_tree(self, ind: Individual, retails: list[np.ndarray]) -> bool:
        gaps = []
        for retail in retails:
            if self.ledger.lower.exhausted:
                break
            ll = self.instance.retail_instance(retail)
            relax = self._relax_cache.get(ll)
            sol = greedy_cover(ll, ind.genome, duals=relax.duals, xbar=relax.xbar)
            gaps.append(relax.percent_gap(sol.cost) if sol.feasible else np.inf)
            self.ledger.charge(lower=1)
        if not gaps:
            return False
        finite = [g for g in gaps if np.isfinite(g)]
        ind.fitness = float(np.mean(finite)) if len(finite) == len(gaps) else np.inf
        self.ll_archive.add(ind.genome, ind.fitness)
        return True

    def _update_champion(self) -> None:
        if len(self.ll_archive):
            best = self.ll_archive.best()
            self.champion = best.item
            self.eval_mode.record_lower(best.item, best.score, self.generation)

    # -- provider evaluation (level 1 via nested levels 2+3) ----------------

    def _reaction(self, wholesale: np.ndarray, solver):
        """One nested reseller reaction under a given level-3 solver."""
        evaluator = TriLevelEvaluator(
            self.instance, solver,
            reseller_population=self.reseller_population,
            reseller_generations=self.reseller_generations,
            lp_backend=self.lp_backend,
        )
        evaluator._cache = self._relax_cache  # share the LP cache across evals
        return evaluator.reseller_react(wholesale, self.rng)

    def _evaluate_provider(self, ind: Individual) -> bool:
        if self.ledger.upper.exhausted or self.ledger.lower.exhausted:
            return False
        assert self.champion is not None
        panel = self.eval_mode.lower_panel(self.champion, self.rng)
        reactions = []
        for i, solver in enumerate(panel):
            # The champion reaction always runs; extra panel reactions
            # stop when the level-3 budget dries up mid-panel.
            if i and self.ledger.lower.exhausted:
                break
            reaction = self._reaction(ind.genome, solver)
            self.ledger.charge(lower=reaction.level3_solves)
            reactions.append(reaction)
        # One level-1 evaluation regardless of panel width.
        self.ledger.charge(upper=1)
        payoffs = [
            r.provider_revenue if np.isfinite(r.customer_gap) else -np.inf
            for r in reactions
        ]
        ind.fitness = self.eval_mode.aggregate(payoffs)
        rep = reactions[self.eval_mode.representative_index(payoffs)]
        ind.aux = {
            "gap": rep.customer_gap,
            "retail": rep.retail,
            "selection": rep.selection,
            "margin": rep.reseller_margin,
            "customer_cost": rep.customer_cost,
            "level3_solves": sum(r.level3_solves for r in reactions),
        }
        self.ul_archive.add(ind.genome.copy(), ind.fitness, aux=dict(ind.aux))
        if not self.eval_mode.is_current and np.isfinite(ind.fitness):
            self.eval_mode.record_upper(
                ind.genome.copy(), ind.fitness, self.generation
            )
        return True

    # -- generations ---------------------------------------------------------

    def _gp_generation(self) -> None:
        cfg = self.config
        fits = [i.fitness for i in self.ll_pop]
        offspring: list[Individual] = []
        while len(offspring) < cfg.ll_population_size:
            r = self.rng.random()
            if r < cfg.ll_crossover_probability and len(self.ll_pop) >= 2:
                a, b = tournament(self.ll_pop, fits, 2, self.rng,
                                  k=cfg.ll_tournament_size, minimize=True)
                c1, c2 = one_point_crossover(
                    a.genome, b.genome, self.rng,
                    max_depth=cfg.gp_max_depth, max_size=cfg.gp_max_size,
                )
                offspring.append(Individual(genome=c1))
                if len(offspring) < cfg.ll_population_size:
                    offspring.append(Individual(genome=c2))
            elif r < cfg.ll_crossover_probability + cfg.ll_mutation_probability:
                (a,) = tournament(self.ll_pop, fits, 1, self.rng,
                                  k=cfg.ll_tournament_size, minimize=True)
                offspring.append(Individual(genome=uniform_mutation(
                    a.genome, self.pset, self.rng,
                    max_depth=cfg.gp_max_depth, max_size=cfg.gp_max_size,
                )))
            else:
                (a,) = tournament(self.ll_pop, fits, 1, self.rng,
                                  k=cfg.ll_tournament_size, minimize=True)
                offspring.append(Individual(
                    genome=reproduce(a.genome), fitness=a.fitness, aux=dict(a.aux)
                ))
        retails = self._retail_sample(cfg.heuristic_eval_sample)
        for ind in offspring:
            if not ind.evaluated and not self._grade_tree(ind, retails):
                ind.fitness = np.inf
        best = self.ll_archive.best()
        self.ll_pop = offspring[: cfg.ll_population_size - 1] + [
            Individual(genome=best.item, fitness=best.score)
        ]
        self._update_champion()

    def _ga_generation(self) -> None:
        cfg = self.config.upper
        fits = [i.fitness for i in self.ul_pop]
        mates = binary_tournament(self.ul_pop, fits, cfg.population_size, self.rng)
        offspring: list[Individual] = []
        for i in range(0, len(mates) - 1, 2):
            g1, g2 = mates[i].genome, mates[i + 1].genome
            if self.rng.random() < cfg.crossover_probability:
                g1, g2 = sbx_crossover(g1, g2, self.bounds, self.rng, eta=cfg.sbx_eta)
            offspring.append(Individual(genome=g1.copy()))
            offspring.append(Individual(genome=g2.copy()))
        if len(mates) % 2:
            offspring.append(Individual(genome=mates[-1].genome.copy()))
        for ind in offspring:
            ind.genome = polynomial_mutation(
                ind.genome, self.bounds, self.rng,
                eta=cfg.polynomial_eta,
                per_gene_probability=cfg.mutation_probability,
            )
            if not self._evaluate_provider(ind):
                ind.fitness = -np.inf
        best = self.ul_archive.best()
        self.ul_pop = offspring[: cfg.population_size - 1] + [
            Individual(genome=best.item.copy(), fitness=best.score, aux=dict(best.aux))
        ]

    def generation_metrics(self) -> dict[str, float]:
        fits = [i.fitness for i in self.ul_pop if np.isfinite(i.fitness)]
        gaps = [i.fitness for i in self.ll_pop if np.isfinite(i.fitness)]
        return {
            "best_fitness": max(fits) if fits else np.nan,
            "best_gap": min(gaps) if gaps else np.nan,
            "mean_gap": float(np.mean(gaps)) if gaps else np.nan,
        }

    # -- main loop -------------------------------------------------------------

    def initialize(self) -> None:
        cfg = self.config
        self.ul_pop = random_real_population(self.bounds, cfg.upper.population_size, self.rng)
        self.ll_pop = [
            Individual(genome=t)
            for t in ramped_half_and_half(
                self.pset, cfg.ll_population_size, self.rng,
                cfg.gp_min_init_depth, cfg.gp_max_init_depth,
            )
        ]
        retails = self._retail_sample(cfg.heuristic_eval_sample)
        for ind in self.ll_pop:
            if not self._grade_tree(ind, retails):
                ind.fitness = np.inf
        self._update_champion()
        if self.champion is None:
            raise RuntimeError("level-3 budget too small to grade one heuristic")
        for ind in self.ul_pop:
            if not self._evaluate_provider(ind):
                ind.fitness = -np.inf
        self.record_point()

    def step(self) -> bool:
        if self.ledger.upper.exhausted or self.ledger.lower.exhausted:
            return False
        self._gp_generation()
        if not self.ledger.lower.exhausted:
            self._ga_generation()
        self.record_point()
        return True

    def extract_result(self, seed_label: int, wall_time: float) -> RunResult:
        best = self.ul_archive.best()
        multiplier = (self.l3_used / self.l1_used) if self.l1_used else 0.0
        return RunResult(
            algorithm=self.name,
            instance_name=self.instance.name,
            seed=seed_label,
            best_gap=self.ll_archive.best_score(),
            best_upper=best.score,
            best_solution=solution_from_entry(
                best, self.instance.n_bundles, lower_cost_key="customer_cost"
            ),
            history=self.history,
            ul_evaluations_used=self.l1_used,
            ll_evaluations_used=self.l3_used,
            wall_time=wall_time,
            extras={
                "champion": self.champion.to_infix() if self.champion else "",
                "nesting_multiplier": multiplier,
                "reseller_margin": best.aux.get("margin", np.nan),
                "retail": best.aux.get("retail"),
                "eval_mode": self.eval_mode.mode,
            },
        )

    # -- checkpointing -------------------------------------------------------

    def _state_payload(self) -> dict:
        return {
            "ul_pop": list(self.ul_pop),
            "ll_pop": list(self.ll_pop),
            "ul_archive": self.ul_archive.state_dict(),
            "ll_archive": self.ll_archive.state_dict(),
            "champion": self.champion,
            "eval_mode": self.eval_mode.state_dict(),
        }

    def _load_payload(self, payload: dict) -> None:
        self.ul_pop = list(payload["ul_pop"])
        self.ll_pop = list(payload["ll_pop"])
        self.ul_archive.load_state_dict(payload["ul_archive"])
        self.ll_archive.load_state_dict(payload["ll_archive"])
        self.champion = payload["champion"]
        mode_state = payload.get("eval_mode")  # absent in pre-mode checkpoints
        if mode_state is not None:
            self.eval_mode.load_state_dict(mode_state)


def run_trilevel_carbon(
    instance: TriLevelInstance,
    config: CarbonConfig | None = None,
    seed: int = 0,
    reseller_population: int = 8,
    reseller_generations: int = 3,
    lp_backend: str = "scipy",
    observers=(),
    resume_state: dict | None = None,
) -> RunResult:
    """Convenience wrapper: one seeded, engine-driven tri-level run."""
    algorithm = TriLevelCarbon(
        instance, config=config, rng=np.random.default_rng(seed),
        reseller_population=reseller_population,
        reseller_generations=reseller_generations,
        lp_backend=lp_backend,
    )
    return EngineLoop(algorithm, observers=observers, resume_state=resume_state).run(
        seed_label=seed
    )
