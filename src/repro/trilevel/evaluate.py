"""Nested reaction pipeline for the tri-level market.

Evaluating one provider decision ``w`` requires *solving a bi-level
problem*: the reseller optimizes its markups knowing the customer's
covering reaction.  This module implements that middle optimization as a
compact real-coded GA over markup vectors, each candidate scored by one
customer solve (greedy heuristic + cached LP gap) — and keeps explicit
books on how many level-3 solves a single level-1 evaluation consumes,
which is precisely the blow-up the paper's future-work sentence is about.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.covering.greedy import ScoreFunction, greedy_cover
from repro.lp.bounds import RelaxationCache
from repro.trilevel.instance import TriLevelInstance

__all__ = ["ResellerReaction", "TriLevelEvaluator"]


@dataclass(frozen=True)
class ResellerReaction:
    """The (approximate) rational reaction of levels 2+3 to one ``w``.

    Attributes
    ----------
    retail:
        Reseller's optimized retail prices (``>= w``).
    selection:
        Customer basket under those retail prices.
    provider_revenue:
        Level-1 payoff ``Σ w_j y_j``.
    reseller_margin:
        Level-2 payoff ``Σ (r_j - w_j) y_j``.
    customer_cost / customer_gap:
        Level-3 objective and its %-gap to the LP bound (the paper's
        feasibility measure, now one level deeper).
    level3_solves:
        Customer solves consumed by this one level-1 evaluation.
    """

    retail: np.ndarray
    selection: np.ndarray
    provider_revenue: float
    reseller_margin: float
    customer_cost: float
    customer_gap: float
    level3_solves: int


class TriLevelEvaluator:
    """Evaluate provider decisions through the nested reaction chain.

    Parameters
    ----------
    instance:
        The tri-level market.
    score_fn:
        Customer-side greedy scoring heuristic (a GP champion or a
        classical rule).
    reseller_population / reseller_generations:
        Budget of the embedded markup GA; its product (plus the initial
        population) is the number of level-3 solves per level-1
        evaluation — the nesting multiplier.
    """

    def __init__(
        self,
        instance: TriLevelInstance,
        score_fn: ScoreFunction,
        reseller_population: int = 12,
        reseller_generations: int = 6,
        lp_backend: str = "scipy",
        gap_eps: float = 1e-9,
    ) -> None:
        if reseller_population < 2:
            raise ValueError("reseller_population must be >= 2")
        if reseller_generations < 0:
            raise ValueError("reseller_generations must be >= 0")
        self.instance = instance
        self.score_fn = score_fn
        self.reseller_population = reseller_population
        self.reseller_generations = reseller_generations
        self.gap_eps = gap_eps
        self._cache = RelaxationCache(backend=lp_backend)
        self.level1_evaluations = 0
        self.level3_evaluations = 0

    # -- level 3 ---------------------------------------------------------

    def _customer_solve(self, retail: np.ndarray):
        """One covering solve + gap under concrete retail prices."""
        ll = self.instance.retail_instance(retail)
        relax = self._cache.get(ll)
        sol = greedy_cover(ll, self.score_fn, duals=relax.duals, xbar=relax.xbar)
        gap = relax.percent_gap(sol.cost, eps=self.gap_eps) if sol.feasible else np.inf
        self.level3_evaluations += 1
        return sol, gap

    # -- level 2 ---------------------------------------------------------

    def reseller_react(
        self, w: np.ndarray, rng: np.random.Generator
    ) -> ResellerReaction:
        """Approximate the reseller's rational reaction to ``w``.

        A small GA over markup vectors ``m in [0, retail_cap - w]``; the
        reseller maximizes its margin under the customer's reaction.
        """
        from repro.ga.encoding import Bounds
        from repro.ga.operators import polynomial_mutation, sbx_crossover
        from repro.ga.selection import binary_tournament

        w = self.instance.validate_wholesale(w)
        span = np.maximum(self.instance.retail_cap - w, 0.0)
        bounds = Bounds(np.zeros(w.size), span)
        solves_before = self.level3_evaluations

        def assess(markup: np.ndarray):
            retail = w + np.clip(markup, 0.0, span)
            sol, gap = self._customer_solve(retail)
            margin = self.instance.reseller_margin(w, retail, sol.selected)
            return margin, retail, sol, gap

        genomes = [bounds.sample(rng) for _ in range(self.reseller_population)]
        scored = [assess(g) for g in genomes]
        best_idx = int(np.argmax([s[0] for s in scored]))
        best_margin, best_retail, best_sol, best_gap = scored[best_idx]

        for _ in range(self.reseller_generations):
            fits = [s[0] for s in scored]
            mates = binary_tournament(genomes, fits, len(genomes), rng)
            children: list[np.ndarray] = []
            for i in range(0, len(mates) - 1, 2):
                a, b = mates[i], mates[i + 1]
                if rng.random() < 0.85:
                    a, b = sbx_crossover(a, b, bounds, rng)
                children.extend([a.copy(), b.copy()])
            if len(mates) % 2:
                children.append(mates[-1].copy())
            children = [
                polynomial_mutation(c, bounds, rng, per_gene_probability=0.1)
                for c in children[: self.reseller_population]
            ]
            genomes = children
            scored = [assess(g) for g in genomes]
            gen_best = int(np.argmax([s[0] for s in scored]))
            if scored[gen_best][0] > best_margin:
                best_margin, best_retail, best_sol, best_gap = scored[gen_best]

        self.level1_evaluations += 1
        return ResellerReaction(
            retail=best_retail,
            selection=best_sol.selected,
            provider_revenue=self.instance.provider_revenue(w, best_sol.selected),
            reseller_margin=best_margin,
            customer_cost=best_sol.cost,
            customer_gap=best_gap,
            level3_solves=self.level3_evaluations - solves_before,
        )

    @property
    def nesting_multiplier(self) -> float:
        """Observed level-3 solves per level-1 evaluation."""
        if self.level1_evaluations == 0:
            return 0.0
        return self.level3_evaluations / self.level1_evaluations
