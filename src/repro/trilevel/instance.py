"""Tri-level cloud market model.

For a fixed wholesale vector ``w`` the (reseller, customer) tail of the
problem *is* a BCPOP: the reseller plays the leader of a pricing game
whose decision is the retail vector ``r >= w`` and whose payoff is the
margin ``Σ (r_j - w_j) y_j``.  :meth:`TriLevelInstance.reseller_subgame`
performs that reduction, which lets every level reuse the covering /
evaluation machinery built for the paper's two-level problem.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bcpop.instance import BcpopInstance
from repro.covering.instance import CoveringInstance

__all__ = ["TriLevelInstance"]


@dataclass(frozen=True)
class TriLevelInstance:
    """Three-tier pricing market over a covering customer.

    Parameters
    ----------
    q, demand:
        The covering structure (as in BCPOP).
    market_prices:
        Fixed prices of the competitor bundles.
    n_own:
        Number of provider-owned bundles (always the first columns).
    retail_cap:
        Upper bound on retail prices (the customer-facing box).
    wholesale_cap:
        Upper bound on wholesale prices; must not exceed ``retail_cap``
        (the reseller never sells below cost, so ``w <= r <= retail_cap``).
    """

    q: np.ndarray
    demand: np.ndarray
    market_prices: np.ndarray
    n_own: int
    retail_cap: float
    wholesale_cap: float
    name: str = ""

    def __post_init__(self) -> None:
        # Reuse BCPOP validation by building the retail-level view once.
        base = BcpopInstance(
            q=self.q, demand=self.demand, market_prices=self.market_prices,
            n_own=self.n_own, price_cap=self.retail_cap, name=self.name,
        )
        object.__setattr__(self, "q", base.q)
        object.__setattr__(self, "demand", base.demand)
        object.__setattr__(self, "market_prices", base.market_prices)
        if not (0.0 < self.wholesale_cap <= self.retail_cap):
            raise ValueError(
                f"wholesale_cap {self.wholesale_cap} must be in (0, retail_cap="
                f"{self.retail_cap}]"
            )

    @classmethod
    def from_bcpop(
        cls, instance: BcpopInstance, wholesale_fraction: float = 0.6
    ) -> "TriLevelInstance":
        """Lift a two-level instance: the BCPOP price cap becomes the
        retail cap and ``wholesale_fraction`` of it the wholesale cap."""
        if not (0.0 < wholesale_fraction <= 1.0):
            raise ValueError(f"wholesale_fraction out of (0, 1]: {wholesale_fraction}")
        return cls(
            q=instance.q,
            demand=instance.demand,
            market_prices=instance.market_prices,
            n_own=instance.n_own,
            retail_cap=instance.price_cap,
            wholesale_cap=wholesale_fraction * instance.price_cap,
            name=(instance.name + "-tri") if instance.name else "trilevel",
        )

    @property
    def n_bundles(self) -> int:
        return self.q.shape[1]

    @property
    def n_services(self) -> int:
        return self.q.shape[0]

    @property
    def wholesale_bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """Box for the provider's decision vector."""
        return np.zeros(self.n_own), np.full(self.n_own, self.wholesale_cap)

    def validate_wholesale(self, w: np.ndarray) -> np.ndarray:
        w = np.asarray(w, dtype=np.float64).ravel()
        if w.shape != (self.n_own,):
            raise ValueError(f"wholesale shape {w.shape} != ({self.n_own},)")
        if np.any(w < -1e-9):
            raise ValueError("wholesale prices must be non-negative")
        return np.clip(w, 0.0, self.wholesale_cap)

    def reseller_subgame(self, w: np.ndarray) -> BcpopInstance:
        """The (reseller, customer) bi-level problem for fixed ``w``.

        The reseller's *retail* decision lives in ``[w_j, retail_cap]``;
        we re-parametrize by markup ``m = r - w in [0, retail_cap - w]``
        so the returned BCPOP keeps its zero lower bound.  The returned
        instance's "revenue" is the retail revenue ``Σ r_j y_j``; the
        reseller margin and the provider's wholesale revenue are derived
        from the same basket (see :mod:`repro.trilevel.evaluate`).
        """
        w = self.validate_wholesale(w)
        # A BCPOP cannot carry per-gene caps, so the subgame is expressed
        # in markup space with the uniform cap retail_cap (markups are
        # clipped to retail_cap - w_j by the evaluator before use).
        return BcpopInstance(
            q=self.q,
            demand=self.demand,
            market_prices=self.market_prices,
            n_own=self.n_own,
            price_cap=self.retail_cap,
            name=f"{self.name}-sub",
        )

    def retail_instance(self, retail: np.ndarray) -> CoveringInstance:
        """Level-3 covering instance for a concrete retail vector."""
        retail = np.asarray(retail, dtype=np.float64).ravel()
        if retail.shape != (self.n_own,):
            raise ValueError(f"retail shape {retail.shape} != ({self.n_own},)")
        costs = np.concatenate([np.clip(retail, 0.0, self.retail_cap), self.market_prices])
        return CoveringInstance(costs=costs, q=self.q, demand=self.demand, name=self.name)

    def provider_revenue(self, w: np.ndarray, selection: np.ndarray) -> float:
        """Level-1 payoff: wholesale income on sold provider bundles."""
        w = self.validate_wholesale(w)
        sel = np.asarray(selection, dtype=bool)
        if sel.shape != (self.n_bundles,):
            raise ValueError(f"selection shape {sel.shape} != ({self.n_bundles},)")
        return float(w @ sel[: self.n_own])

    def reseller_margin(
        self, w: np.ndarray, retail: np.ndarray, selection: np.ndarray
    ) -> float:
        """Level-2 payoff: markup income on sold provider bundles."""
        w = self.validate_wholesale(w)
        retail = np.clip(np.asarray(retail, dtype=np.float64), w, self.retail_cap)
        sel = np.asarray(selection, dtype=bool)
        return float((retail - w) @ sel[: self.n_own])

    def is_coverable(self) -> bool:
        return self.retail_instance(np.zeros(self.n_own)).is_coverable()
