"""Caching layer for lower-level relaxations.

During one CARBON generation the same induced lower-level instance is
re-solved by many candidate heuristics (every GP tree is scored against a
sample of upper-level decisions), but its LP relaxation — the expensive
part of the %-gap — depends only on the *cost vector*.  This cache keys
relaxations by a quantized view of the costs so each induced instance pays
for exactly one LP solve.

Quantization (default 1e-9 relative) makes float cost vectors hashable
without false sharing between genuinely different pricings; the paper's
prices live in [0, ~10^3], far above the quantum.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.covering.instance import CoveringInstance
from repro.lp.relaxation import Relaxation, solve_relaxation

__all__ = ["RelaxationCache"]


class RelaxationCache:
    """LRU cache of :class:`Relaxation` results keyed by cost vector.

    Parameters
    ----------
    backend:
        LP backend forwarded to :func:`solve_relaxation`.
    maxsize:
        Maximum retained entries (LRU eviction); population-scale runs need
        at most a few thousand live entries.
    quantum:
        Cost quantization step used to build hash keys.
    warm_start:
        When True (and the backend is the in-repo simplex), each cache
        miss tries to warm-start the new solve from the optimal basis of
        the *nearest* recently cached cost vector — only the objective
        changes between induced instances of one bi-level problem, so a
        parent pricing's basis is usually primal-feasible (or nearly so)
        for its perturbed child.  Warm starts can pick a different
        optimal vertex under degeneracy, so this is opt-in
        (``ExecutionConfig(lp_warm_start=True)``), never the default.
    warm_window:
        How many most-recent entries are scanned for a donor basis.
    """

    def __init__(
        self,
        backend: str = "scipy",
        maxsize: int = 4096,
        quantum: float = 1e-9,
        warm_start: bool = False,
        warm_window: int = 32,
    ) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.backend = backend
        self.maxsize = maxsize
        self.quantum = quantum
        self.warm_start = warm_start
        self.warm_window = warm_window
        self._store: OrderedDict[bytes, Relaxation] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.warm_attempts = 0
        self.warm_accepts = 0
        self.simplex_iterations = 0

    def _key(self, costs: np.ndarray) -> bytes:
        quantized = np.round(np.asarray(costs, dtype=np.float64) / self.quantum)
        return quantized.tobytes()

    def _donor_basis(self, key: bytes) -> np.ndarray | None:
        """Basis of the cached cost vector nearest (L1) to ``key``.

        Scans at most ``warm_window`` most-recent entries; keys are the
        quantized cost vectors themselves, so the distance is computed
        directly on them without keeping the raw costs around.
        """
        target = np.frombuffer(key, dtype=np.float64)
        best: np.ndarray | None = None
        best_dist = np.inf
        scanned = 0
        for stored_key, relax in reversed(self._store.items()):
            if scanned >= self.warm_window:
                break
            scanned += 1
            if relax.basis is None:
                continue
            donor = np.frombuffer(stored_key, dtype=np.float64)
            if donor.shape != target.shape:
                continue
            dist = float(np.abs(donor - target).sum())
            if dist < best_dist:
                best_dist = dist
                best = relax.basis
        return best

    def get(self, instance: CoveringInstance) -> Relaxation:
        """Return the relaxation of ``instance``, solving at most once per
        distinct cost vector."""
        key = self._key(instance.costs)
        found = self._store.get(key)
        if found is not None:
            self.hits += 1
            self._store.move_to_end(key)
            return found
        self.misses += 1
        basis0: np.ndarray | None = None
        if self.warm_start:
            basis0 = self._donor_basis(key)
            if basis0 is not None:
                self.warm_attempts += 1
        relax = solve_relaxation(
            instance, backend=self.backend, warm_start_basis=basis0
        )
        if relax.warm_started:
            self.warm_accepts += 1
        self.simplex_iterations += relax.iterations
        self._store[key] = relax
        if len(self._store) > self.maxsize:
            self._store.popitem(last=False)
        return relax

    def contains(self, costs: np.ndarray) -> bool:
        """Whether a relaxation for this cost vector is already cached
        (no counters are touched — used to plan parallel prefetches)."""
        return self._key(costs) in self._store

    def put(self, costs: np.ndarray, relax: Relaxation) -> None:
        """Seed the cache with an externally computed relaxation (e.g. one
        solved by a worker process).  Counted as neither hit nor miss."""
        key = self._key(costs)
        self._store[key] = relax
        self._store.move_to_end(key)
        if len(self._store) > self.maxsize:
            self._store.popitem(last=False)

    def clear(self) -> None:
        self._store.clear()
        self.hits = 0
        self.misses = 0
        self.warm_attempts = 0
        self.warm_accepts = 0
        self.simplex_iterations = 0

    def __len__(self) -> int:
        return len(self._store)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def warm_stats(self) -> dict[str, float]:
        """Warm-start effectiveness counters (all zero when disabled)."""
        return {
            "enabled": bool(self.warm_start),
            "attempts": self.warm_attempts,
            "accepts": self.warm_accepts,
            "accept_rate": (
                self.warm_accepts / self.warm_attempts if self.warm_attempts else 0.0
            ),
            "simplex_iterations": self.simplex_iterations,
        }
