"""Dense two-phase primal simplex, written from scratch.

Solves

    min  c^T x
    s.t. A_ub x <= b_ub
         A_eq x  = b_eq
         0 <= x <= ub        (ub may contain +inf)

The implementation is a textbook tableau method with a few production
touches:

* finite upper bounds are handled as explicit ``x_i <= ub_i`` rows (simple
  and adequate for the covering relaxations this repo solves, where
  ``n <= ~500``),
* rows are normalized to ``b >= 0`` before slack/artificial assignment,
* Dantzig pricing with an automatic switch to Bland's rule after a pivot
  budget, which guarantees termination under degeneracy,
* duals are recovered at the end by solving ``B^T y = c_B`` against the
  recorded basis — no tableau sign gymnastics.

This module exists both as the validated fallback backend for
:mod:`repro.lp.relaxation` and as the substrate the paper's authors got
from an external LP library.  Tests cross-check it against scipy/HiGHS.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

__all__ = ["LPStatus", "LPResult", "solve_lp"]

_EPS = 1e-9


class LPStatus(enum.Enum):
    """Outcome of a simplex solve."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ITERATION_LIMIT = "iteration_limit"


@dataclass
class LPResult:
    """Solution of an LP in the :func:`solve_lp` canonical form.

    ``duals_ub`` / ``duals_eq`` follow the Lagrangian convention for a
    minimization problem: ``L = c^T x + y_ub^T (A_ub x - b_ub) + y_eq^T
    (A_eq x - b_eq)`` with ``y_ub >= 0``; for a covering row written as
    ``-q^T x <= -b`` the covering dual ``d_k >= 0`` is ``y_ub`` itself.

    ``basis`` is the optimal basis (standard-form column indices, one per
    row) — reusable as ``basis0`` for a warm start on a neighbouring
    objective; ``warm_started`` records whether this solve actually
    skipped phase 1 via a supplied basis.
    """

    status: LPStatus
    x: np.ndarray | None
    fun: float | None
    duals_ub: np.ndarray | None
    duals_eq: np.ndarray | None
    iterations: int
    basis: np.ndarray | None = None
    warm_started: bool = False

    @property
    def ok(self) -> bool:
        return self.status is LPStatus.OPTIMAL


def _pivot(tableau: np.ndarray, row: int, col: int) -> None:
    """In-place Gauss-Jordan pivot on ``tableau[row, col]``."""
    pivot_val = tableau[row, col]
    tableau[row] /= pivot_val
    # Eliminate the pivot column from every other row in one vectorized
    # rank-1 update (the simplex hot loop).
    col_vals = tableau[:, col].copy()
    col_vals[row] = 0.0
    tableau -= np.outer(col_vals, tableau[row])
    tableau[:, col] = 0.0
    tableau[row, col] = 1.0


def _choose_column(obj_row: np.ndarray, allowed: np.ndarray, bland: bool) -> int | None:
    """Entering column: most negative reduced cost, or Bland's smallest index."""
    candidates = np.flatnonzero(allowed & (obj_row < -_EPS))
    if candidates.size == 0:
        return None
    if bland:
        return int(candidates[0])
    return int(candidates[np.argmin(obj_row[candidates])])


def _choose_row(tableau: np.ndarray, col: int, m: int, bland: bool, basis: np.ndarray) -> int | None:
    """Leaving row by minimum ratio test (ties -> lowest basis index)."""
    column = tableau[:m, col]
    rhs = tableau[:m, -1]
    positive = column > _EPS
    if not positive.any():
        return None
    ratios = np.full(m, np.inf)
    ratios[positive] = rhs[positive] / column[positive]
    best = ratios.min()
    ties = np.flatnonzero(np.abs(ratios - best) <= _EPS * (1.0 + abs(best)))
    if bland or ties.size > 1:
        # Bland-compatible tie-break: leave the variable with smallest index.
        return int(ties[np.argmin(basis[ties])])
    return int(ties[0])


def _run_simplex(
    tableau: np.ndarray,
    basis: np.ndarray,
    m: int,
    maxiter: int,
    forbidden: np.ndarray,
) -> tuple[LPStatus, int]:
    """Iterate pivots until optimality/unboundedness; return status + count."""
    n_total = tableau.shape[1] - 1
    allowed = ~forbidden[:n_total]
    bland_after = max(200, 20 * (m + n_total))
    iterations = 0
    while iterations < maxiter:
        bland = iterations >= bland_after
        col = _choose_column(tableau[m, :n_total], allowed, bland)
        if col is None:
            return LPStatus.OPTIMAL, iterations
        row = _choose_row(tableau, col, m, bland, basis)
        if row is None:
            return LPStatus.UNBOUNDED, iterations
        _pivot(tableau, row, col)
        basis[row] = col
        iterations += 1
    return LPStatus.ITERATION_LIMIT, iterations


def solve_lp(
    c: np.ndarray,
    A_ub: np.ndarray | None = None,
    b_ub: np.ndarray | None = None,
    A_eq: np.ndarray | None = None,
    b_eq: np.ndarray | None = None,
    ub: np.ndarray | None = None,
    maxiter: int = 100_000,
    basis0: np.ndarray | None = None,
) -> LPResult:
    """Solve ``min c^T x  s.t.  A_ub x <= b_ub, A_eq x = b_eq, 0 <= x <= ub``.

    Parameters
    ----------
    c, A_ub, b_ub, A_eq, b_eq:
        Problem data; either constraint block may be omitted.
    ub:
        Optional per-variable upper bounds (``np.inf`` entries allowed);
        finite bounds become explicit rows.
    maxiter:
        Pivot budget across both phases.
    basis0:
        Optional warm-start basis — the ``LPResult.basis`` of a previous
        solve of the *same constraint system* under a different
        objective.  If the basis is still primal-feasible here, phase 1
        is skipped and phase 2 starts from it; any invalid/degenerate
        candidate (wrong shape, artificial columns, singular, or
        infeasible rhs) silently falls back to the cold two-phase path,
        so a stale basis can never change the result, only its cost.
    """
    c = np.asarray(c, dtype=np.float64).ravel()
    n = c.size
    rows: list[np.ndarray] = []
    rhs: list[float] = []
    senses: list[int] = []  # +1 for <=, 0 for ==

    def _add_block(A: np.ndarray | None, b: np.ndarray | None, sense: int, label: str) -> int:
        if A is None and b is None:
            return 0
        if A is None or b is None:
            raise ValueError(f"{label}: matrix and rhs must be given together")
        A = np.atleast_2d(np.asarray(A, dtype=np.float64))
        b = np.asarray(b, dtype=np.float64).ravel()
        if A.shape != (b.size, n):
            raise ValueError(f"{label}: shape {A.shape} incompatible with n={n}, m={b.size}")
        for i in range(b.size):
            rows.append(A[i])
            rhs.append(float(b[i]))
            senses.append(sense)
        return b.size

    n_ub = _add_block(A_ub, b_ub, +1, "A_ub")
    n_eq = _add_block(A_eq, b_eq, 0, "A_eq")

    n_bound_rows = 0
    if ub is not None:
        ub = np.asarray(ub, dtype=np.float64).ravel()
        if ub.size != n:
            raise ValueError(f"ub size {ub.size} != n={n}")
        if np.any(ub < -_EPS):
            raise ValueError("upper bounds must be non-negative")
        for i in np.flatnonzero(np.isfinite(ub)):
            row = np.zeros(n)
            row[i] = 1.0
            rows.append(row)
            rhs.append(float(ub[i]))
            senses.append(+1)
            n_bound_rows += 1

    m = len(rows)
    if m == 0:
        # Unconstrained over x >= 0: optimum is 0 unless some c_i < 0.
        if np.any(c < -_EPS):
            return LPResult(LPStatus.UNBOUNDED, None, None, None, None, 0)
        return LPResult(
            LPStatus.OPTIMAL, np.zeros(n), 0.0,
            np.zeros(0), np.zeros(0), 0,
        )

    A = np.array(rows, dtype=np.float64)
    b = np.array(rhs, dtype=np.float64)
    sense = np.array(senses, dtype=np.int64)

    # Normalize to b >= 0 (flips <= rows into >= territory, tracked by sign).
    flip = b < 0
    A[flip] *= -1.0
    b[flip] *= -1.0
    row_sign = np.where(flip, -1.0, 1.0)

    # Structural columns: x (n) | slack/surplus (one per inequality row).
    ineq_rows = np.flatnonzero(sense == 1)
    n_slack = ineq_rows.size
    slack_col_of_row = {int(r): n + k for k, r in enumerate(ineq_rows)}

    # Rows needing artificials: equalities, plus flipped inequalities whose
    # slack now has coefficient -1 (surplus).
    needs_artificial = [
        i for i in range(m)
        if sense[i] == 0 or (sense[i] == 1 and flip[i])
    ]
    n_art = len(needs_artificial)
    n_total = n + n_slack + n_art

    full = np.zeros((m + 1, n_total + 1))
    full[:m, :n] = A
    for k, r in enumerate(ineq_rows):
        # slack coefficient: +1 for an un-flipped <=, -1 (surplus) if flipped
        full[r, n + k] = 1.0 if not flip[r] else -1.0
    art_col_of_row: dict[int, int] = {}
    for k, r in enumerate(needs_artificial):
        col = n + n_slack + k
        full[r, col] = 1.0
        art_col_of_row[r] = col
    full[:m, -1] = b

    basis = np.empty(m, dtype=np.int64)
    for i in range(m):
        if i in art_col_of_row:
            basis[i] = art_col_of_row[i]
        else:
            basis[i] = slack_col_of_row[i]

    total_iters = 0
    forbidden = np.zeros(n_total + 1, dtype=bool)

    warm_started = False
    if basis0 is not None:
        cand = np.asarray(basis0, dtype=np.int64).ravel()
        # A usable candidate indexes only structural/slack columns (never
        # artificials), one distinct column per row.
        if (
            cand.shape == (m,)
            and cand.min(initial=0) >= 0
            and (cand < n + n_slack).all()
            and np.unique(cand).size == m
        ):
            B0 = full[:m, :][:, cand].copy()
            try:
                transformed = np.linalg.solve(B0, full[:m, :])
            except np.linalg.LinAlgError:
                transformed = None
            if transformed is not None and transformed[:, -1].min() >= -1e-7:
                full[:m, :] = transformed
                np.clip(full[:m, -1], 0.0, None, out=full[:m, -1])
                # Force exact unit columns on the basis (solve() leaves
                # ~1e-16 noise that would otherwise seed pivot drift).
                for i in range(m):
                    full[:m, cand[i]] = 0.0
                    full[i, cand[i]] = 1.0
                basis = cand.copy()
                forbidden[n + n_slack: n + n_slack + n_art] = True
                warm_started = True

    if n_art > 0 and not warm_started:
        # Phase 1: minimize sum of artificials.
        phase1_cost = np.zeros(n_total + 1)
        phase1_cost[n + n_slack: n + n_slack + n_art] = 1.0
        full[m, :] = phase1_cost
        # Price out the basic artificials.
        for i in range(m):
            if basis[i] >= n + n_slack:
                full[m] -= full[i]
        status, iters = _run_simplex(full, basis, m, maxiter, forbidden)
        total_iters += iters
        if status is LPStatus.ITERATION_LIMIT:
            return LPResult(status, None, None, None, None, total_iters)
        if full[m, -1] < -1e-7:
            return LPResult(LPStatus.INFEASIBLE, None, None, None, None, total_iters)
        # Drive any artificial still in the basis out (degenerate rows).
        for i in range(m):
            if basis[i] >= n + n_slack:
                pivot_cols = np.flatnonzero(
                    np.abs(full[i, : n + n_slack]) > _EPS
                )
                if pivot_cols.size:
                    _pivot(full, i, int(pivot_cols[0]))
                    basis[i] = int(pivot_cols[0])
                # else: the row is 0 = 0; the artificial stays but is
                # blocked from re-entering below.
        forbidden[n + n_slack: n + n_slack + n_art] = True

    # Phase 2: the real objective.
    phase2_cost = np.zeros(n_total + 1)
    phase2_cost[:n] = c
    full[m, :] = phase2_cost
    for i in range(m):
        if phase2_cost[basis[i]] != 0.0:
            full[m] -= phase2_cost[basis[i]] * full[i]
    status, iters = _run_simplex(full, basis, m, maxiter - total_iters, forbidden)
    total_iters += iters
    if status is not LPStatus.OPTIMAL:
        return LPResult(status, None, None, None, None, total_iters)

    x_full = np.zeros(n_total)
    x_full[basis] = full[:m, -1]
    x = x_full[:n]
    fun = float(c @ x)

    # Duals: solve B^T y = c_B against the *normalized* standard form, then
    # undo the row flips. y_i is the multiplier of normalized row i.
    B = np.zeros((m, m))
    structural = np.zeros((m, n_total))
    structural[:, :n] = A
    for k, r in enumerate(ineq_rows):
        structural[r, n + k] = 1.0 if not flip[r] else -1.0
    for k, r in enumerate(needs_artificial):
        structural[r, n + n_slack + k] = 1.0
    for i in range(m):
        B[:, i] = structural[:, basis[i]]
    c_full = np.zeros(n_total)
    c_full[:n] = c
    c_B = c_full[basis]
    try:
        y = np.linalg.solve(B.T, c_B)
    except np.linalg.LinAlgError:  # pragma: no cover - singular basis is pathological
        y = np.linalg.lstsq(B.T, c_B, rcond=None)[0]
    y = y * row_sign  # multiplier for the original (pre-flip) row

    # Multiplier for original "A x <= b" rows in min-Lagrangian convention is
    # -y (our equality form is A x + s = b with s >= 0 ⇒ y <= 0 at optimum).
    duals_ub = -y[:n_ub] if n_ub else np.zeros(0)
    duals_eq = y[n_ub: n_ub + n_eq].copy() if n_eq else np.zeros(0)
    # Clip tiny negative noise on inequality duals.
    duals_ub[np.abs(duals_ub) < _EPS] = 0.0

    return LPResult(
        LPStatus.OPTIMAL, x, fun, duals_ub, duals_eq, total_iters,
        basis=basis.copy(), warm_started=warm_started,
    )
