"""LP relaxation of the lower-level covering problem.

For an instance ``min c^T x s.t. Q x >= b, x in {0,1}^n`` the relaxation
replaces ``x in {0,1}`` by ``0 <= x <= 1``.  Its optimum is the paper's
``LB(x)`` (denominator of the %-gap, Eq. 1); its covering duals are the GP
terminal ``d_k`` and its solution the terminal ``x̄_j`` (Table I).

Backends:

* ``"scipy"`` — HiGHS through :func:`scipy.optimize.linprog` (fast default),
* ``"simplex"`` — this repository's own solver (:mod:`repro.lp.simplex`),
  used as a cross-validation reference and as a fallback where scipy's
  behaviour differs.

Both return identical results up to solver tolerance; tests assert this on
randomized instances.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.covering.instance import CoveringInstance
from repro.lp.simplex import LPStatus, solve_lp

__all__ = ["Relaxation", "solve_relaxation"]


@dataclass(frozen=True)
class Relaxation:
    """LP-relaxation data for one covering instance.

    Attributes
    ----------
    lower_bound:
        Optimal relaxation value ``LB``.
    duals:
        ``(n_services,)`` covering-constraint duals ``d_k >= 0``.
    xbar:
        ``(n_bundles,)`` relaxed solution ``x̄_j in [0, 1]``.
    feasible:
        False iff even the relaxation is infeasible (uncoverable instance).
    basis:
        Optimal simplex basis (``"simplex"`` backend only; None
        otherwise) — the warm-start seed for neighbouring cost vectors.
    iterations:
        Simplex pivots / HiGHS iterations spent on this solve.
    warm_started:
        Whether the solve actually started from a supplied basis.
    """

    lower_bound: float
    duals: np.ndarray
    xbar: np.ndarray
    feasible: bool
    basis: np.ndarray | None = None
    iterations: int = 0
    warm_started: bool = False

    def percent_gap(self, value: float, eps: float = 1e-9) -> float:
        """The paper's Eq. 1: ``100 * (value - LB) / LB``.

        ``LB`` can legitimately be ~0 when the leader prices its bundles at
        zero and they alone cover the demand; the ``eps`` guard keeps the
        measure finite (documented design choice, DESIGN.md §5).
        """
        lb = max(self.lower_bound, eps)
        return 100.0 * (value - self.lower_bound) / lb


def _solve_scipy(instance: CoveringInstance) -> Relaxation | None:
    try:
        from scipy.optimize import linprog
    except ImportError:  # pragma: no cover - scipy is a hard dependency
        return None
    res = linprog(
        c=instance.costs,
        A_ub=-instance.q,
        b_ub=-instance.demand,
        bounds=(0.0, 1.0),
        method="highs",
    )
    if res.status == 2:  # infeasible
        n = instance.n_bundles
        return Relaxation(np.inf, np.zeros(instance.n_services), np.zeros(n), False)
    if not res.success:  # pragma: no cover - numerical trouble
        return None
    # HiGHS marginals for A_ub x <= b_ub are <= 0; the covering dual of
    # Q x >= b (written as -Q x <= -b) is -marginal >= 0.
    duals = np.maximum(-np.asarray(res.ineqlin.marginals, dtype=np.float64), 0.0)
    xbar = np.clip(np.asarray(res.x, dtype=np.float64), 0.0, 1.0)
    return Relaxation(
        float(res.fun), duals, xbar, True,
        iterations=int(getattr(res, "nit", 0)),
    )


def _solve_own(
    instance: CoveringInstance, basis0: np.ndarray | None = None
) -> Relaxation:
    res = solve_lp(
        c=instance.costs,
        A_ub=-instance.q,
        b_ub=-instance.demand,
        ub=np.ones(instance.n_bundles),
        basis0=basis0,
    )
    if res.status is LPStatus.INFEASIBLE:
        return Relaxation(
            np.inf, np.zeros(instance.n_services),
            np.zeros(instance.n_bundles), False,
            iterations=res.iterations,
        )
    if not res.ok:
        raise RuntimeError(f"simplex failed on relaxation: {res.status}")
    assert res.x is not None and res.fun is not None and res.duals_ub is not None
    duals = np.maximum(res.duals_ub, 0.0)
    xbar = np.clip(res.x, 0.0, 1.0)
    return Relaxation(
        float(res.fun), duals, xbar, True,
        basis=res.basis, iterations=res.iterations,
        warm_started=res.warm_started,
    )


def solve_relaxation(
    instance: CoveringInstance,
    backend: str = "scipy",
    warm_start_basis: np.ndarray | None = None,
) -> Relaxation:
    """Solve the LP relaxation of ``instance``.

    Parameters
    ----------
    instance:
        The covering instance.
    backend:
        ``"scipy"`` (HiGHS, default), ``"simplex"`` (this repo's solver), or
        ``"auto"`` (scipy with simplex fallback).
    warm_start_basis:
        Optional starting basis for the ``"simplex"`` backend (ignored by
        scipy, which manages its own warm starts internally).  Taken from
        the :class:`Relaxation.basis` of a neighbouring cost vector — the
        constraint system ``(q, demand)`` must be the same.
    """
    if backend == "simplex":
        return _solve_own(instance, basis0=warm_start_basis)
    if backend in ("scipy", "auto"):
        result = _solve_scipy(instance)
        if result is not None:
            return result
        if backend == "auto":
            return _solve_own(instance, basis0=warm_start_basis)
        raise RuntimeError("scipy backend unavailable or failed")
    raise ValueError(f"unknown LP backend {backend!r}")
