"""Lagrangian relaxation of the covering lower level.

An alternative to the LP relaxation for the paper's ``LB(x)``:
dualize the covering constraints with multipliers ``λ >= 0``:

    L(λ) = min_{x in {0,1}^n}  Σ_j (c_j - Σ_k λ_k q_kj) x_j + Σ_k λ_k b_k

The inner minimization decomposes per bundle (pick ``x_j = 1`` iff its
reduced cost is negative), so one evaluation is a single matrix-vector
product.  ``max_λ L(λ)`` is approached by projected subgradient ascent.

Because the inner problem has the integrality property, the Lagrangian
dual equals the LP-relaxation bound at optimality — which gives (a) an
independent cross-check on both LP backends, and (b) a solver-free way to
compute ``LB(x)`` (benchmarked in ``bench_substrates``; ablated as a gap
denominator in ``bench_ablation_bounds``).  The multipliers double as
approximate duals for the GP terminal ``DUAL``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.covering.instance import CoveringInstance

__all__ = ["LagrangianBound", "lagrangian_bound"]


@dataclass(frozen=True)
class LagrangianBound:
    """Result of subgradient ascent on the Lagrangian dual.

    Attributes
    ----------
    lower_bound:
        Best ``L(λ)`` found — a valid lower bound on the integer optimum.
    multipliers:
        The ``λ`` achieving it (usable as approximate covering duals).
    iterations:
        Subgradient steps performed.
    converged:
        True when the step size fell below tolerance before the budget.
    """

    lower_bound: float
    multipliers: np.ndarray
    iterations: int
    converged: bool


def _evaluate(instance: CoveringInstance, lam: np.ndarray) -> tuple[float, np.ndarray]:
    """One dual evaluation: value and subgradient at ``λ``."""
    reduced = instance.costs - lam @ instance.q
    x = reduced < 0.0
    value = float(reduced[x].sum() + lam @ instance.demand)
    subgrad = instance.demand - instance.q[:, x].sum(axis=1)
    return value, subgrad


def lagrangian_bound(
    instance: CoveringInstance,
    max_iterations: int = 300,
    initial_step: float = 2.0,
    tolerance: float = 1e-6,
    target: float | None = None,
) -> LagrangianBound:
    """Maximize the Lagrangian dual by projected subgradient ascent.

    Uses the classical Held–Karp step rule
    ``t = μ (UB - L(λ)) / ||g||²`` with geometric decay of ``μ`` on
    stagnation.  ``target`` (an upper bound, e.g. a greedy cover's cost)
    sharpens the step rule; without it the all-bundles cost is used.

    Returns a *valid* lower bound regardless of convergence: every
    ``L(λ)`` with ``λ >= 0`` bounds the integer optimum from below.
    """
    if max_iterations < 1:
        raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
    m = instance.n_services
    lam = np.zeros(m)
    if target is not None:
        ub = float(target)
    else:
        # A tight default target makes the Held-Karp steps well-scaled:
        # use the Chvátal greedy cover when one exists.
        from repro.covering.greedy import greedy_cover
        from repro.covering.heuristics import chvatal_score

        warm = greedy_cover(instance, chvatal_score)
        ub = warm.cost if warm.feasible else float(instance.costs.sum())
    mu = initial_step
    best_value = -np.inf
    best_lam = lam.copy()
    stall = 0
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        value, subgrad = _evaluate(instance, lam)
        if value > best_value + 1e-12:
            best_value = value
            best_lam = lam.copy()
            stall = 0
        else:
            stall += 1
            if stall >= 20:
                mu *= 0.5
                stall = 0
        norm_sq = float(subgrad @ subgrad)
        if norm_sq <= tolerance:
            return LagrangianBound(best_value, best_lam, iterations, True)
        step = mu * max(ub - value, tolerance) / norm_sq
        if step * np.sqrt(norm_sq) < tolerance:
            return LagrangianBound(best_value, best_lam, iterations, True)
        lam = np.clip(lam + step * subgrad, 0.0, None)
    return LagrangianBound(best_value, best_lam, iterations, False)
