"""Linear-programming substrate.

The paper's %-gap measure (Eq. 1) needs, for every lower-level instance, the
LP-relaxation lower bound ``LB(x)``, the dual values ``d_k`` of the covering
constraints, and the relaxed solution ``x̄_j`` — the last two feed the GP
terminal set (Table I).

Two interchangeable backends are provided:

* :mod:`repro.lp.simplex` — a dense two-phase primal simplex written from
  scratch in this repository (the reference implementation; used to
  cross-validate),
* scipy's HiGHS via :func:`repro.lp.relaxation.solve_relaxation` — the fast
  default for experiment-scale runs.

:mod:`repro.lp.bounds` caches relaxation results keyed by the upper-level
price vector, because CARBON re-evaluates many heuristics against the same
induced instance.
"""

from repro.lp.simplex import LPResult, LPStatus, solve_lp
from repro.lp.relaxation import Relaxation, solve_relaxation
from repro.lp.bounds import RelaxationCache
from repro.lp.lagrangian import LagrangianBound, lagrangian_bound

__all__ = [
    "LPResult",
    "LPStatus",
    "solve_lp",
    "Relaxation",
    "solve_relaxation",
    "RelaxationCache",
    "LagrangianBound",
    "lagrangian_bound",
]
