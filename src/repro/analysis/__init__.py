"""Static analysis for the repo's determinism & parallel-safety invariants.

Every guarantee the test suite enforces end to end — bit-identical
%-gaps serial vs. batched, bit-identical checkpoint resume, bit-identical
recovery under injected faults — rests on *source-level* invariants:

* all randomness flows through seeded, addressable streams
  (:mod:`repro.parallel.rng`), never module-global RNG state;
* no wall-clock reads on deterministic paths (telemetry only);
* no iteration-order dependence on unordered containers in population
  logic;
* canonical (``sort_keys``) JSON for every persisted artifact;
* spawn-context process management through :mod:`repro.parallel`;
* worker loops that cannot swallow ``KeyboardInterrupt``.

``repro-lint`` (:mod:`repro.analysis.cli`) checks those invariants on
every file, before a nondeterminism bug can reach a 10^6-evaluation
run.  The rule catalogue lives in :mod:`repro.analysis.rules` (codes
``R001``–``R010``; DESIGN.md §12 maps each rule to the invariant it
protects and the PR that relied on it).  :mod:`repro.analysis.typing_gate`
is the companion ratchet for the mypy-strict baseline.

Hazards that *travel* — an RNG created in one module and consumed three
calls away, a closure crossing the spawn boundary through a helper, a
protocol op sent but never dispatched — are the province of
:mod:`repro.analysis.flow` (``repro-flow``): whole-program call-graph +
taint dataflow with interprocedural summaries, F-rule catalogue
``F001``–``F203``, and its own shrink-only baseline
(``flow-baseline.txt``).  DESIGN.md §15 documents the engine.
:mod:`repro.analysis.sarif` serializes findings from either tool to
SARIF 2.1.0 for code-scanning upload.
"""

from repro.analysis.config import LintConfig, RuleConfig, load_config
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.engine import LintEngine, lint_paths, lint_source
from repro.analysis.rules import ALL_RULES, Rule, RuleContext

__all__ = [
    "ALL_RULES",
    "Diagnostic",
    "LintConfig",
    "LintEngine",
    "Rule",
    "RuleContext",
    "RuleConfig",
    "lint_paths",
    "lint_source",
    "load_config",
]
