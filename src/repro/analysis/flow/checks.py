"""The F-rule catalogue: whole-program findings as R-style diagnostics.

Three families on top of the dataflow engine:

* **F1 determinism taint** (F001 rng, F002 clock, F003 iteration order) —
  a nondeterministic value reaches a determinism sink: a fitness/gap
  value, an ``EvaluationMemo`` key, a ``stable_hash``/digest input, or a
  checkpoint ``state_dict`` payload.
* **F2 process-boundary safety** (F101) — a statically-unpicklable value
  (lambda, nested closure, lock, generator, open handle) reaches a
  process boundary: an executor submit path, a ``ProcessExecutor``/
  ``ShardSpec`` constructor, or a spawn-context ``Process``.  Unlike
  R009 this is interprocedural: the lambda may be created three calls
  away from the ``.map()``.
* **F3 wire-protocol conformance** (F201/F202/F203) — the set of ``op``
  literals clients send is balanced against the set servers dispatch,
  and reply fields clients destructure must be constructed by some
  reply builder.  Protects the v2 priority/brownout protocol as it
  grows to multi-host.

All findings are :class:`~repro.analysis.diagnostics.Diagnostic` rows in
the F-number range, so the pragma machinery, ``--select``, and the JSON/
SARIF formatters are shared with ``repro-lint`` unchanged.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.engine import _collect_pragmas
from repro.analysis.flow.dataflow import analyze_dataflow
from repro.analysis.flow.project import Project

__all__ = ["FLOW_RULES", "analyze_project", "flow_diagnostics"]

#: code -> one-line description (mirrors repro-lint's ALL_RULES table).
FLOW_RULES = {
    "F000": "file could not be parsed (reported, never silently skipped)",
    "F001": "unseeded RNG value reaches a determinism sink",
    "F002": "wall-clock value reaches a determinism sink",
    "F003": "unordered-iteration value reaches a determinism sink",
    "F101": "unpicklable value crosses a process boundary",
    "F201": "protocol op is sent but no server dispatch handles it",
    "F202": "protocol op is dispatched but no client ever sends it",
    "F203": "reply field is destructured by clients but never constructed",
}

_TAG_CODE = {"rng": "F001", "clock": "F002", "order": "F003"}
_TAG_TEXT = {
    "rng": "unseeded RNG",
    "clock": "wall-clock",
    "order": "unordered-iteration",
}
_SINK_TEXT = {
    "hash-input": "a stable-hash/digest input",
    "memo-key": "an EvaluationMemo key",
    "checkpoint-state": "a checkpoint state_dict payload",
    "fitness-value": "a fitness/gap value",
}
_PICKLE_TEXT = {
    "lambda": "a lambda",
    "nested": "a nested function (closure)",
    "lock": "a lock/synchronization primitive",
    "generator": "a generator",
    "handle": "an open OS handle",
}

#: Reply fields every response carries (or may carry) by construction.
_ENVELOPE_KEYS = frozenset({"ok", "id", "error", "message"})


# -- F1/F2: dataflow-backed findings -----------------------------------------


def _dataflow_diagnostics(project: Project) -> list[Diagnostic]:
    result = analyze_dataflow(project)
    out: list[Diagnostic] = []
    for hit in result.sink_hits:
        kind, _, origin = hit.tag.partition("@")
        code = _TAG_CODE.get(kind)
        if code is None:  # pragma: no cover - sink_hits are pre-filtered
            continue
        sink_text = _SINK_TEXT.get(hit.sink, hit.sink)
        out.append(
            Diagnostic(
                path=hit.path,
                line=hit.line,
                col=hit.col,
                code=code,
                message=(
                    f"{_TAG_TEXT[kind]} value reaches {sink_text} in "
                    f"{hit.function} (source: {origin})"
                ),
            )
        )
    for hit in result.boundary_hits:
        pickle_kind = hit.tag.partition("@")[0].partition(":")[2]
        origin = hit.tag.partition("@")[2]
        out.append(
            Diagnostic(
                path=hit.path,
                line=hit.line,
                col=hit.col,
                code="F101",
                message=(
                    f"{_PICKLE_TEXT.get(pickle_kind, pickle_kind)} crosses the "
                    f"process boundary {hit.boundary} in {hit.function} "
                    f"(created at {origin})"
                ),
            )
        )
    return out


# -- F3: wire-protocol conformance --------------------------------------------


@dataclass(frozen=True)
class _Site:
    path: str
    line: int
    col: int


@dataclass
class _Protocol:
    """Everything the conformance check extracts from the project."""

    sent: dict[str, list[_Site]] = field(default_factory=dict)
    handled: dict[str, list[_Site]] = field(default_factory=dict)
    constructed: set[str] = field(default_factory=set)
    destructured: dict[str, list[_Site]] = field(default_factory=dict)


def _op_literal(node: ast.Dict) -> tuple[str, bool] | None:
    """``(op, True)`` when this dict literal carries a constant ``"op"``."""
    for key, value in zip(node.keys, node.values):
        if (
            isinstance(key, ast.Constant)
            and key.value == "op"
            and isinstance(value, ast.Constant)
            and isinstance(value.value, str)
        ):
            return value.value, True
    return None


def _is_get_op(node: ast.expr) -> bool:
    """``<expr>.get("op"[, default])``."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "get"
        and bool(node.args)
        and isinstance(node.args[0], ast.Constant)
        and node.args[0].value == "op"
    )


def _extract_protocol(project: Project) -> _Protocol:
    proto = _Protocol()
    for module in project.iter_modules():
        path = str(module.path)
        basename = module.name.rpartition(".")[2]
        is_client = "client" in basename
        is_protocol = "protocol" in basename
        op_vars: set[str] = set()
        # Pass 1: names bound from `<expr>.get("op")` are dispatch vars.
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign) and _is_get_op(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        op_vars.add(target.id)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Dict):
                hit = _op_literal(node)
                if hit is not None:
                    site = _Site(path, node.lineno, node.col_offset)
                    proto.sent.setdefault(hit[0], []).append(site)
                if is_client or is_protocol:
                    # Request/reply builders: every constant key this side
                    # writes is, by definition, constructed.
                    for key in node.keys:
                        if isinstance(key, ast.Constant) and isinstance(key.value, str):
                            proto.constructed.add(key.value)
            elif isinstance(node, ast.Compare):
                left = node.left
                is_dispatch = (
                    isinstance(left, ast.Name) and left.id in op_vars
                ) or _is_get_op(left)
                if not is_dispatch or len(node.ops) != 1:
                    continue
                site = _Site(path, node.lineno, node.col_offset)
                op, comparator = node.ops[0], node.comparators[0]
                if isinstance(op, ast.Eq) and isinstance(comparator, ast.Constant):
                    if isinstance(comparator.value, str):
                        proto.handled.setdefault(comparator.value, []).append(site)
                elif isinstance(op, ast.In) and isinstance(comparator, (ast.Tuple, ast.Set, ast.List)):
                    for element in comparator.elts:
                        if isinstance(element, ast.Constant) and isinstance(element.value, str):
                            proto.handled.setdefault(element.value, []).append(site)
            elif isinstance(node, ast.Call):
                func = node.func
                tail = func.attr if isinstance(func, ast.Attribute) else (
                    func.id if isinstance(func, ast.Name) else ""
                )
                # Reply builders: ok_response(request, stats=...) constructs
                # the "stats" field; solve_response's payload dict literal is
                # picked up by the protocol-module dict scan above.
                if tail in ("ok_response", "solve_response"):
                    for keyword in node.keywords:
                        if keyword.arg is not None:
                            proto.constructed.add(keyword.arg)
                elif (
                    is_client
                    and tail == "get"
                    and isinstance(func, ast.Attribute)
                    and node.args
                    and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)
                ):
                    proto.destructured.setdefault(node.args[0].value, []).append(
                        _Site(path, node.lineno, node.col_offset)
                    )
            elif isinstance(node, ast.Assign):
                # `response["brownout"] = True` constructs a reply field.
                for target in node.targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.slice, ast.Constant)
                        and isinstance(target.slice.value, str)
                    ):
                        proto.constructed.add(target.slice.value)
            elif (
                is_client
                and isinstance(node, ast.Subscript)
                and isinstance(node.ctx, ast.Load)
                and isinstance(node.slice, ast.Constant)
                and isinstance(node.slice.value, str)
            ):
                proto.destructured.setdefault(node.slice.value, []).append(
                    _Site(path, node.lineno, node.col_offset)
                )
    return proto


def _protocol_diagnostics(project: Project) -> list[Diagnostic]:
    proto = _extract_protocol(project)
    if not proto.sent and not proto.handled:
        return []  # project has no wire protocol at all
    out: list[Diagnostic] = []
    for op in sorted(proto.sent):
        if op not in proto.handled:
            for site in proto.sent[op]:
                out.append(
                    Diagnostic(
                        path=site.path,
                        line=site.line,
                        col=site.col,
                        code="F201",
                        message=(
                            f'op "{op}" is sent here but no server/router '
                            "dispatch handles it (dead request: clients get "
                            "unknown-op errors)"
                        ),
                    )
                )
    for op in sorted(proto.handled):
        if op not in proto.sent:
            for site in proto.handled[op]:
                out.append(
                    Diagnostic(
                        path=site.path,
                        line=site.line,
                        col=site.col,
                        code="F202",
                        message=(
                            f'op "{op}" is dispatched here but no client ever '
                            "sends it (dead handler, or a missing client method)"
                        ),
                    )
                )
    constructed = proto.constructed | _ENVELOPE_KEYS
    for key in sorted(proto.destructured):
        if key not in constructed:
            for site in proto.destructured[key]:
                out.append(
                    Diagnostic(
                        path=site.path,
                        line=site.line,
                        col=site.col,
                        code="F203",
                        message=(
                            f'reply field "{key}" is destructured here but no '
                            "reply builder constructs it (KeyError/None at "
                            "runtime)"
                        ),
                    )
                )
    return out


# -- orchestration -------------------------------------------------------------


def flow_diagnostics(project: Project) -> list[Diagnostic]:
    """All F-findings for an already-loaded project, pragma-filtered,
    deduplicated, and deterministically ordered."""
    diagnostics = [
        Diagnostic(path=path, line=1, col=0, code="F000", message=message)
        for path, message in sorted(project.parse_errors)
    ]
    diagnostics.extend(_dataflow_diagnostics(project))
    diagnostics.extend(_protocol_diagnostics(project))
    pragma_cache = {
        str(module.path): _collect_pragmas(module.source)
        for module in project.iter_modules()
    }
    kept = []
    for diagnostic in diagnostics:
        pragmas = pragma_cache.get(diagnostic.path)
        if pragmas is not None and pragmas.suppressed(diagnostic):
            continue
        kept.append(diagnostic)
    return sorted(set(kept))


def analyze_project(
    root: str | Path,
    package: str | None = None,
    select: set[str] | None = None,
) -> list[Diagnostic]:
    """Load ``root`` as a project and run every F-rule over it."""
    project = Project.load(root, package)
    diagnostics = flow_diagnostics(project)
    if select:
        diagnostics = [d for d in diagnostics if d.code in select]
    return diagnostics
