"""Call-graph construction over a :class:`~repro.analysis.flow.project.Project`.

One node per project function (fully-qualified name), one edge per
statically-resolvable call site.  Resolution handles, in order:

* plain names and dotted module attributes (through the module's
  bindings, re-exports included);
* ``self.method()`` / ``cls.method()`` inside a class, walking the
  static MRO **and** fanning out to project subclasses that override the
  method — the whole-program answer to the ``EngineAlgorithm`` pattern,
  where the variable's declared type is the base class but the body that
  runs belongs to a subclass;
* parameter/variable annotations (``x: SolveServer``) and local
  constructor assignments (``x = SolveServer(...)``) as type evidence
  for ``x.method()`` dispatch;
* ``functools.partial(f, ...)`` — an edge to ``f`` (the call is
  deferred, not absent);
* decorated functions — the decorated def stays the target (unknown
  decorators are assumed wrapping, which over-approximates reachability
  but never loses an edge).

Unresolvable calls (builtins, external libraries, true dynamism) are
recorded as *external* by their dotted text, so the dataflow pass can
still pattern-match sources/sinks on them.  All outputs are sorted;
nothing depends on ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.flow.project import (
    FunctionInfo,
    ModuleInfo,
    Project,
    walk_own_scope,
)

__all__ = ["CallSite", "CallGraph", "build_call_graph", "LocalTypes", "dotted_name"]


def dotted_name(node: ast.expr) -> str:
    """``a.b.c`` for an attribute chain rooted at a Name, else ``""``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


@dataclass(frozen=True)
class CallSite:
    """One call expression inside one caller."""

    caller: str  # qualified caller function
    raw: str  # the dotted text as written ("protocol.encode", "self._route")
    targets: tuple[str, ...]  # resolved qualified callees (may be empty)
    line: int
    col: int


class LocalTypes:
    """Static type evidence for the locals of one function.

    Sources of evidence, all conservative:

    * parameter annotations (``def f(x: SolveServer)``);
    * annotated assignments (``x: SolveServer = ...``);
    * direct constructor calls (``x = SolveServer(...)``);
    * ``self``/``cls`` inside a method (the owning class).
    """

    def __init__(self, project: Project, module: ModuleInfo, func: FunctionInfo) -> None:
        self._types: dict[str, str] = {}
        self.project = project
        self.module = module
        args = func.node.args
        all_args = [*args.posonlyargs, *args.args, *args.kwonlyargs]
        if args.vararg is not None:
            all_args.append(args.vararg)
        if args.kwarg is not None:
            all_args.append(args.kwarg)
        for arg in all_args:
            if arg.annotation is not None:
                resolved = self._resolve_annotation(arg.annotation)
                if resolved is not None:
                    self._types[arg.arg] = resolved
        if func.cls is not None and all_args and all_args[0].arg in ("self", "cls"):
            self._types[all_args[0].arg] = func.cls
        for stmt in walk_own_scope(func.node):
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                resolved = self._resolve_annotation(stmt.annotation)
                if resolved is not None:
                    self._types[stmt.target.id] = resolved
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name) and isinstance(stmt.value, ast.Call):
                    dotted = dotted_name(stmt.value.func)
                    if dotted:
                        resolved = project.resolve(module, dotted)
                        if resolved is not None and resolved in project.classes:
                            self._types[target.id] = resolved

    def _resolve_annotation(self, annotation: ast.expr) -> str | None:
        """A class qualname for a simple annotation, else ``None``.

        ``X | None`` and ``Optional[X]``-style annotations resolve to
        ``X``; string annotations are parsed; subscripts take the base.
        """
        if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
            try:
                annotation = ast.parse(annotation.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
            for side in (annotation.left, annotation.right):
                if not (isinstance(side, ast.Constant) and side.value is None):
                    return self._resolve_annotation(side)
            return None
        if isinstance(annotation, ast.Subscript):
            base = dotted_name(annotation.value)
            if base.rpartition(".")[2] == "Optional":
                return self._resolve_annotation(annotation.slice)
            return None
        dotted = dotted_name(annotation)
        if not dotted:
            return None
        resolved = self.project.resolve(self.module, dotted)
        if resolved is not None and resolved in self.project.classes:
            return resolved
        return None

    def type_of(self, name: str) -> str | None:
        return self._types.get(name)


@dataclass
class CallGraph:
    """Edges + per-caller call sites, all deterministically ordered."""

    project: Project
    sites: list[CallSite] = field(default_factory=list)
    edges: dict[str, tuple[str, ...]] = field(default_factory=dict)

    def callees(self, qualname: str) -> tuple[str, ...]:
        return self.edges.get(qualname, ())

    def callers_of(self, qualname: str) -> tuple[str, ...]:
        out = [
            caller
            for caller, callees in sorted(self.edges.items())
            if qualname in callees
        ]
        return tuple(out)


_PARTIAL_NAMES = frozenset({"functools.partial", "partial"})


def resolve_call(
    project: Project,
    module: ModuleInfo,
    func: FunctionInfo,
    types: LocalTypes,
    call: ast.Call,
) -> tuple[str, tuple[str, ...]]:
    """``(raw_text, resolved_targets)`` for one call expression."""
    raw = dotted_name(call.func)
    if not raw:
        return "", ()
    head, _, rest = raw.partition(".")
    # Local variable / parameter with known class type: method dispatch.
    receiver_type = types.type_of(head)
    if receiver_type is not None and rest:
        method_chain = rest.split(".")
        if len(method_chain) == 1:
            targets = project.dispatch_targets(receiver_type, method_chain[0])
            return raw, tuple(t.qualname for t in targets)
        return raw, ()
    # Nested function defined in an enclosing scope of this function.
    scope_parts = func.qualname.split(".")
    for depth in range(len(scope_parts), 0, -1):
        candidate = ".".join([*scope_parts[:depth], raw])
        if candidate in project.functions:
            return raw, (candidate,)
    resolved = project.resolve(module, raw)
    if resolved is None:
        return raw, ()
    if resolved in project.functions:
        return raw, (resolved,)
    if resolved in project.classes:
        # Constructor: the call lands on __init__ when the project has one.
        init = project.resolve_method(resolved, "__init__")
        return raw, (init.qualname,) if init is not None else (resolved,)
    # `module.Class.method` spelled explicitly.
    prefix, _, attr = resolved.rpartition(".")
    if prefix in project.classes:
        targets = project.dispatch_targets(prefix, attr)
        if targets:
            return raw, tuple(t.qualname for t in targets)
    return raw, ()


def build_call_graph(project: Project) -> CallGraph:
    """The deterministic whole-program call graph."""
    graph = CallGraph(project)
    edges: dict[str, list[str]] = {}
    for func in project.iter_functions():
        module = project.modules.get(func.module)
        if module is None:  # pragma: no cover - functions always have modules
            continue
        types = LocalTypes(project, module, func)
        callees: list[str] = []
        for node in walk_own_scope(func.node):
            if not isinstance(node, ast.Call):
                continue
            raw, targets = resolve_call(project, module, func, types, node)
            # functools.partial defers the call; edge to the wrapped fn.
            if raw in _PARTIAL_NAMES and node.args:
                inner = dotted_name(node.args[0])
                if inner:
                    _, inner_targets = resolve_call(
                        project, module, func, types,
                        ast.Call(func=node.args[0], args=[], keywords=[]),
                    )
                    targets = tuple(dict.fromkeys([*targets, *inner_targets]))
            if raw:
                graph.sites.append(
                    CallSite(
                        caller=func.qualname,
                        raw=raw,
                        targets=targets,
                        line=node.lineno,
                        col=node.col_offset,
                    )
                )
            callees.extend(targets)
        edges[func.qualname] = callees
    graph.sites.sort(key=lambda s: (s.caller, s.line, s.col, s.raw))
    graph.edges = {
        caller: tuple(sorted(dict.fromkeys(callees)))
        for caller, callees in sorted(edges.items())
    }
    return graph
