"""The whole-program model behind ``repro-flow``.

A :class:`Project` is every module under one package root, parsed once,
with *module-level name resolution*: each module records what its local
names mean (imports, top-level defs, classes and their methods), so the
later passes (call graph, dataflow) can ask "what does ``protocol.encode``
mean inside ``repro.serve.server``?" and get the fully-qualified answer
``repro.serve.protocol.encode``.

Resolution is deliberately conservative and purely static:

* imports (plain, aliased, ``from``-imports, relative imports) resolve
  to dotted targets; re-exports through ``__init__`` are followed;
* classes record their methods and their (resolved) base-class names, so
  method dispatch can walk a static MRO approximation and — for
  whole-program soundness — fan out to project subclasses that override
  a method (the ``EngineAlgorithm`` pattern);
* anything dynamic (``getattr``, monkey-patching, ``exec``) is out of
  scope: the engine must never *guess*, only under-approximate edges
  while over-approximating taint.

Everything is ordered: modules by dotted name, members in source order.
No output of this module depends on ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

__all__ = ["ClassInfo", "FunctionInfo", "ModuleInfo", "Project"]


@dataclass
class FunctionInfo:
    """One function or method, addressed by fully-qualified name."""

    qualname: str  # e.g. "repro.serve.server.SolveServer._process"
    module: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    cls: str | None = None  # owning class qualname, None for plain functions
    is_nested: bool = False  # defined inside another function

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def is_generator(self) -> bool:
        return any(
            isinstance(sub, (ast.Yield, ast.YieldFrom))
            for sub in walk_own_scope(self.node)
        )


def walk_own_scope(func: ast.AST) -> Iterator[ast.AST]:
    """Walk ``func``'s body excluding nested function/lambda scopes —
    a yield (or a call) inside a nested def belongs to that def."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


@dataclass
class ClassInfo:
    """One class: methods plus resolved base names (for dispatch)."""

    qualname: str  # e.g. "repro.core.engine.EngineAlgorithm"
    module: str
    node: ast.ClassDef
    bases: tuple[str, ...] = ()  # resolved dotted names (best effort)
    methods: dict[str, FunctionInfo] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed module and its local name bindings."""

    name: str  # dotted module name
    path: Path
    tree: ast.Module
    source: str
    #: local name -> dotted target ("numpy.random" for `import numpy.random
    #: as npr`, "repro.serve.protocol.encode" for `from .protocol import
    #: encode`).  Top-level defs/classes bind to their own qualnames.
    bindings: dict[str, str] = field(default_factory=dict)


def _module_name(root_package: str, root: Path, path: Path) -> str:
    rel = path.relative_to(root)
    parts = list(rel.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join([root_package, *parts]) if parts else root_package


def _resolve_relative(module: str, level: int, target: str | None) -> str:
    """Absolute dotted base of ``from ...target import x`` inside ``module``."""
    parts = module.split(".")
    # level 1 = the module's own package; drop one extra for each level up.
    base = parts[: len(parts) - level] if level <= len(parts) else []
    if target:
        base = [*base, target]
    return ".".join(base)


class Project:
    """All modules under one package root, with name resolution."""

    def __init__(self, root: Path, package: str) -> None:
        self.root = Path(root)
        self.package = package
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.parse_errors: list[tuple[str, str]] = []  # (path, message)

    # -- loading -------------------------------------------------------------

    @classmethod
    def load(cls, root: str | Path, package: str | None = None) -> "Project":
        """Parse every ``*.py`` under ``root`` (a package directory).

        ``package`` defaults to the directory name; module names are
        ``package.sub.mod``.  Files are walked in sorted order so every
        derived structure is deterministic.
        """
        root = Path(root)
        if not root.is_dir():
            raise ValueError(f"flow analysis root must be a directory: {root}")
        project = cls(root, package or root.name)
        for path in sorted(root.rglob("*.py")):
            name = _module_name(project.package, root, path)
            try:
                source = path.read_text(encoding="utf-8")
                tree = ast.parse(source)
            except (OSError, SyntaxError) as exc:
                project.parse_errors.append((str(path), str(exc)))
                continue
            module = ModuleInfo(name=name, path=path, tree=tree, source=source)
            project.modules[name] = module
        for name in sorted(project.modules):
            project._index_module(project.modules[name])
        return project

    def _index_module(self, module: ModuleInfo) -> None:
        """Record bindings, functions, classes for one module."""
        for stmt in module.tree.body:
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    local = alias.asname or alias.name.partition(".")[0]
                    target = alias.name if alias.asname else alias.name.partition(".")[0]
                    module.bindings[local] = target
            elif isinstance(stmt, ast.ImportFrom):
                base = (
                    _resolve_relative(module.name, stmt.level, stmt.module)
                    if stmt.level
                    else (stmt.module or "")
                )
                for alias in stmt.names:
                    if alias.name == "*":
                        continue  # never guess star imports
                    local = alias.asname or alias.name
                    module.bindings[local] = f"{base}.{alias.name}" if base else alias.name
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._index_function(module, stmt, cls=None)
            elif isinstance(stmt, ast.ClassDef):
                self._index_class(module, stmt)
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                # Simple top-level alias: `encode = protocol.encode`.
                target, value = stmt.targets[0], stmt.value
                if isinstance(target, ast.Name) and isinstance(value, (ast.Name, ast.Attribute)):
                    dotted = _dotted(value)
                    if dotted:
                        module.bindings[target.id] = self.resolve(module, dotted) or dotted

    def _index_function(
        self,
        module: ModuleInfo,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        cls: str | None,
        prefix: str | None = None,
    ) -> FunctionInfo:
        qual = f"{prefix or cls or module.name}.{node.name}"
        info = FunctionInfo(
            qualname=qual,
            module=module.name,
            node=node,
            cls=cls,
            is_nested=prefix is not None,
        )
        self.functions[qual] = info
        if cls is None and prefix is None:
            module.bindings.setdefault(node.name, qual)
        # Nested defs get their own nodes (callable locally, and the
        # process-boundary check needs to know they are closures).
        for stmt in walk_own_scope(node):
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._index_function(module, stmt, cls=cls, prefix=qual)
        return info

    def _index_class(self, module: ModuleInfo, node: ast.ClassDef) -> None:
        qual = f"{module.name}.{node.name}"
        bases = tuple(
            resolved
            for base in node.bases
            if (dotted := _dotted(base)) and (resolved := self.resolve(module, dotted))
        )
        info = ClassInfo(qualname=qual, module=module.name, node=node, bases=bases)
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.methods[stmt.name] = self._index_function(module, stmt, cls=qual)
        self.classes[qual] = info
        module.bindings.setdefault(node.name, qual)

    # -- resolution ----------------------------------------------------------

    def resolve(self, module: ModuleInfo, dotted: str) -> str | None:
        """Fully-qualified target of a dotted name used inside ``module``.

        Follows the module's bindings for the head, re-exports through
        package ``__init__`` modules for the tail.  Returns ``None`` for
        names that cannot be resolved statically (builtins, external
        libraries, dynamic attributes).
        """
        head, _, rest = dotted.partition(".")
        target = module.bindings.get(head)
        if target is None:
            return None
        full = f"{target}.{rest}" if rest else target
        return self._canonical(full, seen=set())

    def _canonical(self, dotted: str, seen: set[str]) -> str | None:
        """Chase re-exports: ``repro.serve.ServeClient`` →
        ``repro.serve.client.ServeClient``."""
        if dotted in seen:
            return dotted  # import cycle: stop, keep what we have
        seen.add(dotted)
        if dotted in self.functions or dotted in self.classes or dotted in self.modules:
            return dotted
        prefix, _, attr = dotted.rpartition(".")
        if not prefix:
            return dotted
        mod = self.modules.get(prefix)
        if mod is not None and attr in mod.bindings:
            return self._canonical(mod.bindings[attr], seen)
        canonical_prefix = self._canonical(prefix, seen)
        if canonical_prefix and canonical_prefix != prefix:
            return self._canonical(f"{canonical_prefix}.{attr}", seen)
        return dotted

    def lookup_function(self, qualname: str) -> FunctionInfo | None:
        return self.functions.get(qualname)

    def lookup_class(self, qualname: str) -> ClassInfo | None:
        return self.classes.get(qualname)

    # -- class hierarchy -----------------------------------------------------

    def mro(self, qualname: str) -> list[str]:
        """Static MRO approximation: the class, then bases depth-first
        (dedup'd, project classes only)."""
        out: list[str] = []
        stack = [qualname]
        while stack:
            current = stack.pop(0)
            if current in out:
                continue
            out.append(current)
            cls = self.classes.get(current)
            if cls is not None:
                stack.extend(cls.bases)
        return out

    def subclasses(self, qualname: str) -> list[str]:
        """Project classes that (transitively) inherit from ``qualname``,
        sorted for determinism."""
        out: set[str] = set()
        changed = True
        while changed:
            changed = False
            for name in sorted(self.classes):
                if name in out:
                    continue
                cls = self.classes[name]
                if any(base == qualname or base in out for base in cls.bases):
                    out.add(name)
                    changed = True
        return sorted(out)

    def resolve_method(self, class_qual: str, method: str) -> FunctionInfo | None:
        """The method a ``obj.method()`` call lands on, walking the MRO."""
        for candidate in self.mro(class_qual):
            cls = self.classes.get(candidate)
            if cls is not None and method in cls.methods:
                return cls.methods[method]
        return None

    def dispatch_targets(self, class_qual: str, method: str) -> list[FunctionInfo]:
        """Whole-program dispatch: the MRO resolution *plus* every project
        subclass override (sound for the ``EngineAlgorithm`` pattern where
        the declared type is the base class)."""
        targets: list[FunctionInfo] = []
        primary = self.resolve_method(class_qual, method)
        if primary is not None:
            targets.append(primary)
        for sub in self.subclasses(class_qual):
            cls = self.classes.get(sub)
            if cls is not None and method in cls.methods:
                info = cls.methods[method]
                if all(t.qualname != info.qualname for t in targets):
                    targets.append(info)
        return targets

    # -- iteration -----------------------------------------------------------

    def iter_modules(self) -> Iterator[ModuleInfo]:
        for name in sorted(self.modules):
            yield self.modules[name]

    def iter_functions(self) -> Iterator[FunctionInfo]:
        for name in sorted(self.functions):
            yield self.functions[name]


def _dotted(node: ast.expr) -> str:
    """``a.b.c`` for an attribute chain rooted at a Name, else ``""``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""
