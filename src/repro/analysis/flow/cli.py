"""``repro-flow`` — whole-program dataflow analysis CLI.

Usage::

    repro-flow src/repro                  # analyze a package tree
    repro-flow --check src/repro          # CI gate against flow-baseline.txt
    repro-flow --update src/repro         # ratchet the baseline down
    repro-flow --format json src/repro    # machine-readable findings
    repro-flow --format sarif src/repro   # GitHub code-scanning upload
    repro-flow --select F201,F202 src/repro
    repro-flow --list-rules

Also reachable as ``repro-lint --flow ...``.  Exit codes match
``repro-lint``: 0 clean (or within baseline budget under ``--check``),
1 findings (or budget exceeded), 2 usage/parse errors.

Paths are package *roots* (whole-program analysis needs the full tree),
not individual files.  Findings are byte-deterministic across runs and
independent of ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.flow import baseline as baseline_mod
from repro.analysis.flow.checks import FLOW_RULES, flow_diagnostics
from repro.analysis.flow.project import Project
from repro.analysis.sarif import render_sarif

__all__ = ["main", "run_flow"]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2

DEFAULT_ROOT = "src/repro"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-flow",
        description=(
            "Whole-program dataflow analysis: determinism taint (F001-F003), "
            "process-boundary safety (F101), wire-protocol conformance "
            "(F201-F203)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*",
        help=f"package root directories to analyze (default: {DEFAULT_ROOT})",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text", dest="format_",
        help="finding output format (default: text)",
    )
    parser.add_argument(
        "--select", metavar="CODES",
        help="comma-separated F-codes to report (default: all)",
    )
    parser.add_argument(
        "--package", metavar="NAME",
        help="dotted package name for the root (default: directory name)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="gate against the committed baseline (shrink-only ratchet)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the baseline from the current findings (ratchet down)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE", default=baseline_mod.BASELINE_FILE,
        help=f"baseline file for --check/--update (default: {baseline_mod.BASELINE_FILE})",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the F-rule catalogue and exit",
    )
    return parser


def run_flow(
    paths: Sequence[str | Path],
    package: str | None = None,
    select: set[str] | None = None,
) -> list[Diagnostic]:
    """Analyze each package root; merged, deterministically ordered findings."""
    findings: list[Diagnostic] = []
    for path in paths:
        project = Project.load(path, package)
        findings.extend(flow_diagnostics(project))
    if select:
        findings = [d for d in findings if d.code in select]
    return sorted(set(findings))


def main(argv: Sequence[str] | None = None) -> int:
    try:
        return _run(argv)
    except BrokenPipeError:
        sys.stderr.close()
        return EXIT_CLEAN


def _run(argv: Sequence[str] | None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for code in sorted(FLOW_RULES):
            print(f"{code}  {FLOW_RULES[code]}")
        return EXIT_CLEAN

    paths = args.paths or [DEFAULT_ROOT]
    for path in paths:
        if not Path(path).is_dir():
            print(
                f"repro-flow: not a package directory: {path} "
                "(whole-program analysis takes package roots)",
                file=sys.stderr,
            )
            return EXIT_ERROR

    select: set[str] | None = None
    if args.select:
        select = {code.strip() for code in args.select.split(",") if code.strip()}
        unknown = sorted(select - set(FLOW_RULES))
        if unknown:
            print(f"repro-flow: unknown rule codes: {', '.join(unknown)}", file=sys.stderr)
            return EXIT_ERROR

    findings = run_flow(paths, package=args.package, select=select)
    parse_failures = [d for d in findings if d.code == "F000"]

    if args.format_ == "json":
        print(json.dumps({"findings": [d.to_json() for d in findings]},
                         indent=1, sort_keys=True))
    elif args.format_ == "sarif":
        print(render_sarif(findings, "repro-flow", FLOW_RULES))
    else:
        for diagnostic in findings:
            print(diagnostic.format())

    baseline_path = Path(args.baseline)
    if args.update:
        baseline_mod.write_baseline(baseline_path, baseline_mod.bucket_counts(findings))
        print(f"repro-flow: baseline written ({len(findings)} findings)")
        return EXIT_ERROR if parse_failures else EXIT_CLEAN

    if args.check:
        try:
            budget = baseline_mod.load_baseline(baseline_path)
        except ValueError as exc:
            print(f"repro-flow: {exc}", file=sys.stderr)
            return EXIT_ERROR
        failures, warnings = baseline_mod.check(findings, budget)
        for warning in warnings:
            print(f"repro-flow: warning: {warning}")
        for failure in failures:
            print(f"repro-flow: FAIL: {failure}", file=sys.stderr)
        if parse_failures:
            return EXIT_ERROR
        if failures:
            return EXIT_FINDINGS
        print(f"repro-flow: ok ({len(findings)} findings within budget)")
        return EXIT_CLEAN

    if parse_failures:
        return EXIT_ERROR
    return EXIT_FINDINGS if findings else EXIT_CLEAN


if __name__ == "__main__":
    sys.exit(main())
