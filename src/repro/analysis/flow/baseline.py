"""The flow-findings baseline ratchet (``flow-baseline.txt``).

Mirrors :mod:`repro.analysis.typing_gate`: the committed baseline records
how many findings each ``<path>:<code>`` bucket is *allowed* to carry
(today: zero — every true finding was fixed or pragma'd in-source).  The
CI gate fails whenever any bucket grows or a new bucket appears; a
shrink is a warning to ratchet the baseline down with ``--update``.  The
budget can therefore only ever move toward zero.

The bucket key is ``path:code`` rather than the full finding text so the
ratchet is stable under unrelated line-number drift while still pinning
*which file* may carry *which rule*.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.analysis.diagnostics import Diagnostic

__all__ = ["BASELINE_FILE", "bucket_counts", "load_baseline", "write_baseline", "check"]

BASELINE_FILE = "flow-baseline.txt"

_BASELINE_LINE = re.compile(r"^(?P<key>\S+)\s+(?P<count>\d+)$")


def bucket_counts(findings: list[Diagnostic]) -> dict[str, int]:
    """``{"src/repro/serve/client.py:F202": 1, ...}`` for a findings list."""
    counts: dict[str, int] = {}
    for diagnostic in findings:
        key = f"{diagnostic.path}:{diagnostic.code}"
        counts[key] = counts.get(key, 0) + 1
    return counts


def load_baseline(path: Path) -> dict[str, int]:
    """Parse ``<key> <count>`` lines; ``#`` comments and blanks skipped."""
    budget: dict[str, int] = {}
    if not path.is_file():
        return budget
    for raw in path.read_text(encoding="utf-8").splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _BASELINE_LINE.match(line)
        if match is None:
            raise ValueError(f"{path}: malformed baseline line: {raw!r}")
        budget[match.group("key")] = int(match.group("count"))
    return budget


def write_baseline(path: Path, counts: dict[str, int]) -> None:
    lines = [
        "# repro-flow findings budget (whole-program dataflow analysis).",
        "# The gate (repro-flow --check) fails when any bucket grows or a new",
        "# bucket appears; regenerate with --update only to ratchet DOWN.",
        f"total-findings {sum(counts.values())}",
    ]
    lines.extend(f"{key} {count}" for key, count in sorted(counts.items()))
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def check(findings: list[Diagnostic], budget: dict[str, int]) -> tuple[list[str], list[str]]:
    """``(failures, warnings)`` for the shrink-only ratchet."""
    counts = bucket_counts(findings)
    failures: list[str] = []
    warnings: list[str] = []
    total = sum(counts.values())
    allowed_total = budget.get("total-findings", 0)
    if total > allowed_total:
        failures.append(
            f"flow finding count grew: {total} > budget {allowed_total} "
            "(fix the new findings, or justify with a pragma)"
        )
    elif total < allowed_total:
        warnings.append(
            f"flow findings shrank ({total} < {allowed_total}): "
            "run --update to ratchet the budget down"
        )
    for key, count in sorted(counts.items()):
        allowed = budget.get(key, 0)
        if count > allowed:
            failures.append(f"{key}: {count} findings > budget {allowed}")
    return failures, warnings
