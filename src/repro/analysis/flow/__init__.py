"""Whole-program dataflow analysis (``repro-flow``).

Layers, bottom to top:

* :mod:`~repro.analysis.flow.project` — all modules under a package
  root, parsed once, with module-level name resolution and a static
  class hierarchy;
* :mod:`~repro.analysis.flow.callgraph` — deterministic call graph
  (annotation-based dispatch, subclass fan-out, ``functools.partial``);
* :mod:`~repro.analysis.flow.dataflow` — forward taint with per-function
  summaries composed interprocedurally to a fixpoint;
* :mod:`~repro.analysis.flow.checks` — the F-rule catalogue (F001–F003
  determinism taint, F101 process-boundary safety, F201–F203
  wire-protocol conformance);
* :mod:`~repro.analysis.flow.baseline` / :mod:`~repro.analysis.flow.cli`
  — the shrink-only findings ratchet and the ``repro-flow`` CLI.
"""

from repro.analysis.flow.callgraph import CallGraph, CallSite, build_call_graph
from repro.analysis.flow.checks import FLOW_RULES, analyze_project, flow_diagnostics
from repro.analysis.flow.dataflow import DataflowResult, Summary, analyze_dataflow
from repro.analysis.flow.project import Project

__all__ = [
    "CallGraph",
    "CallSite",
    "DataflowResult",
    "FLOW_RULES",
    "Project",
    "Summary",
    "analyze_dataflow",
    "analyze_project",
    "build_call_graph",
    "flow_diagnostics",
]
