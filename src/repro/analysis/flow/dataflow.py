"""Forward taint dataflow with interprocedural function summaries.

The analysis answers one question the per-file AST rules (R001–R011)
cannot: *does a nondeterministic or unpicklable value produced here ever
reach a place where it matters?*  Mechanics:

* **Intraprocedural pass** — each function body is interpreted
  abstractly: the environment maps local names to *taint tag* sets,
  statements execute in order, and the pass repeats until the
  environment stabilizes (bounded; unions are monotone over a finite
  tag universe, so it terminates).  Branches merge by union — the
  analysis is path-insensitive on purpose (over-approximate taint,
  never miss a flow).
* **Taint tags** are strings carrying their origin program point, e.g.
  ``rng@src/repro/x.py:12`` — findings can therefore name the *source*
  of the value that reached a sink three calls away.  Parameter markers
  (``param:0``) seed each function so summaries learn which argument
  positions flow where.
* **Summaries** (:class:`Summary`) record, per function: tags the
  return value carries regardless of arguments, argument positions that
  flow to the return value, argument positions that reach a determinism
  sink inside, and argument positions that cross a process boundary
  inside.  Summaries compose at call sites and iterate to a global
  fixpoint (deterministic order, bounded rounds).
* **Class attribute taint** — ``self.x = <tainted>`` in one method taints
  ``self.x`` reads in every method of that class (and its project
  subclasses see their own attributes separately): the "created in
  ``__init__``, consumed in ``step`` three calls away" pattern.

Sources, sanitizers and sinks are cataloged as data at the top of this
module; the F-rule mapping lives in :mod:`repro.analysis.flow.checks`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable

from repro.analysis.flow.callgraph import LocalTypes, dotted_name, resolve_call
from repro.analysis.flow.project import FunctionInfo, ModuleInfo, Project
from repro.analysis.rules import _NP_RANDOM_SAFE, _WALL_CLOCK

__all__ = [
    "Taint",
    "Summary",
    "SinkHit",
    "BoundaryHit",
    "DataflowResult",
    "analyze_dataflow",
]

Taint = frozenset[str]
EMPTY: Taint = frozenset()

# -- source catalogues --------------------------------------------------------

#: Constructors that pull OS entropy when called without a seed.
_SEEDABLE = frozenset(
    {
        "random.Random",
        "np.random.default_rng",
        "numpy.random.default_rng",
        "np.random.SeedSequence",
        "numpy.random.SeedSequence",
        "default_rng",
        "SeedSequence",
    }
)

#: Builtins/calls producing values whose iteration order is unordered.
_SET_CONSTRUCTORS = frozenset({"set", "frozenset"})
_DICT_VIEWS = frozenset({"keys", "values", "items"})

#: Order-insensitive folds: consuming an unordered container through
#: these cannot leak iteration order into the result.
_ORDER_SANITIZERS = frozenset({"sorted", "min", "max", "sum", "len", "any", "all"})

#: Constructors that *consume* their iterable argument: the result is a
#: concrete container, so generator-ness does not survive them.
_MATERIALIZERS = frozenset({"tuple", "list", "dict", "set", "frozenset", "sorted"})

#: Calls whose results do not pickle (locks, files, sockets).
_LOCK_CALLS = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
        "threading.Event",
        "asyncio.Lock",
        "asyncio.Event",
        "asyncio.Condition",
        "asyncio.Semaphore",
    }
)
_HANDLE_CALLS = frozenset(
    {
        "open",
        "socket.socket",
        "socket.create_connection",
    }
)

#: Methods that ship their arguments to another process when invoked on
#: an executor/pool-shaped receiver.
_SUBMIT_METHODS = frozenset(
    {
        "submit",
        "map",
        "apply_async",
        "map_async",
        "starmap",
        "starmap_async",
        "imap",
        "imap_unordered",
    }
)
_EXECUTOR_HINTS = ("executor", "pool")

#: Constructors whose entire argument list crosses a process boundary.
_BOUNDARY_CONSTRUCTOR_SUFFIXES = ("ProcessExecutor", "ShardSpec")

#: Names in assignment targets that make the assigned value a
#: determinism sink (fitness folds, gap reports).
_FITNESS_TOKENS = ("fitness", "gap", "revenue", "objective", "payoff")

_DETERMINISM_KINDS = ("rng", "clock", "order")
_PICKLE_PREFIX = "pickle:"
_PARAM_PREFIX = "param:"


def _is_unseeded(call: ast.Call) -> bool:
    if call.keywords:
        return False
    if not call.args:
        return True
    return (
        len(call.args) == 1
        and isinstance(call.args[0], ast.Constant)
        and call.args[0].value is None
    )


@dataclass(frozen=True)
class SinkHit:
    """A tainted value reaching a determinism sink."""

    path: str
    line: int
    col: int
    sink: str  # "hash-input" | "memo-key" | "checkpoint-state" | "fitness-value"
    tag: str  # the offending taint tag (kind@origin)
    function: str  # qualname of the function containing the sink


@dataclass(frozen=True)
class BoundaryHit:
    """An unpicklable value reaching a process-boundary sink."""

    path: str
    line: int
    col: int
    boundary: str  # description of the boundary ("executor.map", "ShardSpec(...)")
    tag: str  # pickle:<kind>@origin
    function: str


@dataclass
class Summary:
    """Interprocedural behavior of one function, composed at call sites."""

    returns: Taint = EMPTY
    param_flows: frozenset[int] = frozenset()
    param_sinks: frozenset[int] = frozenset()  # positions reaching determinism sinks
    param_boundary: frozenset[int] = frozenset()  # positions crossing process boundary

    def merge(self, other: "Summary") -> bool:
        """Union-in ``other``; returns True when anything grew."""
        before = (self.returns, self.param_flows, self.param_sinks, self.param_boundary)
        self.returns = self.returns | other.returns
        self.param_flows = self.param_flows | other.param_flows
        self.param_sinks = self.param_sinks | other.param_sinks
        self.param_boundary = self.param_boundary | other.param_boundary
        return before != (
            self.returns,
            self.param_flows,
            self.param_sinks,
            self.param_boundary,
        )


@dataclass
class DataflowResult:
    """Everything the checks layer needs: summaries + sink/boundary hits."""

    summaries: dict[str, Summary] = field(default_factory=dict)
    sink_hits: list[SinkHit] = field(default_factory=list)
    boundary_hits: list[BoundaryHit] = field(default_factory=list)
    rounds: int = 0


class _FunctionAnalysis:
    """One abstract interpretation of one function body."""

    def __init__(
        self,
        project: Project,
        module: ModuleInfo,
        func: FunctionInfo,
        summaries: dict[str, Summary],
        attr_taint: dict[tuple[str, str], Taint],
        report: DataflowResult | None,
    ) -> None:
        self.project = project
        self.module = module
        self.func = func
        self.summaries = summaries
        self.attr_taint = attr_taint
        self.report = report
        self.types = LocalTypes(project, module, func)
        self.env: dict[str, Taint] = {}
        self.ret: Taint = EMPTY
        self.attr_writes: dict[tuple[str, str], Taint] = {}
        # Own-parameter positions that reach a sink/boundary somewhere
        # below this function — these become the Summary's transitive
        # fields, so callers report taint that enters through us.
        self.own_param_sinks: set[int] = set()
        self.own_param_boundary: set[int] = set()
        self._param_names: list[str] = []
        args = func.node.args
        ordered = [*args.posonlyargs, *args.args]
        for index, arg in enumerate(ordered):
            self._param_names.append(arg.arg)
            self.env[arg.arg] = frozenset({f"{_PARAM_PREFIX}{index}"})
        for arg in args.kwonlyargs:
            self.env[arg.arg] = EMPTY

    # -- driving --------------------------------------------------------------

    def run(self) -> Summary:
        for _ in range(3):  # loops: iterate body until the env stabilizes
            before = (dict(self.env), self.ret)
            for stmt in self.func.node.body:
                self._stmt(stmt)
            if (self.env, self.ret) == before:
                break
        param_flows = frozenset(
            index
            for index in range(len(self._param_names))
            if f"{_PARAM_PREFIX}{index}" in self.ret
        )
        returns = frozenset(t for t in self.ret if not t.startswith(_PARAM_PREFIX))
        if self.func.is_generator:
            returns |= frozenset({f"pickle:generator@{self._loc(self.func.node)}"})
        summary = Summary(returns=returns, param_flows=param_flows)
        return summary

    def _loc(self, node: ast.AST) -> str:
        return f"{self.module.path}:{getattr(node, 'lineno', 1)}"

    # -- statements -----------------------------------------------------------

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes are analyzed as their own functions
        if isinstance(stmt, ast.Assign):
            taint = self._expr(stmt.value)
            for target in stmt.targets:
                self._assign(target, taint)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign(stmt.target, self._expr(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            taint = self._expr(stmt.value) | self._read_target(stmt.target)
            self._assign(stmt.target, taint)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                taint = self._expr(stmt.value)
                self.ret |= taint
                if self.func.name == "state_dict":
                    self._report_sinks(stmt, "checkpoint-state", taint)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            taint = self._expr(stmt.iter)
            self._assign(stmt.target, taint)
            for sub in stmt.body:
                self._stmt(sub)
            for sub in stmt.orelse:
                self._stmt(sub)
        elif isinstance(stmt, (ast.While, ast.If)):
            self._expr(stmt.test)
            for sub in [*stmt.body, *stmt.orelse]:
                self._stmt(sub)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taint = self._expr(item.context_expr)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, taint)
            for sub in stmt.body:
                self._stmt(sub)
        elif isinstance(stmt, ast.Try):
            for sub in stmt.body:
                self._stmt(sub)
            for handler in stmt.handlers:
                for sub in handler.body:
                    self._stmt(sub)
            for sub in [*stmt.orelse, *stmt.finalbody]:
                self._stmt(sub)
        elif isinstance(stmt, ast.Expr):
            self._expr(stmt.value)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for sub in ast.iter_child_nodes(stmt):
                if isinstance(sub, ast.expr):
                    self._expr(sub)

    def _assign(self, target: ast.expr, taint: Taint) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = self.env.get(target.id, EMPTY) | taint
            self._check_fitness_sink(target, target.id, taint)
        elif isinstance(target, ast.Attribute):
            self._check_fitness_sink(target, target.attr, taint)
            if (
                isinstance(target.value, ast.Name)
                and target.value.id in ("self", "cls")
                and self.func.cls is not None
            ):
                key = (self.func.cls, target.attr)
                self.attr_writes[key] = self.attr_writes.get(key, EMPTY) | taint
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign(element, taint)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, taint)
        elif isinstance(target, ast.Subscript):
            # d[k] = v taints the container.
            if isinstance(target.value, ast.Name):
                name = target.value.id
                self.env[name] = self.env.get(name, EMPTY) | taint

    def _read_target(self, target: ast.expr) -> Taint:
        if isinstance(target, ast.Name):
            return self.env.get(target.id, EMPTY)
        return self._expr(target) if isinstance(target, ast.expr) else EMPTY

    def _check_fitness_sink(self, node: ast.AST, name: str, taint: Taint) -> None:
        lowered = name.lower()
        if any(token in lowered for token in _FITNESS_TOKENS):
            self._report_sinks(node, "fitness-value", taint)

    # -- expressions ----------------------------------------------------------

    def _expr(self, expr: ast.expr) -> Taint:
        if isinstance(expr, ast.Name):
            taint = self.env.get(expr.id, EMPTY)
            nested = f"{self.func.qualname}.{expr.id}"
            if nested in self.project.functions:
                taint |= frozenset({f"pickle:nested@{self._loc(expr)}"})
            return taint
        if isinstance(expr, ast.Attribute):
            base_taint = self._expr(expr.value)
            if (
                isinstance(expr.value, ast.Name)
                and expr.value.id in ("self", "cls")
                and self.func.cls is not None
            ):
                for cls_name in self.project.mro(self.func.cls):
                    key = (cls_name, expr.attr)
                    if key in self.attr_taint:
                        base_taint |= self.attr_taint[key]
            return base_taint
        if isinstance(expr, ast.Call):
            return self._call(expr)
        if isinstance(expr, ast.Lambda):
            return frozenset({f"pickle:lambda@{self._loc(expr)}"})
        if isinstance(expr, ast.GeneratorExp):
            taint = self._comprehension(expr)
            return taint | frozenset({f"pickle:generator@{self._loc(expr)}"})
        if isinstance(expr, (ast.ListComp, ast.DictComp)):
            return self._comprehension(expr)
        if isinstance(expr, (ast.Set, ast.SetComp)):
            inner = (
                self._comprehension(expr)
                if isinstance(expr, ast.SetComp)
                else frozenset().union(*(self._expr(e) for e in expr.elts))
                if expr.elts
                else EMPTY
            )
            return inner | frozenset({f"order@{self._loc(expr)}"})
        if isinstance(expr, ast.Compare):
            # Equality/membership do not depend on iteration order.
            taint = self._expr(expr.left)
            for comparator in expr.comparators:
                taint |= self._expr(comparator)
            return frozenset(t for t in taint if not t.startswith("order@"))
        if isinstance(expr, (ast.BinOp,)):
            return self._expr(expr.left) | self._expr(expr.right)
        if isinstance(expr, ast.BoolOp):
            return frozenset().union(*(self._expr(v) for v in expr.values))
        if isinstance(expr, ast.UnaryOp):
            return self._expr(expr.operand)
        if isinstance(expr, ast.IfExp):
            return self._expr(expr.body) | self._expr(expr.orelse)
        if isinstance(expr, (ast.Tuple, ast.List)):
            return (
                frozenset().union(*(self._expr(e) for e in expr.elts))
                if expr.elts
                else EMPTY
            )
        if isinstance(expr, ast.Dict):
            parts = [self._expr(v) for v in expr.values if v is not None]
            parts.extend(self._expr(k) for k in expr.keys if k is not None)
            return frozenset().union(*parts) if parts else EMPTY
        if isinstance(expr, ast.Subscript):
            return self._expr(expr.value) | self._expr(expr.slice)
        if isinstance(expr, ast.Starred):
            return self._expr(expr.value)
        if isinstance(expr, (ast.Await, ast.YieldFrom)):
            return self._expr(expr.value)
        if isinstance(expr, ast.Yield):
            return self._expr(expr.value) if expr.value is not None else EMPTY
        if isinstance(expr, ast.JoinedStr):
            parts = [
                self._expr(v.value) for v in expr.values if isinstance(v, ast.FormattedValue)
            ]
            return frozenset().union(*parts) if parts else EMPTY
        if isinstance(expr, ast.NamedExpr):
            taint = self._expr(expr.value)
            self._assign(expr.target, taint)
            return taint
        if isinstance(expr, ast.Slice):
            parts = [
                self._expr(part)
                for part in (expr.lower, expr.upper, expr.step)
                if part is not None
            ]
            return frozenset().union(*parts) if parts else EMPTY
        return EMPTY

    def _comprehension(self, expr) -> Taint:
        taint = EMPTY
        for gen in expr.generators:
            iter_taint = self._expr(gen.iter)
            self._assign(gen.target, iter_taint)
            for condition in gen.ifs:
                self._expr(condition)
        if isinstance(expr, ast.DictComp):
            taint |= self._expr(expr.key) | self._expr(expr.value)
        else:
            taint |= self._expr(expr.elt)
        return taint

    # -- calls ----------------------------------------------------------------

    def _call(self, call: ast.Call) -> Taint:
        raw = dotted_name(call.func)
        arg_taints = [self._expr(a) for a in call.args]
        kw_taints = {kw.arg: self._expr(kw.value) for kw in call.keywords}
        receiver_taint = (
            self._expr(call.func.value)
            if isinstance(call.func, ast.Attribute)
            else EMPTY
        )
        all_args = list(arg_taints) + list(kw_taints.values())
        merged_args = frozenset().union(*all_args) if all_args else EMPTY
        tail = raw.rpartition(".")[2]

        # Materializers consume their iterable: tuple(genexp) is a tuple,
        # not a generator, so generator-ness does not cross them.
        if raw in _MATERIALIZERS:
            merged_args = frozenset(
                t for t in merged_args if not t.startswith("pickle:generator@")
            )
        # Sanitizing folds: order cannot survive sorted()/sum()/...
        if raw in _ORDER_SANITIZERS:
            return frozenset(t for t in merged_args if not t.startswith("order@"))

        result = EMPTY

        # -- sources ----------------------------------------------------------
        if raw in _SEEDABLE and _is_unseeded(call):
            result |= frozenset({f"rng@{self._loc(call)}"})
        else:
            root = raw.rpartition(".")[0]
            if root in ("np.random", "numpy.random") and tail not in _NP_RANDOM_SAFE:
                result |= frozenset({f"rng@{self._loc(call)}"})
            elif root == "random" and tail not in ("Random", "SystemRandom", "seed"):
                result |= frozenset({f"rng@{self._loc(call)}"})
        if raw in _WALL_CLOCK:
            result |= frozenset({f"clock@{self._loc(call)}"})
        if raw in _SET_CONSTRUCTORS:
            result |= frozenset({f"order@{self._loc(call)}"}) | merged_args
            return result
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in _DICT_VIEWS
            and not call.args
        ):
            return result | frozenset({f"order@{self._loc(call)}"}) | receiver_taint
        if raw in _LOCK_CALLS:
            result |= frozenset({f"pickle:lock@{self._loc(call)}"})
        if raw in _HANDLE_CALLS:
            result |= frozenset({f"pickle:handle@{self._loc(call)}"})

        # -- sinks ------------------------------------------------------------
        self._check_sinks(call, raw, tail, arg_taints, kw_taints)

        # -- callee composition ----------------------------------------------
        _, targets = resolve_call(self.project, self.module, self.func, self.types, call)
        if targets:
            for target in targets:
                info = self.project.functions.get(target)
                summary = self.summaries.get(target)
                if info is None or summary is None:
                    continue
                offset = 1 if self._is_method_call(info, call) else 0

                def arg_taint_at(index: int) -> Taint:
                    pos = index - offset
                    if pos == -1:
                        return receiver_taint  # the bound `self`
                    if 0 <= pos < len(arg_taints):
                        return arg_taints[pos]
                    return kw_taints.get(self._param_name(info, index), EMPTY)

                result |= summary.returns
                for index in summary.param_flows:
                    result |= arg_taint_at(index)
                # Interprocedural sinks: a tainted argument reaching a
                # sink (or a process boundary) inside the callee.
                for index in sorted(summary.param_sinks):
                    self._report_sinks(call, f"into {info.name}()", arg_taint_at(index))
                for index in sorted(summary.param_boundary):
                    self._report_boundary(call, f"via {info.name}()", arg_taint_at(index))
                if info.is_generator:
                    result |= frozenset({f"pickle:generator@{self._loc(call)}"})
        else:
            # Unknown callee: conservatively propagate receiver/argument
            # taints through the result (float(x), rng.normal(), ...).
            result |= merged_args | receiver_taint
        return result

    def _is_method_call(self, info: FunctionInfo, call: ast.Call) -> bool:
        """Did this call bind ``self`` implicitly (receiver syntax)?"""
        if info.cls is None:
            return False
        args = info.node.args
        ordered = [*args.posonlyargs, *args.args]
        if not ordered or ordered[0].arg not in ("self", "cls"):
            return False
        # `Class(...)` binds self for __init__ too; `mod.fn(...)` does not.
        return True

    def _param_name(self, info: FunctionInfo, index: int) -> str:
        args = info.node.args
        ordered = [*args.posonlyargs, *args.args]
        if 0 <= index < len(ordered):
            return ordered[index].arg
        return ""

    # -- sink checking ---------------------------------------------------------

    def _check_sinks(
        self,
        call: ast.Call,
        raw: str,
        tail: str,
        arg_taints: list[Taint],
        kw_taints: dict[str | None, Taint],
    ) -> None:
        merged = (
            frozenset().union(*arg_taints, *kw_taints.values())
            if (arg_taints or kw_taints)
            else EMPTY
        )
        # Hash/digest inputs (stable_hash, content digests).
        if tail in ("stable_hash", "digest", "content_digest") and (arg_taints or kw_taints):
            self._report_sinks(call, "hash-input", merged)
        # Memo keys: memo.get(key) / memo.put(key, ...) / memo.contains(key).
        receiver = dotted_name(call.func.value) if isinstance(call.func, ast.Attribute) else ""
        if (
            tail in ("get", "put", "contains")
            and "memo" in receiver.lower()
            and arg_taints
        ):
            self._report_sinks(call, "memo-key", arg_taints[0])
        # Process-boundary submission on executor/pool receivers.
        if isinstance(call.func, ast.Attribute) and tail in _SUBMIT_METHODS:
            receiver_lower = receiver.lower()
            is_executor = any(h in receiver_lower for h in _EXECUTOR_HINTS)
            if not is_executor and isinstance(call.func.value, ast.Name):
                rtype = self.types.type_of(call.func.value.id)
                is_executor = rtype is not None and "executor" in rtype.lower()
            if is_executor:
                for taint in [*arg_taints, *kw_taints.values()]:
                    self._report_boundary(call, f".{tail}()", taint)
        # Boundary constructors: the whole payload must pickle.
        resolved = self.project.resolve(self.module, raw) or raw
        if resolved.rpartition(".")[2] in _BOUNDARY_CONSTRUCTOR_SUFFIXES or any(
            resolved.endswith(suffix) for suffix in _BOUNDARY_CONSTRUCTOR_SUFFIXES
        ):
            for taint in [*arg_taints, *kw_taints.values()]:
                self._report_boundary(call, f"{tail}(...)", taint)
        # Spawn-context process targets.
        if tail == "Process" and receiver.rpartition(".")[2] in ("ctx", "mp", "multiprocessing"):
            for taint in [*arg_taints, *kw_taints.values()]:
                self._report_boundary(call, "Process(...)", taint)

    def _report_sinks(self, node: ast.AST, sink: str, taint: Taint) -> None:
        for tag in sorted(taint):
            if tag.startswith(_PARAM_PREFIX):
                self.own_param_sinks.add(int(tag[len(_PARAM_PREFIX):]))
                continue
            kind = tag.partition("@")[0]
            if kind in _DETERMINISM_KINDS and self.report is not None:
                self.report.sink_hits.append(
                    SinkHit(
                        path=str(self.module.path),
                        line=getattr(node, "lineno", 1),
                        col=getattr(node, "col_offset", 0),
                        sink=sink,
                        tag=tag,
                        function=self.func.qualname,
                    )
                )

    def _report_boundary(self, node: ast.AST, boundary: str, taint: Taint) -> None:
        for tag in sorted(taint):
            if tag.startswith(_PARAM_PREFIX):
                self.own_param_boundary.add(int(tag[len(_PARAM_PREFIX):]))
                continue
            if tag.startswith(_PICKLE_PREFIX) and self.report is not None:
                self.report.boundary_hits.append(
                    BoundaryHit(
                        path=str(self.module.path),
                        line=getattr(node, "lineno", 1),
                        col=getattr(node, "col_offset", 0),
                        boundary=boundary,
                        tag=tag,
                        function=self.func.qualname,
                    )
                )


def _analyze_function(
    project: Project,
    func: FunctionInfo,
    summaries: dict[str, Summary],
    attr_taint: dict[tuple[str, str], Taint],
    report: DataflowResult | None,
) -> tuple[Summary, dict[tuple[str, str], Taint]]:
    module = project.modules[func.module]
    analysis = _FunctionAnalysis(project, module, func, summaries, attr_taint, report)
    summary = analysis.run()
    summary.param_sinks = frozenset(analysis.own_param_sinks)
    summary.param_boundary = frozenset(analysis.own_param_boundary)
    return summary, analysis.attr_writes


def analyze_dataflow(project: Project, max_rounds: int = 8) -> DataflowResult:
    """Run the whole-program dataflow to fixpoint, then one reporting pass.

    Rounds iterate every function in sorted order, recomputing summaries
    with the current summaries of everything else; class-attribute taint
    accumulates globally.  Both lattices are finite unions, so the loop
    terminates; ``max_rounds`` is a belt-and-braces bound.
    """
    result = DataflowResult()
    summaries: dict[str, Summary] = {
        name: Summary() for name in sorted(project.functions)
    }
    attr_taint: dict[tuple[str, str], Taint] = {}
    for round_index in range(max_rounds):
        changed = False
        for func in project.iter_functions():
            new_summary, attr_writes = _analyze_function(
                project, func, summaries, attr_taint, report=None
            )
            if summaries[func.qualname].merge(new_summary):
                changed = True
            for key, taint in sorted(attr_writes.items()):
                previous = attr_taint.get(key, EMPTY)
                merged = previous | taint
                if merged != previous:
                    attr_taint[key] = merged
                    changed = True
        result.rounds = round_index + 1
        if not changed:
            break
    # Reporting pass with converged facts.
    for func in project.iter_functions():
        _analyze_function(project, func, summaries, attr_taint, report=result)
    result.summaries = summaries
    result.sink_hits = sorted(
        set(result.sink_hits), key=lambda h: (h.path, h.line, h.col, h.sink, h.tag)
    )
    result.boundary_hits = sorted(
        set(result.boundary_hits), key=lambda h: (h.path, h.line, h.col, h.boundary, h.tag)
    )
    return result


def taint_kinds(tags: Iterable[str]) -> list[str]:
    """The distinct kinds (``rng``/``clock``/...) in a tag set, sorted."""
    return sorted({tag.partition("@")[0] for tag in tags})
