"""Diagnostic records emitted by the lint engine.

One :class:`Diagnostic` per finding, in the ruff/flake8 surface syntax
(``path:line:col: CODE message``) so editors, CI annotations and humans
all parse it the same way; ``to_json`` is the machine-readable form
behind ``repro-lint --format json``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Diagnostic"]


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One lint finding, ordered by (path, line, col, code)."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        """The ruff-style single-line rendering."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_json(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }
