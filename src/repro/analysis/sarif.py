"""SARIF 2.1.0 serialization for analysis findings.

Shared by ``repro-lint`` and ``repro-flow`` (``--format sarif``) so
findings can upload to GitHub code scanning.  Only the schema subset
code scanning consumes is emitted: one run, one driver, a rule table
restricted to the codes that actually fired, and one result per
finding with a physical location.  Output is deterministic: rules and
results are sorted, and JSON is dumped with sorted keys.
"""

from __future__ import annotations

import json

from repro.analysis.diagnostics import Diagnostic

__all__ = ["SARIF_SCHEMA", "SARIF_VERSION", "to_sarif", "render_sarif"]

SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
SARIF_VERSION = "2.1.0"


def to_sarif(
    findings: list[Diagnostic],
    tool_name: str,
    rule_summaries: dict[str, str],
) -> dict:
    """A SARIF log dict for ``findings``.

    ``rule_summaries`` maps rule codes to one-line descriptions; codes
    that fired but are missing from the table still serialize (with the
    code itself as the description) so a new rule can never crash the
    formatter.
    """
    fired = sorted({d.code for d in findings})
    rules = [
        {
            "id": code,
            "name": code,
            "shortDescription": {"text": rule_summaries.get(code, code)},
        }
        for code in fired
    ]
    results = [
        {
            "ruleId": d.code,
            "level": "warning",
            "message": {"text": d.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": d.path},
                        "region": {
                            "startLine": max(d.line, 1),
                            # SARIF columns are 1-based; ours are 0-based.
                            "startColumn": d.col + 1,
                        },
                    }
                }
            ],
        }
        for d in sorted(findings)
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "informationUri": "https://example.invalid/repro",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def render_sarif(
    findings: list[Diagnostic],
    tool_name: str,
    rule_summaries: dict[str, str],
) -> str:
    """The SARIF log as deterministic (sorted-keys) JSON text."""
    return json.dumps(to_sarif(findings, tool_name, rule_summaries), indent=1, sort_keys=True)
