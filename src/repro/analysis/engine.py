"""The lint engine: file walking, pragma suppression, rule dispatch.

Pragmas (ruff ``noqa`` semantics, spelled for this tool):

* ``# repro-lint: disable=R001`` — suppress the listed codes on this line;
* ``# repro-lint: disable-next-line=R001`` — suppress on the next line;
* ``# repro-lint: disable-file=R001`` — suppress in the whole file;
* ``disable=all`` suppresses every rule at that scope.

A pragma is an *annotation*, not an escape hatch: the convention in this
repo is that every pragma carries a one-line justification in the same
comment (see e.g. ``repro/core/engine.py``).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.config import LintConfig
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.rules import ALL_RULES, Rule, RuleContext

__all__ = ["LintEngine", "ParseError", "lint_source", "lint_paths"]

_PRAGMA = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable(?:-next-line|-file)?)\s*=\s*"
    r"(?P<codes>(?:all|[RF]\d{3})(?:\s*,\s*(?:all|[RF]\d{3}))*)"
)


@dataclass(frozen=True)
class ParseError:
    """A file the engine could not parse (reported, exit code 2)."""

    path: str
    message: str

    def format(self) -> str:
        return f"{self.path}: parse error: {self.message}"


@dataclass
class _Pragmas:
    file_codes: set[str] = field(default_factory=set)
    line_codes: dict[int, set[str]] = field(default_factory=dict)

    def suppressed(self, diagnostic: Diagnostic) -> bool:
        for codes in (self.file_codes, self.line_codes.get(diagnostic.line, ())):
            if "all" in codes or diagnostic.code in codes:
                return True
        return False


def _collect_pragmas(source: str) -> _Pragmas:
    pragmas = _Pragmas()
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _PRAGMA.search(line)
        if not match:
            continue
        codes = {c.strip() for c in match.group("codes").split(",")}
        kind = match.group("kind")
        if kind == "disable-file":
            pragmas.file_codes |= codes
        elif kind == "disable-next-line":
            pragmas.line_codes.setdefault(lineno + 1, set()).update(codes)
        else:
            pragmas.line_codes.setdefault(lineno, set()).update(codes)
    return pragmas


class LintEngine:
    """Run the rule catalogue over files or source strings."""

    def __init__(
        self,
        config: LintConfig | None = None,
        rules: Sequence[Rule] = ALL_RULES,
        select: Iterable[str] | None = None,
    ) -> None:
        self.config = config or LintConfig()
        selected = set(select) if select is not None else None
        self.rules = tuple(
            r for r in rules if selected is None or r.code in selected
        )
        self.parse_errors: list[ParseError] = []

    # -- single source ------------------------------------------------------

    def lint_source(self, source: str, path: str = "<source>") -> list[Diagnostic]:
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            self.parse_errors.append(ParseError(path, str(exc)))
            return []
        pragmas = _collect_pragmas(source)
        findings: list[Diagnostic] = []
        for rule in self.rules:
            rule_config = self.config.rule(rule.code)
            if not rule_config.applies_to(path):
                continue
            ctx = RuleContext(path=path, tree=tree, source=source, config=rule_config)
            findings.extend(
                d for d in rule.check(ctx) if not pragmas.suppressed(d)
            )
        return sorted(findings)

    # -- trees --------------------------------------------------------------

    def lint_file(self, path: str | Path) -> list[Diagnostic]:
        path = Path(path)
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            self.parse_errors.append(ParseError(str(path), str(exc)))
            return []
        return self.lint_source(source, path=str(path))

    def lint_paths(self, paths: Iterable[str | Path]) -> list[Diagnostic]:
        findings: list[Diagnostic] = []
        for path in paths:
            path = Path(path)
            if path.is_dir():
                for file in sorted(path.rglob("*.py")):
                    findings.extend(self.lint_file(file))
            else:
                findings.extend(self.lint_file(path))
        return findings


def lint_source(
    source: str, path: str = "<source>", config: LintConfig | None = None
) -> list[Diagnostic]:
    """One-shot convenience used heavily by the rule test suite."""
    return LintEngine(config=config).lint_source(source, path=path)


def lint_paths(
    paths: Iterable[str | Path], config: LintConfig | None = None
) -> list[Diagnostic]:
    return LintEngine(config=config).lint_paths(paths)
