"""``[tool.repro-lint]`` configuration.

Each rule can be scoped (``paths`` — only files matching are checked)
and exempted (``allow`` — matching files are skipped even inside the
scope).  Patterns are matched against the file's *posix-normalized*
path: a pattern containing glob characters is an ``fnmatch`` pattern
(tried against the full path and against ``*/pattern``); a plain
pattern is a substring match.  This keeps pyproject entries short
(``"repro/serve/"`` rather than ``"**/repro/serve/**"``).

Example::

    [tool.repro-lint]
    src-roots = ["src"]

    [tool.repro-lint.R002]
    paths = ["repro/core/", "repro/gp/"]
    allow = ["repro/parallel/executor.py"]
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath

__all__ = ["RuleConfig", "LintConfig", "load_config", "find_pyproject"]

_GLOB_CHARS = frozenset("*?[")


def _matches(path: str, pattern: str) -> bool:
    """One pattern against one posix path (see module docstring)."""
    if _GLOB_CHARS & set(pattern):
        return fnmatch.fnmatch(path, pattern) or fnmatch.fnmatch(path, f"*/{pattern}")
    return pattern in path


@dataclass(frozen=True)
class RuleConfig:
    """Scope (``paths``) and exemptions (``allow``) for one rule."""

    paths: tuple[str, ...] = ()
    allow: tuple[str, ...] = ()
    options: dict = field(default_factory=dict)

    def applies_to(self, path: str) -> bool:
        posix = PurePosixPath(Path(path)).as_posix()
        if self.paths and not any(_matches(posix, p) for p in self.paths):
            return False
        return not any(_matches(posix, p) for p in self.allow)


@dataclass(frozen=True)
class LintConfig:
    """The whole ``[tool.repro-lint]`` table."""

    src_roots: tuple[str, ...] = ("src",)
    rules: dict = field(default_factory=dict)  # code -> RuleConfig

    def rule(self, code: str) -> RuleConfig:
        return self.rules.get(code, _DEFAULT_RULE)


_DEFAULT_RULE = RuleConfig()


def find_pyproject(start: str | Path = ".") -> Path | None:
    """Nearest ``pyproject.toml`` at or above ``start``."""
    here = Path(start).resolve()
    for candidate in [here, *here.parents]:
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


def load_config(pyproject: str | Path | None = None) -> LintConfig:
    """Parse ``[tool.repro-lint]``; absent file/table yields defaults."""
    if pyproject is None:
        return LintConfig()
    try:
        import tomllib
    except ImportError:  # pragma: no cover - py3.10 without tomli
        return LintConfig()
    with open(pyproject, "rb") as fh:
        document = tomllib.load(fh)
    table = document.get("tool", {}).get("repro-lint", {})
    rules: dict[str, RuleConfig] = {}
    for key, value in table.items():
        if not isinstance(value, dict):
            continue
        known = {"paths", "allow"}
        rules[key] = RuleConfig(
            paths=tuple(value.get("paths", ())),
            allow=tuple(value.get("allow", ())),
            options={k: v for k, v in value.items() if k not in known},
        )
    return LintConfig(
        src_roots=tuple(table.get("src-roots", ("src",))),
        rules=rules,
    )
